#!/usr/bin/env bash
# Tier-1 verification: everything a change must keep green.
#
#   scripts/tier1.sh
#
# Builds the workspace in release mode, runs the full test suite, and holds
# the tree to a warning-free clippy bar (all targets, -D warnings).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: cargo build --release =="
cargo build --release

echo "== tier1: cargo test -q =="
cargo test -q

echo "== tier1: cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== tier1: OK =="
