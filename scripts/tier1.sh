#!/usr/bin/env bash
# Tier-1 verification: everything a change must keep green.
#
#   scripts/tier1.sh
#
# Builds the workspace in release mode, runs the full test suite (workspace
# pass plus a per-crate pass, so each crate's tests also run against its own
# feature/dependency resolution), holds the tree to a warning-free clippy
# bar (all targets, -D warnings), and requires the rendered API docs of every
# first-party crate to build without rustdoc warnings.
set -euo pipefail
cd "$(dirname "$0")/.."

# First-party packages (vendored stand-ins under vendor/ are exempt from the
# doc and per-crate bars; they are exercised transitively).
AIM_PACKAGES=(
  aim-types aim-isa aim-mem aim-predictor aim-lsq aim-core aim-backend
  aim-pipeline aim-workloads aim-bench aim-serve aim-cli aim-integration
  aim-examples
)

echo "== tier1: cargo build --release =="
cargo build --release

echo "== tier1: cargo test -q =="
cargo test -q

for pkg in "${AIM_PACKAGES[@]}"; do
  echo "== tier1: cargo test -q -p ${pkg} =="
  cargo test -q -p "${pkg}"
done

# The backend-conformance suite is the contract every MemBackend implements;
# run it by name so a test-filtering regression cannot silently drop it.
echo "== tier1: cargo test -p aim-backend --test conformance =="
cargo test -q -p aim-backend --test conformance

echo "== tier1: EXPERIMENTS.md carries the backend gap-closed table =="
grep -q '| backend | int gap closed | fp gap closed |' EXPERIMENTS.md

# The PCAX table is an acceptance gate: the run asserts pcax stays inside
# the no-spec..oracle bracket and must print its acceptance line.
echo "== tier1: table_pcax acceptance (tiny scale) =="
AIM_PCAX_JSON="$(mktemp)" AIM_SWEEP_JSON="$(mktemp)" \
  cargo run --release -q -p aim-bench --bin table_pcax -- --scale tiny \
  | grep -q 'acceptance: pcax inside the bracket'

# The geometry sweeps are acceptance gates too: each run asserts every
# swept point stays inside the no-spec..oracle bracket and must locate and
# print a knee. The tiny grid is the reduced 2x2 CI matrix.
echo "== tier1: table_pcax_sweep acceptance (tiny scale, tiny grid) =="
PCAX_SWEEP_OUT="$(AIM_PCAX_SWEEP_JSON="$(mktemp)" AIM_SWEEP_JSON="$(mktemp)" \
  cargo run --release -q -p aim-bench --bin table_pcax_sweep -- --scale tiny --grid tiny)"
grep -q 'knee: ' <<<"$PCAX_SWEEP_OUT"
grep -q 'acceptance: every swept pcax geometry inside the no-spec..oracle bracket, knee located' \
  <<<"$PCAX_SWEEP_OUT"

echo "== tier1: table_filter_sweep acceptance (tiny scale, tiny grid) =="
FILTER_SWEEP_OUT="$(AIM_FILTER_SWEEP_JSON="$(mktemp)" AIM_SWEEP_JSON="$(mktemp)" \
  cargo run --release -q -p aim-bench --bin table_filter_sweep -- --scale tiny --grid tiny)"
grep -q 'knee: ' <<<"$FILTER_SWEEP_OUT"
grep -q 'acceptance: every swept filter geometry inside the no-spec..oracle bracket, knee located' \
  <<<"$FILTER_SWEEP_OUT"

# The host-throughput gate: --check replays the matrix single-threaded and
# fails if the architectural-stats fingerprint diverges (a silent behavior
# change hiding behind a host-perf win), then replays it again as 1-core
# MultiMachines — the multi-core refactor's N=1 bit-identity contract —
# and the run must print both acceptance lines.
echo "== tier1: table_hostperf differential gate (tiny scale) =="
HOSTPERF_OUT="$(AIM_HOSTPERF_JSON="$(mktemp)" \
  cargo run --release -q -p aim-bench --bin table_hostperf -- --scale tiny --check)"
grep -q 'hostperf: multi-core N=1 fingerprint matches single-core' <<<"$HOSTPERF_OUT"
grep -q 'hostperf: ACCEPT' <<<"$HOSTPERF_OUT"

# The memory-model gate: every litmus outcome the multi-core machine
# produces must be allowed by the operational reference model, on every
# backend. Tier-1 runs a shallow schedule sweep (the committed
# BENCH_litmus.json is the full 200-schedule run); the integration test
# suite already ran the deeper AIM_LITMUS_SCHEDULES default during
# `cargo test -p aim-pipeline`.
echo "== tier1: table_litmus containment gate (8 schedules) =="
AIM_LITMUS_JSON="$(mktemp)" \
  cargo run --release -q -p aim-bench --bin table_litmus -- --schedules 8 \
  | grep -q 'litmus: ACCEPT'

# The serve gate: replay the hostperf request matrix against an empty
# result cache twice over framed connections. The cold round must simulate
# every cell; the warm round must be answered entirely from the
# content-addressed cache, byte-identical and with zero simulations, or
# the run exits non-zero without printing its acceptance line.
echo "== tier1: aim-sim serve replay gate (tiny scale, 2 rounds) =="
AIM_SERVE_JSON="$(mktemp)" \
  cargo run --release -q -p aim-cli --bin aim-sim -- \
    serve --replay --scale tiny --rounds 2 --cache "$(mktemp -d)" \
  | grep -q 'serve: cache-consistent'

# The far-memory gate: the kilo-entry-window × far-latency matrix routes
# through a shared local server, asserts every backend inside the
# no-spec..oracle bracket, and replays itself warm (zero simulations,
# byte-identical) before printing its acceptance line.
echo "== tier1: table_far_mem acceptance (tiny scale, served matrix) =="
FARMEM_CACHE="$(mktemp -d)"
AIM_FARMEM_JSON="$(mktemp)" AIM_SERVE_CACHE="$FARMEM_CACHE" \
  cargo run --release -q -p aim-serve --bin table_far_mem -- --scale tiny \
  | grep -q 'acceptance: every backend inside the no-spec..oracle bracket'

# The sampled-simulation gate: every kernel's full-detail and sampled
# cells route through a shared local server as distinct content-addressed
# entries (sampling is default-off, so the full cells' fingerprints are
# the same bytes every unsampled client sees — the hostperf --check gate
# above pins that), the warm replay must answer byte-identically with
# zero simulations, and in-process reruns must reproduce the served cycle
# counts exactly. Convergence tolerance and the >=10x wall-clock floor
# are huge-scale claims, asserted when this binary runs at --scale huge
# (the committed BENCH_sampled.json is that run).
echo "== tier1: table_sampled differential gate (tiny scale, served matrix) =="
AIM_SAMPLED_JSON="$(mktemp)" AIM_SERVE_CACHE="$(mktemp -d)" \
  cargo run --release -q -p aim-serve --bin table_sampled -- --scale tiny \
  | grep -q 'acceptance: worst sampled-vs-detail error'

# Cross-bin warm reuse: a fresh server process over the same cache
# directory must answer a CLI submission naming one of the matrix cells
# (huge machine, far tier) from cache, not by simulating.
echo "== tier1: cross-bin warm reuse via aim-sim submit =="
FARMEM_SOCK="$(mktemp -u)"
cargo run --release -q -p aim-cli --bin aim-sim -- \
  serve --socket "$FARMEM_SOCK" --cache "$FARMEM_CACHE" &
FARMEM_SERVE_PID=$!
for _ in $(seq 1 100); do [ -S "$FARMEM_SOCK" ] && break; sleep 0.1; done
cargo run --release -q -p aim-cli --bin aim-sim -- \
  submit swim --socket "$FARMEM_SOCK" --machine huge --backend sfc-mdt \
  --far 800x64x8 --scale tiny \
  | grep -q '\[cache\]'
cargo run --release -q -p aim-cli --bin aim-sim -- \
  submit --shutdown --socket "$FARMEM_SOCK" >/dev/null
wait "$FARMEM_SERVE_PID"

# Benches must keep compiling even though tier-1 does not time them.
echo "== tier1: cargo bench --no-run =="
cargo bench --no-run

echo "== tier1: cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== tier1: cargo doc --no-deps (rustdoc warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
  "${AIM_PACKAGES[@]/#/--package=}"

echo "== tier1: OK =="
