//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in this package's `tests/` directory; each file
//! exercises the public APIs of several `aim-sim` crates end to end.

/// Re-export the workspace crates so integration tests can use one import.
pub use aim_core as core;
pub use aim_isa as isa;
pub use aim_lsq as lsq;
pub use aim_mem as mem;
pub use aim_pipeline as pipeline;
pub use aim_predictor as predictor;
pub use aim_types as types;
pub use aim_workloads as workloads;
