//! Failure injection: architecturally faulting programs surface as typed
//! errors through every public entry point, never as panics or silent
//! mis-simulation.

use aim_isa::{Assembler, Interpreter, Reg};
use aim_pipeline::{BackendChoice, MachineClass, simulate, simulate_pipeview, simulate_traced, SimConfig, SimError};
use aim_predictor::EnforceMode;

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// A doubleword load from an odd address faults in the interpreter and is
/// reported as a program error by the simulator, under both backends.
#[test]
fn misaligned_access_is_a_program_error() {
    let mut asm = Assembler::new();
    asm.movi(r(1), 0x1001);
    asm.ld(r(2), r(1), 0);
    asm.halt();
    let program = asm.assemble().unwrap();

    assert!(Interpreter::new(&program).run(100).is_err());
    for cfg in [
        SimConfig::machine(MachineClass::Baseline).backend(BackendChoice::Lsq).build(),
        SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build(),
    ] {
        match simulate(&program, &cfg) {
            Err(SimError::Program(msg)) => {
                assert!(msg.contains("misaligned"), "unexpected message: {msg}");
            }
            other => panic!("expected a program error, got {other:?}"),
        }
    }
}

/// A taken branch that jumps past the end of the instruction stream faults
/// architecturally.
#[test]
fn pc_out_of_range_is_a_program_error() {
    let mut asm = Assembler::new();
    asm.movi(r(1), 0);
    asm.beq(r(1), Reg::ZERO, "skip");
    asm.halt();
    asm.label("skip");
    // `skip` labels the end of the stream: the taken branch jumps past the
    // last instruction with no halt in reach.
    let program = asm.assemble().unwrap();

    assert!(Interpreter::new(&program).run(100).is_err());
    match simulate(&program, &SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build()) {
        Err(SimError::Program(_)) => {}
        other => panic!("expected a program error, got {other:?}"),
    }
}

/// The traced and pipeview entry points propagate the same typed error.
#[test]
fn all_entry_points_propagate_program_errors() {
    let mut asm = Assembler::new();
    asm.movi(r(1), 0x1003);
    asm.sw(r(1), r(1), 0);
    asm.halt();
    let program = asm.assemble().unwrap();
    let cfg = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build();

    assert!(matches!(
        simulate_traced(&program, &cfg),
        Err(SimError::Program(_))
    ));
    assert!(matches!(
        simulate_pipeview(&program, &cfg),
        Err(SimError::Program(_))
    ));
}

/// An empty program (no instructions at all) is handled as a zero-length
/// run, not an error or a hang.
#[test]
fn empty_program_retires_nothing() {
    let program = Assembler::new().assemble().unwrap();
    let trace = Interpreter::new(&program).run(100);
    // Either an immediate PC fault or an empty halt-less trace is
    // acceptable architecturally; the simulator must not panic either way.
    if let Ok(t) = trace {
        assert_eq!(t.len(), 0);
    }
    let _ = simulate(&program, &SimConfig::machine(MachineClass::Baseline).backend(BackendChoice::Lsq).build());
}

/// `max_instrs` truncates a long-running program cleanly: the machine
/// retires exactly the budgeted prefix and reports success.
#[test]
fn instruction_budget_truncates_cleanly() {
    let mut asm = Assembler::new();
    asm.movi(r(1), 1_000_000);
    asm.label("spin");
    asm.subi(r(1), r(1), 1);
    asm.bne(r(1), Reg::ZERO, "spin");
    asm.halt();
    let program = asm.assemble().unwrap();

    let mut cfg = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build();
    cfg.max_instrs = 5_000;
    let stats = simulate(&program, &cfg).expect("budgeted run validates");
    assert_eq!(stats.retired, 5_000);
}
