//! Shape regressions: lock in the paper-calibrated behaviours so kernel or
//! simulator changes that break a reproduced effect fail loudly.
//!
//! These run at `Scale::Small`; the full-scale numbers live in
//! EXPERIMENTS.md. Thresholds are deliberately loose — they guard the
//! *mechanism*, not the decimal.

use aim_isa::Interpreter;
use aim_lsq::LsqConfig;
use aim_pipeline::{BackendChoice, MachineClass, simulate_with_trace, BackendConfig, SimConfig, SimStats};
use aim_predictor::EnforceMode;
use aim_workloads::{by_name, Scale};

fn run(name: &str, cfg: &SimConfig) -> SimStats {
    let w = by_name(name, Scale::Small).expect("kernel exists");
    let trace = Interpreter::new(&w.program).run(5_000_000).expect("clean");
    simulate_with_trace(&w.program, &trace, cfg).expect("validated")
}

#[test]
fn bzip2_thrashes_the_sfc_and_assoc16_fixes_it() {
    // Paper §3.2: >50% of bzip2's stores replay on SFC set conflicts; with
    // 16 ways, ~0%.
    let base = SimConfig::machine(MachineClass::Aggressive).mode(EnforceMode::TotalOrder).build();
    let stats = run("bzip2", &base);
    assert!(
        stats.sfc_conflict_rate() > 50.0,
        "bzip2 SFC conflict rate fell to {:.2}%",
        stats.sfc_conflict_rate()
    );
    let mut wide = base.clone();
    if let BackendConfig::SfcMdt { sfc, mdt } = &mut wide.backend {
        sfc.ways = 16;
        mdt.ways = 16;
    }
    let stats16 = run("bzip2", &wide);
    assert!(
        stats16.sfc_conflict_rate() < 1.0,
        "16 ways left {:.2}% conflicts",
        stats16.sfc_conflict_rate()
    );
}

#[test]
fn mcf_thrashes_the_mdt_and_assoc16_fixes_it() {
    // Paper §3.2: >16% of mcf's loads replay on MDT set conflicts.
    let base = SimConfig::machine(MachineClass::Aggressive).mode(EnforceMode::TotalOrder).build();
    let stats = run("mcf", &base);
    assert!(
        stats.mdt_conflict_rate() > 16.0,
        "mcf MDT conflict rate fell to {:.2}%",
        stats.mdt_conflict_rate()
    );
    let mut wide = base.clone();
    if let BackendConfig::SfcMdt { sfc, mdt } = &mut wide.backend {
        sfc.ways = 16;
        mdt.ways = 16;
    }
    let stats16 = run("mcf", &wide);
    assert!(
        stats16.mdt_conflict_rate() < 1.0,
        "16 ways left {:.2}% conflicts",
        stats16.mdt_conflict_rate()
    );
    assert!(stats16.ipc() > stats.ipc(), "associativity must help mcf");
}

#[test]
fn corruption_outliers_are_the_papers_trio() {
    // Paper §3.2: vpr_route, ammp, equake suffer high SFC-corruption replay
    // rates; well-behaved kernels do not.
    let cfg = SimConfig::machine(MachineClass::Aggressive).mode(EnforceMode::TotalOrder).build();
    for name in ["vpr_route", "equake", "ammp"] {
        let s = run(name, &cfg);
        assert!(
            s.corrupt_replay_rate() > 1.5,
            "{name} corruption collapsed to {:.2}%",
            s.corrupt_replay_rate()
        );
    }
    for name in ["swim", "crafty"] {
        let s = run(name, &cfg);
        assert!(
            s.corrupt_replay_rate() < 1.5,
            "{name} should be corruption-clean, got {:.2}%",
            s.corrupt_replay_rate()
        );
    }
}

#[test]
fn fp_collapses_without_enforcement_on_the_wide_machine() {
    // Paper §3.2: NOT-ENF loses badly on specfp at the 1024-entry window.
    let not_enf = SimConfig::machine(MachineClass::Aggressive).mode(EnforceMode::TrueOnly).build();
    let enf = SimConfig::machine(MachineClass::Aggressive).mode(EnforceMode::TotalOrder).build();
    for name in ["apsi", "art", "mgrid"] {
        let slow = run(name, &not_enf);
        let fast = run(name, &enf);
        assert!(
            fast.ipc() > 1.3 * slow.ipc(),
            "{name}: ENF {:.3} should beat NOT-ENF {:.3} by >30%",
            fast.ipc(),
            slow.ipc()
        );
        assert!(
            slow.flushes.output_dep > 5 * fast.flushes.output_dep.max(1),
            "{name}: NOT-ENF must flush on output deps"
        );
    }
}

#[test]
fn small_lsq_throttles_streaming_fp() {
    // Paper Figure 6: the 48x32 LSQ trails badly on fp; the SFC/MDT does
    // not have the capacity limit.
    let small_lsq = SimConfig::machine(MachineClass::Aggressive).backend(BackendChoice::Lsq).lsq(LsqConfig::baseline_48x32()).build();
    let reference = SimConfig::machine(MachineClass::Aggressive).backend(BackendChoice::Lsq).lsq(LsqConfig::aggressive_120x80()).build();
    for name in ["swim", "apsi"] {
        let small = run(name, &small_lsq);
        let full = run(name, &reference);
        assert!(
            small.ipc() < 0.92 * full.ipc(),
            "{name}: 48x32 LSQ at {:.3} should trail 120x80 at {:.3}",
            small.ipc(),
            full.ipc()
        );
        assert!(small.dispatch_stalls.lq_full + small.dispatch_stalls.sq_full > 0);
    }
}

#[test]
fn baseline_enf_matches_the_idealized_lsq() {
    // Paper §3.1: within ~1% on the 4-wide machine (allow a little slack at
    // the Small scale).
    let lsq = SimConfig::machine(MachineClass::Baseline).backend(BackendChoice::Lsq).build();
    let enf = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build();
    for name in ["crafty", "vortex", "parser", "mgrid"] {
        let a = run(name, &lsq);
        let b = run(name, &enf);
        let norm = b.ipc() / a.ipc();
        assert!(
            norm > 0.96,
            "{name}: baseline ENF should be within a few % of the LSQ, got {norm:.3}"
        );
    }
}
