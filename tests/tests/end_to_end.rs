//! End-to-end validation: every workload kernel retires identically to the
//! architectural interpreter under every memory-ordering backend.
//!
//! This is the repo's strongest correctness property: the out-of-order
//! machine executes speculatively and out of order — wrong paths included —
//! yet every retiring instruction must match the in-order golden trace.

use aim_isa::Interpreter;
use aim_lsq::LsqConfig;
use aim_pipeline::{BackendChoice, MachineClass, simulate_with_trace, SimConfig, SimStats};
use aim_predictor::EnforceMode;
use aim_workloads::{all, by_name, Scale};

fn run(name: &str, program: &aim_isa::Program, cfg: &SimConfig) -> SimStats {
    let trace = Interpreter::new(program)
        .run(2_000_000)
        .unwrap_or_else(|e| panic!("{name}: interpreter failed: {e}"));
    simulate_with_trace(program, &trace, cfg)
        .unwrap_or_else(|e| panic!("{name} under {}: {e}", cfg.backend.name()))
}

#[test]
fn every_kernel_validates_under_baseline_lsq() {
    let cfg = SimConfig::machine(MachineClass::Baseline).backend(BackendChoice::Lsq).build();
    for w in all(Scale::Tiny) {
        let stats = run(w.name, &w.program, &cfg);
        assert!(
            stats.retired > 1_000,
            "{}: retired {}",
            w.name,
            stats.retired
        );
        assert!(stats.ipc() > 0.1, "{}: ipc {}", w.name, stats.ipc());
    }
}

#[test]
fn every_kernel_validates_under_baseline_sfc_mdt_enf() {
    let cfg = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build();
    for w in all(Scale::Tiny) {
        let stats = run(w.name, &w.program, &cfg);
        assert!(
            stats.retired > 1_000,
            "{}: retired {}",
            w.name,
            stats.retired
        );
    }
}

#[test]
fn every_kernel_validates_under_baseline_sfc_mdt_not_enf() {
    let cfg = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::TrueOnly).build();
    for w in all(Scale::Tiny) {
        let stats = run(w.name, &w.program, &cfg);
        assert!(
            stats.retired > 1_000,
            "{}: retired {}",
            w.name,
            stats.retired
        );
    }
}

#[test]
fn every_kernel_validates_under_aggressive_machines() {
    let configs = [
        SimConfig::machine(MachineClass::Aggressive).backend(BackendChoice::Lsq).lsq(LsqConfig::aggressive_120x80()).build(),
        SimConfig::machine(MachineClass::Aggressive).mode(EnforceMode::TotalOrder).build(),
        SimConfig::machine(MachineClass::Aggressive).mode(EnforceMode::TrueOnly).build(),
    ];
    for w in all(Scale::Tiny) {
        for cfg in &configs {
            let stats = run(w.name, &w.program, cfg);
            assert!(
                stats.retired > 1_000,
                "{}: retired {}",
                w.name,
                stats.retired
            );
        }
    }
}

#[test]
fn sfc_forwards_on_rmw_kernels() {
    // The routing kernel re-reads each stored cell immediately while the
    // store is in flight: the SFC must actually forward. The other RMW
    // kernels forward more sparsely but must still do so.
    let w = by_name("vpr_route", Scale::Tiny).unwrap();
    let stats = run(
        "vpr_route",
        &w.program,
        &SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build(),
    );
    assert!(
        stats.loads_forwarded > 50,
        "vpr_route: only {} forwards",
        stats.loads_forwarded
    );
    for name in ["bzip2", "equake"] {
        let w = by_name(name, Scale::Tiny).unwrap();
        let stats = run(
            name,
            &w.program,
            &SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build(),
        );
        assert!(
            stats.loads_forwarded > 3,
            "{name}: only {} forwards",
            stats.loads_forwarded
        );
    }
}

#[test]
fn violations_occur_and_enf_reduces_them() {
    // Unconstrained OoO issue on the swap kernels must produce memory-order
    // violations; training the producer-set predictor must reduce them.
    let w = by_name("twolf", Scale::Small).unwrap();
    let not_enf = run(
        "twolf",
        &w.program,
        &SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::TrueOnly).build(),
    );
    let enf = run(
        "twolf",
        &w.program,
        &SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build(),
    );
    assert!(
        not_enf.flushes.memory() > 0,
        "expected violations under NOT-ENF"
    );
    let anti_output_not_enf = not_enf.flushes.anti_dep + not_enf.flushes.output_dep;
    let anti_output_enf = enf.flushes.anti_dep + enf.flushes.output_dep;
    assert!(
        anti_output_enf <= anti_output_not_enf,
        "ENF should not increase anti/output violations: {anti_output_enf} vs {anti_output_not_enf}"
    );
}

#[test]
fn lsq_capacity_stalls_appear_on_streaming_fp() {
    // The Figure 6 mechanism: a 48x32 LSQ on the aggressive machine throttles
    // dispatch on streaming kernels.
    let w = by_name("swim", Scale::Small).unwrap();
    let stats = run(
        "swim",
        &w.program,
        &SimConfig::machine(MachineClass::Aggressive).backend(BackendChoice::Lsq).lsq(LsqConfig::baseline_48x32()).build(),
    );
    assert!(
        stats.dispatch_stalls.lq_full + stats.dispatch_stalls.sq_full > 0,
        "expected LSQ-capacity dispatch stalls"
    );
}

#[test]
fn identical_runs_are_deterministic() {
    let w = by_name("gcc", Scale::Tiny).unwrap();
    let cfg = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build();
    let a = run("gcc", &w.program, &cfg);
    let b = run("gcc", &w.program, &cfg);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.retired, b.retired);
    assert_eq!(a.flushes, b.flushes);
}

#[test]
fn shipped_assembly_programs_validate() {
    // The `.s` examples under examples/programs must assemble, run, and
    // validate under both backends.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../examples/programs");
    let mut found = 0;
    for entry in std::fs::read_dir(dir).expect("programs directory exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("s") {
            continue;
        }
        found += 1;
        let source = std::fs::read_to_string(&path).unwrap();
        let program =
            aim_isa::parse_program(&source).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        for cfg in [
            SimConfig::machine(MachineClass::Baseline).backend(BackendChoice::Lsq).build(),
            SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build(),
        ] {
            let stats = run(&path.display().to_string(), &program, &cfg);
            assert!(stats.retired > 1_000, "{}", path.display());
        }
    }
    assert!(
        found >= 3,
        "expected the shipped .s programs, found {found}"
    );
}
