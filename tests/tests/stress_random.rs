//! Differential stress: random programs through every backend.
//!
//! Random bodies over a 64-word pool maximize in-flight same-address
//! collisions across all access sizes, exercising forwarding, partial
//! matches, disambiguation, corruption, replay and recovery paths at once.
//! Any divergence from the architectural trace fails the run.

use aim_isa::Interpreter;
use aim_lsq::LsqConfig;
use aim_pipeline::{BackendChoice, MachineClass, simulate_with_trace, SimConfig};
use aim_predictor::EnforceMode;
use aim_workloads::stress::random_program;

fn check(seed: u64, cfg: &SimConfig) {
    let p = random_program(seed, 60, 30);
    let trace = Interpreter::new(&p)
        .run(2_000_000)
        .unwrap_or_else(|e| panic!("seed {seed}: interpreter: {e}"));
    let stats = simulate_with_trace(&p, &trace, cfg)
        .unwrap_or_else(|e| panic!("seed {seed} under {}: {e}", cfg.backend.name()));
    assert_eq!(stats.retired, trace.len() as u64, "seed {seed}");
}

#[test]
fn random_programs_validate_under_lsq() {
    for seed in 0..40 {
        check(seed, &SimConfig::machine(MachineClass::Baseline).backend(BackendChoice::Lsq).build());
    }
}

#[test]
fn random_programs_validate_under_sfc_mdt_enf() {
    for seed in 0..40 {
        check(seed, &SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build());
    }
}

#[test]
fn random_programs_validate_under_sfc_mdt_not_enf() {
    for seed in 40..80 {
        check(seed, &SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::TrueOnly).build());
    }
}

#[test]
fn random_programs_validate_under_aggressive_machines() {
    for seed in 80..100 {
        check(
            seed,
            &SimConfig::machine(MachineClass::Aggressive).mode(EnforceMode::TotalOrder).build(),
        );
        check(
            seed,
            &SimConfig::machine(MachineClass::Aggressive).backend(BackendChoice::Lsq).lsq(LsqConfig::aggressive_120x80()).build(),
        );
    }
}

#[test]
fn tiny_structures_still_validate() {
    // Thrash-everything configuration: one-way, two-set SFC and MDT force
    // constant conflicts, replays, head bypasses and stale reclamation.
    let mut cfg = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build();
    if let aim_pipeline::BackendConfig::SfcMdt { sfc, mdt } = &mut cfg.backend {
        sfc.sets = 2;
        sfc.ways = 1;
        mdt.sets = 2;
        mdt.ways = 1;
    }
    for seed in 100..120 {
        check(seed, &cfg);
    }
}

#[test]
fn replay_partial_match_policy_validates() {
    let mut cfg = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build();
    cfg.partial_match_policy = aim_core::PartialMatchPolicy::Replay;
    for seed in 120..140 {
        check(seed, &cfg);
    }
}

#[test]
fn alternative_recovery_policies_validate() {
    let mut cfg = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build();
    cfg.output_dep_recovery = aim_pipeline::OutputDepRecovery::MarkCorrupt;
    if let aim_pipeline::BackendConfig::SfcMdt { mdt, .. } = &mut cfg.backend {
        mdt.true_dep_recovery = aim_core::TrueDepRecovery::SingleLoadAggressive;
    }
    for seed in 140..170 {
        check(seed, &cfg);
    }
}

#[test]
fn no_stall_bits_validates() {
    let mut cfg = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build();
    cfg.stall_bits = false;
    if let aim_pipeline::BackendConfig::SfcMdt { sfc, mdt } = &mut cfg.backend {
        sfc.sets = 4;
        sfc.ways = 1;
        mdt.sets = 4;
        mdt.ways = 1;
    }
    for seed in 170..185 {
        check(seed, &cfg);
    }
}

#[test]
fn search_filter_validates() {
    // The §4 MDT search filter skips provably-unnecessary MDT accesses; a
    // tiny MDT plus the filter stresses both the skip predicate and the
    // census/filter bookkeeping across squashes, replays and head bypasses.
    let mut cfg = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build();
    cfg.mdt_filter = true;
    if let aim_pipeline::BackendConfig::SfcMdt { mdt, .. } = &mut cfg.backend {
        mdt.sets = 4;
        mdt.ways = 1;
    }
    for seed in 215..235 {
        check(seed, &cfg);
    }
}

#[test]
fn perfect_branch_oracle_validates() {
    let mut cfg = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build();
    cfg.oracle_fix_probability = 1.0;
    for seed in 185..195 {
        check(seed, &cfg);
    }
}

#[test]
fn no_branch_oracle_validates() {
    // Maximum wrong-path execution: every gshare mispredict goes down the
    // wrong path, maximizing SFC corruption traffic.
    let mut cfg = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build();
    cfg.oracle_fix_probability = 0.0;
    for seed in 195..215 {
        check(seed, &cfg);
    }
}
