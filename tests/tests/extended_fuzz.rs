//! Extended differential fuzzing, ignored by default (run explicitly):
//!
//! ```text
//! cargo test -p aim-integration --test extended_fuzz --release -- --ignored
//! ```
//!
//! Covers many more random programs and machine shapes than the default
//! suite, including every structure variant.

use aim_core::{
    CorruptionPolicy, MdtConfig, MdtTagging, PartialMatchPolicy, SetHash, SfcConfig,
    TrueDepRecovery,
};
use aim_isa::Interpreter;
use aim_pipeline::{simulate_with_trace, BackendConfig, OutputDepRecovery, SimConfig};
use aim_predictor::{EnforceMode, PredictorConfig};
use aim_workloads::stress::random_program;
use aim_workloads::Xorshift;

fn random_config(rng: &mut Xorshift) -> SimConfig {
    let mode = match rng.below(3) {
        0 => EnforceMode::TrueOnly,
        1 => EnforceMode::All,
        _ => EnforceMode::TotalOrder,
    };
    let mut cfg = SimConfig::baseline(BackendConfig::SfcMdt {
        sfc: SfcConfig {
            sets: 1 << (1 + rng.below(5)),
            ways: 1 + rng.below(3) as usize,
            corruption: if rng.below(2) == 0 {
                CorruptionPolicy::CorruptBits
            } else {
                CorruptionPolicy::FlushEndpoints {
                    capacity: 1 + rng.below(8) as usize,
                }
            },
            hash: if rng.below(2) == 0 {
                SetHash::LowBits
            } else {
                SetHash::XorFold
            },
        },
        mdt: MdtConfig {
            sets: 1 << (1 + rng.below(5)),
            ways: 1 + rng.below(3) as usize,
            granularity: 8 << rng.below(3),
            true_dep_recovery: if rng.below(2) == 0 {
                TrueDepRecovery::Conservative
            } else {
                TrueDepRecovery::SingleLoadAggressive
            },
            tagging: if rng.below(2) == 0 {
                MdtTagging::Tagged
            } else {
                MdtTagging::Untagged
            },
            hash: if rng.below(2) == 0 {
                SetHash::LowBits
            } else {
                SetHash::XorFold
            },
        },
    });
    let mut pred = PredictorConfig::figure4(mode);
    pred.clear_interval = [0u64, 64, 2048][rng.below(3) as usize];
    cfg.dep_predictor = pred;
    cfg.partial_match_policy = if rng.below(2) == 0 {
        PartialMatchPolicy::Combine
    } else {
        PartialMatchPolicy::Replay
    };
    cfg.output_dep_recovery = if rng.below(2) == 0 {
        OutputDepRecovery::Flush
    } else {
        OutputDepRecovery::MarkCorrupt
    };
    cfg.stall_bits = rng.below(2) == 0;
    cfg.mdt_filter = rng.below(2) == 0;
    cfg.oracle_fix_probability = rng.below(3) as f64 / 2.0;
    if rng.below(4) == 0 {
        // Occasionally fuzz the aggressive machine shape too.
        cfg.width = 8;
        cfg.max_branches_per_cycle = 8;
        cfg.issue_width = 8;
        cfg.rob_entries = 256;
        cfg.phys_regs = 256 + 64;
    }
    cfg
}

#[test]
#[ignore = "long-running; run explicitly with --ignored"]
fn thousand_random_machines() {
    let mut rng = Xorshift::new(0xF422);
    for case in 0..1000u64 {
        let program = random_program(rng.next_u64(), 40, 28);
        let trace = Interpreter::new(&program).run(1_000_000).unwrap();
        assert!(trace.halted(), "case {case}");
        let cfg = random_config(&mut rng);
        let stats = simulate_with_trace(&program, &trace, &cfg)
            .unwrap_or_else(|e| panic!("case {case}: {e}\nconfig: {cfg:?}"));
        assert_eq!(stats.retired, trace.len() as u64, "case {case}");
    }
}
