//! Offline stand-in for the `criterion` crate.
//!
//! The aim-sim build environment has no crates.io access, so the workspace
//! vendors a minimal wall-clock benchmark harness with the same API surface
//! the repo's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], the
//! [`criterion_group!`]/[`criterion_main!`] macros, [`BenchmarkId`] and
//! [`Throughput`]. No statistics beyond a trimmed mean — each benchmark is
//! calibrated to a target measurement time and reported as ns/iter (plus
//! derived element throughput when declared).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver handed to each benchmark function.
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let report = measure(self, &mut f);
        print_report(name, &report, None);
        self
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (kept for API compatibility; this harness uses
    /// it only to scale the measurement time).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Declares the work per iteration so the report can show throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let report = measure(self.criterion, &mut |b: &mut Bencher| f(b, input));
        let label = format!("{}/{}", self.name, id.id);
        print_report(&label, &report, self.throughput.as_ref());
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = measure(self.criterion, &mut f);
        let label = format!("{}/{}", self.name, id.id);
        print_report(&label, &report, self.throughput.as_ref());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named `name`, parameterized by `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A benchmark identified only by its parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Work performed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the measured closure; [`Bencher::iter`] runs the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

struct Report {
    ns_per_iter: f64,
}

fn run_once(f: &mut dyn FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

/// Calibrates the iteration count to the measurement window, then takes
/// `sample_size` samples and averages the middle half.
fn measure(criterion: &Criterion, f: &mut dyn FnMut(&mut Bencher)) -> Report {
    let mut iters = 1u64;
    loop {
        let elapsed = run_once(f, iters);
        if elapsed >= Duration::from_millis(2) || iters >= 1 << 30 {
            break;
        }
        iters *= 8;
    }
    let samples = criterion.sample_size.clamp(1, 100);
    let per_sample =
        (criterion.measurement.as_nanos() as u64 / samples as u64).max(Duration::from_millis(2).as_nanos() as u64);
    let sample_elapsed = run_once(f, iters).as_nanos().max(1) as u64;
    let scaled_iters = (iters * per_sample / sample_elapsed).max(1);

    let mut rates: Vec<f64> = (0..samples)
        .map(|_| run_once(f, scaled_iters).as_nanos() as f64 / scaled_iters as f64)
        .collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("elapsed times are finite"));
    let keep = &rates[rates.len() / 4..rates.len() - rates.len() / 4];
    let ns_per_iter = keep.iter().sum::<f64>() / keep.len() as f64;
    Report { ns_per_iter }
}

fn print_report(label: &str, report: &Report, throughput: Option<&Throughput>) {
    let per_iter = report.ns_per_iter;
    let time = if per_iter >= 1e9 {
        format!("{:.3} s", per_iter / 1e9)
    } else if per_iter >= 1e6 {
        format!("{:.3} ms", per_iter / 1e6)
    } else if per_iter >= 1e3 {
        format!("{:.3} µs", per_iter / 1e3)
    } else {
        format!("{per_iter:.1} ns")
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = *n as f64 / (per_iter / 1e9);
            println!("{label:<48} {time:>12}/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = *n as f64 / (per_iter / 1e9);
            println!("{label:<48} {time:>12}/iter  {rate:>14.0} B/s");
        }
        None => println!("{label:<48} {time:>12}/iter"),
    }
}

/// Defines a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
