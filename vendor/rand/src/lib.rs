//! Offline stand-in for the `rand` crate.
//!
//! The aim-sim build environment has no crates.io access, so the workspace
//! vendors a minimal, dependency-free implementation of exactly the API the
//! simulator uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] sampling helpers. The generator is a SplitMix64-seeded
//! xorshift64*, which is more than adequate for the simulator's only
//! stochastic component (the branch-oracle coin flips) — what matters there
//! is determinism per seed, which this provides.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Returns a uniformly distributed value in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Small, fast generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small xorshift64* generator (the stand-in for rand's `SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 whitening guarantees a non-zero xorshift state even
            // for seed 0.
            let mut s = seed;
            let state = splitmix64(&mut s) | 1;
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.8)).count();
        assert!((7_500..8_500).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.1)));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_ne!(rng.next_u64(), rng.next_u64());
        assert_ne!(rng.next_u32(), 0);
    }
}
