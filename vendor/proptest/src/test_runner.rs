//! Test configuration and the deterministic RNG driving case generation.

/// Per-test configuration; only the fields the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (still overridable by
    /// `PROPTEST_CASES`).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig::with_cases(256)
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// Error type a property body can return (`return Ok(())` early-exits a
/// case; the `prop_assert*` macros panic instead of constructing this).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failed case with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic xorshift64* generator; each test gets a seed hashed from
/// its own name, so failures reproduce run-to-run without a persistence
/// file. `PROPTEST_RNG_SEED` perturbs every test's seed at once.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for the named test.
    pub fn for_test(name: &str) -> TestRng {
        let mut seed = fnv1a(name.as_bytes());
        if let Ok(extra) = std::env::var("PROPTEST_RNG_SEED") {
            seed ^= fnv1a(extra.as_bytes());
        }
        // SplitMix64 whitening guarantees a non-zero xorshift state.
        TestRng {
            state: splitmix64(seed) | 1,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform value in `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// A uniform float in `[0, 1)` (53 mantissa bits).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    hash
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_test("beta");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_and_unit_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1_000 {
            assert!(rng.below(7) < 7);
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
