//! Collection strategies: [`vec`] with a [`SizeRange`].

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> SizeRange {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max_inclusive: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> SizeRange {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            min: *range.start(),
            max_inclusive: *range.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            min: exact,
            max_inclusive: exact,
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_element_bounds() {
        let mut rng = TestRng::for_test("collection-tests");
        let mut lens = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let v = vec(0u8..16, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 16));
            lens.insert(v.len());
        }
        assert!(lens.len() > 1, "length never varied");
        assert_eq!(vec(0u8..16, 3).generate(&mut rng).len(), 3);
    }
}
