//! Fixed-size array strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`uniform4`] (generic over the array length).
#[derive(Debug, Clone)]
pub struct UniformArrayStrategy<S, const N: usize> {
    element: S,
}

/// A `[T; 4]` with every element drawn from `element`.
pub fn uniform4<S: Strategy>(element: S) -> UniformArrayStrategy<S, 4> {
    UniformArrayStrategy { element }
}

impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform4_fills_all_lanes_in_bounds() {
        let mut rng = TestRng::for_test("array-tests");
        for _ in 0..100 {
            let a = uniform4(5u32..9).generate(&mut rng);
            assert!(a.iter().all(|&v| (5..9).contains(&v)));
        }
        let draws: Vec<[u64; 4]> = (0..8).map(|_| uniform4(0u64..1 << 32).generate(&mut rng)).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }
}
