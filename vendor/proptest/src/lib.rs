//! Offline stand-in for the `proptest` crate.
//!
//! The aim-sim build environment has no crates.io access, so the workspace
//! vendors a minimal property-testing harness with the same surface the
//! repo's property tests use: the [`proptest!`] macro, `prop_assert*`,
//! [`prop_oneof!`], [`strategy::Strategy`] with `prop_map`,
//! [`arbitrary::any`], integer/float range strategies, tuple strategies,
//! [`collection::vec`], [`array::uniform4`], a regex-subset string strategy,
//! and [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the standard assertion
//!   message; cases are reproducible because every test derives its RNG
//!   seed from the test name (override with `PROPTEST_RNG_SEED`).
//! * **Case count** comes from `ProptestConfig::with_cases` or the
//!   `PROPTEST_CASES` environment variable, as upstream.

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _ in 0..config.cases {
                    let ($($arg,)+) = ($(
                        $crate::strategy::Strategy::generate(&($strategy), &mut rng),
                    )+);
                    // Bodies may `return Ok(())` early, as under real
                    // proptest, so each case runs in a fallible closure.
                    let case = move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    if let ::core::result::Result::Err(err) = case() {
                        ::core::panic!("property failed: {}", err);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted (`w => strategy`) or unweighted choice between strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy)),)+
        ])
    };
}

/// The glob import the property tests start from.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
