//! The [`Strategy`] trait and the combinators the workspace tests use:
//! ranges, tuples, [`Just`], `prop_map`, weighted [`Union`] (backing
//! `prop_oneof!`), and a regex-subset string strategy for `&str` patterns.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe producing random values of an associated type.
///
/// Unlike real proptest there is no value tree or shrinking: `generate`
/// yields a finished value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Weighted choice between boxed strategies; `prop_oneof!` builds one.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// A union of `(weight, strategy)` arms; total weight must be non-zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one arm with weight > 0");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (weight, strategy) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("pick is below the total weight")
    }
}

macro_rules! int_range_strategies {
    ($($ty:ty),+ $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                // span can be 2^64 (full u64/i64 domain); `% 2^64` over a
                // 64-bit draw is the identity, which is exactly right.
                let offset = u128::from(rng.next_u64()) % span;
                (start as i128 + offset as i128) as $ty
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

/// `&str` patterns are strategies over the regex subset the tests use:
/// a sequence of literals, escapes, and character classes (with ranges),
/// each optionally quantified by `{m}`, `{m,n}`, `*`, `+`, or `?`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let terms = parse_pattern(self);
        let mut out = String::new();
        for term in &terms {
            let count = term.min + rng.below((term.max - term.min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(term.chars[rng.below(term.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

struct Term {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Term> {
    let mut terms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => parse_class(pattern, &mut chars),
            '\\' => vec![unescape(pattern, chars.next())],
            '.' => (' '..='~').collect(),
            '(' | ')' | '|' | '^' | '$' => {
                panic!("unsupported regex construct {c:?} in strategy pattern {pattern:?}")
            }
            literal => vec![literal],
        };
        let (min, max) = parse_quantifier(pattern, &mut chars);
        terms.push(Term { chars: set, min, max });
    }
    terms
}

fn parse_class(
    pattern: &str,
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Vec<char> {
    let mut set = Vec::new();
    loop {
        let c = match chars.next() {
            Some(']') => break,
            Some('\\') => unescape(pattern, chars.next()),
            Some(c) => c,
            None => panic!("unterminated character class in strategy pattern {pattern:?}"),
        };
        // A `-` between two members denotes a range (but `-` before `]` is
        // a literal, as in `[ -~]`... where ` -~` is itself a range).
        if chars.peek() == Some(&'-') {
            let mut lookahead = chars.clone();
            lookahead.next();
            match lookahead.peek() {
                Some(&']') | None => set.push(c),
                _ => {
                    chars.next();
                    let end = match chars.next() {
                        Some('\\') => unescape(pattern, chars.next()),
                        Some(e) => e,
                        None => panic!("unterminated range in strategy pattern {pattern:?}"),
                    };
                    assert!(c <= end, "inverted range in strategy pattern {pattern:?}");
                    set.extend(c..=end);
                }
            }
        } else {
            set.push(c);
        }
    }
    assert!(!set.is_empty(), "empty character class in strategy pattern {pattern:?}");
    set
}

fn unescape(pattern: &str, c: Option<char>) -> char {
    match c {
        Some('n') => '\n',
        Some('t') => '\t',
        Some('r') => '\r',
        Some('0') => '\0',
        Some(c @ ('\\' | ']' | '[' | '-' | '.' | '(' | ')' | '|' | '^' | '$' | '{' | '}' | '*'
        | '+' | '?')) => c,
        other => panic!("unsupported escape {other:?} in strategy pattern {pattern:?}"),
    }
}

fn parse_quantifier(
    pattern: &str,
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let min = parse_number(pattern, chars);
            let max = match chars.next() {
                Some('}') => min,
                Some(',') => {
                    let max = parse_number(pattern, chars);
                    assert_eq!(
                        chars.next(),
                        Some('}'),
                        "malformed quantifier in strategy pattern {pattern:?}"
                    );
                    max
                }
                _ => panic!("malformed quantifier in strategy pattern {pattern:?}"),
            };
            assert!(min <= max, "inverted quantifier in strategy pattern {pattern:?}");
            (min, max)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        _ => (1, 1),
    }
}

fn parse_number(
    pattern: &str,
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> usize {
    let mut digits = String::new();
    while let Some(c) = chars.peek() {
        if !c.is_ascii_digit() {
            break;
        }
        digits.push(*c);
        chars.next();
    }
    digits
        .parse()
        .unwrap_or_else(|_| panic!("malformed quantifier in strategy pattern {pattern:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..500 {
            assert!((3u8..7).generate(&mut rng) < 7);
            let signed = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&signed));
            let inclusive = (0u64..=u64::MAX).generate(&mut rng);
            let _ = inclusive; // full domain: any value is in bounds
            let f = (0.25f64..4.0).generate(&mut rng);
            assert!((0.25..4.0).contains(&f));
        }
    }

    #[test]
    fn map_just_and_tuples_compose() {
        let mut rng = rng();
        let s = (Just(10u32), 0u32..5).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((10..15).contains(&v));
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = rng();
        let s = Union::new(vec![(9, Just(true).boxed()), (1, Just(false).boxed())]);
        let hits = (0..10_000).filter(|_| s.generate(&mut rng)).count();
        assert!((8_500..9_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn printable_class_pattern_generates_in_alphabet() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[ -~\\n]{0,400}".generate(&mut rng);
            assert!(s.len() <= 400);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
        let lens: Vec<usize> = (0..50).map(|_| "[ -~]{0,40}".generate(&mut rng).len()).collect();
        assert!(lens.iter().any(|&l| l > 0), "quantifier never varies");
    }

    #[test]
    fn literal_and_quantified_patterns() {
        let mut rng = rng();
        assert_eq!("abc".generate(&mut rng), "abc");
        let s = "a{3}[0-1]+".generate(&mut rng);
        assert!(s.starts_with("aaa"));
        assert!(s.len() > 3 && s[3..].chars().all(|c| c == '0' || c == '1'));
    }
}
