//! [`Arbitrary`] and [`any`], covering the primitive types the tests draw.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($ty:ty),+ $(,)?) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Any<T> {
        *self
    }
}

impl<T> Copy for Any<T> {}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_draws_vary_and_cover_sign() {
        let mut rng = TestRng::for_test("arbitrary-tests");
        let draws: Vec<u64> = (0..32).map(|_| any::<u64>().generate(&mut rng)).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
        let signed: Vec<i8> = (0..256).map(|_| any::<i8>().generate(&mut rng)).collect();
        assert!(signed.iter().any(|&v| v < 0) && signed.iter().any(|&v| v >= 0));
        let flips = (0..1_000).filter(|_| any::<bool>().generate(&mut rng)).count();
        assert!((300..700).contains(&flips), "flips {flips}");
    }
}
