//! Command-line driver for the `aim-sim` simulator.
//!
//! The `aim-sim` binary runs any workload kernel under any machine
//! configuration and prints a statistics report:
//!
//! ```text
//! aim-sim list
//! aim-sim run gzip --machine baseline --backend sfc-mdt --mode enf
//! aim-sim run swim --machine aggressive --backend lsq --lsq 120x80 --scale full
//! aim-sim compare mcf --scale small
//! ```
//!
//! This crate exposes the argument parsing and report formatting as a
//! library so they can be unit-tested; `src/main.rs` is a thin wrapper.

use std::fmt;

use aim_core::{CorruptionPolicy, MdtTagging, SetHash, TableGeometry};
use aim_lsq::LsqConfig;
use aim_pipeline::{
    FarSpec, FilterConfig, MachineClass, MemSpec, PcaxConfig, SampleSpec, SimConfig, SimStats,
};

pub use aim_pipeline::{BackendChoice, BackendConfig};
pub use aim_serve::LsqChoice;
use aim_predictor::EnforceMode;
use aim_workloads::Scale;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List the available kernels.
    List,
    /// Run one kernel under one configuration.
    Run(RunArgs),
    /// Run one kernel under every backend and print each report.
    Compare(RunArgs),
    /// Assemble and run a `.s` source file (the kernel field is the path).
    Asm(RunArgs),
    /// Run the multi-core memory-model litmus suite.
    Litmus(LitmusArgs),
    /// Run the job server (socket, stdio pipe, or the replay gate).
    Serve(ServeArgs),
    /// Submit one job to a serving socket.
    Submit(SubmitArgs),
    /// Print usage.
    Help,
}

/// Options for the `serve` command. Exactly one of `socket`, `stdio`, or
/// `replay` selects the mode.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Listen on this Unix-domain socket path.
    pub socket: Option<String>,
    /// Serve a single connection over stdin/stdout (subprocess pipe mode).
    pub stdio: bool,
    /// Replay the hostperf matrix cold/warm against the cache and print
    /// the `cache-consistent` verdict.
    pub replay: bool,
    /// Result-cache directory.
    pub cache: String,
    /// Simulation worker threads (0 = `AIM_JOBS`, then host parallelism).
    pub workers: usize,
    /// Replay workload scale.
    pub scale: Scale,
    /// Replay rounds (round 0 cold, the rest warm; minimum 2).
    pub rounds: usize,
    /// Concurrent replay client connections.
    pub clients: usize,
    /// Append a verify round recomputing every replay cell.
    pub verify: bool,
}

impl Default for ServeArgs {
    fn default() -> ServeArgs {
        ServeArgs {
            socket: None,
            stdio: false,
            replay: false,
            cache: ".aim-serve-cache".to_string(),
            workers: 0,
            scale: Scale::Tiny,
            rounds: 2,
            clients: 4,
            verify: false,
        }
    }
}

/// Options for the `submit` command.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitArgs {
    /// The serving socket to connect to.
    pub socket: String,
    /// Kernel name (empty when `shutdown` is set).
    pub kernel: String,
    /// Machine class.
    pub machine: MachineClass,
    /// Memory-ordering backend.
    pub backend: BackendChoice,
    /// Enforcement-mode override (`None` keeps the builder default).
    pub mode: Option<EnforceMode>,
    /// LSQ capacity override (`None` keeps the builder default).
    pub lsq: Option<LsqChoice>,
    /// PCAX table-geometry override (`--pcax SxW`).
    pub pcax_table: Option<(usize, usize)>,
    /// PCAX no-alias acting-threshold override (`--pcax-act N`).
    pub pcax_act: Option<u8>,
    /// Filtered-LSQ filter-geometry override (`--filt SxW`).
    pub filt_table: Option<(usize, usize)>,
    /// Filtered-LSQ counter-saturation override (`--filt-count N`).
    pub filt_count: Option<u32>,
    /// Far-memory tier (`--far LATENCYxMSHRSxBATCH`).
    pub far: Option<FarSpec>,
    /// Sampled simulation (`--sample WARMxDETAILxPERIODS`).
    pub sample: Option<SampleSpec>,
    /// Workload scale.
    pub scale: Scale,
    /// Ask the server to recompute and byte-compare the cached entry.
    pub verify: bool,
    /// Bypass the cache lookup (always simulate).
    pub no_cache: bool,
    /// Send a shutdown request instead of a job.
    pub shutdown: bool,
}

impl SubmitArgs {
    /// The wire-level machine configuration this submission names.
    pub fn config_spec(&self) -> aim_serve::ConfigSpec {
        aim_serve::ConfigSpec {
            mode: self.mode,
            lsq: self.lsq,
            pcax: self.pcax_table,
            pcax_act: self.pcax_act,
            filt: self.filt_table,
            filt_count: self.filt_count,
            far: self.far,
            sample: self.sample,
            ..aim_serve::ConfigSpec::new(self.machine, self.backend)
        }
    }
}

impl Default for SubmitArgs {
    fn default() -> SubmitArgs {
        SubmitArgs {
            socket: String::new(),
            kernel: String::new(),
            machine: MachineClass::Baseline,
            backend: BackendChoice::SfcMdt,
            mode: None,
            lsq: None,
            pcax_table: None,
            pcax_act: None,
            filt_table: None,
            filt_count: None,
            far: None,
            sample: None,
            scale: Scale::Tiny,
            verify: false,
            no_cache: false,
            shutdown: false,
        }
    }
}

/// Options for the `litmus` command.
#[derive(Debug, Clone, PartialEq)]
pub struct LitmusArgs {
    /// Run only the named test (`SB`, `SB+fwd`, `MP`, `MP+fwd`, `LB`,
    /// `IRIW`); `None` runs the whole suite.
    pub test: Option<String>,
    /// Run only this backend; `None` runs all six.
    pub backend: Option<BackendChoice>,
    /// Seeded random core schedules per (test, backend); round-robin always
    /// runs in addition.
    pub schedules: u64,
    /// Run the release-build integrity checks during every schedule.
    pub paranoid: bool,
}

impl Default for LitmusArgs {
    fn default() -> LitmusArgs {
        LitmusArgs {
            test: None,
            backend: None,
            schedules: 200,
            paranoid: false,
        }
    }
}

/// Options shared by `run` and `compare`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Kernel name (see `aim-sim list`).
    pub kernel: String,
    /// `baseline` (4-wide, 128-entry window), `aggressive` (8-wide, 1024),
    /// or `huge` (8-wide, 4096-entry kilo-window).
    pub machine: MachineClass,
    /// Memory-ordering backend.
    pub backend: BackendChoice,
    /// Predictor mode for the SFC/MDT backend.
    pub mode: EnforceMode,
    /// LSQ capacity, e.g. `48x32`.
    pub lsq_size: (usize, usize),
    /// Dynamic instruction budget.
    pub scale: Scale,
    /// Use the untagged MDT variant.
    pub untagged: bool,
    /// Use the flush-endpoint SFC variant.
    pub endpoints: bool,
    /// Enable the §4 MDT search filter.
    pub filter: bool,
    /// PCAX prediction-table geometry override, `sets x ways`.
    pub pcax_table: Option<(usize, usize)>,
    /// PCAX no-alias acting-threshold override (1..=3).
    pub pcax_act: Option<u8>,
    /// Filtered-LSQ filter geometry override, `sets x ways`.
    pub filt_table: Option<(usize, usize)>,
    /// Filtered-LSQ counter saturation override.
    pub filt_count: Option<u32>,
    /// Far-memory tier behind the L2 (`--far LATENCYxMSHRSxBATCH`).
    pub far: Option<FarSpec>,
    /// Sampled simulation policy (`--sample WARMxDETAILxPERIODS`).
    pub sample: Option<SampleSpec>,
    /// Print the last N pipeline events after the run.
    pub trace: usize,
    /// Render the last N retired instructions as pipeline timelines.
    pub pipeview: usize,
    /// Worker threads for `compare` sweeps (0 = `AIM_JOBS`, then host
    /// parallelism).
    pub jobs: usize,
    /// Run the wakeup-list and store-census integrity checks even in
    /// release builds.
    pub paranoid: bool,
}

impl Default for RunArgs {
    fn default() -> RunArgs {
        RunArgs {
            kernel: String::new(),
            machine: MachineClass::Baseline,
            backend: BackendChoice::SfcMdt,
            mode: EnforceMode::All,
            lsq_size: (48, 32),
            scale: Scale::Small,
            untagged: false,
            endpoints: false,
            filter: false,
            pcax_table: None,
            pcax_act: None,
            filt_table: None,
            filt_count: None,
            far: None,
            sample: None,
            trace: 0,
            pipeview: 0,
            jobs: 0,
            paranoid: false,
        }
    }
}

/// Errors from argument parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// The usage string printed by `aim-sim help`.
pub const USAGE: &str = "\
aim-sim — the SFC/MDT memory-disambiguation simulator (MICRO-38 reproduction)

USAGE:
  aim-sim list                       list available kernels
  aim-sim run <kernel> [options]     simulate one kernel
  aim-sim compare <kernel> [options] simulate under all six backends
  aim-sim asm <file.s> [options]     assemble and simulate a source file
  aim-sim litmus [litmus options]    run the multi-core memory-model litmus suite
  aim-sim serve --replay|--socket PATH|--stdio [serve options]
                                     run the caching job server (or its replay gate)
  aim-sim submit <kernel>|--shutdown --socket PATH [submit options]
                                     send one job to a serving socket

OPTIONS:
  --machine baseline|aggressive|huge
                                  pipeline configuration      [baseline]
  --backend sfc-mdt|lsq|filtered|pcax|oracle|nospec
                                  memory-ordering machinery   [sfc-mdt]
  --mode enf|not-enf|total        predictor enforcement       [enf]
  --lsq LxS                       LSQ capacity, e.g. 120x80   [48x32]
  --scale tiny|small|full         instruction budget          [small]
  --untagged                      untagged MDT variant (§2.2)
  --endpoints                     flush-endpoint SFC variant (§3.2)
  --filter                        MDT search filter (§4 future work)
  --pcax SxW                      PCAX table geometry, e.g. 256x1   [1024x2]
  --pcax-act N                    PCAX no-alias acting threshold 1..=3  [2]
  --filt SxW                      filtered-LSQ filter geometry      [256x2]
  --filt-count N                  filter counter saturation point      [15]
  --far LATxMSHRSxBATCH           far-memory tier behind the L2, e.g. 400x64x8
  --sample WARMxDETAILxPERIODS    sampled simulation: warm up functionally, then
                                  simulate in detail, repeated, e.g. 20000x2000x10
  --trace N                       print the last N pipeline events
  --pipeview N                    draw stage timelines for the last N retirements
  --jobs N                        worker threads for compare sweeps [AIM_JOBS/auto]
  --paranoid                      run the release-build integrity checks every cycle

LITMUS OPTIONS:
  --test NAME                     one of SB, SB+fwd, MP, MP+fwd, LB, IRIW  [all]
  --backend TOKEN                 one backend                              [all]
  --schedules N                   seeded random core schedules per cell    [200]
  --paranoid                      as above

SERVE OPTIONS:
  --cache DIR                     result-cache directory     [.aim-serve-cache]
  --workers N                     simulation worker threads  [AIM_JOBS/auto]
  --scale tiny|small|full         replay workload scale      [tiny]
  --rounds N                      replay rounds, cold + warm [2]
  --clients N                     replay client connections  [4]
  --verify                        append a replay verify round

SUBMIT OPTIONS:
  --machine, --backend, --mode, --scale   as for `run` (scale defaults to tiny)
  --pcax, --pcax-act, --filt, --filt-count, --far, --sample   as for `run`
  --lsq 48x32|120x80|256x256      LSQ capacity override      [builder default]
  --verify                        recompute and byte-compare the cached entry
  --no-cache                      bypass the cache lookup (always simulate)
";

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns [`ParseError`] for unknown commands, kernels left unspecified,
/// or malformed option values.
pub fn parse_args(args: &[String]) -> Result<Command, ParseError> {
    let mut it = args.iter();
    let cmd = match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Command::Help),
        Some("list") => return Ok(Command::List),
        Some("litmus") => return parse_litmus(it),
        Some("serve") => return parse_serve(it),
        Some("submit") => return parse_submit(it),
        Some(c @ ("run" | "compare" | "asm")) => c.to_string(),
        Some(other) => return Err(ParseError(format!("unknown command `{other}`"))),
    };

    let mut run = RunArgs {
        kernel: it
            .next()
            .ok_or_else(|| ParseError("missing kernel name".to_string()))?
            .clone(),
        ..RunArgs::default()
    };

    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| ParseError(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--machine" => run.machine = parse_machine_class(&value("--machine")?)?,
            "--backend" => {
                // The shared BackendChoice FromStr is the single source of
                // truth for the token vocabulary.
                run.backend = value("--backend")?
                    .parse()
                    .map_err(|e: aim_pipeline::UnknownBackend| ParseError(e.to_string()))?;
            }
            "--mode" => {
                run.mode = match value("--mode")?.as_str() {
                    "enf" => EnforceMode::All,
                    "not-enf" => EnforceMode::TrueOnly,
                    "total" => EnforceMode::TotalOrder,
                    other => return Err(ParseError(format!("unknown mode `{other}`"))),
                }
            }
            "--lsq" => {
                let v = value("--lsq")?;
                let (l, s) = v
                    .split_once('x')
                    .ok_or_else(|| ParseError(format!("--lsq wants LxS, got `{v}`")))?;
                run.lsq_size = (
                    l.parse()
                        .map_err(|_| ParseError(format!("bad load count `{l}`")))?,
                    s.parse()
                        .map_err(|_| ParseError(format!("bad store count `{s}`")))?,
                );
            }
            "--scale" => {
                run.scale = match value("--scale")?.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    "huge" => Scale::Huge,
                    other => return Err(ParseError(format!("unknown scale `{other}`"))),
                }
            }
            "--untagged" => run.untagged = true,
            "--endpoints" => run.endpoints = true,
            "--filter" => run.filter = true,
            "--pcax" => run.pcax_table = Some(parse_geometry("--pcax", &value("--pcax")?)?),
            "--pcax-act" => {
                let v = value("--pcax-act")?;
                run.pcax_act = Some(
                    v.parse()
                        .map_err(|_| ParseError(format!("bad pcax threshold `{v}`")))?,
                );
            }
            "--filt" => run.filt_table = Some(parse_geometry("--filt", &value("--filt")?)?),
            "--filt-count" => {
                let v = value("--filt-count")?;
                run.filt_count = Some(
                    v.parse()
                        .map_err(|_| ParseError(format!("bad filter count `{v}`")))?,
                );
            }
            "--far" => run.far = Some(parse_far_spec(&value("--far")?)?),
            "--sample" => run.sample = Some(parse_sample_spec(&value("--sample")?)?),
            "--pipeview" => {
                let v = value("--pipeview")?;
                run.pipeview = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad pipeview length `{v}`")))?;
            }
            "--trace" => {
                let v = value("--trace")?;
                run.trace = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad trace length `{v}`")))?;
            }
            "--jobs" => {
                let v = value("--jobs")?;
                run.jobs = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad job count `{v}`")))?;
            }
            "--paranoid" => run.paranoid = true,
            other => return Err(ParseError(format!("unknown option `{other}`"))),
        }
    }

    Ok(match cmd.as_str() {
        "run" => Command::Run(run),
        "asm" => Command::Asm(run),
        _ => Command::Compare(run),
    })
}

/// Parses the options of the `litmus` command.
fn parse_litmus(mut it: std::slice::Iter<'_, String>) -> Result<Command, ParseError> {
    let mut args = LitmusArgs::default();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| ParseError(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--test" => args.test = Some(value("--test")?),
            "--backend" => {
                args.backend = Some(
                    value("--backend")?
                        .parse()
                        .map_err(|e: aim_pipeline::UnknownBackend| ParseError(e.to_string()))?,
                );
            }
            "--schedules" => {
                let v = value("--schedules")?;
                args.schedules = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad schedule count `{v}`")))?;
            }
            "--paranoid" => args.paranoid = true,
            other => return Err(ParseError(format!("unknown option `{other}`"))),
        }
    }
    Ok(Command::Litmus(args))
}

/// Parses the options of the `serve` command.
fn parse_serve(mut it: std::slice::Iter<'_, String>) -> Result<Command, ParseError> {
    let mut args = ServeArgs::default();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| ParseError(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--socket" => args.socket = Some(value("--socket")?),
            "--stdio" => args.stdio = true,
            "--replay" => args.replay = true,
            "--cache" => args.cache = value("--cache")?,
            "--workers" => {
                let v = value("--workers")?;
                args.workers = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad worker count `{v}`")))?;
            }
            "--scale" => {
                args.scale = match value("--scale")?.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    "huge" => Scale::Huge,
                    other => return Err(ParseError(format!("unknown scale `{other}`"))),
                }
            }
            "--rounds" => {
                let v = value("--rounds")?;
                args.rounds = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad round count `{v}`")))?;
            }
            "--clients" => {
                let v = value("--clients")?;
                args.clients = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad client count `{v}`")))?;
            }
            "--verify" => args.verify = true,
            other => return Err(ParseError(format!("unknown option `{other}`"))),
        }
    }
    let modes = usize::from(args.socket.is_some()) + usize::from(args.stdio) + usize::from(args.replay);
    if modes != 1 {
        return Err(ParseError(
            "serve needs exactly one of --socket PATH, --stdio, or --replay".to_string(),
        ));
    }
    if args.replay && args.rounds < 2 {
        return Err(ParseError(format!(
            "--replay needs at least 2 rounds (one cold, one warm), got {}",
            args.rounds
        )));
    }
    Ok(Command::Serve(args))
}

/// Parses the options of the `submit` command.
fn parse_submit(mut it: std::slice::Iter<'_, String>) -> Result<Command, ParseError> {
    let mut args = SubmitArgs::default();
    // The kernel is the first word unless the request is a pure-flag form
    // (`submit --shutdown --socket …`).
    if let Some(first) = it.clone().next() {
        if !first.starts_with("--") {
            args.kernel = first.clone();
            it.next();
        }
    }
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| ParseError(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--socket" => args.socket = value("--socket")?,
            "--machine" => args.machine = parse_machine_class(&value("--machine")?)?,
            "--backend" => {
                args.backend = value("--backend")?
                    .parse()
                    .map_err(|e: aim_pipeline::UnknownBackend| ParseError(e.to_string()))?;
            }
            "--mode" => {
                args.mode = Some(match value("--mode")?.as_str() {
                    "enf" => EnforceMode::All,
                    "not-enf" => EnforceMode::TrueOnly,
                    "total" => EnforceMode::TotalOrder,
                    other => return Err(ParseError(format!("unknown mode `{other}`"))),
                })
            }
            "--lsq" => {
                args.lsq = Some(LsqChoice::parse(&value("--lsq")?).map_err(ParseError)?);
            }
            "--pcax" => args.pcax_table = Some(parse_geometry("--pcax", &value("--pcax")?)?),
            "--pcax-act" => {
                let v = value("--pcax-act")?;
                args.pcax_act = Some(
                    v.parse()
                        .map_err(|_| ParseError(format!("bad pcax threshold `{v}`")))?,
                );
            }
            "--filt" => args.filt_table = Some(parse_geometry("--filt", &value("--filt")?)?),
            "--filt-count" => {
                let v = value("--filt-count")?;
                args.filt_count = Some(
                    v.parse()
                        .map_err(|_| ParseError(format!("bad filter count `{v}`")))?,
                );
            }
            "--far" => args.far = Some(parse_far_spec(&value("--far")?)?),
            "--sample" => args.sample = Some(parse_sample_spec(&value("--sample")?)?),
            "--scale" => {
                args.scale = match value("--scale")?.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    "huge" => Scale::Huge,
                    other => return Err(ParseError(format!("unknown scale `{other}`"))),
                }
            }
            "--verify" => args.verify = true,
            "--no-cache" => args.no_cache = true,
            "--shutdown" => args.shutdown = true,
            other => return Err(ParseError(format!("unknown option `{other}`"))),
        }
    }
    if args.socket.is_empty() {
        return Err(ParseError("submit needs --socket PATH".to_string()));
    }
    if args.kernel.is_empty() && !args.shutdown {
        return Err(ParseError("submit needs a kernel name (or --shutdown)".to_string()));
    }
    Ok(Command::Submit(args))
}

/// Parses a `--machine` token.
fn parse_machine_class(v: &str) -> Result<MachineClass, ParseError> {
    match v {
        "baseline" => Ok(MachineClass::Baseline),
        "aggressive" => Ok(MachineClass::Aggressive),
        "huge" => Ok(MachineClass::Huge),
        other => Err(ParseError(format!(
            "unknown machine `{other}` (baseline|aggressive|huge)"
        ))),
    }
}

/// Parses a `--far LATENCYxMSHRSxBATCH` far-memory spec, e.g. `400x64x8`.
fn parse_far_spec(v: &str) -> Result<FarSpec, ParseError> {
    let bad = || ParseError(format!("--far wants LATENCYxMSHRSxBATCH, got `{v}`"));
    let parts: Vec<&str> = v.split('x').collect();
    let [lat, mshrs, batch] = parts.as_slice() else {
        return Err(bad());
    };
    let latency: u64 = lat.parse().map_err(|_| bad())?;
    let mshrs: usize = mshrs.parse().map_err(|_| bad())?;
    let batch: u64 = batch.parse().map_err(|_| bad())?;
    if latency == 0 || mshrs == 0 || batch == 0 {
        return Err(ParseError(format!(
            "--far parameters must be nonzero, got `{v}`"
        )));
    }
    Ok(FarSpec::new(latency, mshrs, batch))
}

/// Parses a `--sample WARMxDETAILxPERIODS` sampling policy, e.g.
/// `20000x2000x10`: warm up functionally for 20 000 instructions, then
/// simulate 2 000 in full detail, ten times over.
fn parse_sample_spec(v: &str) -> Result<SampleSpec, ParseError> {
    let bad = || ParseError(format!("--sample wants WARMxDETAILxPERIODS, got `{v}`"));
    let parts: Vec<&str> = v.split('x').collect();
    let [warm, detail, periods] = parts.as_slice() else {
        return Err(bad());
    };
    let warm: u64 = warm.parse().map_err(|_| bad())?;
    let detail: u64 = detail.parse().map_err(|_| bad())?;
    let periods: u32 = periods.parse().map_err(|_| bad())?;
    SampleSpec::new(warm, detail, periods).ok_or_else(|| {
        ParseError(format!("--sample parameters must be nonzero, got `{v}`"))
    })
}

/// Parses a `SETSxWAYS` table geometry, e.g. `256x1`.
fn parse_geometry(flag: &str, v: &str) -> Result<(usize, usize), ParseError> {
    let (s, w) = v
        .split_once('x')
        .ok_or_else(|| ParseError(format!("{flag} wants SETSxWAYS, got `{v}`")))?;
    Ok((
        s.parse()
            .map_err(|_| ParseError(format!("bad set count `{s}`")))?,
        w.parse()
            .map_err(|_| ParseError(format!("bad way count `{w}`")))?,
    ))
}

/// Builds the [`SimConfig`] a [`RunArgs`] describes.
pub fn build_config(args: &RunArgs) -> SimConfig {
    let mut builder = SimConfig::machine(args.machine)
        .backend(args.backend)
        .lsq(LsqConfig {
            load_entries: args.lsq_size.0,
            store_entries: args.lsq_size.1,
        });
    if let Some(far) = args.far {
        builder = builder.mem(MemSpec::figure4().with_far(far));
    }
    if let Some(sample) = args.sample {
        builder = builder.sample(sample);
    }
    if args.backend == BackendChoice::SfcMdt || args.backend == BackendChoice::Pcax {
        // --mode only steers the SFC/MDT-family predictor (pcax wraps the
        // SFC/MDT); every other backend keeps its TrueOnly default.
        builder = builder.mode(args.mode);
    }
    if args.pcax_table.is_some() || args.pcax_act.is_some() {
        let baseline = PcaxConfig::baseline();
        let table = args.pcax_table.map_or(baseline.table, |(sets, ways)| TableGeometry {
            sets,
            ways,
            hash: SetHash::LowBits,
        });
        builder = builder.pcax(PcaxConfig {
            table,
            no_alias_act: args.pcax_act.unwrap_or(baseline.no_alias_act),
            ..baseline
        });
    }
    if args.filt_table.is_some() || args.filt_count.is_some() {
        let baseline = FilterConfig::baseline();
        let (sets, ways) = args.filt_table.unwrap_or((baseline.sets, baseline.ways));
        builder = builder.filter(FilterConfig {
            sets,
            ways,
            max_count: args.filt_count.unwrap_or(baseline.max_count),
        });
    }
    let mut cfg = builder.build();
    if let BackendConfig::SfcMdt { sfc, mdt } = &mut cfg.backend {
        if args.untagged {
            mdt.tagging = MdtTagging::Untagged;
        }
        if args.endpoints {
            sfc.corruption = CorruptionPolicy::FlushEndpoints { capacity: 16 };
        }
    }
    cfg.mdt_filter = args.filter;
    cfg.event_trace = args.trace > 0;
    cfg.pipeview = args.pipeview > 0;
    cfg.paranoid = args.paranoid;
    cfg
}

/// Formats a full statistics report for one run.
pub fn report(name: &str, backend: &str, stats: &SimStats) -> String {
    let mut out = String::new();
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    line(format!("== {name} under {backend} =="));
    line(format!(
        "  retired {:>9} instructions in {:>9} cycles   IPC {:.3}",
        stats.retired,
        stats.cycles,
        stats.ipc()
    ));
    if let Some(s) = &stats.sampled {
        line(format!(
            "  sampled: {} detailed windows  {} detail / {} warm retired  ({:.2}% detail); \
             cycles and rates are extrapolated",
            s.periods_run,
            s.detail_retired,
            s.warm_retired,
            s.detail_fraction()
        ));
    }
    line(format!(
        "  loads {:>7}  stores {:>7}  forwarded {:>6} ({:.2}% of loads)",
        stats.retired_loads,
        stats.retired_stores,
        stats.loads_forwarded,
        aim_types::percent(stats.loads_forwarded, stats.retired_loads)
    ));
    line(format!(
        "  branches {:>6}  mispredicted {:>5} ({:.2}%)",
        stats.branches_retired,
        stats.branch_mispredicts,
        aim_types::percent(stats.branch_mispredicts, stats.branches_retired)
    ));
    line(format!(
        "  flushes: branch {:>5}  true {:>4}  anti {:>4}  output {:>4}",
        stats.flushes.branch,
        stats.flushes.true_dep,
        stats.flushes.anti_dep,
        stats.flushes.output_dep
    ));
    if let Some(sfc) = stats.backend.sfc() {
        line(format!(
            "  SFC: conflicts {:>5}  corrupt replays {:>5}  partial/full flushes {}/{}",
            stats.replays.store_sfc_conflicts,
            stats.replays.load_corrupt,
            sfc.partial_flushes,
            sfc.full_flushes
        ));
    }
    if stats.backend.mdt().is_some() {
        line(format!(
            "  MDT: load conflicts {:>5}  store conflicts {:>5}  head bypasses {:>4}",
            stats.replays.load_mdt_conflicts,
            stats.replays.store_mdt_conflicts,
            stats.head_bypasses
        ));
        if stats.mdt_filtered_loads > 0 {
            line(format!(
                "  MDT search filter: {:>6} load checks skipped",
                stats.mdt_filtered_loads
            ));
        }
    }
    if let Some(lsq) = stats.backend.lsq() {
        line(format!(
            "  LSQ: SQ searches {:>7}  LQ searches {:>7}  peak {}x{}  dispatch stalls {}",
            lsq.sq_searches,
            lsq.lq_searches,
            lsq.peak_lq,
            lsq.peak_sq,
            stats.dispatch_stalls.lq_full + stats.dispatch_stalls.sq_full
        ));
    }
    if let Some(f) = stats.backend.filtered() {
        line(format!(
            "  LSQ: SQ searches {:>7}  LQ searches {:>7}  peak {}x{}  dispatch stalls {}",
            f.lsq.sq_searches,
            f.lsq.lq_searches,
            f.lsq.peak_lq,
            f.lsq.peak_sq,
            stats.dispatch_stalls.lq_full + stats.dispatch_stalls.sq_full
        ));
        line(format!(
            "  filter: {:>7} loads skipped the CAM ({:.2}%)  false hits {:>5}  saturations {:>4}",
            f.filter.filtered_loads,
            aim_types::percent(
                f.filter.filtered_loads,
                f.filter.filtered_loads + f.filter.searched_loads
            ),
            f.filter.false_positive_hits,
            f.filter.saturation_fallbacks
        ));
    }
    if let Some(p) = stats.backend.pcax() {
        let pr = &p.pred;
        line(format!(
            "  pcax: no-alias {:>7}  forward {:>6}  unknown {:>7}  coverage {:.2}%  accuracy {:.2}%",
            pr.loads_no_alias,
            pr.loads_forward,
            pr.loads_unknown,
            100.0 * pr.coverage(),
            100.0 * pr.accuracy()
        ));
        line(format!(
            "  pcax: SFC probes skipped {:>7}  vetoes {:>5}  wait replays {:>6}  trainings {:>5}",
            pr.sfc_probes_skipped, pr.no_alias_vetoed, pr.forward_wait_replays, pr.violation_trainings
        ));
    }
    if let Some(o) = stats.backend.oracle() {
        line(format!(
            "  oracle: full forwards {:>7}  partial {:>5}  order waits {:>7}",
            o.full_forwards, o.partial_forwards, o.order_waits
        ));
    }
    if let Some(n) = stats.backend.nospec() {
        line(format!(
            "  no-spec: order waits {:>7}  peak in-flight stores {}",
            n.order_waits, n.peak_inflight_stores
        ));
    }
    let (l1i, l1d, l2) = stats.caches;
    line(format!(
        "  caches: L1I {:.1}%  L1D {:.1}%  L2 {:.1}% hit",
        l1i.hit_rate(),
        l1d.hit_rate(),
        l2.hit_rate()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Command, ParseError> {
        let v: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        parse_args(&v)
    }

    #[test]
    fn help_and_list() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["list"]).unwrap(), Command::List);
    }

    #[test]
    fn run_defaults() {
        let Command::Run(args) = parse(&["run", "gzip"]).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(args.kernel, "gzip");
        assert_eq!(args.machine, MachineClass::Baseline);
        assert_eq!(args.backend, BackendChoice::SfcMdt);
        assert_eq!(args.mode, EnforceMode::All);
    }

    #[test]
    fn full_option_set() {
        let Command::Compare(args) = parse(&[
            "compare",
            "swim",
            "--machine",
            "aggressive",
            "--backend",
            "lsq",
            "--mode",
            "total",
            "--lsq",
            "120x80",
            "--scale",
            "full",
            "--untagged",
            "--endpoints",
        ])
        .unwrap() else {
            panic!("expected compare");
        };
        assert_eq!(args.machine, MachineClass::Aggressive);
        assert_eq!(args.backend, BackendChoice::Lsq);
        assert_eq!(args.mode, EnforceMode::TotalOrder);
        assert_eq!(args.lsq_size, (120, 80));
        assert_eq!(args.scale, Scale::Full);
        assert!(args.untagged && args.endpoints);
    }

    #[test]
    fn huge_machine_and_far_tier_parse() {
        let Command::Run(args) =
            parse(&["run", "swim", "--machine", "huge", "--far", "400x64x8"]).unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(args.machine, MachineClass::Huge);
        assert_eq!(args.far, Some(FarSpec::new(400, 64, 8)));
        let cfg = build_config(&args);
        assert_eq!(cfg.rob_entries, 4096);
        assert_eq!(cfg.hierarchy.far, Some(FarSpec::new(400, 64, 8)));
        assert!(parse(&["run", "x", "--machine", "colossal"])
            .unwrap_err()
            .0
            .contains("baseline|aggressive|huge"));
        assert!(parse(&["run", "x", "--far", "400x64"])
            .unwrap_err()
            .0
            .contains("LATENCYxMSHRSxBATCH"));
        assert!(parse(&["run", "x", "--far", "400x0x8"])
            .unwrap_err()
            .0
            .contains("nonzero"));
    }

    #[test]
    fn sample_policy_parses_and_builds() {
        let Command::Run(args) =
            parse(&["run", "swim", "--scale", "huge", "--sample", "20000x2000x10"]).unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(args.scale, Scale::Huge);
        assert_eq!(args.sample, SampleSpec::new(20_000, 2_000, 10));
        let cfg = build_config(&args);
        assert_eq!(cfg.sample, SampleSpec::new(20_000, 2_000, 10));
        // Default stays off: byte-identical full-detail configuration.
        assert_eq!(build_config(&RunArgs::default()).sample, None);
        assert!(parse(&["run", "x", "--sample", "20000x2000"])
            .unwrap_err()
            .0
            .contains("WARMxDETAILxPERIODS"));
        assert!(parse(&["run", "x", "--sample", "20000x0x10"])
            .unwrap_err()
            .0
            .contains("nonzero"));

        let Command::Submit(args) = parse(&[
            "submit", "swim", "--socket", "/tmp/s.sock", "--sample", "4000x1000x8",
        ])
        .unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(args.sample, SampleSpec::new(4_000, 1_000, 8));
        assert_eq!(args.config_spec().sample, SampleSpec::new(4_000, 1_000, 8));
    }

    #[test]
    fn asm_command_parses() {
        let Command::Asm(args) = parse(&["asm", "prog.s", "--trace", "16"]).unwrap() else {
            panic!("expected asm");
        };
        assert_eq!(args.kernel, "prog.s");
        assert_eq!(args.trace, 16);
        assert!(parse(&["asm"]).unwrap_err().0.contains("missing kernel"));
        let Command::Run(args) = parse(&["run", "gzip", "--pipeview", "24"]).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(args.pipeview, 24);
        assert!(build_config(&args).pipeview);
        assert!(parse(&["run", "x", "--pipeview", "many"])
            .unwrap_err()
            .0
            .contains("bad pipeview length"));
        assert!(parse(&["run", "x", "--trace", "lots"])
            .unwrap_err()
            .0
            .contains("bad trace length"));
    }

    #[test]
    fn jobs_flag_parses() {
        let Command::Compare(args) = parse(&["compare", "mcf", "--jobs", "4"]).unwrap() else {
            panic!("expected compare");
        };
        assert_eq!(args.jobs, 4);
        assert_eq!(RunArgs::default().jobs, 0);
        assert!(parse(&["compare", "mcf", "--jobs", "many"])
            .unwrap_err()
            .0
            .contains("bad job count"));
    }

    #[test]
    fn litmus_command_parses() {
        assert_eq!(
            parse(&["litmus"]).unwrap(),
            Command::Litmus(LitmusArgs::default())
        );
        let Command::Litmus(args) = parse(&[
            "litmus",
            "--test",
            "SB+fwd",
            "--backend",
            "lsq",
            "--schedules",
            "32",
            "--paranoid",
        ])
        .unwrap() else {
            panic!("expected litmus");
        };
        assert_eq!(args.test.as_deref(), Some("SB+fwd"));
        assert_eq!(args.backend, Some(BackendChoice::Lsq));
        assert_eq!(args.schedules, 32);
        assert!(args.paranoid);
        assert!(parse(&["litmus", "--schedules", "lots"])
            .unwrap_err()
            .0
            .contains("bad schedule count"));
        assert!(parse(&["litmus", "--backend", "psychic"])
            .unwrap_err()
            .0
            .contains("unknown backend"));
        assert!(parse(&["litmus", "--bogus"])
            .unwrap_err()
            .0
            .contains("unknown option"));
    }

    #[test]
    fn serve_command_parses() {
        let Command::Serve(args) = parse(&[
            "serve", "--replay", "--scale", "tiny", "--rounds", "3", "--clients", "2",
            "--cache", "/tmp/c", "--workers", "8", "--verify",
        ])
        .unwrap() else {
            panic!("expected serve");
        };
        assert!(args.replay && !args.stdio && args.socket.is_none());
        assert_eq!((args.rounds, args.clients, args.workers), (3, 2, 8));
        assert_eq!(args.cache, "/tmp/c");
        assert_eq!(args.scale, Scale::Tiny);
        assert!(args.verify);

        let Command::Serve(args) = parse(&["serve", "--socket", "/tmp/s.sock"]).unwrap() else {
            panic!("expected serve");
        };
        assert_eq!(args.socket.as_deref(), Some("/tmp/s.sock"));

        // Exactly one mode; replay needs a warm round.
        assert!(parse(&["serve"]).unwrap_err().0.contains("exactly one"));
        assert!(parse(&["serve", "--stdio", "--replay"])
            .unwrap_err()
            .0
            .contains("exactly one"));
        assert!(parse(&["serve", "--replay", "--rounds", "1"])
            .unwrap_err()
            .0
            .contains("at least 2 rounds"));
        assert!(parse(&["serve", "--replay", "--workers", "many"])
            .unwrap_err()
            .0
            .contains("bad worker count"));
    }

    #[test]
    fn submit_command_parses() {
        let Command::Submit(args) = parse(&[
            "submit", "gzip", "--socket", "/tmp/s.sock", "--machine", "aggressive",
            "--backend", "lsq", "--lsq", "120x80", "--scale", "tiny", "--verify",
        ])
        .unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(args.kernel, "gzip");
        assert_eq!(args.machine, MachineClass::Aggressive);
        assert!(args.verify && !args.no_cache);
        assert_eq!(args.backend, BackendChoice::Lsq);
        assert_eq!(args.lsq, Some(LsqChoice::Aggressive120x80));
        let spec = args.config_spec();
        assert_eq!(spec.machine, aim_pipeline::MachineClass::Aggressive);
        assert_eq!(spec.lsq, Some(LsqChoice::Aggressive120x80));

        let Command::Submit(args) = parse(&[
            "submit", "swim", "--socket", "/tmp/s.sock", "--machine", "huge",
            "--backend", "pcax", "--pcax", "256x1", "--pcax-act", "3",
            "--filt", "512x4", "--filt-count", "31", "--far", "400x64x8",
        ])
        .unwrap() else {
            panic!("expected submit");
        };
        let spec = args.config_spec();
        assert_eq!(spec.machine, aim_pipeline::MachineClass::Huge);
        assert_eq!(spec.pcax, Some((256, 1)));
        assert_eq!(spec.pcax_act, Some(3));
        assert_eq!(spec.filt, Some((512, 4)));
        assert_eq!(spec.filt_count, Some(31));
        assert_eq!(spec.far, Some(FarSpec::new(400, 64, 8)));

        let Command::Submit(args) =
            parse(&["submit", "--shutdown", "--socket", "/tmp/s.sock"]).unwrap()
        else {
            panic!("expected submit");
        };
        assert!(args.shutdown && args.kernel.is_empty());

        assert!(parse(&["submit", "gzip"]).unwrap_err().0.contains("--socket"));
        assert!(parse(&["submit", "--socket", "/tmp/s.sock"])
            .unwrap_err()
            .0
            .contains("kernel"));
        assert!(parse(&["submit", "gzip", "--socket", "/tmp/s", "--lsq", "9x9"])
            .unwrap_err()
            .0
            .contains("unknown lsq capacity"));
    }

    #[test]
    fn paranoid_flag_reaches_the_config() {
        let Command::Run(args) = parse(&["run", "gzip", "--paranoid"]).unwrap() else {
            panic!("expected run");
        };
        assert!(args.paranoid);
        assert!(build_config(&args).paranoid);
        assert!(!build_config(&RunArgs::default()).paranoid);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&["frobnicate"])
            .unwrap_err()
            .0
            .contains("unknown command"));
        assert!(parse(&["run"]).unwrap_err().0.contains("missing kernel"));
        assert!(parse(&["run", "x", "--lsq", "banana"])
            .unwrap_err()
            .0
            .contains("LxS"));
        assert!(parse(&["run", "x", "--mode"])
            .unwrap_err()
            .0
            .contains("needs a value"));
        assert!(parse(&["run", "x", "--bogus"])
            .unwrap_err()
            .0
            .contains("unknown option"));
    }

    #[test]
    fn build_config_respects_variants() {
        let mut args = RunArgs {
            kernel: "gzip".into(),
            untagged: true,
            endpoints: true,
            filter: true,
            ..RunArgs::default()
        };
        let cfg = build_config(&args);
        match cfg.backend {
            BackendConfig::SfcMdt { sfc, mdt } => {
                assert_eq!(mdt.tagging, MdtTagging::Untagged);
                assert!(matches!(
                    sfc.corruption,
                    CorruptionPolicy::FlushEndpoints { capacity: 16 }
                ));
                assert!(cfg.mdt_filter);
            }
            _ => panic!("expected SFC/MDT backend"),
        }
        args.backend = BackendChoice::Lsq;
        args.lsq_size = (7, 9);
        match build_config(&args).backend {
            BackendConfig::Lsq(l) => {
                assert_eq!((l.load_entries, l.store_entries), (7, 9));
            }
            _ => panic!("expected LSQ backend"),
        }
    }

    #[test]
    fn filtered_backend_parses_and_builds() {
        let Command::Run(args) =
            parse(&["run", "gzip", "--backend", "filtered", "--lsq", "24x16"]).unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(args.backend, BackendChoice::Filtered);
        match build_config(&args).backend {
            BackendConfig::FilteredLsq { lsq, .. } => {
                assert_eq!((lsq.load_entries, lsq.store_entries), (24, 16));
            }
            other => panic!("expected filtered LSQ backend, got {other:?}"),
        }
        let mut aggr = args.clone();
        aggr.machine = MachineClass::Aggressive;
        assert!(matches!(
            build_config(&aggr).backend,
            BackendConfig::FilteredLsq { lsq, .. }
                if (lsq.load_entries, lsq.store_entries) == (24, 16)
        ));
        assert_eq!(BackendChoice::ALL.len(), 6);
    }

    #[test]
    fn pcax_backend_parses_and_builds() {
        let Command::Run(args) = parse(&["run", "gzip", "--backend", "pcax"]).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(args.backend, BackendChoice::Pcax);
        match build_config(&args).backend {
            BackendConfig::Pcax { pcax, .. } => assert_eq!(pcax.table.sets, 1024),
            other => panic!("expected PCAX backend, got {other:?}"),
        }
        let mut aggr = args;
        aggr.machine = MachineClass::Aggressive;
        assert!(matches!(
            build_config(&aggr).backend,
            BackendConfig::Pcax { mdt, .. } if mdt.sets == 8192
        ));
    }

    #[test]
    fn pcax_geometry_knobs_parse_and_build() {
        let Command::Run(args) = parse(&[
            "run", "gzip", "--backend", "pcax", "--pcax", "64x1", "--pcax-act", "3",
        ])
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(args.pcax_table, Some((64, 1)));
        assert_eq!(args.pcax_act, Some(3));
        match build_config(&args).backend {
            BackendConfig::Pcax { pcax, .. } => {
                assert_eq!((pcax.table.sets, pcax.table.ways), (64, 1));
                assert_eq!(pcax.no_alias_act, 3);
                assert_eq!(pcax.forward_act, PcaxConfig::baseline().forward_act);
            }
            other => panic!("expected PCAX backend, got {other:?}"),
        }
        // One knob alone keeps the other at baseline.
        let Command::Run(solo) = parse(&["run", "gzip", "--backend", "pcax", "--pcax-act", "1"])
            .unwrap()
        else {
            panic!("expected run");
        };
        assert!(matches!(
            build_config(&solo).backend,
            BackendConfig::Pcax { pcax, .. }
                if pcax.table == PcaxConfig::baseline().table && pcax.no_alias_act == 1
        ));
        assert!(parse(&["run", "x", "--pcax", "64"])
            .unwrap_err()
            .0
            .contains("SETSxWAYS"));
        assert!(parse(&["run", "x", "--pcax-act", "often"])
            .unwrap_err()
            .0
            .contains("bad pcax threshold"));
    }

    #[test]
    fn filter_geometry_knobs_parse_and_build() {
        let Command::Run(args) = parse(&[
            "run", "gzip", "--backend", "filtered", "--filt", "16x1", "--filt-count", "3",
        ])
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(args.filt_table, Some((16, 1)));
        assert_eq!(args.filt_count, Some(3));
        match build_config(&args).backend {
            BackendConfig::FilteredLsq { filter, .. } => {
                assert_eq!((filter.sets, filter.ways, filter.max_count), (16, 1, 3));
            }
            other => panic!("expected filtered LSQ backend, got {other:?}"),
        }
        // Without the knobs the builder default stays the baseline filter.
        let Command::Run(plain) = parse(&["run", "gzip", "--backend", "filtered"]).unwrap() else {
            panic!("expected run");
        };
        assert!(matches!(
            build_config(&plain).backend,
            BackendConfig::FilteredLsq { filter, .. } if filter == FilterConfig::baseline()
        ));
        assert!(parse(&["run", "x", "--filt-count", "lots"])
            .unwrap_err()
            .0
            .contains("bad filter count"));
    }

    #[test]
    fn bounds_backends_parse_and_build() {
        for (word, choice, expect) in [
            ("oracle", BackendChoice::Oracle, BackendConfig::Oracle),
            ("nospec", BackendChoice::NoSpec, BackendConfig::NoSpec),
        ] {
            let Command::Run(args) = parse(&["run", "gzip", "--backend", word]).unwrap() else {
                panic!("expected run");
            };
            assert_eq!(args.backend, choice);
            assert_eq!(build_config(&args).backend, expect);
            let mut aggr = args.clone();
            aggr.machine = MachineClass::Aggressive;
            assert_eq!(build_config(&aggr).backend, expect);
        }
        assert!(parse(&["run", "x", "--backend", "psychic"])
            .unwrap_err()
            .0
            .contains("unknown backend"));
    }

    #[test]
    fn report_mentions_key_sections() {
        let stats = SimStats {
            retired: 100,
            cycles: 50,
            ..SimStats::default()
        };
        let text = report("gzip", "sfc-mdt", &stats);
        assert!(text.contains("IPC 2.000"));
        assert!(text.contains("flushes:"));
        assert!(text.contains("caches:"));
    }
}
