//! The `aim-sim` binary; see [`aim_cli`] for the command grammar.

use std::process::ExitCode;

use aim_cli::{
    build_config, parse_args, report, BackendChoice, Command, LitmusArgs, RunArgs, ServeArgs,
    SubmitArgs, USAGE,
};
use aim_pipeline::{pipeview, simulate_pipeview, simulate_traced};

fn run_program(name: &str, program: &aim_isa::Program, args: &RunArgs) -> Result<(), String> {
    let cfg = build_config(args);
    let backend = cfg.backend.name();
    if args.pipeview > 0 {
        let (stats, records) = simulate_pipeview(program, &cfg).map_err(|e| e.to_string())?;
        print!("{}", report(name, &backend, &stats));
        let tail = records.len().saturating_sub(args.pipeview);
        println!("-- last {} retirements --", records.len() - tail);
        print!("{}", pipeview::render(&records[tail..], 64));
        return Ok(());
    }
    let (stats, events) = simulate_traced(program, &cfg).map_err(|e| e.to_string())?;
    print!("{}", report(name, &backend, &stats));
    if args.trace > 0 {
        println!(
            "-- last {} pipeline events --",
            args.trace.min(events.len())
        );
        for line in events.iter().rev().take(args.trace).rev() {
            println!("{line}");
        }
    }
    Ok(())
}

fn run_one(args: &RunArgs) -> Result<(), String> {
    let workload = aim_workloads::by_name(&args.kernel, args.scale)
        .ok_or_else(|| format!("unknown kernel `{}` (try `aim-sim list`)", args.kernel))?;
    run_program(&args.kernel, &workload.program, args)
}

/// Runs the `compare` sweep as a 1×6 matrix on the shared sweep runner —
/// one column per backend, bounds first and last — so all six simulate
/// concurrently when `--jobs`/`AIM_JOBS` allow.
fn compare_parallel(args: &RunArgs) -> Result<(), String> {
    let workload = aim_workloads::by_name(&args.kernel, args.scale)
        .ok_or_else(|| format!("unknown kernel `{}` (try `aim-sim list`)", args.kernel))?;
    let prepared = vec![aim_bench::prepare(workload, args.scale)];
    let configs: Vec<(String, aim_pipeline::SimConfig)> = BackendChoice::ALL
        .iter()
        .map(|&backend| {
            let cfg = build_config(&RunArgs {
                backend,
                ..args.clone()
            });
            (cfg.backend.name(), cfg)
        })
        .collect();
    let jobs = aim_bench::resolve_jobs(args.jobs);
    let matrix = aim_bench::run_matrix(&prepared, &configs, jobs);
    for (c, (name, _)) in configs.iter().enumerate() {
        print!("{}", report(&args.kernel, name, matrix.get(0, c)));
    }
    Ok(())
}

/// Runs the litmus suite: every observed outcome must be allowed by the
/// operational reference model, and the per-cell observed/allowed counts
/// are printed as a table.
fn run_litmus_suite(args: &LitmusArgs) -> Result<(), String> {
    let suite: Vec<_> = aim_isa::litmus_suite()
        .into_iter()
        .filter(|t| args.test.as_deref().is_none_or(|name| name == t.name))
        .collect();
    if suite.is_empty() {
        return Err(format!(
            "unknown litmus test `{}` (SB, SB+fwd, MP, MP+fwd, LB, IRIW)",
            args.test.as_deref().unwrap_or("")
        ));
    }
    let backends: Vec<BackendChoice> = match args.backend {
        Some(b) => vec![b],
        None => BackendChoice::ALL.to_vec(),
    };
    let mut disallowed = 0usize;
    for test in &suite {
        let allowed =
            aim_isa::allowed_outcomes(&test.programs, &test.observed, &aim_isa::RefLimits::default())
                .map_err(|e| format!("{}: reference model failed: {e}", test.name))?;
        println!(
            "{} — {} ({} cores, {} allowed outcomes)",
            test.name,
            test.description,
            test.programs.len(),
            allowed.len()
        );
        for &backend in &backends {
            let mut cfg = aim_pipeline::SimConfig::machine(aim_pipeline::MachineClass::Baseline)
                .backend(backend)
                .build();
            cfg.paranoid = args.paranoid;
            let mut seen = std::collections::BTreeSet::new();
            let mut contained = true;
            let mut schedules = vec![aim_pipeline::CoreSchedule::RoundRobin];
            schedules.extend((0..args.schedules).map(|i| aim_pipeline::CoreSchedule::Random {
                seed: 0xC0FE + 2 * i + 1,
            }));
            for schedule in schedules {
                let outcome = aim_pipeline::run_litmus(test, &cfg, schedule)
                    .map_err(|e| format!("{} on {}: {e}", test.name, backend.token()))?;
                contained &= allowed.contains(&outcome);
                seen.insert(outcome);
            }
            if !contained {
                disallowed += 1;
            }
            println!(
                "  {:<10} observed {}/{} outcomes — {}",
                backend.token(),
                seen.len(),
                allowed.len(),
                if contained { "contained" } else { "DISALLOWED" }
            );
        }
    }
    if disallowed > 0 {
        return Err(format!(
            "{disallowed} (test, backend) cell(s) produced reference-disallowed outcomes"
        ));
    }
    println!(
        "litmus: every observed outcome allowed ({} tests, {} backends, {} schedules each)",
        suite.len(),
        backends.len(),
        args.schedules + 1
    );
    Ok(())
}

/// Runs the `serve` command: the replay gate, the stdio pipe mode, or a
/// Unix-socket server.
fn run_serve(args: &ServeArgs) -> Result<(), String> {
    let workers = aim_bench::resolve_jobs(args.workers);
    let cache_dir = std::path::PathBuf::from(&args.cache);
    if args.replay {
        let outcome = aim_serve::run_replay(&aim_serve::ReplayOptions {
            scale: args.scale,
            workers,
            clients: args.clients.max(1),
            rounds: args.rounds,
            verify: args.verify,
            cache_dir,
        })?;
        let report = &outcome.report;
        for round in &report.rounds {
            println!(
                "  {:<8} {:>4} cells  {:>8.3}s  sims {:>4}  hits {:>4}",
                round.label, round.cells, round.wall_seconds, round.sims_run, round.cache_hits
            );
        }
        println!(
            "  workers {}  utilization {:.0}%  warm speedup {:.1}x  fingerprint {:#018x}",
            report.workers,
            100.0 * report.worker_utilization,
            report.warm_speedup,
            outcome.fingerprint
        );
        report
            .write_default()
            .map_err(|e| format!("writing the serve report: {e}"))?;
        if !outcome.consistent {
            for finding in &outcome.findings {
                eprintln!("  finding: {finding}");
            }
            return Err(format!(
                "serve: cache INCONSISTENT ({} finding(s))",
                outcome.findings.len()
            ));
        }
        println!(
            "serve: cache-consistent ({} cells x {} rounds{}, warm speedup {:.1}x)",
            report.rounds.first().map_or(0, |r| r.cells),
            args.rounds,
            if args.verify { " + verify" } else { "" },
            report.warm_speedup
        );
        return Ok(());
    }
    if args.stdio {
        let server = aim_serve::Server::new(&cache_dir, workers)
            .map_err(|e| format!("cache dir `{}`: {e}", args.cache))?;
        return aim_serve::serve_stdio(&server).map_err(|e| e.to_string());
    }
    serve_socket(args, workers, &cache_dir)
}

#[cfg(unix)]
fn serve_socket(
    args: &ServeArgs,
    workers: usize,
    cache_dir: &std::path::Path,
) -> Result<(), String> {
    let path = args.socket.as_deref().expect("parser guarantees a mode");
    let server = std::sync::Arc::new(
        aim_serve::Server::new(cache_dir, workers)
            .map_err(|e| format!("cache dir `{}`: {e}", args.cache))?,
    );
    println!("serving on {path} ({workers} workers, cache {})", args.cache);
    aim_serve::serve_unix(&server, std::path::Path::new(path)).map_err(|e| e.to_string())
}

#[cfg(not(unix))]
fn serve_socket(_: &ServeArgs, _: usize, _: &std::path::Path) -> Result<(), String> {
    Err("--socket needs Unix-domain sockets; use --stdio on this platform".to_string())
}

#[cfg(unix)]
fn run_submit(args: &SubmitArgs) -> Result<(), String> {
    use aim_types::wire::WireMsg;
    let path = std::path::PathBuf::from(&args.socket);
    let mut msgs = Vec::new();
    if !args.kernel.is_empty() {
        let spec = args.config_spec().job(&args.kernel, args.scale);
        msgs.push(spec.to_wire(args.verify, args.no_cache));
    }
    if args.shutdown {
        let mut msg = WireMsg::new();
        msg.put_str("op", "shutdown");
        msgs.push(msg);
    }
    let replies = aim_serve::submit_unix(&path, &msgs)
        .map_err(|e| format!("socket `{}`: {e}", args.socket))?;
    let mut replies = replies.iter();
    if !args.kernel.is_empty() {
        let reply = replies.next().expect("one reply per request");
        let resp = aim_serve::JobResponse::from_wire(reply)?;
        println!(
            "{} {}: cycles {}  retired {}  fingerprint {:#018x}  [{}{}]",
            args.kernel,
            resp.key,
            resp.cycles,
            resp.retired,
            resp.fingerprint,
            resp.source.token(),
            resp.verify.map_or(String::new(), |v| format!(", verify: {}", v.token())),
        );
    }
    if args.shutdown {
        let reply = replies.next().expect("one reply per request");
        if reply.bool_field("ok") != Some(true) {
            return Err("server did not acknowledge the shutdown".to_string());
        }
        println!("server shutdown acknowledged");
    }
    Ok(())
}

#[cfg(not(unix))]
fn run_submit(_: &SubmitArgs) -> Result<(), String> {
    Err("submit needs Unix-domain sockets on this platform".to_string())
}

fn run_asm_file(args: &RunArgs) -> Result<(), String> {
    let source = std::fs::read_to_string(&args.kernel)
        .map_err(|e| format!("cannot read `{}`: {e}", args.kernel))?;
    let program = aim_isa::parse_program(&source).map_err(|e| format!("{}: {e}", args.kernel))?;
    run_program(&args.kernel, &program, args)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let result = match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::List => {
            for name in aim_workloads::names() {
                println!("{name}");
            }
            Ok(())
        }
        Command::Run(args) => run_one(&args),
        Command::Asm(args) => run_asm_file(&args),
        Command::Litmus(args) => run_litmus_suite(&args),
        Command::Serve(args) => run_serve(&args),
        Command::Submit(args) => run_submit(&args),
        Command::Compare(args) => {
            if args.trace == 0 && args.pipeview == 0 {
                compare_parallel(&args)
            } else {
                // Event traces and pipeview records only surface through the
                // sequential single-run path.
                BackendChoice::ALL.iter().try_for_each(|&backend| {
                    run_one(&RunArgs {
                        backend,
                        ..args.clone()
                    })
                })
            }
        }
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
