//! Shared kernel-construction helpers.

use aim_isa::{Assembler, Reg};

/// Host-side xorshift64 PRNG, bit-identical to the in-ISA sequence emitted by
/// [`KernelBuilder::xorshift`]. Used to precompute data images that the
/// kernels then traverse.
///
/// # Examples
///
/// ```
/// use aim_workloads::Xorshift;
///
/// let mut a = Xorshift::new(42);
/// let mut b = Xorshift::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Xorshift {
    state: u64,
}

impl Xorshift {
    /// Creates a generator; a zero seed is replaced with a fixed odd constant
    /// (xorshift has a zero fixed point).
    pub fn new(seed: u64) -> Xorshift {
        Xorshift {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Advances and returns the next value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// A value in `0..bound` (bound need not be a power of two).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A thin wrapper over [`Assembler`] adding the idioms every kernel uses:
/// an in-register xorshift64 PRNG and masked word indexing.
///
/// # Examples
///
/// ```
/// use aim_isa::{Interpreter, Reg};
/// use aim_workloads::KernelBuilder;
///
/// let mut k = KernelBuilder::new();
/// let r = Reg::new;
/// k.asm.movi(r(5), 42);
/// k.xorshift(r(5), r(6));
/// k.asm.halt();
/// let p = k.finish();
/// let mut i = Interpreter::new(&p);
/// i.run(100).unwrap();
/// let mut host = aim_workloads::Xorshift::new(42);
/// assert_eq!(i.reg(r(5)), host.next_u64());
/// ```
#[derive(Debug, Default)]
pub struct KernelBuilder {
    /// The underlying assembler (kernels use it directly for everything
    /// without a helper).
    pub asm: Assembler,
}

impl KernelBuilder {
    /// Creates an empty builder.
    pub fn new() -> KernelBuilder {
        KernelBuilder::default()
    }

    /// Emits the xorshift64 step on register `x`, clobbering scratch `t`:
    /// `x ^= x<<13; x ^= x>>7; x ^= x<<17` (6 instructions).
    pub fn xorshift(&mut self, x: Reg, t: Reg) {
        self.asm.slli(t, x, 13);
        self.asm.xor(x, x, t);
        self.asm.srli(t, x, 7);
        self.asm.xor(x, x, t);
        self.asm.slli(t, x, 17);
        self.asm.xor(x, x, t);
    }

    /// Emits `out = base_reg + ((idx >> shift) & mask) * 8`: a random word
    /// address within a `mask+1`-word table (3–4 instructions).
    pub fn index_word(&mut self, out: Reg, idx: Reg, shift: i64, mask: i64, base_reg: Reg) {
        if shift > 0 {
            self.asm.srli(out, idx, shift);
            self.asm.andi(out, out, mask);
        } else {
            self.asm.andi(out, idx, mask);
        }
        self.asm.slli(out, out, 3);
        self.asm.add(out, out, base_reg);
    }

    /// Emits the *journal* idiom: when `(gate & gate_mask) == 0`, a fast
    /// progress store (`fast`, typically a loop counter — data ready at
    /// dispatch) followed by a slow cumulative-digest store
    /// (`acc = (acc + value) * value * golden`, a multiply chain that spans
    /// journal entries) to the fixed address in `addr` (7–8 instructions;
    /// clobbers `r28`).
    ///
    /// This reproduces the off-critical-path **output dependences** real
    /// programs carry on global counters, statistics and spill slots: with a
    /// gate cadence longer than the baseline window, only a large-window
    /// machine ever has two journal pairs in flight, and an unenforced
    /// (NOT-ENF) predictor then flushes on the younger-fast/older-slow store
    /// races — the paper's §3.1 observation.
    ///
    /// `label` must be unique within the kernel.
    #[allow(clippy::too_many_arguments)]
    pub fn journal(
        &mut self,
        gate: Reg,
        gate_mask: i64,
        fast: Reg,
        value: Reg,
        acc: Reg,
        addr: Reg,
        label: &str,
    ) {
        let r = Reg::new;
        self.asm.andi(r(28), gate, gate_mask);
        self.asm.bne(r(28), Reg::ZERO, label);
        self.asm.sd(fast, addr, 0);
        self.asm.add(acc, acc, value);
        self.asm.mul(acc, acc, value);
        self.asm.muli(acc, acc, 0x9E37_79B1);
        self.asm.sd(acc, addr, 0);
        self.asm.label(label);
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics on assembler errors (kernel construction bugs).
    pub fn finish(self) -> aim_isa::Program {
        self.asm.assemble().expect("kernel assembles")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_isa::Interpreter;

    #[test]
    fn xorshift_never_zero_and_varies() {
        let mut x = Xorshift::new(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let v = x.next_u64();
            assert_ne!(v, 0);
            seen.insert(v);
        }
        assert_eq!(seen.len(), 1000);
    }

    #[test]
    fn below_respects_bound() {
        let mut x = Xorshift::new(7);
        for _ in 0..1000 {
            assert!(x.below(37) < 37);
        }
    }

    #[test]
    fn zero_seed_is_replaced() {
        let mut x = Xorshift::new(0);
        assert_ne!(x.next_u64(), 0);
    }

    #[test]
    fn index_word_stays_in_table() {
        let mut k = KernelBuilder::new();
        let r = Reg::new;
        k.asm.movi(r(1), 0x1234_5678_9abc_def0u64 as i64);
        k.asm.movi(r(2), 0x10_0000);
        k.index_word(r(3), r(1), 5, 63, r(2));
        k.asm.halt();
        let p = k.finish();
        let mut i = Interpreter::new(&p);
        i.run(100).unwrap();
        let addr = i.reg(r(3));
        assert!((0x10_0000..0x10_0000 + 64 * 8).contains(&addr));
        assert_eq!(addr % 8, 0);
    }
}
