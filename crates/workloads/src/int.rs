//! SPECint 2000 analogue kernels.
//!
//! Each kernel documents the memory-ordering behaviour it is engineered to
//! reproduce; see the crate docs for the paper-level mapping.

use aim_isa::{Program, Reg};
use aim_types::Addr;

use crate::kernel::{KernelBuilder, Xorshift};
use crate::Scale;

// Bases carry distinct sub-page offsets so equal indices of different
// tables never share an MDT/SFC set (see the note in `crate::fp`).
const A_BASE: i64 = 0x0100_0000;
const B_BASE: i64 = 0x0110_0208;
const C_BASE: i64 = 0x0120_0410;
const OUT_BASE: i64 = 0x0140_0618;

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// Fills a `words`-long little-endian table at `base` with seeded
/// pseudo-random values.
fn random_table(k: &mut KernelBuilder, base: i64, words: usize, seed: u64) {
    let mut rng = Xorshift::new(seed);
    let data: Vec<u64> = (0..words).map(|_| rng.next_u64()).collect();
    k.asm.data_words(Addr(base as u64), &data);
}

/// `bzip2` — block-sorting compression.
///
/// The paper: "in bzip2, over 50% of dynamic stores must be replayed because
/// of set conflicts in the SFC ... bzip2 \[is\] limited by the size,
/// associativity, and hash functions of the SFC" (§3.2). The kernel mirrors
/// the block sort's structure: a *cache-missing suffix-array access* (a
/// streaming load over a 2 MiB region, regularly missing the L2) blocks
/// retirement, while fast bucket-count read-modify-writes pile up behind it.
/// The buckets sit 4 KiB apart — all aliasing into a single set of the 2-way
/// SFC, the pathology of data structures "whose size is a multiple of the
/// SFC size". The 1024-instruction window accumulates dozens of live bucket
/// lines in that set; the 128-instruction baseline only 2–3. Associativity
/// 16 absorbs them.
pub fn bzip2(scale: Scale) -> Program {
    let mut k = KernelBuilder::new();
    let iters = scale.iterations(70);
    // 2 MiB "suffix array" region (only a prefix is initialized; the rest
    // reads as zero, which is fine — only the miss behaviour matters).
    random_table(&mut k, A_BASE, 4096, 11);

    k.asm.movi(r(1), iters);
    k.asm.movi(r(5), 0xB215);
    // The 2 MiB suffix region would overlap the shared bases; bzip2 uses a
    // private layout well clear of it.
    k.asm.movi(r(10), A_BASE); // suffix array (2 MiB footprint)
    k.asm.movi(r(11), 0x0400_0208); // bucket counters, 4 KiB apart
    k.asm.movi(r(12), 0x0480_0410); // sorted output
    k.asm.movi(r(9), 0); // scatter counter
    k.asm.movi(r(17), 0x0400_0208); // previous bucket address (chained read)
    k.asm.movi(r(20), 0); // checksum
    k.asm.movi(r(21), 0); // suffix cursor

    k.asm.label("loop");
    // Strided suffix-array walk: 24-byte steps span cache lines faster
    // than they can stay resident, so the recurring misses delay retirement
    // and bucket stores pile up behind them, keeping the hot SFC set
    // saturated at any run length.
    k.asm.andi(r(6), r(21), 0x1_ffff);
    k.asm.slli(r(6), r(6), 3);
    k.asm.add(r(6), r(6), r(10));
    k.asm.ld(r(7), r(6), 0);
    k.asm.addi(r(21), r(21), 3);
    k.asm.add(r(20), r(20), r(7)); // checksum chain consumes the load
                                   // Fast bucket scatter: four stores per symbol (the radix pass touches a
                                   // bucket per key digit), with indices from the (register-only) PRNG so
                                   // the stores execute long before older work retires. Store-only, so no
                                   // cache miss sits on their path and no read-after-write pairs form to be
                                   // serialized away by the predictor — the conflicts are pure
                                   // SFC-allocation pressure, as in the paper: the deep window holds far
                                   // more aliasing lines than the 2 ways can hold, while the rank loop
                                   // below keeps total store density just under a 120x80 LSQ's capacity.
    k.xorshift(r(5), r(6));
    for digit in 0..4i64 {
        k.asm.srli(r(8), r(5), 10 * digit);
        k.asm.andi(r(8), r(8), 15); // 16 hot buckets: lines stay pinned by
                                    // ever-newer writers (only the *latest* store frees an SFC line)
        k.asm.slli(r(8), r(8), 12); // bucket stride 4 KiB: single SFC set
        k.asm.add(r(8), r(8), r(11));
        k.asm.sd(r(5), r(8), 8 * digit); // the SFC-thrashing scatter store
    }
    // Chained verify read of the *previous* symbol's bucket: when that
    // store is still asleep on a set conflict, this load either races ahead
    // (a true violation and a flush) or — once the predictor learns the
    // pair — waits for the sleeping store, putting the conflict's latency
    // on the retirement path. With 16 ways neither happens.
    k.asm.ld(r(15), r(17), 8);
    k.asm.add(r(20), r(20), r(15));
    k.asm.ld(r(15), r(17), 16);
    k.asm.add(r(20), r(20), r(15));
    k.asm.mov(r(17), r(8));
    k.asm.addi(r(9), r(9), 1);
    // Suffix-ranking ALU work (dilutes memory density; see above).
    k.asm.movi(r(16), 3);
    k.asm.label("rank");
    k.asm.srli(r(14), r(7), 8);
    k.asm.xor(r(7), r(7), r(14));
    k.asm.muli(r(14), r(7), 0x1_0001);
    k.asm.add(r(20), r(20), r(14));
    k.asm.slli(r(15), r(20), 1);
    k.asm.xor(r(20), r(20), r(15));
    k.asm.subi(r(16), r(16), 1);
    k.asm.bne(r(16), Reg::ZERO, "rank");
    // Emit a token to the (sequential, conflict-free) output.
    k.asm.andi(r(13), r(21), 4095);
    k.asm.slli(r(13), r(13), 3);
    k.asm.add(r(13), r(13), r(12));
    k.asm.sd(r(5), r(13), 0);
    k.asm.add(r(20), r(20), r(9));
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "loop");
    k.asm.halt();
    k.finish()
}

/// `crafty` — chess (bitboards).
///
/// Computation-dominated: shift/mask bitboard manipulation with a small
/// attack-table lookup and an occasional history-table update. Memory
/// ordering is benign; the kernel anchors the "well-behaved" end of the int
/// suite, where the MDT/SFC should match the LSQ.
pub fn crafty(scale: Scale) -> Program {
    let mut k = KernelBuilder::new();
    let iters = scale.iterations(30);
    random_table(&mut k, A_BASE, 512, 22);

    k.asm.movi(r(1), iters);
    k.asm.movi(r(5), 0xC4AF);
    k.asm.movi(r(10), A_BASE); // attack tables
    k.asm.movi(r(11), B_BASE); // history table
    k.asm.movi(r(20), 0);
    k.asm.movi(r(24), 1);
    k.asm.movi(r(25), OUT_BASE + 0x4020); // statistics journal

    k.asm.label("loop");
    k.xorshift(r(5), r(6));
    // Bitboard mixing: rotate-ish shuffles.
    k.asm.slli(r(7), r(5), 7);
    k.asm.srli(r(8), r(5), 57);
    k.asm.or(r(7), r(7), r(8));
    k.asm.and(r(8), r(7), r(5));
    k.asm.xor(r(20), r(20), r(8));
    // Attack-table lookup from the piece square.
    k.index_word(r(9), r(7), 3, 511, r(10));
    k.asm.ld(r(12), r(9), 0);
    k.asm.add(r(20), r(20), r(12));
    // Popcount-flavoured reduction (4 rounds).
    k.asm.srli(r(13), r(12), 1);
    k.asm.xor(r(12), r(12), r(13));
    k.asm.srli(r(13), r(12), 2);
    k.asm.xor(r(12), r(12), r(13));
    k.asm.srli(r(13), r(12), 4);
    k.asm.xor(r(12), r(12), r(13));
    k.asm.andi(r(12), r(12), 255);
    // Occasional history update: every 4th visit on average.
    k.asm.andi(r(14), r(5), 3);
    k.asm.bne(r(14), Reg::ZERO, "skip");
    k.index_word(r(9), r(12), 0, 255, r(11));
    k.asm.ld(r(15), r(9), 0);
    k.asm.add(r(15), r(15), r(12));
    k.asm.sd(r(15), r(9), 0);
    k.asm.label("skip");
    // Search-statistics journal (node counter + cumulative evaluation
    // digest) — see `KernelBuilder::journal`.
    k.journal(r(1), 7, r(1), r(12), r(24), r(25), "no_jr");
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "loop");
    k.asm.halt();
    k.finish()
}

/// `gap` — computational group theory.
///
/// Call/return-structured vector arithmetic: an inner "function" (JAL/JR)
/// sums a window of a vector and stores the result. Moderate, regular memory
/// traffic with function-call control flow.
pub fn gap(scale: Scale) -> Program {
    let mut k = KernelBuilder::new();
    let iters = scale.iterations(34);
    random_table(&mut k, A_BASE, 1024, 33);

    k.asm.movi(r(1), iters);
    k.asm.movi(r(5), 0x6A9);
    k.asm.movi(r(10), A_BASE);
    k.asm.movi(r(11), OUT_BASE);
    k.asm.movi(r(13), OUT_BASE + 0x4008); // result mailbox
    k.asm.movi(r(20), 0);
    k.asm.movi(r(24), 1);
    k.asm.jump("main");

    // fn window_sum(r7 = word index) -> r9, clobbers r8, r12.
    k.asm.label("window_sum");
    k.asm.movi(r(9), 0);
    k.asm.movi(r(12), 4); // four-element window
    k.asm.label("ws_loop");
    k.asm.andi(r(8), r(7), 1023);
    k.asm.slli(r(8), r(8), 3);
    k.asm.add(r(8), r(8), r(10));
    k.asm.ld(r(8), r(8), 0);
    k.asm.add(r(9), r(9), r(8));
    k.asm.addi(r(7), r(7), 1);
    k.asm.subi(r(12), r(12), 1);
    k.asm.bne(r(12), Reg::ZERO, "ws_loop");
    k.asm.jr(r(31));

    k.asm.label("main");
    k.xorshift(r(5), r(6));
    k.asm.andi(r(7), r(5), 1023);
    k.asm.jal(r(31), "window_sum");
    k.asm.add(r(20), r(20), r(9));
    // Result mailbox every 4th call: a fast progress store (loop counter)
    // then the slow window sum to one fixed address — the off-critical-path
    // output dependences real codes get from global counters and spill
    // slots. The cadence (~140 instructions) keeps at most one pair in the
    // baseline's 128-entry window but ~7 in the aggressive machine's.
    k.asm.andi(r(14), r(1), 3);
    k.asm.bne(r(14), Reg::ZERO, "no_mb");
    k.asm.sd(r(1), r(13), 0);
    k.asm.add(r(24), r(24), r(9)); // cumulative residual: the chain spans
    k.asm.mul(r(24), r(24), r(9)); // mailboxes, so this store's data is
    k.asm.muli(r(24), r(24), 0x9E37_79B1); // always late
    k.asm.sd(r(24), r(13), 0);
    k.asm.label("no_mb");
    // Store the window sum to a rotating output slot.
    k.asm.andi(r(8), r(1), 255);
    k.asm.slli(r(8), r(8), 3);
    k.asm.add(r(8), r(8), r(11));
    k.asm.sd(r(9), r(8), 0);
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "main");
    k.asm.halt();
    k.finish()
}

/// `gcc` — compilation.
///
/// Irregular traversal of variable-size records with data-dependent control
/// flow: each record's header selects how many fields to read and whether to
/// patch one (a store). Mispredictable branches and pointer-ish access
/// patterns, with occasional in-flight same-address pairs.
pub fn gcc(scale: Scale) -> Program {
    let mut k = KernelBuilder::new();
    let iters = scale.iterations(27);
    random_table(&mut k, A_BASE, 4096, 44);

    k.asm.movi(r(1), iters);
    k.asm.movi(r(5), 0x6CC);
    k.asm.movi(r(10), A_BASE); // record pool
    k.asm.movi(r(16), OUT_BASE + 0x4018); // patch journal head
    k.asm.movi(r(20), 0);
    k.asm.movi(r(21), 0); // record cursor
    k.asm.movi(r(24), 1);

    k.asm.label("loop");
    // Record base: cursor masked to the pool, records 8 words apart.
    k.asm.andi(r(7), r(21), 511);
    k.asm.slli(r(7), r(7), 6);
    k.asm.add(r(7), r(7), r(10));
    k.asm.ld(r(8), r(7), 0); // header
    k.asm.addi(r(21), r(21), 1);
    // Field count = 1 + (header & 3); read fields serially.
    k.asm.andi(r(9), r(8), 3);
    k.asm.addi(r(9), r(9), 1);
    k.asm.movi(r(12), 0); // field offset in bytes
    k.asm.label("fields");
    k.asm.ld(r(13), r(7), 8); // fields at fixed offsets 8..
    k.asm.add(r(13), r(13), r(12));
    k.asm.add(r(20), r(20), r(13));
    k.asm.addi(r(12), r(12), 8);
    k.asm.subi(r(9), r(9), 1);
    k.asm.bne(r(9), Reg::ZERO, "fields");
    // Patch the header when the hash bit says so (mispredictable).
    k.xorshift(r(5), r(6));
    k.asm.andi(r(14), r(21), 7);
    k.asm.bne(r(14), Reg::ZERO, "nopatch");
    k.asm.xor(r(8), r(8), r(20));
    k.asm.sd(r(8), r(7), 0);
    // Patch journal: fast cursor store, then the slowly accumulated patch
    // digest, to one fixed address — output deps across in-flight patches.
    k.asm.sd(r(21), r(16), 0);
    k.asm.add(r(24), r(24), r(8));
    k.asm.mul(r(24), r(24), r(8));
    k.asm.muli(r(24), r(24), 0x9E37_79B1);
    k.asm.sd(r(24), r(16), 0);
    k.asm.label("nopatch");
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "loop");
    k.asm.halt();
    k.finish()
}

/// `gzip` — LZ77 compression.
///
/// The paper singles gzip out as a benchmark whose IPC rises significantly
/// when the predictor enforces *output* dependences (§3.1). The kernel is a
/// hash-chain updater: every symbol loads its hash-bucket head and stores a
/// new head. Buckets recur quickly (64-entry table), so nearby iterations
/// carry same-address store pairs in flight; the older store's data depends
/// on an input load that may miss the (8 KiB) L1, so the younger store often
/// becomes ready first — an output-dependence violation unless enforced.
pub fn gzip(scale: Scale) -> Program {
    let mut k = KernelBuilder::new();
    let iters = scale.iterations(44);
    // 64 KiB of input text: streaming misses keep load latency variable.
    random_table(&mut k, A_BASE, 8192, 55);

    k.asm.movi(r(1), iters);
    k.asm.movi(r(10), A_BASE); // input text
    k.asm.movi(r(11), B_BASE); // 256-entry hash-head table
    k.asm.movi(r(12), OUT_BASE); // token output
    k.asm.movi(r(20), 0); // cursor
    k.asm.movi(r(22), 0); // output cursor

    k.asm.label("loop");
    // Next input word (streaming, 64 KiB footprint).
    k.asm.andi(r(6), r(20), 8191);
    k.asm.slli(r(6), r(6), 3);
    k.asm.add(r(6), r(6), r(10));
    k.asm.ld(r(7), r(6), 0);
    k.asm.addi(r(20), r(20), 1);
    // hash = (sym * golden) >> 56 (8 bits).
    k.asm.muli(r(8), r(7), 0x9E37_79B1);
    k.asm.srli(r(8), r(8), 56);
    k.asm.slli(r(8), r(8), 3);
    k.asm.add(r(8), r(8), r(11));
    k.asm.ld(r(9), r(8), 0); // old chain head
    k.asm.sd(r(7), r(8), 0); // new head: value depends on the input load
                             // Match check against the previous head.
    k.asm.beq(r(9), r(7), "match");
    // Literal: Huffman-flavoured bit scan (4 rounds), then emit the token.
    k.asm.srli(r(14), r(7), 4);
    k.asm.xor(r(14), r(14), r(7));
    k.asm.movi(r(16), 4);
    k.asm.label("huff");
    k.asm.muli(r(14), r(14), 0x0101_0101);
    k.asm.srli(r(15), r(14), 32);
    k.asm.xor(r(14), r(14), r(15));
    k.asm.slli(r(15), r(14), 3);
    k.asm.add(r(14), r(14), r(15));
    k.asm.subi(r(16), r(16), 1);
    k.asm.bne(r(16), Reg::ZERO, "huff");
    k.asm.andi(r(14), r(14), 0xffff);
    k.asm.andi(r(13), r(22), 4095);
    k.asm.slli(r(13), r(13), 3);
    k.asm.add(r(13), r(13), r(12));
    k.asm.sd(r(14), r(13), 0);
    k.asm.addi(r(22), r(22), 1);
    k.asm.jump("cont");
    k.asm.label("match");
    k.asm.addi(r(22), r(22), 1);
    k.asm.label("cont");
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "loop");
    k.asm.halt();
    k.finish()
}

/// `mcf` — single-depot vehicle scheduling (network simplex).
///
/// The paper: "in mcf, over 16% of dynamic loads must be replayed because of
/// set conflicts in the MDT" (§3.2), because its data structures stride at
/// multiples of the MDT size. The kernel scans arcs: each iteration
/// dereferences a node sitting 8 KiB apart from its neighbours — the 64
/// node headers land in just eight MDT sets (four in the baseline geometry),
/// so the aggressive machine's ~10 in-flight dereferences overwhelm the
/// 2 ways while the baseline's 1–2 fit. Associativity 16 absorbs them.
pub fn mcf(scale: Scale) -> Program {
    let mut k = KernelBuilder::new();
    let iters = scale.iterations(66);
    // Node headers: 64 nodes at 16 KiB stride; potentials in a dense array.
    let mut rng = Xorshift::new(66);
    for node in 0..64u64 {
        let base = 0x0200_0000 + node * 0x2000;
        let vals: Vec<u64> = (0..4).map(|_| rng.next_u64() & 0xffff).collect();
        k.asm.data_words(Addr(base), &vals);
    }
    random_table(&mut k, B_BASE, 512, 67);

    k.asm.movi(r(1), iters);
    k.asm.movi(r(5), 0x3CF);
    k.asm.movi(r(10), 0x0200_0000); // node pool (8 KiB stride)
    k.asm.movi(r(11), B_BASE); // potentials
    k.asm.movi(r(20), 0);

    k.asm.label("loop");
    k.xorshift(r(5), r(6));
    // Random node: addr = pool + (rng & 63) << 13. Eight MDT sets total.
    k.asm.andi(r(7), r(5), 63);
    k.asm.slli(r(7), r(7), 13);
    k.asm.add(r(7), r(7), r(10));
    k.asm.ld(r(8), r(7), 0); // node cost — the MDT-thrashing load
                             // Arc scan: eight dense potential lookups per node (well-behaved work
                             // that dilutes the conflicting loads to realistic density — the 128-
                             // instruction baseline window holds ~1, the 1024-window holds ~10).
    k.asm.andi(r(12), r(5), 255);
    k.asm.movi(r(16), 5);
    k.asm.label("arcs");
    k.asm.andi(r(13), r(12), 511);
    k.asm.slli(r(13), r(13), 3);
    k.asm.add(r(13), r(13), r(11));
    k.asm.ld(r(14), r(13), 0);
    k.asm.add(r(14), r(14), r(8));
    k.asm.srli(r(15), r(14), 3);
    k.asm.xor(r(20), r(20), r(15));
    k.asm.add(r(20), r(20), r(14));
    k.asm.addi(r(12), r(12), 1);
    k.asm.subi(r(16), r(16), 1);
    k.asm.bne(r(16), Reg::ZERO, "arcs");
    // Occasional potential update (every 8th node; mcf is load-dominated).
    k.asm.andi(r(15), r(5), 7);
    k.asm.bne(r(15), Reg::ZERO, "noupd");
    k.asm.sd(r(20), r(13), 0);
    k.asm.label("noupd");
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "loop");
    k.asm.halt();
    k.finish()
}

/// `parser` — link-grammar parsing.
///
/// Dictionary binary search: a chain of data-dependent compares over a
/// sorted table, one hard-to-predict branch per probe, plus a small
/// memoization store. Load-heavy with mispredict-driven wrong-path fetch.
pub fn parser(scale: Scale) -> Program {
    let mut k = KernelBuilder::new();
    let iters = scale.iterations(42);
    // Sorted dictionary of 1024 words.
    let mut rng = Xorshift::new(77);
    let mut dict: Vec<u64> = (0..1024).map(|_| rng.next_u64() >> 16).collect();
    dict.sort_unstable();
    k.asm.data_words(Addr(A_BASE as u64), &dict);

    k.asm.movi(r(1), iters);
    k.asm.movi(r(5), 0x9A55);
    k.asm.movi(r(10), A_BASE); // dictionary
    k.asm.movi(r(11), B_BASE); // memo table
    k.asm.movi(r(20), 0);
    k.asm.movi(r(24), 1);
    k.asm.movi(r(25), OUT_BASE + 0x4028); // statistics journal

    k.asm.label("loop");
    k.xorshift(r(5), r(6));
    k.asm.srli(r(7), r(5), 16); // probe key
    k.asm.movi(r(8), 0); // lo
    k.asm.movi(r(9), 1024); // hi
    k.asm.movi(r(12), 10); // 10 bisection steps
    k.asm.label("bisect");
    k.asm.add(r(13), r(8), r(9));
    k.asm.srli(r(13), r(13), 1); // mid
    k.asm.slli(r(14), r(13), 3);
    k.asm.add(r(14), r(14), r(10));
    k.asm.ld(r(15), r(14), 0);
    k.asm.bltu(r(15), r(7), "go_right");
    k.asm.mov(r(9), r(13));
    k.asm.jump("bs_next");
    k.asm.label("go_right");
    k.asm.mov(r(8), r(13));
    k.asm.label("bs_next");
    k.asm.subi(r(12), r(12), 1);
    k.asm.bne(r(12), Reg::ZERO, "bisect");
    k.asm.add(r(20), r(20), r(8));
    // Memoize the landing slot.
    k.asm.andi(r(13), r(8), 255);
    k.asm.slli(r(13), r(13), 3);
    k.asm.add(r(13), r(13), r(11));
    k.asm.sd(r(7), r(13), 0);
    // Parse-statistics journal (see `KernelBuilder::journal`).
    k.journal(r(1), 7, r(1), r(8), r(24), r(25), "no_jr");
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "loop");
    k.asm.halt();
    k.finish()
}

/// `perlbmk` — Perl interpreter.
///
/// Bytecode dispatch through an in-memory jump table (indirect `JR`), each
/// handler doing a little arithmetic and touching the interpreter's "stack"
/// or a hash bucket. Exercises indirect control flow plus pointer-shaped
/// memory traffic.
pub fn perlbmk(scale: Scale) -> Program {
    let mut k = KernelBuilder::new();
    let iters = scale.iterations(22);
    random_table(&mut k, B_BASE, 256, 88);

    k.asm.movi(r(1), iters);
    k.asm.jump("main");

    // Handlers; their instruction indices go into the dispatch table.
    let h_add = k.asm.here();
    k.asm.add(r(20), r(20), r(7));
    k.asm.jump("dispatched");
    let h_xor = k.asm.here();
    k.asm.xor(r(20), r(20), r(7));
    k.asm.jump("dispatched");
    let h_push = k.asm.here();
    k.asm.andi(r(8), r(21), 127);
    k.asm.slli(r(8), r(8), 3);
    k.asm.add(r(8), r(8), r(11));
    k.asm.sd(r(20), r(8), 0);
    k.asm.addi(r(21), r(21), 1);
    k.asm.jump("dispatched");
    let h_pop = k.asm.here();
    k.asm.subi(r(21), r(21), 1);
    k.asm.andi(r(8), r(21), 127);
    k.asm.slli(r(8), r(8), 3);
    k.asm.add(r(8), r(8), r(11));
    k.asm.ld(r(20), r(8), 0);
    k.asm.jump("dispatched");

    k.asm.label("main");
    k.asm.movi(r(5), 0x9E51);
    k.asm.movi(r(10), C_BASE); // dispatch table
    k.asm.movi(r(11), OUT_BASE); // value stack
    k.asm.movi(r(12), B_BASE); // hash pool
    k.asm.movi(r(20), 0);
    k.asm.movi(r(21), 64); // stack pointer (word index)
    k.asm.movi(r(24), 1);
    k.asm.movi(r(25), OUT_BASE + 0x4030); // opcount journal
    k.asm.label("loop");
    k.xorshift(r(5), r(6));
    k.asm.srli(r(7), r(5), 20);
    // opcode = rng & 3; target = table[opcode].
    k.asm.andi(r(8), r(5), 3);
    k.asm.slli(r(8), r(8), 3);
    k.asm.add(r(8), r(8), r(10));
    k.asm.ld(r(9), r(8), 0);
    k.asm.jr(r(9));
    k.asm.label("dispatched");
    // Hash-bucket touch.
    k.index_word(r(8), r(5), 9, 255, r(12));
    k.asm.ld(r(13), r(8), 0);
    k.asm.add(r(20), r(20), r(13));
    // Opcount journal (see `KernelBuilder::journal`).
    k.journal(r(1), 7, r(1), r(20), r(24), r(25), "no_jr");
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "loop");
    k.asm.halt();

    k.asm
        .data_words(Addr(C_BASE as u64), &[h_add, h_xor, h_push, h_pop]);
    k.finish()
}

/// `twolf` — standard-cell place and route.
///
/// Simulated-annealing pair swaps: load two random cells, compare costs,
/// conditionally swap them (two stores). Random indices collide across the
/// in-flight window, generating true, anti *and* output dependences between
/// dynamically-varying address pairs, guarded by a data-dependent branch.
pub fn twolf(scale: Scale) -> Program {
    let mut k = KernelBuilder::new();
    let iters = scale.iterations(22);
    random_table(&mut k, A_BASE, 256, 99);

    k.asm.movi(r(1), iters);
    k.asm.movi(r(5), 0x201F);
    k.asm.movi(r(10), A_BASE); // cell array
    k.asm.movi(r(20), 0);
    k.asm.movi(r(24), 1);
    k.asm.movi(r(25), OUT_BASE + 0x4038); // statistics journal

    k.asm.label("loop");
    k.xorshift(r(5), r(6));
    k.index_word(r(7), r(5), 0, 255, r(10));
    k.index_word(r(8), r(5), 8, 255, r(10));
    k.asm.ld(r(9), r(7), 0);
    k.asm.ld(r(12), r(8), 0);
    k.asm.add(r(20), r(20), r(9));
    // Swap when out of order (about half the time, poorly predictable).
    k.asm.bltu(r(9), r(12), "noswap");
    k.asm.sd(r(12), r(7), 0);
    k.asm.sd(r(9), r(8), 0);
    k.asm.label("noswap");
    // Annealing-statistics journal (see `KernelBuilder::journal`).
    k.journal(r(1), 7, r(1), r(9), r(24), r(25), "no_jr");
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "loop");
    k.asm.halt();
    k.finish()
}

/// `vortex` — object-oriented database.
///
/// Object-record traversal: pick an object, read several fields through its
/// base, verify a checksum, occasionally rewrite a field. Dense-ish records
/// with moderate reuse — a middle-of-the-road int benchmark.
pub fn vortex(scale: Scale) -> Program {
    let mut k = KernelBuilder::new();
    let iters = scale.iterations(24);
    random_table(&mut k, A_BASE, 2048, 111);

    k.asm.movi(r(1), iters);
    k.asm.movi(r(5), 0x0DB);
    k.asm.movi(r(10), A_BASE); // object pool: 512 records of 4 words
    k.asm.movi(r(16), OUT_BASE + 0x4010); // transaction journal head
    k.asm.movi(r(20), 0);
    k.asm.movi(r(24), 1);

    k.asm.label("loop");
    k.xorshift(r(5), r(6));
    // Object base = pool + (rng & 511) * 32.
    k.asm.andi(r(7), r(5), 511);
    k.asm.slli(r(7), r(7), 5);
    k.asm.add(r(7), r(7), r(10));
    k.asm.ld(r(8), r(7), 0);
    k.asm.ld(r(9), r(7), 8);
    k.asm.ld(r(12), r(7), 16);
    k.asm.add(r(13), r(8), r(9));
    k.asm.xor(r(13), r(13), r(12));
    k.asm.add(r(20), r(20), r(13));
    // Update the object's checksum field every 8th visit (deterministic,
    // so pairs never fit the baseline window), and log it to the
    // transaction journal: a fast sequence-number store followed by the
    // slowly accumulated checksum to one fixed address (output deps across
    // updates).
    k.asm.andi(r(14), r(1), 7);
    k.asm.bne(r(14), Reg::ZERO, "noupd");
    k.asm.sd(r(13), r(7), 24);
    k.asm.sd(r(1), r(16), 0);
    k.asm.add(r(24), r(24), r(13));
    k.asm.mul(r(24), r(24), r(13));
    k.asm.muli(r(24), r(24), 0x0101_0101);
    k.asm.sd(r(24), r(16), 0);
    k.asm.label("noupd");
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "loop");
    k.asm.halt();
    k.finish()
}

/// `vpr_place` — FPGA placement.
///
/// Like [`twolf`], annealing swaps, but with a cost accumulator RMW on every
/// iteration so stores are denser and same-address pairs more frequent.
pub fn vpr_place(scale: Scale) -> Program {
    let mut k = KernelBuilder::new();
    let iters = scale.iterations(26);
    random_table(&mut k, A_BASE, 512, 123);
    random_table(&mut k, B_BASE, 64, 124);

    k.asm.movi(r(1), iters);
    k.asm.movi(r(5), 0x914C);
    k.asm.movi(r(10), A_BASE); // block positions
    k.asm.movi(r(11), B_BASE); // per-net cost accumulators
    k.asm.movi(r(20), 0);
    k.asm.movi(r(24), 1);
    k.asm.movi(r(25), OUT_BASE + 0x4040); // cost journal

    k.asm.label("loop");
    k.xorshift(r(5), r(6));
    k.index_word(r(7), r(5), 0, 511, r(10));
    k.index_word(r(8), r(5), 10, 511, r(10));
    k.asm.ld(r(9), r(7), 0);
    k.asm.ld(r(12), r(8), 0);
    // Net cost RMW (64 hot accumulators: frequent same-address pairs).
    k.index_word(r(13), r(5), 20, 63, r(11));
    k.asm.ld(r(14), r(13), 0);
    k.asm.sub(r(15), r(9), r(12));
    k.asm.add(r(14), r(14), r(15));
    k.asm.sd(r(14), r(13), 0);
    // Accept the move on a data-dependent compare.
    k.asm.blt(r(15), Reg::ZERO, "reject");
    k.asm.sd(r(12), r(7), 0);
    k.asm.sd(r(9), r(8), 0);
    k.asm.label("reject");
    k.asm.add(r(20), r(20), r(15));
    // Placement-cost journal (see `KernelBuilder::journal`).
    k.journal(r(1), 7, r(1), r(15), r(24), r(25), "no_jr");
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "loop");
    k.asm.halt();
    k.finish()
}

/// `vpr_route` — FPGA routing.
///
/// The paper: "vpr route ... experience\[s\] relatively high rates of SFC
/// corruptions. In these three benchmarks, roughly 20% of all dynamic loads
/// must be replayed because of corruptions in the SFC" (§3.2). The kernel is
/// a maze-router frontier update: every iteration stores to a hot frontier
/// slot and soon re-reads it, with a hard-to-predict branch in between. Each
/// mispredict's partial flush marks all valid SFC bytes corrupt, so the
/// re-reads replay.
pub fn vpr_route(scale: Scale) -> Program {
    let mut k = KernelBuilder::new();
    let iters = scale.iterations(30);
    random_table(&mut k, A_BASE, 64, 133);

    k.asm.movi(r(1), iters);
    k.asm.movi(r(5), 0x907E);
    k.asm.movi(r(10), A_BASE); // routing-cost grid (hot, 64 cells)
    k.asm.movi(r(19), 0x0500_0000); // net-list stream (2 MiB, cold)
    k.asm.movi(r(20), 0);
    k.asm.movi(r(21), 0); // net cursor

    k.asm.label("loop");
    // Cold net-list load: keeps completed frontier stores in flight (see
    // `ammp`), so mispredict flushes are partial and corruption persists.
    k.asm.andi(r(6), r(21), 0x3_ffff);
    k.asm.slli(r(6), r(6), 3);
    k.asm.add(r(6), r(6), r(19));
    k.asm.ld(r(13), r(6), 0);
    k.asm.add(r(20), r(20), r(13));
    k.asm.addi(r(21), r(21), 17); // stride past the line: every access misses
    k.xorshift(r(5), r(6));
    // Touch a random grid cell: RMW.
    k.index_word(r(7), r(5), 0, 63, r(10));
    k.asm.ld(r(8), r(7), 0);
    k.asm.addi(r(8), r(8), 3);
    k.asm.sd(r(8), r(7), 0);
    // Expand-or-not: data-dependent on the *loaded* cost, so the branch
    // resolves only after the load — by then younger frontier stores are
    // already in flight, and each real mispredict's partial flush marks
    // every live SFC line corrupt.
    k.asm.andi(r(9), r(8), 1);
    k.asm.beq(r(9), Reg::ZERO, "skip");
    k.index_word(r(12), r(5), 9, 63, r(10));
    k.asm.ld(r(13), r(12), 0);
    k.asm.add(r(20), r(20), r(13));
    k.asm.label("skip");
    // Re-read the cell just written: hits the (possibly corrupt) SFC line.
    k.asm.ld(r(14), r(7), 0);
    k.asm.add(r(20), r(20), r(14));
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "loop");
    k.asm.halt();
    k.finish()
}
