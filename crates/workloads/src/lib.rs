//! Synthetic benchmark kernels mirroring the memory behaviour of the paper's
//! SPEC CPU2000 suite.
//!
//! The paper evaluates on 19 SPEC CPU2000 benchmarks (plus `mesa` in the
//! baseline study) with MinneSPEC reduced inputs. SPEC binaries and inputs
//! are not redistributable, and the effects the paper measures are driven by
//! *memory-reference behaviour* rather than program semantics, so this crate
//! substitutes one hand-built kernel per benchmark. Each kernel is engineered
//! to exercise the mechanism the paper attributes to its benchmark:
//!
//! * [`int::bzip2`] — bucket stores at SFC-set-aliasing strides (the paper:
//!   "over 50% of dynamic stores must be replayed because of set conflicts
//!   in the SFC");
//! * [`int::mcf`] — parallel pointer-dereferences at MDT-set-aliasing strides
//!   ("over 16% of dynamic loads must be replayed because of set conflicts
//!   in the MDT");
//! * [`int::vpr_route`], [`fp::ammp`], [`fp::equake`] — stores in the shadow
//!   of hard-to-predict branches, re-read soon after ("roughly 20% of all
//!   dynamic loads must be replayed because of corruptions in the SFC");
//! * [`int::gzip`], [`fp::mesa`] — recurring same-address store pairs whose
//!   output dependences the ENF predictor must learn ("the decreased rates
//!   of output dependence violations in gzip, vpr route, and mesa yield
//!   significant increases in their respective IPC's");
//! * the FP suite — streaming sweeps over arrays smaller than the aggressive
//!   machine's 1024-instruction window, so consecutive sweeps overlap in
//!   flight: the capacity-limited LSQ stalls dispatch while the
//!   address-indexed structures keep going (the Figure 6 effect).
//!
//! # Examples
//!
//! ```
//! use aim_workloads::{Scale, Workload};
//!
//! let suite = aim_workloads::all(Scale::Tiny);
//! assert_eq!(suite.len(), 20);
//! let mcf = aim_workloads::by_name("mcf", Scale::Tiny).unwrap();
//! assert_eq!(mcf.name, "mcf");
//! ```

pub mod fp;
pub mod int;
mod kernel;
pub mod stress;

pub use kernel::{KernelBuilder, Xorshift};

use aim_isa::Program;

/// Which of the paper's two benchmark suites a kernel belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECint 2000 analogue.
    Int,
    /// SPECfp 2000 analogue.
    Fp,
}

/// Dynamic instruction budget of a kernel.
///
/// The paper runs up to 300 M instructions per benchmark; this simulator
/// targets tractable runs whose steady-state statistics are already stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ≈ 3–6 k dynamic instructions; for unit and integration tests.
    Tiny,
    /// ≈ 25–40 k dynamic instructions; for quick experiments.
    Small,
    /// ≈ 80–140 k dynamic instructions; for the paper-figure harnesses.
    Full,
    /// ≈ 2 M dynamic instructions (≈ 18× `Full`) — long enough to stress the
    /// kilo-entry window and far-memory tier. Intractable in full-detail
    /// simulation; meant for the sampled fast-forward mode.
    Huge,
}

impl Scale {
    /// The approximate dynamic-instruction target of this scale.
    pub fn target_instrs(self) -> u64 {
        match self {
            Scale::Tiny => 4_000,
            Scale::Small => 32_000,
            Scale::Full => 110_000,
            Scale::Huge => 2_000_000,
        }
    }

    /// Approximate outer-iteration multiplier kernels derive their loop
    /// bounds from.
    pub fn iterations(self, per_iter_cost: u64) -> i64 {
        (self.target_instrs() / per_iter_cost.max(1)).max(8) as i64
    }
}

/// A named benchmark kernel.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The SPEC benchmark this kernel mirrors.
    pub name: &'static str,
    /// Which suite average it contributes to.
    pub suite: Suite,
    /// The assembled program (with initial data image).
    pub program: Program,
}

type KernelFn = fn(Scale) -> Program;

const REGISTRY: &[(&str, Suite, KernelFn)] = &[
    ("bzip2", Suite::Int, int::bzip2),
    ("crafty", Suite::Int, int::crafty),
    ("gap", Suite::Int, int::gap),
    ("gcc", Suite::Int, int::gcc),
    ("gzip", Suite::Int, int::gzip),
    ("mcf", Suite::Int, int::mcf),
    ("parser", Suite::Int, int::parser),
    ("perlbmk", Suite::Int, int::perlbmk),
    ("twolf", Suite::Int, int::twolf),
    ("vortex", Suite::Int, int::vortex),
    ("vpr_place", Suite::Int, int::vpr_place),
    ("vpr_route", Suite::Int, int::vpr_route),
    ("ammp", Suite::Fp, fp::ammp),
    ("applu", Suite::Fp, fp::applu),
    ("apsi", Suite::Fp, fp::apsi),
    ("art", Suite::Fp, fp::art),
    ("equake", Suite::Fp, fp::equake),
    ("mesa", Suite::Fp, fp::mesa),
    ("mgrid", Suite::Fp, fp::mgrid),
    ("swim", Suite::Fp, fp::swim),
];

/// Builds every kernel (12 int + 8 fp, including `mesa`).
pub fn all(scale: Scale) -> Vec<Workload> {
    REGISTRY
        .iter()
        .map(|&(name, suite, f)| Workload {
            name,
            suite,
            program: f(scale),
        })
        .collect()
}

/// Builds the kernel named `name`, if it exists.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    REGISTRY
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|&(name, suite, f)| Workload {
            name,
            suite,
            program: f(scale),
        })
}

/// The names of all kernels, int suite first (the paper's figure order).
pub fn names() -> Vec<&'static str> {
    REGISTRY.iter().map(|(n, _, _)| *n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_isa::Interpreter;

    #[test]
    fn registry_is_complete() {
        let w = all(Scale::Tiny);
        assert_eq!(w.len(), 20);
        assert_eq!(w.iter().filter(|w| w.suite == Suite::Int).count(), 12);
        assert_eq!(w.iter().filter(|w| w.suite == Suite::Fp).count(), 8);
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("swim", Scale::Tiny).is_some());
        assert!(by_name("doom", Scale::Tiny).is_none());
    }

    #[test]
    fn every_kernel_runs_clean_architecturally() {
        for w in all(Scale::Tiny) {
            let mut interp = Interpreter::new(&w.program);
            let trace = interp
                .run(2_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(trace.halted(), "{} did not halt", w.name);
            assert!(
                trace.len() > 1_000,
                "{} too short: {} instrs",
                w.name,
                trace.len()
            );
        }
    }

    #[test]
    fn scales_order_dynamic_lengths() {
        for name in ["gzip", "swim"] {
            let mut lens = Vec::new();
            for scale in [Scale::Tiny, Scale::Small] {
                let w = by_name(name, scale).unwrap();
                let trace = Interpreter::new(&w.program).run(10_000_000).unwrap();
                lens.push(trace.len());
            }
            assert!(lens[0] < lens[1], "{name}: {lens:?}");
        }
    }

    #[test]
    fn huge_scale_is_10_to_100x_full() {
        let target = Scale::Huge.target_instrs();
        let full = Scale::Full.target_instrs();
        assert!(
            (10 * full..=100 * full).contains(&target),
            "Huge target {target} outside 10–100× Full ({full})"
        );
        // Spot-check an actual dynamic length: a kernel at Huge must run at
        // least 10× its Full-scale length.
        for name in ["gzip", "swim"] {
            let mut lens = Vec::new();
            for scale in [Scale::Full, Scale::Huge] {
                let w = by_name(name, scale).unwrap();
                let trace = Interpreter::new(&w.program).run(20_000_000).unwrap();
                assert!(trace.halted(), "{name} did not halt at {scale:?}");
                lens.push(trace.len());
            }
            assert!(
                lens[1] >= 10 * lens[0],
                "{name}: Huge ran {} instrs vs Full {}",
                lens[1],
                lens[0]
            );
        }
    }

    #[test]
    fn huge_scale_programs_are_deterministic() {
        for name in ["mcf", "equake"] {
            let a = by_name(name, Scale::Huge).unwrap();
            let b = by_name(name, Scale::Huge).unwrap();
            assert_eq!(
                format!("{:?}", a.program),
                format!("{:?}", b.program),
                "{name}: Huge program not reproducible"
            );
        }
    }

    #[test]
    fn kernels_have_memory_traffic() {
        for w in all(Scale::Tiny) {
            let trace = Interpreter::new(&w.program).run(2_000_000).unwrap();
            let loads = trace
                .records()
                .iter()
                .filter(|r| r.mem_load.is_some())
                .count();
            let stores = trace
                .records()
                .iter()
                .filter(|r| r.mem_store.is_some())
                .count();
            assert!(loads > 100, "{}: only {loads} loads", w.name);
            // mcf is deliberately load-dominated; every kernel still stores.
            assert!(stores > 5, "{}: only {stores} stores", w.name);
        }
    }
}
