//! SPECfp 2000 analogue kernels.
//!
//! The FP suite's defining property in the paper's Figure 6 is *memory-level
//! parallelism*: long, regular sweeps keep far more loads and stores in
//! flight than a 120×80 LSQ can hold, so the capacity-free SFC/MDT comes out
//! ~2% ahead. The sweeps here are 8×-unrolled ping-pong (Jacobi) phases over
//! arrays much longer than the window, so the main body is hazard-free and
//! branch-light.
//!
//! The suite's anti/output dependences — the ones whose enforcement the paper
//! shows is cheap because they are "rarely on a process's critical path" —
//! come from the **residual mailbox** idiom ([`residual_mailbox`]): once per
//! unrolled chunk, a cheap progress store and a slow residual store hit one
//! fixed address. Unenforced (NOT-ENF), consecutive chunks' mailbox stores
//! violate output dependences and flush the machine's huge window
//! constantly; enforced, the predictor serializes just those two static
//! stores at negligible cost.
//!
//! Array bases are deliberately *not* power-of-two-congruent (they carry
//! distinct sub-page offsets), so equal indices of different arrays never
//! collide in one MDT/SFC set — the benign layout real allocators usually
//! produce, which the paper's well-behaved FP codes enjoy.

use aim_isa::{Program, Reg};
use aim_types::Addr;

use crate::kernel::{KernelBuilder, Xorshift};
use crate::Scale;

const A_BASE: i64 = 0x0300_0000;
const B_BASE: i64 = 0x0310_0208;
const C_BASE: i64 = 0x0320_0410;

fn r(i: u8) -> Reg {
    Reg::new(i)
}

fn random_table(k: &mut KernelBuilder, base: i64, words: usize, seed: u64) {
    let mut rng = Xorshift::new(seed);
    let data: Vec<u64> = (0..words).map(|_| rng.next_u64() & 0xffff_ffff).collect();
    k.asm.data_words(Addr(base as u64), &data);
}

/// Emits the *residual mailbox* idiom, inline (branchless) at the end of an
/// unrolled chunk: a cheap "progress" store (data: the chunk counter, ready
/// at dispatch) followed by a slow "residual" store (data: a multiply chain
/// over a chunk value in `r8`) to the **same fixed address** (`r23`).
///
/// Consecutive chunks therefore put an older-but-slow store and a
/// younger-but-fast store to one address in flight together — the paper's
/// off-critical-path **output dependences** (§3.1).
pub fn residual_mailbox(k: &mut KernelBuilder) {
    k.asm.sd(r(12), r(23), 0); // progress store: data ready at dispatch
    k.asm.mul(r(22), r(22), r(8)); // slow residual chain (3-cycle muls
    k.asm.muli(r(22), r(22), 0x9E37_79B1); // fed by this chunk's loads)
    k.asm.xor(r(22), r(22), r(8));
    k.asm.sd(r(22), r(23), 0); // residual store: data ready late
}

/// Emits one 8×-unrolled Jacobi phase over `n` elements:
/// `dst[i+1] = (src[i] + src[i+1] + src[i+2]) >> 1 + 1`, with a
/// [`residual_mailbox`] per chunk. Every element's loads are independent
/// (maximum memory-level parallelism) and phases of length `n` ≫ window
/// never overlap, so the main body is hazard-free.
///
/// Clobbers r6–r9, r12–r13 and the mailbox registers r22/r23.
fn jacobi_phase(k: &mut KernelBuilder, label: &str, src: Reg, dst: Reg, n: i64) {
    assert!(n % 8 == 0);
    k.asm.movi(r(12), 0);
    k.asm.label(label);
    k.asm.slli(r(6), r(12), 6); // chunk byte offset (8 elements)
    k.asm.add(r(6), r(6), src);
    k.asm.add(r(13), r(6), dst);
    k.asm.sub(r(13), r(13), src); // dst chunk base without re-shifting
    for e in 0..8i64 {
        k.asm.ld(r(7), r(6), 8 * e);
        k.asm.ld(r(8), r(6), 8 * e + 8);
        k.asm.ld(r(9), r(6), 8 * e + 16);
        k.asm.add(r(7), r(7), r(8));
        k.asm.add(r(7), r(7), r(9));
        k.asm.srli(r(7), r(7), 1);
        k.asm.addi(r(7), r(7), 1);
        k.asm.sd(r(7), r(13), 8 * e + 8);
    }
    residual_mailbox(k);
    k.asm.addi(r(12), r(12), 1);
    k.asm.movi(r(9), n / 8);
    k.asm.blt(r(12), r(9), label);
}

/// `swim` — shallow-water modelling.
///
/// The archetypal streaming stencil: ping-pong 3-point Jacobi sweeps A→B,
/// B→A over 1024-element (8 KiB) fields, with the [`residual_mailbox`]
/// chunk stores.
pub fn swim(scale: Scale) -> Program {
    // 8 KiB fields (16 KiB combined): past the 8 KiB L1, so steady-state loads miss to L2 and
    // the window stays deep — the memory-level parallelism the LSQ must hold.
    let n: i64 = if scale == Scale::Tiny { 128 } else { 1024 };
    let mut k = KernelBuilder::new();
    let iters = ((scale.target_instrs() / (2 * 10 * n as u64)).max(1)) as i64;
    random_table(&mut k, A_BASE, (n + 2) as usize, 201);
    random_table(&mut k, B_BASE, (n + 2) as usize, 215);

    k.asm.movi(r(1), iters);
    k.asm.movi(r(10), A_BASE);
    k.asm.movi(r(11), B_BASE);
    k.asm.movi(r(22), 0x5117);
    k.asm.movi(r(23), C_BASE);
    k.asm.label("outer");
    jacobi_phase(&mut k, "fwd", r(10), r(11), n);
    jacobi_phase(&mut k, "bwd", r(11), r(10), n);
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "outer");
    k.asm.halt();
    k.finish()
}

/// `mgrid` — multigrid solver.
///
/// A 2-D-flavoured Jacobi ping-pong with neighbours at ±1 and ±16 words —
/// more loads per store than `swim`, same hazard-free unrolled main body
/// plus the [`residual_mailbox`] chunk stores.
pub fn mgrid(scale: Scale) -> Program {
    const DIM: i64 = 16;
    // 8 KiB interiors (16 KiB combined): L1-missing, window-deepening (see `swim`).
    let n: i64 = if scale == Scale::Tiny { 128 } else { 1024 };
    let mut k = KernelBuilder::new();
    let iters = ((scale.target_instrs() / (2 * 15 * n as u64)).max(1)) as i64;
    random_table(&mut k, A_BASE, (n + 2 * DIM + 2) as usize, 202);
    random_table(&mut k, B_BASE, (n + 2 * DIM + 2) as usize, 216);

    k.asm.movi(r(1), iters);
    k.asm.movi(r(10), A_BASE + DIM * 8);
    k.asm.movi(r(11), B_BASE + DIM * 8);
    k.asm.movi(r(22), 0x316D);
    k.asm.movi(r(23), C_BASE);

    let phase = |k: &mut KernelBuilder, label: &str, src: Reg, dst: Reg| {
        k.asm.movi(r(12), 0);
        k.asm.label(label);
        k.asm.slli(r(6), r(12), 6);
        k.asm.add(r(6), r(6), src);
        k.asm.add(r(13), r(6), dst);
        k.asm.sub(r(13), r(13), src);
        for e in 0..8i64 {
            k.asm.ld(r(7), r(6), 8 * e - 8);
            k.asm.ld(r(8), r(6), 8 * e + 8);
            k.asm.add(r(7), r(7), r(8));
            k.asm.ld(r(8), r(6), 8 * (e - DIM));
            k.asm.add(r(7), r(7), r(8));
            k.asm.ld(r(8), r(6), 8 * (e + DIM));
            k.asm.add(r(7), r(7), r(8));
            k.asm.srli(r(7), r(7), 2);
            k.asm.slli(r(9), r(7), 2);
            k.asm.xor(r(7), r(7), r(9));
            k.asm.addi(r(7), r(7), 3);
            k.asm.sd(r(7), r(13), 8 * e);
            if e == 7 {
                k.asm.mov(r(8), r(7)); // feed the residual chain
            }
        }
        residual_mailbox(k);
        k.asm.addi(r(12), r(12), 1);
        k.asm.movi(r(9), n / 8);
        k.asm.blt(r(12), r(9), label);
    };
    k.asm.label("outer");
    phase(&mut k, "fwd", r(10), r(11));
    phase(&mut k, "bwd", r(11), r(10));
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "outer");
    k.asm.halt();
    k.finish()
}

/// `applu` — parabolic/elliptic PDE solver.
///
/// Lower/upper alternation: a forward A→B Jacobi sweep followed by a
/// *backward* B→A sweep (descending chunks), both with the
/// [`residual_mailbox`] chunk stores.
pub fn applu(scale: Scale) -> Program {
    // 8 KiB fields (16 KiB combined): L1-missing, window-deepening (see `swim`).
    let n: i64 = if scale == Scale::Tiny { 128 } else { 1024 };
    let mut k = KernelBuilder::new();
    let iters = ((scale.target_instrs() / (2 * 10 * n as u64)).max(1)) as i64;
    random_table(&mut k, A_BASE, (n + 2) as usize, 203);
    random_table(&mut k, B_BASE, (n + 2) as usize, 217);

    k.asm.movi(r(1), iters);
    k.asm.movi(r(10), A_BASE);
    k.asm.movi(r(11), B_BASE);
    k.asm.movi(r(22), 0xA991);
    k.asm.movi(r(23), C_BASE);

    k.asm.label("outer");
    jacobi_phase(&mut k, "lower", r(10), r(11), n);
    // Backward phase: descending chunks, B→A.
    k.asm.movi(r(12), n / 8 - 1);
    k.asm.label("upper");
    k.asm.slli(r(6), r(12), 6);
    k.asm.add(r(6), r(6), r(11));
    k.asm.add(r(13), r(6), r(10));
    k.asm.sub(r(13), r(13), r(11));
    for e in (0..8i64).rev() {
        k.asm.ld(r(7), r(6), 8 * e);
        k.asm.ld(r(8), r(6), 8 * e + 16);
        k.asm.add(r(7), r(7), r(8));
        k.asm.srli(r(7), r(7), 1);
        k.asm.sd(r(7), r(13), 8 * e + 8);
    }
    residual_mailbox(&mut k);
    k.asm.subi(r(12), r(12), 1);
    k.asm.bge(r(12), Reg::ZERO, "upper");
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "outer");
    k.asm.halt();
    k.finish()
}

/// `apsi` — pollutant-transport weather code.
///
/// Three interleaved streams (read A and B, write C), 8×-unrolled, over
/// 1024-word fields: pure multi-stream memory-level parallelism with no
/// main-body hazards — the kernel that most purely exposes LSQ capacity
/// limits — plus the [`residual_mailbox`] chunk stores.
pub fn apsi(scale: Scale) -> Program {
    let mut k = KernelBuilder::new();
    let chunks = (scale.target_instrs() / 70).max(8) as i64;
    random_table(&mut k, A_BASE, 1024, 204);
    random_table(&mut k, B_BASE, 1024, 205);

    k.asm.movi(r(1), chunks);
    k.asm.movi(r(10), A_BASE);
    k.asm.movi(r(11), B_BASE);
    k.asm.movi(r(14), C_BASE);
    k.asm.movi(r(12), 0); // chunk counter
    k.asm.movi(r(22), 0xA951);
    k.asm.movi(r(23), C_BASE + 0x8000);

    k.asm.label("loop");
    k.asm.andi(r(6), r(12), 127); // wrap over 128 chunks = 1024 words
    k.asm.slli(r(6), r(6), 6);
    for e in 0..8i64 {
        k.asm.add(r(7), r(6), r(10));
        k.asm.ld(r(8), r(7), 8 * e);
        k.asm.add(r(7), r(6), r(11));
        k.asm.ld(r(9), r(7), 8 * e);
        k.asm.mul(r(8), r(8), r(9));
        k.asm.srli(r(8), r(8), 3);
        k.asm.add(r(7), r(6), r(14));
        k.asm.sd(r(8), r(7), 8 * e);
    }
    // Mailbox every other chunk: beyond the baseline window, well inside
    // the aggressive one.
    k.asm.andi(r(7), r(12), 1);
    k.asm.bne(r(7), Reg::ZERO, "no_mb");
    residual_mailbox(&mut k);
    k.asm.label("no_mb");
    k.asm.addi(r(12), r(12), 1);
    k.asm.blt(r(12), r(1), "loop");
    k.asm.halt();
    k.finish()
}

/// `art` — neural-network image recognition.
///
/// Load-dominated dot products: long multiply-accumulate streams over weight
/// and feature vectors, with an activation mailbox per 8-element dot — the
/// aggressive machine's load queue is the binding resource.
pub fn art(scale: Scale) -> Program {
    let mut k = KernelBuilder::new();
    let iters = scale.iterations(38);
    random_table(&mut k, A_BASE, 1024, 206);
    random_table(&mut k, B_BASE, 1024, 207);

    k.asm.movi(r(1), iters);
    k.asm.movi(r(10), A_BASE); // weights
    k.asm.movi(r(11), B_BASE); // features
    k.asm.movi(r(21), 0);
    k.asm.movi(r(23), C_BASE); // activation mailbox

    k.asm.label("outer");
    k.asm.movi(r(20), 0);
    k.asm.andi(r(6), r(21), 1023);
    k.asm.slli(r(6), r(6), 3);
    for e in 0..8i64 {
        k.asm.add(r(7), r(6), r(10));
        k.asm.ld(r(8), r(7), 8 * e);
        k.asm.add(r(7), r(6), r(11));
        k.asm.ld(r(9), r(7), 8 * e);
        k.asm.mul(r(8), r(8), r(9));
        k.asm.add(r(20), r(20), r(8));
    }
    k.asm.addi(r(21), r(21), 8);
    // Activation mailbox every other dot product: a fast progress store,
    // then the slow dot result, to the same address — art's
    // off-critical-path output deps, spaced beyond the baseline window.
    k.asm.andi(r(6), r(21), 8);
    k.asm.bne(r(6), Reg::ZERO, "no_mb");
    k.asm.sd(r(21), r(23), 0);
    k.asm.srli(r(20), r(20), 6);
    k.asm.sd(r(20), r(23), 0);
    k.asm.label("no_mb");
    k.asm.srli(r(20), r(20), 1);
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "outer");
    k.asm.halt();
    k.finish()
}

/// `equake` — seismic wave simulation (sparse matvec).
///
/// The paper groups equake with vpr_route and ammp: "roughly 20% of all
/// dynamic loads must be replayed because of corruptions in the SFC" (§3.2).
/// Sparse rows accumulate into a *hot* 16-slot result vector that is
/// immediately re-read; the per-element magnitude test is data-dependent
/// (resolving only after its operand load) and mispredicts often, and every
/// mispredict's partial flush corrupts the 16 hot accumulator lines the next
/// iterations re-read.
pub fn equake(scale: Scale) -> Program {
    let mut k = KernelBuilder::new();
    let iters = scale.iterations(24);
    // Column indices and values.
    let mut rng = Xorshift::new(208);
    let cols: Vec<u64> = (0..1024).map(|_| rng.below(512)).collect();
    k.asm.data_words(Addr(A_BASE as u64), &cols);
    random_table(&mut k, B_BASE, 1024, 209);
    random_table(&mut k, C_BASE, 512, 210);

    k.asm.movi(r(1), iters);
    k.asm.movi(r(10), A_BASE); // column indices
    k.asm.movi(r(11), B_BASE); // matrix values
    k.asm.movi(r(12), C_BASE); // result vector (hot, 16 slots used)
    k.asm.movi(r(21), 0);

    k.asm.label("loop");
    k.asm.andi(r(6), r(21), 1023);
    k.asm.slli(r(6), r(6), 3);
    k.asm.add(r(7), r(6), r(10));
    k.asm.ld(r(8), r(7), 0); // col = IDX[j]
    k.asm.add(r(7), r(6), r(11));
    k.asm.ld(r(9), r(7), 0); // val = A[j]
                             // Skip tiny elements: data-dependent, resolves only after the value
                             // load; poorly predictable.
    k.asm.andi(r(13), r(9), 1);
    k.asm.beq(r(13), Reg::ZERO, "skip");
    // Y[col & 15] += val (hot accumulator RMW, re-read soon after).
    k.asm.andi(r(8), r(8), 15);
    k.asm.slli(r(8), r(8), 3);
    k.asm.add(r(8), r(8), r(12));
    k.asm.ld(r(14), r(8), 0);
    k.asm.add(r(14), r(14), r(9));
    k.asm.sd(r(14), r(8), 0);
    k.asm.label("skip");
    k.asm.addi(r(21), r(21), 1);
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "loop");
    k.asm.halt();
    k.finish()
}

/// `ammp` — molecular dynamics.
///
/// Force accumulation with a cutoff test: each pair interaction reads two
/// particle positions, computes a slow interaction product, branches on a
/// data-dependent cutoff (resolving late, so plenty of younger force stores
/// are already in flight when it mispredicts), and RMWs both particles'
/// *hot* 16-slot force array when it passes — the paper's third
/// ~20 %-corruption benchmark.
pub fn ammp(scale: Scale) -> Program {
    let mut k = KernelBuilder::new();
    let iters = scale.iterations(32);
    random_table(&mut k, A_BASE, 128, 211); // positions
    random_table(&mut k, B_BASE, 16, 212); // forces (hot)

    k.asm.movi(r(1), iters);
    k.asm.movi(r(5), 0xA117);
    k.asm.movi(r(10), A_BASE);
    k.asm.movi(r(11), B_BASE);
    k.asm.movi(r(19), 0x0500_0000); // neighbour list (32 KiB, L1-missing)
    k.asm.movi(r(16), 0);
    k.asm.movi(r(20), 0);
    k.asm.movi(r(21), 0); // neighbour cursor

    k.asm.label("loop");
    // Cold neighbour-list load: keeps completed force stores in flight, so
    // mispredict flushes are partial and their corruption marks persist.
    k.asm.andi(r(6), r(21), 0xfff); // 32 KiB: warms fast, then L1-missing
    k.asm.slli(r(6), r(6), 3);
    k.asm.add(r(6), r(6), r(19));
    k.asm.ld(r(7), r(6), 0);
    k.asm.add(r(20), r(20), r(7));
    k.asm.addi(r(21), r(21), 17); // stride past the line: every access misses
    k.xorshift(r(5), r(6));
    k.index_word(r(7), r(5), 0, 127, r(10));
    k.index_word(r(8), r(5), 12, 127, r(10));
    k.asm.ld(r(9), r(7), 0); // pos[i]
    k.asm.ld(r(12), r(8), 0); // pos[j]
    k.asm.mul(r(13), r(9), r(12)); // slow "interaction" product
    k.asm.sub(r(13), r(13), r(9));
    // Cutoff: data-dependent and late-resolving.
    k.asm.andi(r(14), r(13), 1);
    k.asm.beq(r(14), Reg::ZERO, "cut");
    // Force RMWs on both particles (hot 128-byte region).
    k.index_word(r(15), r(5), 0, 15, r(11));
    k.asm.ld(r(16), r(15), 0);
    k.asm.add(r(16), r(16), r(13));
    k.asm.sd(r(16), r(15), 0);
    k.index_word(r(17), r(5), 12, 15, r(11));
    k.asm.ld(r(18), r(17), 0);
    k.asm.sub(r(18), r(18), r(13));
    k.asm.sd(r(18), r(17), 0);
    // Second shell of interactions on neighbouring slots.
    k.asm.ld(r(16), r(15), 8);
    k.asm.add(r(16), r(16), r(13));
    k.asm.sd(r(16), r(15), 8);
    k.asm.ld(r(16), r(17), 8);
    k.asm.sub(r(16), r(16), r(13));
    k.asm.sd(r(16), r(17), 8);
    // Energy re-read of the freshly updated slots: after a mispredict's
    // partial flush these hit corrupt lines — the replay/violation path
    // that turns corruption into real cost (the paper's ammp pathology).
    k.asm.ld(r(16), r(15), 0);
    k.asm.add(r(20), r(20), r(16));
    k.asm.ld(r(18), r(17), 0);
    k.asm.add(r(20), r(20), r(18));
    k.asm.label("cut");
    k.asm.add(r(20), r(20), r(13));
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "loop");
    k.asm.halt();
    k.finish()
}

/// `mesa` — 3-D rasterization.
///
/// Overlapping short spans with a z-test: the span origin jitters inside a
/// 64-pixel window, so nearby spans rewrite the same pixels while both are
/// in flight — the recurring same-address store pairs whose *output*
/// dependences the paper credits for mesa's ENF speedup (§3.1). The older
/// store waits on its (16 KiB, L1-missing) z-load while the younger's often
/// issues first. Evaluated only in the baseline study, as in the paper.
pub fn mesa(scale: Scale) -> Program {
    let mut k = KernelBuilder::new();
    let iters = scale.iterations(22);
    random_table(&mut k, A_BASE, 2048, 213); // z-buffer (16 KiB: L1 misses)
    random_table(&mut k, B_BASE, 2048, 214); // color buffer

    k.asm.movi(r(1), iters);
    k.asm.movi(r(5), 0x3E5A);
    k.asm.movi(r(10), A_BASE);
    k.asm.movi(r(11), B_BASE);
    k.asm.movi(r(21), 0); // pixel cursor within the span window
    k.asm.movi(r(22), 0); // span-window base

    k.asm.label("loop");
    k.xorshift(r(5), r(6));
    // New span every 8 pixels: jitter the window base by 0..8 pixels.
    k.asm.andi(r(6), r(21), 7);
    k.asm.bne(r(6), Reg::ZERO, "samespan");
    k.asm.andi(r(7), r(5), 7);
    k.asm.add(r(22), r(22), r(7));
    k.asm.label("samespan");
    // Pixel = (window + cursor) & 2047.
    k.asm.add(r(6), r(22), r(21));
    k.asm.andi(r(6), r(6), 2047);
    k.asm.slli(r(6), r(6), 3);
    k.asm.add(r(7), r(6), r(10));
    k.asm.ld(r(8), r(7), 0); // old z (may miss L1)
    k.asm.srli(r(9), r(5), 40); // new z (random)
                                // Depth test: data-dependent.
    k.asm.bltu(r(8), r(9), "occluded");
    k.asm.sd(r(9), r(7), 0); // write z
    k.asm.add(r(12), r(6), r(11));
    k.asm.sd(r(5), r(12), 0); // write color
    k.asm.label("occluded");
    k.asm.addi(r(21), r(21), 1);
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "loop");
    k.asm.halt();
    k.finish()
}
