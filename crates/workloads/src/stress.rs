//! Random-program generation for differential stress testing.
//!
//! [`random_program`] produces arbitrary-but-valid programs: every load and
//! store is naturally aligned inside a small pool (maximizing in-flight
//! address collisions), control flow always terminates, and all semantics
//! are interpreter-clean. The integration suite runs these through the
//! out-of-order pipeline under every backend and checks retirement against
//! the architectural trace — the strongest end-to-end property in the repo.

use aim_isa::{Program, Reg};
use aim_types::{AccessSize, Addr};

use crate::kernel::{KernelBuilder, Xorshift};

const POOL_BASE: i64 = 0x0500_0000;
const POOL_WORDS: i64 = 64; // small: lots of in-flight aliasing

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// Generates a terminating random program: `outer_iters` iterations of a
/// `body_ops`-operation random body over a tiny shared memory pool.
///
/// Register conventions: `r1` outer counter, `r2` pool base, `r5..=r17`
/// free-for-all values, `r28`/`r29` scratch for address formation.
///
/// # Examples
///
/// ```
/// use aim_isa::Interpreter;
/// use aim_workloads::stress::random_program;
///
/// let p = random_program(123, 50, 30);
/// let trace = Interpreter::new(&p).run(1_000_000).unwrap();
/// assert!(trace.halted());
/// ```
pub fn random_program(seed: u64, outer_iters: i64, body_ops: usize) -> Program {
    let mut rng = Xorshift::new(seed);
    let mut k = KernelBuilder::new();

    // Pool contents.
    let data: Vec<u64> = (0..POOL_WORDS).map(|_| rng.next_u64()).collect();
    k.asm.data_words(Addr(POOL_BASE as u64), &data);

    k.asm.movi(r(1), outer_iters);
    k.asm.movi(r(2), POOL_BASE);
    for v in 5..=17u8 {
        k.asm.movi(r(v), rng.next_u64() as i64);
    }

    k.asm.label("outer");
    let mut skip_label = 0usize;
    for op in 0..body_ops {
        let val_reg = |rng: &mut Xorshift| r(5 + rng.below(13) as u8);
        match rng.below(10) {
            0..=2 => {
                // ALU register op.
                let (d, a, b) = (val_reg(&mut rng), val_reg(&mut rng), val_reg(&mut rng));
                match rng.below(5) {
                    0 => k.asm.add(d, a, b),
                    1 => k.asm.sub(d, a, b),
                    2 => k.asm.xor(d, a, b),
                    3 => k.asm.mul(d, a, b),
                    _ => k.asm.slt(d, a, b),
                }
            }
            3 | 4 => {
                // ALU immediate op.
                let (d, a) = (val_reg(&mut rng), val_reg(&mut rng));
                let imm = (rng.next_u64() & 0xffff) as i64 - 0x8000;
                match rng.below(4) {
                    0 => k.asm.addi(d, a, imm),
                    1 => k.asm.xori(d, a, imm),
                    2 => k.asm.slli(d, a, (rng.below(63)) as i64),
                    _ => k.asm.srli(d, a, (rng.below(63)) as i64),
                }
            }
            5 | 6 => {
                // Aligned load from the pool.
                let (d, idx) = (val_reg(&mut rng), val_reg(&mut rng));
                let size = AccessSize::ALL[rng.below(4) as usize];
                let sub = (rng.below(8 / size.bytes()) * size.bytes()) as i64;
                k.asm.andi(r(28), idx, POOL_WORDS - 1);
                k.asm.slli(r(28), r(28), 3);
                k.asm.add(r(28), r(28), r(2));
                k.asm.load(d, r(28), sub, size);
            }
            7 | 8 => {
                // Aligned store to the pool.
                let (s, idx) = (val_reg(&mut rng), val_reg(&mut rng));
                let size = AccessSize::ALL[rng.below(4) as usize];
                let sub = (rng.below(8 / size.bytes()) * size.bytes()) as i64;
                k.asm.andi(r(29), idx, POOL_WORDS - 1);
                k.asm.slli(r(29), r(29), 3);
                k.asm.add(r(29), r(29), r(2));
                k.asm.store(s, r(29), sub, size);
            }
            _ => {
                // Forward conditional branch over the next generated ops
                // (emitted as a skippable ALU pair so labels stay simple).
                let (a, b) = (val_reg(&mut rng), val_reg(&mut rng));
                let label = format!("skip_{seed}_{skip_label}_{op}");
                skip_label += 1;
                match rng.below(3) {
                    0 => k.asm.beq(a, b, &label),
                    1 => k.asm.blt(a, b, &label),
                    _ => k.asm.bne(a, b, &label),
                }
                let (d, x) = (val_reg(&mut rng), val_reg(&mut rng));
                k.asm.add(d, d, x);
                k.asm.xori(d, d, 0x55);
                k.asm.label(&label);
            }
        }
    }
    k.asm.subi(r(1), r(1), 1);
    k.asm.bne(r(1), Reg::ZERO, "outer");
    k.asm.halt();
    k.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_isa::Interpreter;

    #[test]
    fn random_programs_terminate_cleanly() {
        for seed in 0..20 {
            let p = random_program(seed, 40, 25);
            let trace = Interpreter::new(&p)
                .run(2_000_000)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(trace.halted(), "seed {seed} did not halt");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_program(7, 10, 20);
        let b = random_program(7, 10, 20);
        assert_eq!(a.instrs(), b.instrs());
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_program(1, 10, 20);
        let b = random_program(2, 10, 20);
        assert_ne!(a.instrs(), b.instrs());
    }

    #[test]
    fn memory_traffic_present() {
        let p = random_program(3, 50, 30);
        let trace = Interpreter::new(&p).run(2_000_000).unwrap();
        assert!(trace.records().iter().any(|r| r.mem_load.is_some()));
        assert!(trace.records().iter().any(|r| r.mem_store.is_some()));
    }
}
