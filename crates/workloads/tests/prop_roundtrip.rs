//! Property test: every random stress program disassembles (via
//! `aim_isa::program_to_asm`) to text whose reparse is identical — full
//! coverage of the generator's instruction vocabulary through the text
//! front end.

use aim_isa::{parse_program, program_to_asm};
use aim_workloads::stress::random_program;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn stress_programs_round_trip(seed in any::<u64>()) {
        let program = random_program(seed, 5, 20);
        let text = program_to_asm(&program);
        let again = parse_program(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        prop_assert_eq!(program.instrs(), again.instrs());
        prop_assert_eq!(program.data(), again.data());
    }

    /// Every named kernel also survives the disassemble/reparse loop.
    #[test]
    fn kernels_round_trip(idx in 0usize..20) {
        let names = aim_workloads::names();
        let w = aim_workloads::by_name(names[idx], aim_workloads::Scale::Tiny).unwrap();
        let text = program_to_asm(&w.program);
        let again = parse_program(&text)
            .map_err(|e| TestCaseError::fail(format!("{}: {e}", w.name)))?;
        prop_assert_eq!(w.program.instrs(), again.instrs());
    }
}
