//! Fundamental types shared by every crate in the `aim-sim` workspace.
//!
//! `aim-sim` reproduces Stone, Woley & Frank, *"Address-Indexed Memory
//! Disambiguation and Store-to-Load Forwarding"* (MICRO-38, 2005). The types
//! here are the vocabulary of that paper's memory subsystem:
//!
//! * [`Addr`] — a 64-bit byte address,
//! * [`SeqNum`] — the monotonically increasing sequence number that imposes a
//!   total order on in-flight loads and stores (§2.2 of the paper),
//! * [`AccessSize`] / [`MemAccess`] — naturally aligned 1/2/4/8-byte accesses,
//! * [`ByteMask`] — the per-byte valid/corrupt masks used by the store
//!   forwarding cache (§2.3).
//!
//! # Examples
//!
//! ```
//! use aim_types::{Addr, AccessSize, MemAccess};
//!
//! let access = MemAccess::new(Addr(0x1004), AccessSize::Word).unwrap();
//! assert_eq!(access.word_addr(), Addr(0x1000));
//! assert_eq!(access.mask().count(), 4);
//! ```

mod addr;
mod mask;
mod sample;
mod seq;
mod violation;
pub mod wire;

pub use addr::{AccessSize, Addr, MemAccess, MisalignedAccess};
pub use mask::ByteMask;
pub use sample::SampleSpec;
pub use seq::SeqNum;
pub use violation::ViolationKind;

/// Number of bytes tracked by one SFC line / one MDT entry at the paper's
/// default granularity ("Empirically, we observe that an 8-byte granular MDT
/// is adequate for a 64-bit processor", §2.2).
pub const WORD_BYTES: u64 = 8;

/// Computes `numerator / denominator` as a percentage, returning 0.0 for an
/// empty denominator. Used throughout the statistics reporting.
///
/// # Examples
///
/// ```
/// assert_eq!(aim_types::percent(1, 4), 25.0);
/// assert_eq!(aim_types::percent(3, 0), 0.0);
/// ```
pub fn percent(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        100.0 * numerator as f64 / denominator as f64
    }
}

/// Geometric mean of a slice of positive values; 0.0 for an empty slice.
///
/// Figures 5 and 6 of the paper report per-suite averages of normalized IPC;
/// we follow the common convention of using the geometric mean for ratios.
///
/// # Examples
///
/// ```
/// let g = aim_types::geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_basic() {
        assert_eq!(percent(0, 10), 0.0);
        assert_eq!(percent(10, 10), 100.0);
        assert_eq!(percent(1, 8), 12.5);
    }

    #[test]
    fn percent_zero_denominator_is_zero() {
        assert_eq!(percent(7, 0), 0.0);
    }

    #[test]
    fn geomean_of_identical_values_is_that_value() {
        let g = geomean(&[3.5, 3.5, 3.5]);
        assert!((g - 3.5).abs() < 1e-12);
    }

    #[test]
    fn geomean_empty_is_zero() {
        assert_eq!(geomean(&[]), 0.0);
    }
}
