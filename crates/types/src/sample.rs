//! Sampled-simulation policy.

/// The sampling policy of a sampled (fast-forward) simulation run: the
/// pipeline alternates *detailed* cycle-accurate windows of `detail_insts`
/// instructions with *functional warm-up* stretches of `warm_insts`
/// instructions (the architectural interpreter trace drives the cache
/// hierarchy, branch predictor, and memory-backend training — no
/// cycle-accurate pipeline), for `periods` repetitions starting with a
/// detailed window on the cold machine; any remainder of the program runs
/// functionally. Timing statistics are extrapolated from the detailed
/// windows; architectural state is exact in every mode.
///
/// All three fields must be nonzero: a zero-length phase would degenerate
/// into either full detail or pure functional simulation, both of which are
/// spelled by *not* sampling.
///
/// # Examples
///
/// ```
/// use aim_types::SampleSpec;
///
/// let spec = SampleSpec::new(2_000, 1_000, 8).unwrap();
/// assert_eq!(spec.period_insts(), 3_000);
/// assert!(SampleSpec::new(0, 1_000, 8).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SampleSpec {
    /// Instructions fast-forwarded functionally before each detailed window.
    pub warm_insts: u64,
    /// Instructions simulated cycle-accurately per detailed window.
    pub detail_insts: u64,
    /// Number of warm+detail periods; after the last one the rest of the
    /// program runs functionally.
    pub periods: u32,
}

impl SampleSpec {
    /// Builds a spec, rejecting any zero field.
    pub fn new(warm_insts: u64, detail_insts: u64, periods: u32) -> Option<SampleSpec> {
        if warm_insts == 0 || detail_insts == 0 || periods == 0 {
            return None;
        }
        Some(SampleSpec {
            warm_insts,
            detail_insts,
            periods,
        })
    }

    /// Instructions covered by one warm+detail period.
    pub fn period_insts(&self) -> u64 {
        self.warm_insts + self.detail_insts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_zero_fields() {
        assert!(SampleSpec::new(1, 1, 1).is_some());
        assert!(SampleSpec::new(0, 1, 1).is_none());
        assert!(SampleSpec::new(1, 0, 1).is_none());
        assert!(SampleSpec::new(1, 1, 0).is_none());
    }

    #[test]
    fn debug_text_is_stable() {
        // The canonical-config cache key embeds this Debug rendering; the
        // exact text is a compatibility surface.
        let spec = SampleSpec::new(2_000, 500, 10).unwrap();
        assert_eq!(
            format!("{spec:?}"),
            "SampleSpec { warm_insts: 2000, detail_insts: 500, periods: 10 }"
        );
    }
}
