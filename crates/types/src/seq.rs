//! Sequence numbers: the total order on in-flight instructions.

use core::fmt;

/// A sequence number imposing a total order on in-flight instructions.
///
/// The paper's MDT "uses sequence numbers to detect memory dependence
/// violations. Conceptually, the processor assigns sequence numbers that
/// impose a total ordering on all in-flight loads and stores" (§2.2). The
/// paper notes that techniques for handling overflow of narrow hardware
/// sequence numbers are well known; the simulator sidesteps the issue with a
/// 64-bit counter that never wraps in practice.
///
/// Sequence numbers are assigned at rename, so program order and sequence
/// order coincide for instructions on the same path; a refetched instruction
/// receives a fresh, larger sequence number.
///
/// # Examples
///
/// ```
/// use aim_types::SeqNum;
///
/// let a = SeqNum(10);
/// assert_eq!(a.next(), SeqNum(11));
/// assert!(a < a.next());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNum(pub u64);

impl SeqNum {
    /// The smallest sequence number; precedes every assigned number.
    pub const ZERO: SeqNum = SeqNum(0);

    /// The successor sequence number.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on overflow (2^64 in-flight instructions is
    /// unreachable in any simulation).
    #[inline]
    pub fn next(self) -> SeqNum {
        SeqNum(self.0 + 1)
    }

    /// Whether `self` is older (earlier in program order) than `other`.
    #[inline]
    pub fn is_older_than(self, other: SeqNum) -> bool {
        self < other
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for SeqNum {
    fn from(v: u64) -> Self {
        SeqNum(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_numeric() {
        assert!(SeqNum(1).is_older_than(SeqNum(2)));
        assert!(!SeqNum(2).is_older_than(SeqNum(2)));
        assert!(!SeqNum(3).is_older_than(SeqNum(2)));
    }

    #[test]
    fn next_increments() {
        assert_eq!(SeqNum::ZERO.next(), SeqNum(1));
    }

    #[test]
    fn display() {
        assert_eq!(SeqNum(42).to_string(), "#42");
    }
}
