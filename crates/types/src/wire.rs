//! The `aim-serve` wire format: length-prefixed flat-JSON frames.
//!
//! The simulation job server ships requests and responses as independent
//! **frames** — a 4-byte big-endian length followed by that many bytes of
//! UTF-8 JSON — over any byte stream (a Unix socket, a stdin/stdout pipe,
//! or the in-memory [`duplex`] used by tests and the replay driver). The
//! offline build has no serde, so the JSON layer here is deliberately
//! minimal: every message is one **flat** object whose values are strings,
//! non-negative integers, floats, or booleans ([`WireValue`]). That is all
//! the job protocol needs, and keeping nesting out of the grammar keeps
//! the hand-written parser small enough to test exhaustively.
//!
//! # Examples
//!
//! ```
//! use aim_types::wire::{read_frame, write_frame, WireMsg, WireValue};
//!
//! let mut msg = WireMsg::new();
//! msg.put_str("op", "sim");
//! msg.put_u64("round", 2);
//! msg.put_bool("verify", true);
//!
//! let mut buf = Vec::new();
//! write_frame(&mut buf, msg.to_json().as_bytes()).unwrap();
//! let frame = read_frame(&mut buf.as_slice()).unwrap().unwrap();
//! let back = WireMsg::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
//! assert_eq!(back.str_field("op"), Some("sim"));
//! assert_eq!(back.u64_field("round"), Some(2));
//! assert_eq!(back.bool_field("verify"), Some(true));
//! ```

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex};

/// Hard ceiling on a frame's payload length. A peer announcing more than
/// this is treated as corrupt rather than trusted with an allocation.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates the underlying I/O error; rejects payloads larger than
/// [`MAX_FRAME_BYTES`] with [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap", payload.len()),
        ));
    }
    let len = u32::try_from(payload.len()).expect("cap fits in u32");
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean
/// end-of-stream (EOF exactly at a frame boundary).
///
/// # Errors
///
/// Propagates the underlying I/O error; a truncated frame or an announced
/// length beyond [`MAX_FRAME_BYTES`] is [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "stream ended inside a frame header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len}-byte frame (cap {MAX_FRAME_BYTES})"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(io::ErrorKind::InvalidData, "stream ended inside a frame body")
        } else {
            e
        }
    })?;
    Ok(Some(payload))
}

/// One value of a flat wire message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireValue {
    /// A JSON string.
    Str(String),
    /// A non-negative JSON integer.
    U64(u64),
    /// A JSON number with a fractional part (or one too large for `u64`).
    F64(f64),
    /// A JSON boolean.
    Bool(bool),
}

/// A flat JSON object: ordered `(key, value)` pairs, serialized in
/// insertion order so renderings are byte-stable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireMsg {
    fields: Vec<(String, WireValue)>,
}

impl WireMsg {
    /// An empty message.
    pub fn new() -> WireMsg {
        WireMsg::default()
    }

    /// Appends a string field.
    pub fn put_str(&mut self, key: &str, value: &str) -> &mut WireMsg {
        self.fields.push((key.to_string(), WireValue::Str(value.to_string())));
        self
    }

    /// Appends an integer field.
    pub fn put_u64(&mut self, key: &str, value: u64) -> &mut WireMsg {
        self.fields.push((key.to_string(), WireValue::U64(value)));
        self
    }

    /// Appends a float field.
    pub fn put_f64(&mut self, key: &str, value: f64) -> &mut WireMsg {
        self.fields.push((key.to_string(), WireValue::F64(value)));
        self
    }

    /// Appends a boolean field.
    pub fn put_bool(&mut self, key: &str, value: bool) -> &mut WireMsg {
        self.fields.push((key.to_string(), WireValue::Bool(value)));
        self
    }

    /// The first value stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&WireValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The string stored under `key`, if it is one.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(WireValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// The integer stored under `key`, if it is one.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        match self.get(key) {
            Some(WireValue::U64(n)) => Some(*n),
            _ => None,
        }
    }

    /// The number stored under `key` (integer fields widen losslessly for
    /// values below 2^53).
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(WireValue::F64(x)) => Some(*x),
            Some(WireValue::U64(n)) => Some(*n as f64),
            _ => None,
        }
    }

    /// The boolean stored under `key`, if it is one.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        match self.get(key) {
            Some(WireValue::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// Renders the message as one flat JSON object, fields in insertion
    /// order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2 + self.fields.len() * 24);
        out.push('{');
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(key, &mut out);
            out.push_str("\":");
            match value {
                WireValue::Str(s) => {
                    out.push('"');
                    escape_into(s, &mut out);
                    out.push('"');
                }
                WireValue::U64(n) => out.push_str(&n.to_string()),
                WireValue::F64(x) if x.is_finite() => out.push_str(&format!("{x:.6}")),
                WireValue::F64(_) => out.push_str("0.000000"),
                WireValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }

    /// Parses one flat JSON object.
    ///
    /// # Errors
    ///
    /// Returns a one-line description for malformed JSON, nested
    /// containers (the wire grammar is flat by design), or invalid escapes.
    pub fn parse(text: &str) -> Result<WireMsg, String> {
        let mut p = Parser { chars: text.char_indices().peekable(), text };
        p.skip_ws();
        p.expect('{')?;
        let mut msg = WireMsg::new();
        p.skip_ws();
        if p.eat('}') {
            p.skip_ws();
            return p.finish(msg);
        }
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(':')?;
            p.skip_ws();
            let value = p.value()?;
            msg.fields.push((key, value));
            p.skip_ws();
            if p.eat(',') {
                continue;
            }
            p.expect('}')?;
            p.skip_ws();
            return p.finish(msg);
        }
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn eat(&mut self, want: char) -> bool {
        if matches!(self.chars.peek(), Some((_, c)) if *c == want) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected `{want}` at byte {i}, found `{c}`")),
            None => Err(format!("expected `{want}`, found end of input")),
        }
    }

    fn finish(&mut self, msg: WireMsg) -> Result<WireMsg, String> {
        match self.chars.next() {
            None => Ok(msg),
            Some((i, c)) => Err(format!("trailing `{c}` at byte {i} after the object")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".to_string()),
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .chars
                                .next()
                                .and_then(|(_, c)| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some((_, c)) => out.push(c),
            }
        }
    }

    fn value(&mut self) -> Result<WireValue, String> {
        match self.chars.peek() {
            Some((_, '"')) => Ok(WireValue::Str(self.string()?)),
            Some((_, 't' | 'f')) => {
                let word = self.bare_word();
                match word.as_str() {
                    "true" => Ok(WireValue::Bool(true)),
                    "false" => Ok(WireValue::Bool(false)),
                    other => Err(format!("unknown literal `{other}`")),
                }
            }
            Some((i, '{' | '[')) => {
                Err(format!("nested container at byte {i}: wire messages are flat"))
            }
            Some((start, _)) => {
                let start = *start;
                let word = self.bare_word();
                if word.is_empty() {
                    return Err(format!("expected a value at byte {start}"));
                }
                if !word.contains(['.', 'e', 'E']) {
                    if let Ok(n) = word.parse::<u64>() {
                        return Ok(WireValue::U64(n));
                    }
                }
                word.parse::<f64>()
                    .map(WireValue::F64)
                    .map_err(|_| format!("bad number `{word}` at byte {start}"))
            }
            None => Err("expected a value, found end of input".to_string()),
        }
    }

    /// Consumes a run of number/literal characters.
    fn bare_word(&mut self) -> String {
        let start = match self.chars.peek() {
            Some((i, _)) => *i,
            None => return String::new(),
        };
        let mut end = start;
        while let Some((i, c)) = self.chars.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '+') {
                end = i + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        self.text[start..end].to_string()
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// One direction of an in-memory byte pipe.
#[derive(Debug, Default)]
struct Chan {
    buf: Mutex<ChanBuf>,
    readable: Condvar,
}

#[derive(Debug, Default)]
struct ChanBuf {
    bytes: VecDeque<u8>,
    closed: bool,
}

/// One end of an in-memory duplex stream (see [`duplex`]). Reading blocks
/// until the peer writes or hangs up; dropping an end closes its outgoing
/// direction, so the peer's reads drain and then report end-of-stream.
#[derive(Debug)]
pub struct PipeEnd {
    rx: Arc<Chan>,
    tx: Arc<Chan>,
}

/// Creates a connected pair of in-memory byte streams — the "pipe mode"
/// transport the replay driver and the protocol tests run the server over,
/// with the same blocking semantics as a local socket but no file-system
/// footprint.
pub fn duplex() -> (PipeEnd, PipeEnd) {
    let a = Arc::new(Chan::default());
    let b = Arc::new(Chan::default());
    (
        PipeEnd { rx: Arc::clone(&a), tx: Arc::clone(&b) },
        PipeEnd { rx: b, tx: a },
    )
}

impl Read for PipeEnd {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut buf = self.rx.buf.lock().expect("pipe lock");
        while buf.bytes.is_empty() && !buf.closed {
            buf = self.rx.readable.wait(buf).expect("pipe lock");
        }
        let n = buf.bytes.len().min(out.len());
        for slot in out.iter_mut().take(n) {
            *slot = buf.bytes.pop_front().expect("counted byte");
        }
        Ok(n)
    }
}

impl Write for PipeEnd {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut buf = self.tx.buf.lock().expect("pipe lock");
        if buf.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer hung up"));
        }
        buf.bytes.extend(data.iter().copied());
        self.tx.readable.notify_all();
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeEnd {
    fn drop(&mut self) {
        // Close the outgoing direction so the peer's pending reads return.
        let mut buf = self.tx.buf.lock().expect("pipe lock");
        buf.closed = true;
        self.tx.readable.notify_all();
        // And wake any reader of our own (now orphaned) incoming side.
        let mut rx = self.rx.buf.lock().expect("pipe lock");
        rx.closed = true;
        self.rx.readable.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"third frame").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"first");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"third frame");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn truncated_and_oversized_frames_are_invalid_data() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let err = read_frame(&mut [0u8, 0, 0].as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let huge = (MAX_FRAME_BYTES as u32 + 1).to_be_bytes();
        let err = read_frame(&mut huge.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn messages_round_trip_through_json() {
        let mut msg = WireMsg::new();
        msg.put_str("op", "sim")
            .put_str("kernel", "gzip \"quoted\"\\path")
            .put_u64("cells", 240)
            .put_f64("wall", 1.25)
            .put_bool("verify", false);
        let json = msg.to_json();
        let back = WireMsg::parse(&json).unwrap();
        assert_eq!(back.str_field("op"), Some("sim"));
        assert_eq!(back.str_field("kernel"), Some("gzip \"quoted\"\\path"));
        assert_eq!(back.u64_field("cells"), Some(240));
        assert_eq!(back.f64_field("wall"), Some(1.25));
        assert_eq!(back.f64_field("cells"), Some(240.0));
        assert_eq!(back.bool_field("verify"), Some(false));
        assert_eq!(back.get("absent"), None);
    }

    #[test]
    fn parser_rejects_nesting_and_junk() {
        assert!(WireMsg::parse("{}").unwrap().get("x").is_none());
        assert!(WireMsg::parse(" { \"a\" : 1 } ").is_ok());
        assert!(WireMsg::parse("{\"a\": {\"b\": 1}}").unwrap_err().contains("flat"));
        assert!(WireMsg::parse("{\"a\": [1]}").unwrap_err().contains("flat"));
        assert!(WireMsg::parse("{\"a\": 1} trailing").unwrap_err().contains("trailing"));
        assert!(WireMsg::parse("{\"a\": nope}").is_err());
        assert!(WireMsg::parse("{\"a\": \"unterminated}").is_err());
        assert!(WireMsg::parse("\"not an object\"").is_err());
    }

    #[test]
    fn negative_and_fractional_numbers_parse_as_f64() {
        let msg = WireMsg::parse("{\"x\": -2.5, \"y\": 3, \"z\": 1e3}").unwrap();
        assert_eq!(msg.f64_field("x"), Some(-2.5));
        assert_eq!(msg.u64_field("y"), Some(3));
        assert_eq!(msg.f64_field("z"), Some(1000.0));
    }

    #[test]
    fn control_characters_escape_and_unescape() {
        let mut msg = WireMsg::new();
        msg.put_str("s", "tab\there\nline");
        let json = msg.to_json();
        assert!(json.contains("\\u0009") || json.contains("\\t"));
        assert_eq!(WireMsg::parse(&json).unwrap().str_field("s"), Some("tab\there\nline"));
    }

    #[test]
    fn duplex_carries_frames_across_threads() {
        let (mut a, mut b) = duplex();
        let echo = std::thread::spawn(move || {
            while let Some(frame) = read_frame(&mut b).unwrap() {
                let mut reply = frame.clone();
                reply.reverse();
                write_frame(&mut b, &reply).unwrap();
            }
        });
        write_frame(&mut a, b"abc").unwrap();
        assert_eq!(read_frame(&mut a).unwrap().unwrap(), b"cba");
        write_frame(&mut a, b"xy").unwrap();
        assert_eq!(read_frame(&mut a).unwrap().unwrap(), b"yx");
        drop(a);
        echo.join().unwrap();
    }

    #[test]
    fn dropping_an_end_reports_eof_then_broken_pipe() {
        let (mut a, b) = duplex();
        drop(b);
        assert!(read_frame(&mut a).unwrap().is_none());
        assert!(write_frame(&mut a, b"x").is_err());
    }
}
