//! Memory dependence violation kinds.

use core::fmt;

/// The kind of memory dependence violated by out-of-order execution.
///
/// "Because loads and stores access the SFC out of order, the accesses to a
/// given address may violate true, anti, or output dependences" (paper §2).
/// The memory disambiguation table detects all three kinds; the conventional
/// load/store queue only ever suffers (and reports) true violations, because
/// it renames in-flight stores to the same address (§2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Read-after-write: a load executed before an earlier store to the same
    /// address.
    True,
    /// Write-after-read: a store executed before an earlier load to the same
    /// address.
    Anti,
    /// Write-after-write: a store executed before an earlier store to the
    /// same address.
    Output,
}

impl ViolationKind {
    /// All three kinds, in the paper's customary order.
    pub const ALL: [ViolationKind; 3] = [
        ViolationKind::True,
        ViolationKind::Anti,
        ViolationKind::Output,
    ];
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::True => "true",
            ViolationKind::Anti => "anti",
            ViolationKind::Output => "output",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(ViolationKind::True.to_string(), "true");
        assert_eq!(ViolationKind::Anti.to_string(), "anti");
        assert_eq!(ViolationKind::Output.to_string(), "output");
    }

    #[test]
    fn all_lists_each_once() {
        assert_eq!(ViolationKind::ALL.len(), 3);
    }
}
