//! Byte addresses and naturally aligned memory accesses.

use core::fmt;

use crate::mask::ByteMask;
use crate::WORD_BYTES;

/// A 64-bit byte address.
///
/// Newtype over `u64` so that addresses cannot be confused with data values or
/// sequence numbers in the simulator's many `u64`-shaped interfaces.
///
/// # Examples
///
/// ```
/// use aim_types::Addr;
///
/// let a = Addr(0x1234);
/// assert_eq!(a.word_addr(), Addr(0x1230));
/// assert_eq!(a.offset_in_word(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The address of the aligned 8-byte word containing this byte.
    ///
    /// The store forwarding cache and the memory disambiguation table are both
    /// indexed at this granularity (paper §2.2–2.3).
    #[inline]
    pub fn word_addr(self) -> Addr {
        Addr(self.0 & !(WORD_BYTES - 1))
    }

    /// Index of the containing aligned word (i.e. `addr / 8`).
    #[inline]
    pub fn word_index(self) -> u64 {
        self.0 / WORD_BYTES
    }

    /// Byte offset of this address within its aligned 8-byte word (0..8).
    #[inline]
    pub fn offset_in_word(self) -> u32 {
        (self.0 % WORD_BYTES) as u32
    }

    /// The address `bytes` past this one (wrapping, like hardware adders).
    #[inline]
    pub fn wrapping_add(self, bytes: u64) -> Addr {
        Addr(self.0.wrapping_add(bytes))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

/// The width of a memory access in bytes: 1, 2, 4 or 8.
///
/// The simulated ISA (like the paper's 64-bit MIPS target) performs only
/// naturally aligned accesses, so an access never straddles two aligned
/// words; each access maps to exactly one SFC line and one MDT entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessSize {
    /// One byte (`LB`/`SB`).
    Byte,
    /// Two bytes (`LH`/`SH`).
    Half,
    /// Four bytes (`LW`/`SW`).
    Word,
    /// Eight bytes (`LD`/`SD`).
    Double,
}

impl AccessSize {
    /// Width in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            AccessSize::Byte => 1,
            AccessSize::Half => 2,
            AccessSize::Word => 4,
            AccessSize::Double => 8,
        }
    }

    /// All four sizes, smallest first. Handy for tests and generators.
    pub const ALL: [AccessSize; 4] = [
        AccessSize::Byte,
        AccessSize::Half,
        AccessSize::Word,
        AccessSize::Double,
    ];
}

impl fmt::Display for AccessSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

/// Error returned when constructing a [`MemAccess`] whose address is not
/// naturally aligned for its size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MisalignedAccess {
    /// The offending address.
    pub addr: Addr,
    /// The requested size.
    pub size: AccessSize,
}

impl fmt::Display for MisalignedAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "misaligned {} access at {}", self.size, self.addr)
    }
}

impl std::error::Error for MisalignedAccess {}

/// A naturally aligned memory access: an address plus a size.
///
/// # Examples
///
/// ```
/// use aim_types::{Addr, AccessSize, MemAccess};
///
/// let a = MemAccess::new(Addr(0x100), AccessSize::Double).unwrap();
/// assert_eq!(a.mask().bits(), 0xff);
/// assert!(MemAccess::new(Addr(0x101), AccessSize::Half).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    addr: Addr,
    size: AccessSize,
}

impl MemAccess {
    /// Creates an access, validating natural alignment.
    ///
    /// # Errors
    ///
    /// Returns [`MisalignedAccess`] if `addr` is not a multiple of the access
    /// width.
    pub fn new(addr: Addr, size: AccessSize) -> Result<MemAccess, MisalignedAccess> {
        if !addr.0.is_multiple_of(size.bytes()) {
            Err(MisalignedAccess { addr, size })
        } else {
            Ok(MemAccess { addr, size })
        }
    }

    /// The byte address of the access.
    #[inline]
    pub fn addr(self) -> Addr {
        self.addr
    }

    /// The access width.
    #[inline]
    pub fn size(self) -> AccessSize {
        self.size
    }

    /// The aligned 8-byte word containing the access.
    #[inline]
    pub fn word_addr(self) -> Addr {
        self.addr.word_addr()
    }

    /// The per-byte mask of this access within its containing aligned word.
    ///
    /// Bit *i* of the mask corresponds to byte `word_addr + i`.
    #[inline]
    pub fn mask(self) -> ByteMask {
        ByteMask::for_access(self.addr.offset_in_word(), self.size.bytes() as u32)
    }

    /// Whether two accesses touch at least one common byte.
    #[inline]
    pub fn overlaps(self, other: MemAccess) -> bool {
        self.word_addr() == other.word_addr() && self.mask().intersects(other.mask())
    }
}

impl fmt::Display for MemAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.size, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_addr_masks_low_bits() {
        assert_eq!(Addr(0x1007).word_addr(), Addr(0x1000));
        assert_eq!(Addr(0x1008).word_addr(), Addr(0x1008));
        assert_eq!(Addr(0).word_addr(), Addr(0));
    }

    #[test]
    fn offsets_cover_word() {
        for i in 0..8 {
            assert_eq!(Addr(0x40 + i).offset_in_word(), i as u32);
        }
    }

    #[test]
    fn aligned_access_construction() {
        for &size in &AccessSize::ALL {
            let a = MemAccess::new(Addr(0x80), size).unwrap();
            assert_eq!(a.mask().count(), size.bytes() as u32);
        }
    }

    #[test]
    fn misaligned_access_rejected() {
        let err = MemAccess::new(Addr(0x81), AccessSize::Half).unwrap_err();
        assert_eq!(err.addr, Addr(0x81));
        assert_eq!(err.size, AccessSize::Half);
        assert!(err.to_string().contains("misaligned"));
    }

    #[test]
    fn byte_access_is_never_misaligned() {
        for off in 0..8 {
            assert!(MemAccess::new(Addr(0x90 + off), AccessSize::Byte).is_ok());
        }
    }

    #[test]
    fn overlap_requires_same_word_and_mask_intersection() {
        let a = MemAccess::new(Addr(0x100), AccessSize::Word).unwrap();
        let b = MemAccess::new(Addr(0x102), AccessSize::Half).unwrap();
        let c = MemAccess::new(Addr(0x104), AccessSize::Word).unwrap();
        let d = MemAccess::new(Addr(0x108), AccessSize::Word).unwrap();
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
        assert!(!a.overlaps(d));
    }

    #[test]
    fn access_mask_positions() {
        let a = MemAccess::new(Addr(0x106), AccessSize::Half).unwrap();
        assert_eq!(a.mask().bits(), 0b1100_0000);
    }

    #[test]
    fn display_formats() {
        let a = MemAccess::new(Addr(0x10), AccessSize::Word).unwrap();
        assert_eq!(a.to_string(), "4B@0x10");
        assert_eq!(Addr(255).to_string(), "0xff");
    }
}
