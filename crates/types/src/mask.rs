//! Per-byte masks over an aligned 8-byte word.

use core::fmt;
use core::ops::{BitAnd, BitOr, Not};

/// A per-byte mask over an aligned 8-byte word.
///
/// Bit *i* refers to byte *i* of the word. The store forwarding cache keeps
/// two of these per line: the *valid* mask ("which bytes hold in-flight store
/// data") and the *corrupt* mask ("which bytes may have been overwritten by a
/// canceled store"), exactly as in Figure 3 of the paper.
///
/// # Examples
///
/// ```
/// use aim_types::ByteMask;
///
/// let lo = ByteMask::for_access(0, 4);
/// let hi = ByteMask::for_access(4, 4);
/// assert_eq!(lo | hi, ByteMask::FULL);
/// assert!(!lo.intersects(hi));
/// assert!(ByteMask::FULL.covers(lo));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ByteMask(u8);

impl ByteMask {
    /// The empty mask (no bytes).
    pub const EMPTY: ByteMask = ByteMask(0);
    /// The full mask (all eight bytes).
    pub const FULL: ByteMask = ByteMask(0xff);

    /// Mask covering `len` bytes starting at byte `offset` of the word.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len > 8` (the access would straddle the word;
    /// such accesses are rejected earlier by [`MemAccess`]).
    ///
    /// [`MemAccess`]: crate::MemAccess
    #[inline]
    pub fn for_access(offset: u32, len: u32) -> ByteMask {
        assert!(offset + len <= 8, "access straddles the aligned word");
        if len == 0 {
            return ByteMask::EMPTY;
        }
        let ones = if len == 8 { 0xff } else { (1u8 << len) - 1 };
        ByteMask(ones << offset)
    }

    /// Raw bit pattern (bit *i* = byte *i*).
    #[inline]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Constructs a mask from a raw bit pattern.
    #[inline]
    pub fn from_bits(bits: u8) -> ByteMask {
        ByteMask(bits)
    }

    /// Whether no bytes are selected.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of selected bytes.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the two masks share at least one byte.
    #[inline]
    pub fn intersects(self, other: ByteMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether every byte of `other` is also in `self`.
    #[inline]
    pub fn covers(self, other: ByteMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether byte `i` (0..8) is selected.
    #[inline]
    pub fn contains_byte(self, i: u32) -> bool {
        debug_assert!(i < 8);
        self.0 & (1 << i) != 0
    }

    /// Iterator over the selected byte indices, ascending.
    pub fn iter_bytes(self) -> impl Iterator<Item = u32> {
        (0..8u32).filter(move |&i| self.contains_byte(i))
    }
}

impl BitOr for ByteMask {
    type Output = ByteMask;
    #[inline]
    fn bitor(self, rhs: ByteMask) -> ByteMask {
        ByteMask(self.0 | rhs.0)
    }
}

impl BitAnd for ByteMask {
    type Output = ByteMask;
    #[inline]
    fn bitand(self, rhs: ByteMask) -> ByteMask {
        ByteMask(self.0 & rhs.0)
    }
}

impl Not for ByteMask {
    type Output = ByteMask;
    #[inline]
    fn not(self) -> ByteMask {
        ByteMask(!self.0)
    }
}

impl fmt::Display for ByteMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08b}", self.0)
    }
}

impl fmt::Binary for ByteMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_access_full_word() {
        assert_eq!(ByteMask::for_access(0, 8), ByteMask::FULL);
    }

    #[test]
    fn for_access_empty() {
        assert_eq!(ByteMask::for_access(3, 0), ByteMask::EMPTY);
    }

    #[test]
    fn for_access_positions() {
        assert_eq!(ByteMask::for_access(2, 2).bits(), 0b0000_1100);
        assert_eq!(ByteMask::for_access(7, 1).bits(), 0b1000_0000);
    }

    #[test]
    #[should_panic(expected = "straddles")]
    fn for_access_straddle_panics() {
        let _ = ByteMask::for_access(6, 4);
    }

    #[test]
    fn covers_and_intersects() {
        let word = ByteMask::for_access(0, 4);
        let half = ByteMask::for_access(2, 2);
        assert!(word.covers(half));
        assert!(!half.covers(word));
        assert!(word.intersects(half));
        assert!(!word.intersects(ByteMask::for_access(4, 4)));
        assert!(word.covers(ByteMask::EMPTY));
    }

    #[test]
    fn bit_ops() {
        let a = ByteMask::for_access(0, 2);
        let b = ByteMask::for_access(1, 2);
        assert_eq!((a | b).bits(), 0b111);
        assert_eq!((a & b).bits(), 0b010);
        assert_eq!((!a).bits(), 0b1111_1100);
    }

    #[test]
    fn iter_bytes_ascending() {
        let m = ByteMask::from_bits(0b1010_0001);
        let v: Vec<u32> = m.iter_bytes().collect();
        assert_eq!(v, vec![0, 5, 7]);
    }

    #[test]
    fn display_is_binary() {
        assert_eq!(ByteMask::from_bits(0b101).to_string(), "00000101");
    }
}
