//! Property tests: byte-mask algebra and access geometry.

use aim_types::{AccessSize, Addr, ByteMask, MemAccess};
use proptest::prelude::*;

fn mask() -> impl Strategy<Value = ByteMask> {
    any::<u8>().prop_map(ByteMask::from_bits)
}

fn access() -> impl Strategy<Value = MemAccess> {
    (any::<u32>(), 0usize..4).prop_map(|(addr, size_idx)| {
        let size = AccessSize::ALL[size_idx];
        let aligned = (addr as u64) & !(size.bytes() - 1);
        MemAccess::new(Addr(aligned), size).expect("aligned by construction")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Boolean-algebra laws the SFC's mask manipulation relies on.
    #[test]
    fn mask_algebra_laws(a in mask(), b in mask(), c in mask()) {
        // Commutativity and associativity.
        prop_assert_eq!(a | b, b | a);
        prop_assert_eq!(a & b, b & a);
        prop_assert_eq!((a | b) | c, a | (b | c));
        prop_assert_eq!((a & b) & c, a & (b & c));
        // Distribution.
        prop_assert_eq!(a & (b | c), (a & b) | (a & c));
        // De Morgan.
        prop_assert_eq!(!(a | b), !a & !b);
        // Involution and identities.
        prop_assert_eq!(!!a, a);
        prop_assert_eq!(a | ByteMask::EMPTY, a);
        prop_assert_eq!(a & ByteMask::FULL, a);
    }

    #[test]
    fn covers_and_intersects_agree(a in mask(), b in mask()) {
        prop_assert_eq!(a.covers(b), (a & b) == b);
        prop_assert_eq!(a.intersects(b), !(a & b).is_empty());
        // covers is reflexive and transitive through intersection.
        prop_assert!(a.covers(a));
        if a.covers(b) && !b.is_empty() {
            prop_assert!(a.intersects(b));
        }
    }

    #[test]
    fn count_matches_iteration(a in mask()) {
        prop_assert_eq!(a.count() as usize, a.iter_bytes().count());
        let rebuilt = a
            .iter_bytes()
            .fold(ByteMask::EMPTY, |m, i| m | ByteMask::for_access(i, 1));
        prop_assert_eq!(rebuilt, a);
    }

    /// The mask of an access covers exactly its bytes within the word.
    #[test]
    fn access_mask_geometry(a in access()) {
        let m = a.mask();
        prop_assert_eq!(m.count() as u64, a.size().bytes());
        let offset = a.addr().offset_in_word();
        for (k, byte) in m.iter_bytes().enumerate() {
            prop_assert_eq!(byte, offset + k as u32);
        }
        // The word address is aligned and contains the access.
        prop_assert_eq!(a.word_addr().0 % 8, 0);
        prop_assert!(a.addr().0 >= a.word_addr().0);
        prop_assert!(a.addr().0 + a.size().bytes() <= a.word_addr().0 + 8);
    }

    /// Overlap is symmetric, reflexive, and equivalent to byte-range
    /// intersection.
    #[test]
    fn overlap_is_byte_range_intersection(a in access(), b in access()) {
        prop_assert!(a.overlaps(a));
        prop_assert_eq!(a.overlaps(b), b.overlaps(a));
        let a_range = a.addr().0..a.addr().0 + a.size().bytes();
        let b_range = b.addr().0..b.addr().0 + b.size().bytes();
        let ranges_overlap = a_range.start < b_range.end && b_range.start < a_range.end;
        prop_assert_eq!(a.overlaps(b), ranges_overlap);
    }

    #[test]
    fn percent_and_geomean_sane(n in 0u64..1_000, d in 1u64..1_000, xs in proptest::collection::vec(0.01f64..100.0, 1..20)) {
        let p = aim_types::percent(n, d);
        prop_assert!((0.0..=100_000.0).contains(&p));
        let g = aim_types::geomean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= lo * 0.999 && g <= hi * 1.001, "geomean {g} outside [{lo}, {hi}]");
    }
}
