//! The sampled-mode differential convergence gate.
//!
//! Sampled fast-forward execution trades cycle accuracy on the warm
//! stretches for wall-clock speed; these tests pin down exactly what the
//! trade gives up and what it must not:
//!
//! * **Architectural state gives up nothing.** For every kernel and every
//!   backend, the sampled run's [`FinalState`] — register file and committed
//!   memory image — is byte-identical to the architectural interpreter's,
//!   exactly as in full-detail mode.
//! * **Timing converges.** Under the gate policy below, the sampled IPC,
//!   store-to-load forward rate, and memory-ordering violation rate agree
//!   with the full-detail run within the stated tolerances below on all
//!   twenty kernels for the paper's SFC/MDT backend, the PCAX backend, and
//!   the baseline LSQ.

use aim_isa::{Interpreter, Reg};
use aim_pipeline::{
    BackendChoice, FinalState, MachineClass, Machine, SimConfig, SimStats,
};
use aim_types::SampleSpec;
use aim_workloads::Scale;

/// Relative IPC tolerance of the convergence gate.
const IPC_TOLERANCE: f64 = 0.05;
/// Tolerance on the forward/violation *rates* (events per retired
/// instruction): 5% relative, with an absolute floor so kernels where the
/// full-detail rate is itself a handful of events don't demand sub-event
/// precision from an extrapolation.
const RATE_TOLERANCE: f64 = 0.05;
const RATE_FLOOR: f64 = 0.005;

/// The gate's sampling policy: seven periods spanning the kernel's dynamic
/// length, each 7/8 detail window + 1/8 warm stretch.
/// Detail windows after a warm handoff are cycle-exact (the warm engine
/// reproduces the cache, predictor, and backend state a continuous run
/// would hold), so all sampling error comes from interpolating the
/// unmeasured gaps. Two deliberate choices follow from that: the detail
/// fraction is generous because a tens-of-kiloinstruction run has phase
/// swings that are huge relative to its length (at `Scale::Huge` the same
/// machinery converges with a few percent detail — see EXPERIMENTS.md
/// T-SAMPLE — which is where the wall-clock win lives), and the period
/// count is a *prime* because several kernels iterate a power-of-two outer
/// loop: a power-of-two schedule aliases with it, parking every warm gap on
/// the same slice of each iteration and turning gap interpolation into a
/// systematic bias (mgrid drifts +7% under an 8-period schedule, <1% under
/// this one).
fn gate_policy(trace_len: u64) -> SampleSpec {
    let period = (trace_len / 7).max(8);
    let detail = period * 7 / 8;
    SampleSpec::new(period - detail, detail, 7).expect("non-zero policy")
}

fn config(choice: BackendChoice, sampled: Option<SampleSpec>) -> SimConfig {
    let mut b = SimConfig::machine(MachineClass::Baseline).backend(choice);
    if let Some(spec) = sampled {
        b = b.sample(spec);
    }
    b.build()
}

struct RunOutcome {
    stats: SimStats,
    fin: FinalState,
}

fn run(program: &aim_isa::Program, trace: &aim_isa::Trace, cfg: SimConfig) -> RunOutcome {
    let (stats, fin) = Machine::new(program, trace, cfg)
        .run_final()
        .expect("validated run");
    RunOutcome { stats, fin }
}

fn forward_rate(s: &SimStats) -> f64 {
    s.loads_forwarded as f64 / s.retired.max(1) as f64
}

fn violation_rate(s: &SimStats) -> f64 {
    s.flushes.memory() as f64 / s.retired.max(1) as f64
}

fn assert_rate_close(kernel: &str, backend: &str, what: &str, full: f64, sampled: f64) {
    let tol = (full * RATE_TOLERANCE).max(RATE_FLOOR);
    assert!(
        (full - sampled).abs() <= tol,
        "{kernel}/{backend}: sampled {what} {sampled:.5} vs full {full:.5} (tol {tol:.5})"
    );
}

/// The tentpole acceptance gate: for all twenty kernels and the three
/// schemes under study, sampled timing converges and architectural state is
/// exact.
#[test]
fn sampled_runs_converge_and_stay_architecturally_exact() {
    let backends = [BackendChoice::SfcMdt, BackendChoice::Pcax, BackendChoice::Lsq];
    for workload in aim_workloads::all(Scale::Small) {
        let mut interp = Interpreter::new(&workload.program);
        let trace = interp.run(10 * Scale::Small.target_instrs()).expect("golden run");
        assert!(trace.halted(), "{} must halt at Small", workload.name);
        let want_regs: Vec<u64> = (0..32).map(|i| interp.reg(Reg::new(i))).collect();
        let want_mem = interp.memory().nonzero_bytes();

        for choice in backends {
            let name = workload.name;
            let token = choice.token();
            let policy = gate_policy(trace.len() as u64);
            let full = run(&workload.program, &trace, config(choice, None));
            let samp = run(&workload.program, &trace, config(choice, Some(policy)));

            // Exact architectural parity with the interpreter, both modes.
            for (mode, out) in [("full", &full), ("sampled", &samp)] {
                assert_eq!(
                    out.fin.regs, want_regs,
                    "{name}/{token}: {mode} register file diverged"
                );
                assert_eq!(
                    out.fin.mem.nonzero_bytes(),
                    want_mem,
                    "{name}/{token}: {mode} memory image diverged"
                );
            }

            // Same retirement count, and the sampled run must actually have
            // sampled: some warm coverage, some detail coverage.
            assert_eq!(full.stats.retired, samp.stats.retired, "{name}/{token}");
            let cov = samp.stats.sampled.expect("sampled coverage recorded");
            assert!(cov.warm_retired > 0, "{name}/{token}: no warm coverage");
            assert!(cov.detail_retired > 0, "{name}/{token}: no detail coverage");
            assert!(full.stats.sampled.is_none(), "{name}/{token}: full run sampled");

            // Timing convergence.
            let (fi, si) = (full.stats.ipc(), samp.stats.ipc());
            assert!(
                (fi - si).abs() <= fi * IPC_TOLERANCE,
                "{name}/{token}: sampled IPC {si:.4} vs full {fi:.4}"
            );
            assert_rate_close(
                name,
                token,
                "forward rate",
                forward_rate(&full.stats),
                forward_rate(&samp.stats),
            );
            assert_rate_close(
                name,
                token,
                "violation rate",
                violation_rate(&full.stats),
                violation_rate(&samp.stats),
            );
        }
    }
}

/// Architectural exactness is not a statistical property: it must hold for
/// *every* backend, including the bounds, not just the three the convergence
/// gate studies.
#[test]
fn sampled_final_state_is_exact_for_every_backend() {
    let workload = aim_workloads::by_name("mcf", Scale::Tiny).expect("known kernel");
    let mut interp = Interpreter::new(&workload.program);
    let trace = interp.run(10 * Scale::Tiny.target_instrs()).expect("golden run");
    assert!(trace.halted());
    let want_regs: Vec<u64> = (0..32).map(|i| interp.reg(Reg::new(i))).collect();
    let want_mem = interp.memory().nonzero_bytes();

    for choice in BackendChoice::ALL {
        let mut cfg = config(choice, None);
        cfg.sample = SampleSpec::new(400, 150, 6);
        let out = run(&workload.program, &trace, cfg);
        assert_eq!(out.fin.regs, want_regs, "{}: registers", choice.token());
        assert_eq!(
            out.fin.mem.nonzero_bytes(),
            want_mem,
            "{}: memory",
            choice.token()
        );
        assert_eq!(out.stats.retired, trace.len() as u64, "{}", choice.token());
    }
}

/// Degenerate policies stay well-defined. A warm stretch longer than the
/// program collapses the schedule to one cold detail window plus one warm
/// stretch to the end; a detail window longer than the program makes the
/// sampled run a plain full-detail run with identical cycle counts.
#[test]
fn oversized_policies_degenerate_gracefully() {
    let workload = aim_workloads::by_name("gzip", Scale::Tiny).expect("known kernel");
    let mut interp = Interpreter::new(&workload.program);
    let trace = interp.run(10 * Scale::Tiny.target_instrs()).expect("golden run");
    assert!(trace.halted());
    let want_regs: Vec<u64> = (0..32).map(|i| interp.reg(Reg::new(i))).collect();

    // Oversized warm stretch: one window, one warm remainder.
    let mut cfg = config(BackendChoice::SfcMdt, None);
    cfg.sample = SampleSpec::new(10_000_000, 1_000, 4);
    let out = run(&workload.program, &trace, cfg);
    assert_eq!(out.fin.regs, want_regs);
    let cov = out.stats.sampled.expect("coverage recorded");
    assert_eq!(cov.periods_run, 1);
    assert_eq!(cov.detail_retired, 1_000);
    assert_eq!(cov.warm_retired, trace.len() as u64 - 1_000);

    // Oversized detail window: the whole run is one detail window, so the
    // "estimate" is the exact full-detail cycle count.
    let full = run(&workload.program, &trace, config(BackendChoice::SfcMdt, None));
    let mut cfg = config(BackendChoice::SfcMdt, None);
    cfg.sample = SampleSpec::new(1_000, 10_000_000, 3);
    let out = run(&workload.program, &trace, cfg);
    assert_eq!(out.fin.regs, want_regs);
    let cov = out.stats.sampled.expect("coverage recorded");
    assert_eq!(cov.periods_run, 1);
    assert_eq!(cov.warm_retired, 0);
    assert_eq!(cov.detail_retired, trace.len() as u64);
    assert_eq!(out.stats.cycles, full.stats.cycles);
}

/// Determinism: the sampled mode is as reproducible as the detailed mode.
#[test]
fn sampled_runs_are_deterministic() {
    let workload = aim_workloads::by_name("vpr_place", Scale::Tiny).expect("known kernel");
    let trace = Interpreter::new(&workload.program)
        .run(10 * Scale::Tiny.target_instrs())
        .expect("golden run");
    let mut cfg = config(BackendChoice::SfcMdt, None);
    cfg.sample = SampleSpec::new(600, 200, 5);
    let a = run(&workload.program, &trace, cfg.clone());
    let b = run(&workload.program, &trace, cfg);
    let mut sa = a.stats;
    let mut sb = b.stats;
    sa.host = Default::default();
    sb.host = Default::default();
    assert_eq!(format!("{sa:?}"), format!("{sb:?}"));
}
