//! Property tests: the renamer against a reference architectural map under
//! random rename / write / walk-back / retire interleavings.

use aim_isa::Reg;
use aim_pipeline::{RenameDest, Renamer};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Rename architectural register `1 + (r % 31)` and write `value`.
    RenameWrite { r: u8, value: u64 },
    /// Squash the youngest `n % 4 + 1` in-flight renames (walk-back).
    Squash { n: u8 },
    /// Retire the oldest in-flight rename.
    RetireOldest,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (any::<u8>(), any::<u64>()).prop_map(|(r, value)| Op::RenameWrite { r, value }),
        1 => any::<u8>().prop_map(|n| Op::Squash { n }),
        2 => Just(Op::RetireOldest),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Invariant: after any interleaving, each architectural register's
    /// current physical mapping holds exactly the value the reference
    /// (squash-aware) architectural state expects.
    #[test]
    fn renamer_matches_reference(ops in proptest::collection::vec(op(), 1..80)) {
        let mut renamer = Renamer::new(256);
        // Reference architectural values (what the surviving writes say).
        let mut reference = [0u64; 32];
        // In-flight renames, oldest first, with the value each wrote and the
        // reference value it replaced (for squash undo).
        let mut inflight: Vec<(RenameDest, u64, u64)> = Vec::new();

        for o in ops {
            match o {
                Op::RenameWrite { r, value } => {
                    if renamer.free_count() == 0 {
                        continue; // dispatch would stall
                    }
                    let arch = Reg::new(1 + r % 31);
                    let dest = renamer.rename_dest(arch).expect("free list checked");
                    prop_assert!(!renamer.is_ready(dest.new_phys));
                    renamer.write(dest.new_phys, value);
                    let prev = reference[arch.index() as usize];
                    reference[arch.index() as usize] = value;
                    inflight.push((dest, value, prev));
                }
                Op::Squash { n } => {
                    for _ in 0..(n % 4 + 1) {
                        let Some((dest, _, prev)) = inflight.pop() else { break };
                        renamer.undo(dest);
                        reference[dest.arch.index() as usize] = prev;
                    }
                }
                Op::RetireOldest => {
                    if !inflight.is_empty() {
                        let (dest, _, _) = inflight.remove(0);
                        renamer.retire(dest);
                    }
                }
            }
            // The RAT must agree with the reference for every register.
            for i in 1..32u8 {
                let arch = Reg::new(i);
                let p = renamer.lookup(arch);
                prop_assert!(renamer.is_ready(p), "r{i} maps to a non-ready reg");
                prop_assert_eq!(
                    renamer.read(p),
                    reference[i as usize],
                    "r{} diverged", i
                );
            }
        }
    }

    /// Physical registers are conserved: free + in-flight-held is constant.
    #[test]
    fn physical_registers_are_conserved(ops in proptest::collection::vec(op(), 1..80)) {
        let total = 96usize;
        let mut renamer = Renamer::new(total);
        let initial_free = renamer.free_count();
        let mut inflight: Vec<RenameDest> = Vec::new();

        for o in ops {
            match o {
                Op::RenameWrite { r, value } => {
                    if renamer.free_count() == 0 {
                        continue;
                    }
                    let dest = renamer.rename_dest(Reg::new(1 + r % 31)).unwrap();
                    renamer.write(dest.new_phys, value);
                    inflight.push(dest);
                }
                Op::Squash { n } => {
                    for _ in 0..(n % 4 + 1) {
                        if let Some(dest) = inflight.pop() {
                            renamer.undo(dest);
                        }
                    }
                }
                Op::RetireOldest => {
                    if !inflight.is_empty() {
                        let dest = inflight.remove(0);
                        renamer.retire(dest);
                    }
                }
            }
            // Every rename takes one register, every undo or retire returns
            // one (the retired instruction frees its *old* mapping while its
            // new one becomes the architectural holding): conserved.
            prop_assert_eq!(
                renamer.free_count() + inflight.len(),
                initial_free,
                "physical registers leaked or duplicated"
            );
        }
    }
}
