//! Memory-model litmus harness: every outcome real multi-core pipelines
//! produce — on every backend, across many scheduler interleavings — must
//! be allowed by the operational reference model in `aim-isa`.
//!
//! The reference model is deliberately weaker than the machine (see
//! `aim_isa::allowed_outcomes`), so containment is a sound check; the
//! forwarding variants (`SB+fwd`, `MP+fwd`) pin specific registers in
//! *every* allowed outcome, which keeps the harness non-vacuous for the
//! store-to-load forwarding paths of each backend.
//!
//! The schedule count is environment-tunable so CI tiers can trade depth
//! for time: `AIM_LITMUS_SCHEDULES` (default 200).

use std::collections::BTreeSet;

use aim_isa::{allowed_outcomes, litmus_suite, LitmusTest, RefLimits};
use aim_pipeline::{
    run_litmus, BackendChoice, CoreSchedule, MachineClass, SimConfig,
};

const BACKENDS: [BackendChoice; 6] = [
    BackendChoice::NoSpec,
    BackendChoice::Lsq,
    BackendChoice::Filtered,
    BackendChoice::SfcMdt,
    BackendChoice::Pcax,
    BackendChoice::Oracle,
];

fn schedules() -> u64 {
    std::env::var("AIM_LITMUS_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

fn config(backend: BackendChoice) -> SimConfig {
    SimConfig::machine(MachineClass::Baseline)
        .backend(backend)
        .build()
}

fn allowed(test: &LitmusTest) -> BTreeSet<Vec<u64>> {
    allowed_outcomes(&test.programs, &test.observed, &RefLimits::default())
        .unwrap_or_else(|e| panic!("{}: reference model failed: {e}", test.name))
}

/// Runs `test` on `backend` under round-robin plus `n` seeded random
/// schedules and asserts containment; returns the distinct outcomes seen.
fn check_backend(test: &LitmusTest, backend: BackendChoice, n: u64) -> BTreeSet<Vec<u64>> {
    let allowed = allowed(test);
    let cfg = config(backend);
    let mut seen = BTreeSet::new();
    let mut schedules: Vec<CoreSchedule> = vec![CoreSchedule::RoundRobin];
    // Distinct odd seeds; the exact values are irrelevant, reproducibility
    // is what matters.
    schedules.extend((0..n).map(|i| CoreSchedule::Random {
        seed: 0xC0FE + 2 * i + 1,
    }));
    for schedule in schedules {
        let outcome = run_litmus(test, &cfg, schedule)
            .unwrap_or_else(|e| panic!("{} on {backend:?} under {schedule:?}: {e}", test.name));
        assert!(
            allowed.contains(&outcome),
            "{} on {backend:?} under {schedule:?}: outcome {outcome:?} not allowed \
             (allowed set: {allowed:?})",
            test.name
        );
        seen.insert(outcome);
    }
    seen
}

#[test]
fn litmus_all_backends_all_schedules() {
    let n = schedules();
    for test in litmus_suite() {
        for backend in BACKENDS {
            let seen = check_backend(&test, backend, n);
            assert!(!seen.is_empty(), "{} on {backend:?} produced outcomes", test.name);
        }
    }
}

#[test]
fn forwarding_is_observed_not_just_allowed() {
    // SB+fwd pins observed[0] (the forwarded read) to 1 in every allowed
    // outcome; verify the machine actually produces it on every backend —
    // i.e. the forwarding register really was loaded, not skipped.
    let test = litmus_suite()
        .into_iter()
        .find(|t| t.name == "SB+fwd")
        .expect("suite has SB+fwd");
    for backend in BACKENDS {
        let seen = check_backend(&test, backend, 20);
        for outcome in &seen {
            assert_eq!(outcome[0], 1, "{backend:?}: own store must forward");
        }
    }
}

#[test]
fn load_buffering_cycle_never_appears() {
    // Belt and braces on top of containment: the LB relaxed outcome is the
    // one behaviour that would indicate a store leaking to a sibling before
    // retirement.
    let test = litmus_suite()
        .into_iter()
        .find(|t| t.name == "LB")
        .expect("suite has LB");
    for backend in BACKENDS {
        let seen = check_backend(&test, backend, 50);
        assert!(
            !seen.contains(&vec![1, 1]),
            "{backend:?} produced the forbidden load-buffering cycle"
        );
    }
}

#[test]
fn relaxed_outcomes_are_reachable() {
    // The harness would be vacuous if the machine only ever produced the
    // sequentially consistent interleavings. Store buffering (both loads
    // miss the sibling's uncommitted store) must show up within a modest
    // schedule sweep on at least one backend.
    let test = litmus_suite()
        .into_iter()
        .find(|t| t.name == "SB")
        .expect("suite has SB");
    let mut relaxed_seen = false;
    for backend in BACKENDS {
        let seen = check_backend(&test, backend, 300);
        if seen.contains(&vec![0, 0]) {
            relaxed_seen = true;
            break;
        }
    }
    assert!(
        relaxed_seen,
        "no backend exhibited store buffering in 301 schedules each"
    );
}
