//! Targeted machine-behaviour scenarios on hand-built programs.

use aim_isa::{Assembler, Interpreter, Reg};
use aim_pipeline::{BackendChoice, MachineClass, simulate, simulate_with_trace, BackendConfig, SimConfig, SimStats};
use aim_predictor::EnforceMode;

fn r(i: u8) -> Reg {
    Reg::new(i)
}

fn run(program: &aim_isa::Program, cfg: &SimConfig) -> SimStats {
    simulate(program, cfg).expect("validated")
}

/// The paper's §2.3 running example, scaled into a loop: a store and load to
/// one address, a data-dependent branch, and a wrong-path store to the same
/// address. Wrong-path stores corrupt the SFC; every mispredict produces a
/// partial flush; and the machine still retires the architectural results.
#[test]
fn wrong_path_stores_corrupt_but_never_leak() {
    let mut asm = Assembler::new();
    asm.movi(r(1), 2_000);
    asm.movi(r(2), 0xB000);
    asm.movi(r(5), 0x9E37);
    asm.label("loop");
    // xorshift for an unpredictable direction
    asm.slli(r(6), r(5), 13);
    asm.xor(r(5), r(5), r(6));
    asm.srli(r(6), r(5), 7);
    asm.xor(r(5), r(5), r(6));
    asm.slli(r(6), r(5), 17);
    asm.xor(r(5), r(5), r(6));
    // [1] ST M[B000] <- A1A1-ish (the surviving store)
    asm.sd(r(5), r(2), 0);
    // [2] LD M[B000]
    asm.ld(r(7), r(2), 0);
    asm.add(r(20), r(20), r(7));
    // BRANCH (data-dependent: mispredicted regularly with no oracle)
    asm.andi(r(8), r(5), 1);
    asm.beq(r(8), Reg::ZERO, "skip");
    // [3] ST M[B000] — on the "wrong path" half the time
    asm.xori(r(9), r(5), 0x55);
    asm.sd(r(9), r(2), 0);
    asm.label("skip");
    // [4] LD M[B000] along the continuing path
    asm.ld(r(10), r(2), 0);
    asm.add(r(20), r(20), r(10));
    asm.subi(r(1), r(1), 1);
    asm.bne(r(1), Reg::ZERO, "loop");
    asm.halt();
    let program = asm.assemble().unwrap();

    let mut cfg = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build();
    cfg.oracle_fix_probability = 0.0; // raw gshare: plenty of wrong paths
    let stats = run(&program, &cfg);
    let sfc = *stats.backend.sfc().expect("SFC backend");
    assert!(stats.branch_mispredicts > 50, "need real mispredicts");
    assert!(sfc.partial_flushes > 0, "mispredicts with in-flight stores");
    assert!(
        stats.replays.load_corrupt > 0,
        "loads must replay on corrupt lines"
    );
    // And the killer check already ran inside simulate(): every retired
    // instruction matched the architectural trace.
}

/// A one-line SFC forces constant conflicts; the ROB-head bypass must keep
/// the machine live and correct.
#[test]
fn head_bypass_rescues_a_tiny_sfc() {
    let mut asm = Assembler::new();
    asm.movi(r(1), 800);
    asm.movi(r(2), 0x1000);
    asm.label("loop");
    // Four stores to four different words that all map to the single set.
    for i in 0..4i64 {
        asm.sd(r(1), r(2), i * 8);
    }
    asm.ld(r(3), r(2), 0);
    asm.add(r(20), r(20), r(3));
    asm.subi(r(1), r(1), 1);
    asm.bne(r(1), Reg::ZERO, "loop");
    asm.halt();
    let program = asm.assemble().unwrap();

    let mut cfg = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build();
    if let BackendConfig::SfcMdt { sfc, .. } = &mut cfg.backend {
        sfc.sets = 1;
        sfc.ways = 1;
    }
    let stats = run(&program, &cfg);
    assert!(
        stats.replays.store_sfc_conflicts > 100,
        "conflicts expected"
    );
    assert!(stats.head_bypasses > 0, "head bypass must engage");
}

/// Store-to-load forwarding latency: a dependent chain through memory is
/// dramatically faster when the SFC forwards than when every load must wait
/// for a (simulated) L2 miss — i.e. forwarding actually happens.
#[test]
fn forwarding_carries_a_memory_chain() {
    let mut asm = Assembler::new();
    asm.movi(r(1), 500);
    asm.movi(r(2), 0x2000);
    asm.movi(r(3), 1);
    asm.label("loop");
    asm.sd(r(3), r(2), 0);
    asm.ld(r(3), r(2), 0);
    asm.addi(r(3), r(3), 1);
    asm.subi(r(1), r(1), 1);
    asm.bne(r(1), Reg::ZERO, "loop");
    asm.halt();
    let program = asm.assemble().unwrap();

    let stats = run(&program, &SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build());
    assert!(
        stats.loads_forwarded > 400,
        "the RMW chain must forward ({} forwards)",
        stats.loads_forwarded
    );
}

/// The deadlock guard fires as an error, not a hang, when the machine is
/// configured into an impossible corner — and *does not* fire for healthy
/// configurations of the same program.
#[test]
fn simulations_terminate() {
    let w = aim_workloads::by_name("twolf", aim_workloads::Scale::Tiny).unwrap();
    let trace = Interpreter::new(&w.program).run(1_000_000).unwrap();
    for cfg in [
        SimConfig::machine(MachineClass::Baseline).backend(BackendChoice::Lsq).build(),
        SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build(),
        SimConfig::machine(MachineClass::Aggressive).mode(EnforceMode::TotalOrder).build(),
    ] {
        let stats = simulate_with_trace(&w.program, &trace, &cfg).expect("no deadlock");
        assert_eq!(stats.retired, trace.len() as u64);
    }
}

/// Branch-only torture: a program of nothing but data-dependent branches
/// exercises recovery paths; history rollback must keep gshare sane and the
/// run valid.
#[test]
fn branch_torture_validates() {
    let mut asm = Assembler::new();
    asm.movi(r(1), 3_000);
    asm.movi(r(5), 0xF00D);
    asm.label("loop");
    asm.slli(r(6), r(5), 13);
    asm.xor(r(5), r(5), r(6));
    asm.srli(r(6), r(5), 7);
    asm.xor(r(5), r(5), r(6));
    for bit in 0..4i64 {
        let label = format!("b{bit}");
        asm.srli(r(7), r(5), bit);
        asm.andi(r(7), r(7), 1);
        asm.beq(r(7), Reg::ZERO, &label);
        asm.addi(r(20), r(20), 1);
        asm.label(&label);
    }
    asm.subi(r(1), r(1), 1);
    asm.bne(r(1), Reg::ZERO, "loop");
    asm.halt();
    let program = asm.assemble().unwrap();

    let mut cfg = SimConfig::machine(MachineClass::Aggressive).mode(EnforceMode::All).build();
    cfg.oracle_fix_probability = 0.0;
    let stats = run(&program, &cfg);
    assert!(
        stats.flushes.branch > 500,
        "wanted heavy mispredict traffic"
    );
}

/// Every machine statistic that must be internally consistent, is.
#[test]
fn stats_are_internally_consistent() {
    let w = aim_workloads::by_name("gcc", aim_workloads::Scale::Tiny).unwrap();
    let stats = run(&w.program, &SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build());
    assert!(stats.fetched >= stats.dispatched);
    assert!(stats.dispatched >= stats.retired);
    assert!(stats.issued >= stats.retired);
    // dispatched = retired + squashed + (in flight when Halt retired).
    assert!(
        stats.retired + stats.squashed <= stats.dispatched,
        "retired + squashed must not exceed dispatched"
    );
    assert!(
        stats.dispatched - stats.retired - stats.squashed < 256,
        "only a window's worth of instructions may remain in flight at halt"
    );
    assert!(stats.retired_loads + stats.retired_stores <= stats.retired);
    assert!(stats.load_executions >= stats.retired_loads);
    assert!(stats.ipc() > 0.0);
}

/// A bounded store FIFO gates dispatch without breaking correctness.
#[test]
fn bounded_store_fifo_stalls_dispatch() {
    let w = aim_workloads::by_name("apsi", aim_workloads::Scale::Tiny).unwrap();
    let mut cfg = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build();
    cfg.store_fifo_entries = 2;
    let stats = run(&w.program, &cfg);
    assert!(
        stats.dispatch_stalls.fifo_full > 0,
        "a 2-entry FIFO must stall dispatch"
    );
    let aim = stats.backend.aim().expect("SFC/MDT backend");
    assert!(aim.store_fifo_peak <= 2, "FIFO bound must hold");
    // And the unbounded run is at least as fast.
    cfg.store_fifo_entries = 0;
    let free = run(&w.program, &cfg);
    assert!(free.ipc() >= stats.ipc());
}

/// Coarser MDT granularity aliases adjacent words into one entry: traffic to
/// neighbouring addresses produces spurious violations that the 8-byte
/// granularity never sees (§2.2's granularity trade-off).
#[test]
fn coarse_granularity_causes_spurious_violations() {
    // Two independent streams, 8 bytes apart, ping-ponging out of order.
    let mut asm = Assembler::new();
    asm.movi(r(1), 600);
    asm.movi(r(2), 0x3000);
    asm.movi(r(5), 0x77);
    asm.label("loop");
    asm.slli(r(6), r(5), 13);
    asm.xor(r(5), r(5), r(6));
    asm.srli(r(6), r(5), 7);
    asm.xor(r(5), r(5), r(6));
    // Slow store to word 0 (data behind a multiply chain)...
    asm.mul(r(7), r(5), r(5));
    asm.muli(r(7), r(7), 0x9E37_79B1);
    asm.sd(r(7), r(2), 0);
    // ...and a fast load of word 1 (a *different* 8-byte word).
    asm.ld(r(8), r(2), 8);
    asm.add(r(20), r(20), r(8));
    asm.sd(r(5), r(2), 8);
    asm.subi(r(1), r(1), 1);
    asm.bne(r(1), Reg::ZERO, "loop");
    asm.halt();
    let program = asm.assemble().unwrap();

    let fine = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::TrueOnly).build();
    let mut coarse = fine.clone();
    if let BackendConfig::SfcMdt { mdt, .. } = &mut coarse.backend {
        mdt.granularity = 64;
    }
    let fine_stats = run(&program, &fine);
    let coarse_stats = run(&program, &coarse);
    assert!(
        coarse_stats.flushes.memory() > fine_stats.flushes.memory(),
        "64-byte granules must alias the two words ({} vs {})",
        coarse_stats.flushes.memory(),
        fine_stats.flushes.memory()
    );
}

/// The flush-endpoint SFC forwards surviving stores across partial flushes
/// that corruption masks would have blocked (§3.2's hypothesis, at machine
/// level).
#[test]
fn flush_endpoints_reduce_corrupt_replays() {
    let w = aim_workloads::by_name("vpr_route", aim_workloads::Scale::Small).unwrap();
    let bits = SimConfig::machine(MachineClass::Aggressive).mode(EnforceMode::TotalOrder).build();
    let mut endpoints = bits.clone();
    if let BackendConfig::SfcMdt { sfc, .. } = &mut endpoints.backend {
        sfc.corruption = aim_core::CorruptionPolicy::FlushEndpoints { capacity: 16 };
    }
    let b = run(&w.program, &bits);
    let e = run(&w.program, &endpoints);
    assert!(
        e.replays.load_corrupt * 2 < b.replays.load_corrupt,
        "endpoints should at least halve corrupt replays ({} vs {})",
        e.replays.load_corrupt,
        b.replays.load_corrupt
    );
}

/// The XOR-fold hash spreads mcf's set-sized node stride (§3.2's closing
/// hypothesis, at machine level).
#[test]
fn xor_fold_hash_fixes_mcf() {
    let w = aim_workloads::by_name("mcf", aim_workloads::Scale::Small).unwrap();
    let low = SimConfig::machine(MachineClass::Aggressive).mode(EnforceMode::TotalOrder).build();
    let mut xor = low.clone();
    if let BackendConfig::SfcMdt { sfc, mdt } = &mut xor.backend {
        sfc.hash = aim_core::SetHash::XorFold;
        mdt.hash = aim_core::SetHash::XorFold;
    }
    let l = run(&w.program, &low);
    let x = run(&w.program, &xor);
    assert!(l.mdt_conflict_rate() > 16.0);
    assert!(
        x.mdt_conflict_rate() < 1.0,
        "XOR fold should eliminate mcf's conflicts, got {:.2}%",
        x.mdt_conflict_rate()
    );
}

/// The pipeline viewer returns one record per retired instruction (up to
/// its capacity), with stage cycles in dispatch <= issue <= complete <
/// retire order and a sequence that matches retirement order.
#[test]
fn pipeview_records_are_stage_monotone() {
    let w = aim_workloads::by_name("gzip", aim_workloads::Scale::Tiny).unwrap();
    let mut cfg = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build();
    cfg.pipeview = true;
    let (stats, records) = aim_pipeline::simulate_pipeview(&w.program, &cfg).expect("validated");
    assert_eq!(
        records.len() as u64,
        stats.retired.min(aim_pipeline::PIPEVIEW_CAPACITY as u64)
    );
    for pair in records.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "retirement order");
        assert!(pair[0].retired <= pair[1].retired);
    }
    for r in &records {
        assert!(r.dispatched <= r.issued, "{r:?}");
        assert!(r.issued <= r.completed, "{r:?}");
        assert!(r.completed < r.retired, "{r:?}");
    }
    let rendered = aim_pipeline::pipeview::render(&records[..32.min(records.len())], 64);
    assert_eq!(rendered.lines().count(), 33);
}

/// The §4 search filter: on a load-dominated kernel whose MDT-aliasing loads
/// run with no stores in flight, the filter skips the MDT entirely, so a
/// deliberately starved MDT stops generating structural-conflict replays and
/// recovers most of its lost IPC — "higher performance from a much smaller
/// MDT".
#[test]
fn search_filter_rescues_a_starved_mdt() {
    let w = aim_workloads::by_name("gcc", aim_workloads::Scale::Small).unwrap();
    let mut base = SimConfig::machine(MachineClass::Aggressive).mode(EnforceMode::TotalOrder).build();
    if let BackendConfig::SfcMdt { mdt, .. } = &mut base.backend {
        mdt.sets = 16;
        mdt.ways = 1;
    }
    let mut filtered = base.clone();
    filtered.mdt_filter = true;

    let b = run(&w.program, &base);
    let f = run(&w.program, &filtered);
    assert_eq!(b.mdt_filtered_loads, 0);
    assert!(
        f.mdt_filtered_loads > 1_000,
        "filter should skip many MDT accesses, got {}",
        f.mdt_filtered_loads
    );
    let b_conf = b.replays.load_mdt_conflicts + b.replays.store_mdt_conflicts;
    let f_conf = f.replays.load_mdt_conflicts + f.replays.store_mdt_conflicts;
    assert!(
        f_conf * 3 < b_conf,
        "filter should cut conflicts by >3x: {b_conf} -> {f_conf}"
    );
    assert!(
        f.ipc() > b.ipc() * 1.3,
        "filter should recover IPC on a 16-set MDT: {:.3} -> {:.3}",
        b.ipc(),
        f.ipc()
    );
}

/// The aggressive single-load recovery policy (§2.4.1) flushes less than the
/// conservative policy without breaking validation.
#[test]
fn aggressive_true_dep_recovery_squashes_less() {
    let mut asm = Assembler::new();
    asm.movi(r(1), 800);
    asm.movi(r(2), 0x4000);
    asm.movi(r(5), 0x51);
    asm.label("loop");
    asm.slli(r(6), r(5), 13);
    asm.xor(r(5), r(5), r(6));
    asm.srli(r(6), r(5), 7);
    asm.xor(r(5), r(5), r(6));
    // Slow store (multiply chain) ...
    asm.mul(r(7), r(5), r(5));
    asm.muli(r(7), r(7), 0x0101_0101);
    asm.sd(r(7), r(2), 0);
    // ... then a single fast load of the same address: a true-dependence
    // race with exactly one in-flight load.
    asm.ld(r(8), r(2), 0);
    asm.add(r(20), r(20), r(8));
    asm.subi(r(1), r(1), 1);
    asm.bne(r(1), Reg::ZERO, "loop");
    asm.halt();
    let program = asm.assemble().unwrap();

    let mut conservative = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::TrueOnly).build();
    // Clear the predictor on every dispatch — training never sticks, so the
    // race recurs each iteration and the recovery policies differentiate.
    conservative.dep_predictor.clear_interval = 1;
    let mut aggressive = conservative.clone();
    if let BackendConfig::SfcMdt { mdt, .. } = &mut aggressive.backend {
        mdt.true_dep_recovery = aim_core::TrueDepRecovery::SingleLoadAggressive;
    }
    let c = run(&program, &conservative);
    let a = run(&program, &aggressive);
    assert!(c.flushes.true_dep > 10, "need recurring true violations");
    let mdt_stats = *a.backend.mdt().expect("SFC/MDT backend");
    assert!(
        mdt_stats.aggressive_recoveries > 0,
        "single-load recovery should engage"
    );
    assert!(
        a.squashed <= c.squashed,
        "aggressive recovery must not squash more ({} vs {})",
        a.squashed,
        c.squashed
    );
}

/// `--paranoid` runs the wakeup-list and store-census integrity checks in
/// release builds too; both are invoked at the end of every
/// `squash_and_redirect`, so a run with plenty of mispredict *and*
/// violation squashes exercises the truncation bookkeeping directly: any
/// entry the squash path leaves dangling (or any census it fails to
/// decrement) trips a hard assert instead of surfacing cycles later.
#[test]
fn paranoid_checks_survive_heavy_squashing() {
    let mut asm = Assembler::new();
    asm.movi(r(1), 1_500);
    asm.movi(r(2), 0xB000);
    asm.movi(r(5), 0x9E37);
    asm.label("loop");
    // xorshift for unpredictable branch directions
    asm.slli(r(6), r(5), 13);
    asm.xor(r(5), r(5), r(6));
    asm.srli(r(6), r(5), 7);
    asm.xor(r(5), r(5), r(6));
    // A slow store racing a fast same-address load: true-dependence
    // violations on top of the control squashes.
    asm.mul(r(7), r(5), r(5));
    asm.sd(r(7), r(2), 0);
    asm.ld(r(8), r(2), 0);
    asm.add(r(20), r(20), r(8));
    asm.andi(r(9), r(5), 1);
    asm.beq(r(9), Reg::ZERO, "skip");
    // Wrong-path store half the time, so squashes truncate pending stores.
    asm.xori(r(10), r(5), 0x55);
    asm.sd(r(10), r(2), 0);
    asm.label("skip");
    asm.ld(r(11), r(2), 0);
    asm.add(r(20), r(20), r(11));
    asm.subi(r(1), r(1), 1);
    asm.bne(r(1), Reg::ZERO, "loop");
    asm.halt();
    let program = asm.assemble().unwrap();

    let mut cfg = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build();
    cfg.paranoid = true;
    cfg.mdt_filter = true; // the census check is live only with the filter on
    cfg.oracle_fix_probability = 0.0; // raw gshare: plenty of wrong paths
    cfg.dep_predictor.clear_interval = 1; // violations recur every iteration
    let stats = run(&program, &cfg);
    assert!(stats.branch_mispredicts > 50, "need mispredict squashes");
    assert!(
        stats.flushes.true_dep + stats.flushes.anti_dep + stats.flushes.output_dep > 10,
        "need violation squashes: {:?}",
        stats.flushes
    );
    assert!(stats.squashed > 100, "squash path barely exercised");
}
