//! Property tests: the pipeline-viewer renderer is total and structurally
//! well-formed on arbitrary (even nonsensical) stage stamps.

use aim_pipeline::{pipeview, PipeRecord};
use proptest::prelude::*;

/// The lane sits between the final two `|`s; instruction text may itself
/// contain `|`, lane characters never do.
fn lane_of(line: &str) -> &str {
    let close = line.rfind('|').expect("closing bar");
    let open = line[..close].rfind('|').expect("opening bar");
    &line[open + 1..close]
}

fn arb_record() -> impl Strategy<Value = PipeRecord> {
    (
        any::<u64>(),
        0u64..1000,
        "[ -~]{0,40}",
        proptest::array::uniform4(0u64..100_000),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(seq, pc, instr, mut stages, replayed, bypassed)| {
            // The machine only emits monotone stamps; the renderer should
            // still not panic if they arrive sorted any which way, so half
            // the cases keep the raw order.
            if seq.is_multiple_of(2) {
                stages.sort_unstable();
            }
            PipeRecord {
                seq,
                pc,
                instr,
                dispatched: stages[0],
                issued: stages[1],
                completed: stages[2],
                retired: stages[3],
                replayed,
                bypassed,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Rendering never panics, emits one line per record plus a header, and
    /// every lane is exactly the requested width.
    #[test]
    fn render_is_total_and_aligned(
        records in proptest::collection::vec(arb_record(), 1..20),
        width in 0usize..200,
    ) {
        // Out-of-order stamps (issued > retired, etc.) must not panic either,
        // but lanes are only well-formed for monotone records; filter to the
        // machine's contract for the structural checks.
        let monotone: Vec<PipeRecord> = records
            .iter()
            .filter(|r| r.dispatched <= r.issued && r.issued <= r.completed && r.completed <= r.retired)
            .cloned()
            .collect();
        let _ = pipeview::render(&records, width); // totality
        if monotone.is_empty() {
            return Ok(());
        }
        let out = pipeview::render(&monotone, width);
        let lines: Vec<&str> = out.lines().collect();
        prop_assert_eq!(lines.len(), monotone.len() + 1);
        let effective = width.max(16);
        for (line, rec) in lines[1..].iter().zip(&monotone) {
            let lane = lane_of(line);
            prop_assert_eq!(lane.len(), effective, "lane width: {}", line);
            // Every stage marker appears unless overwritten by a later one.
            prop_assert!(lane.contains('R'), "retire always survives: {}", line);
            prop_assert!(!lane.contains(|c: char| !"DICR=. ".contains(c)));
            let _ = rec;
        }
    }

    /// Monotone records place markers in stage order whenever all four
    /// markers survive column collisions.
    #[test]
    fn surviving_markers_are_ordered(records in proptest::collection::vec(arb_record(), 1..20)) {
        let monotone: Vec<PipeRecord> = records
            .iter()
            .filter(|r| r.dispatched <= r.issued && r.issued <= r.completed && r.completed <= r.retired)
            .cloned()
            .collect();
        if monotone.is_empty() {
            return Ok(());
        }
        let out = pipeview::render(&monotone, 120);
        for line in out.lines().skip(1) {
            let lane = lane_of(line);
            let pos: Vec<Option<usize>> =
                ['D', 'I', 'C', 'R'].iter().map(|&m| lane.find(m)).collect();
            let present: Vec<usize> = pos.iter().flatten().copied().collect();
            prop_assert!(present.windows(2).all(|w| w[0] < w[1]), "{}", line);
        }
    }
}
