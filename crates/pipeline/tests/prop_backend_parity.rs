//! Cross-backend architectural equivalence: every memory backend — the
//! idealized LSQ, the filtered LSQ, the paper's SFC/MDT, the PC-indexed
//! PCAX, and the oracle / no-spec bounds — must retire the *same
//! architectural state* (register
//! file and committed memory image) as the in-order interpreter, on
//! randomly generated store/load-heavy programs. The backends differ only
//! in timing.
//!
//! Additionally, the oracle backend must never mis-speculate: perfect
//! disambiguation means zero memory-ordering flushes, always.
//!
//! Seeds that found historical failures are pinned in
//! `prop_backend_parity.proptest-regressions` and replayed explicitly by
//! [`regression_seeds_stay_green`] (the vendored proptest does not consume
//! regression files itself, so the test parses the standard format and
//! re-runs every recorded seed).

use aim_isa::{Interpreter, Reg};
use aim_pipeline::{BackendChoice, MachineClass, Machine, SimConfig};
use aim_workloads::stress::random_program;
use proptest::prelude::*;

/// All six baseline backends, labelled for failure messages. The builder
/// picks each family's evaluated predictor mode (EnforceMode::All for the
/// SFC/MDT and PCAX, TrueOnly elsewhere).
fn backend_configs() -> Vec<(&'static str, SimConfig)> {
    BackendChoice::ALL
        .into_iter()
        .map(|choice| {
            (
                choice.token(),
                SimConfig::machine(MachineClass::Baseline).backend(choice).build(),
            )
        })
        .collect()
}

/// One parity check: every backend retires the interpreter's architectural
/// state for this program seed.
fn check_parity(seed: u64) -> Result<(), TestCaseError> {
    let program = random_program(seed, 20, 20);
    let mut interp = Interpreter::new(&program);
    let trace = interp.run(500_000).unwrap();
    prop_assert!(trace.halted());
    let want_regs: Vec<u64> = (0..32).map(|i| interp.reg(Reg::new(i))).collect();
    let want_mem = interp.memory().nonzero_bytes();

    for (name, cfg) in backend_configs() {
        let (stats, fin) = Machine::new(&program, &trace, cfg)
            .run_final()
            .map_err(|e| TestCaseError::fail(format!("{name}: {e}")))?;
        prop_assert_eq!(stats.retired, trace.len() as u64, "{} retired short", name);
        prop_assert_eq!(&fin.regs, &want_regs, "{} register file diverged", name);
        prop_assert_eq!(
            fin.mem.nonzero_bytes(),
            want_mem.clone(),
            "{} memory image diverged",
            name
        );
        if name == "oracle" {
            prop_assert_eq!(
                stats.flushes.memory(),
                0,
                "perfect disambiguation mis-speculated"
            );
        }
    }
    Ok(())
}

proptest! {
    // Each case runs one interpreter pass plus six full simulations.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_backends_retire_the_interpreter_state(seed in any::<u64>()) {
        check_parity(seed)?;
    }
}

/// Replays every seed recorded in the sibling `.proptest-regressions` file.
/// Lines follow proptest's standard format — `cc <hash> # shrinks to
/// seed = N` — so upstream tooling that *does* consume the file agrees
/// with this test about what it means.
#[test]
fn regression_seeds_stay_green() {
    let recorded = include_str!("prop_backend_parity.proptest-regressions");
    let mut replayed = 0;
    for line in recorded.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let seed: u64 = line
            .split("seed = ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("malformed regression line: {line}"));
        check_parity(seed).unwrap_or_else(|e| panic!("regression seed {seed}: {e}"));
        replayed += 1;
    }
    assert!(replayed >= 4, "regression file lost its seeds");
}
