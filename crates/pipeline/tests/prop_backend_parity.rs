//! Cross-backend architectural equivalence: every memory backend — the
//! idealized LSQ, the paper's SFC/MDT, and the oracle / no-spec bounds —
//! must retire the *same architectural state* (register file and committed
//! memory image) as the in-order interpreter, on randomly generated
//! store/load-heavy programs. The backends differ only in timing.
//!
//! Additionally, the oracle backend must never mis-speculate: perfect
//! disambiguation means zero memory-ordering flushes, always.

use aim_isa::{Interpreter, Reg};
use aim_pipeline::{Machine, SimConfig};
use aim_predictor::EnforceMode;
use aim_workloads::stress::random_program;
use proptest::prelude::*;

/// The four baseline backends, labelled for failure messages.
fn backend_configs() -> Vec<(&'static str, SimConfig)> {
    vec![
        ("lsq", SimConfig::baseline_lsq()),
        ("sfc-mdt", SimConfig::baseline_sfc_mdt(EnforceMode::All)),
        ("oracle", SimConfig::baseline_oracle()),
        ("nospec", SimConfig::baseline_nospec()),
    ]
}

proptest! {
    // Each case runs one interpreter pass plus four full simulations.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_backends_retire_the_interpreter_state(seed in any::<u64>()) {
        let program = random_program(seed, 20, 20);
        let mut interp = Interpreter::new(&program);
        let trace = interp.run(500_000).unwrap();
        prop_assert!(trace.halted());
        let want_regs: Vec<u64> = (0..32).map(|i| interp.reg(Reg::new(i))).collect();
        let want_mem = interp.memory().nonzero_bytes();

        for (name, cfg) in backend_configs() {
            let (stats, fin) = Machine::new(&program, &trace, cfg)
                .run_final()
                .map_err(|e| TestCaseError::fail(format!("{name}: {e}")))?;
            prop_assert_eq!(stats.retired, trace.len() as u64, "{} retired short", name);
            prop_assert_eq!(&fin.regs, &want_regs, "{} register file diverged", name);
            prop_assert_eq!(
                fin.mem.nonzero_bytes(),
                want_mem.clone(),
                "{} memory image diverged",
                name
            );
            if name == "oracle" {
                prop_assert_eq!(
                    stats.flushes.memory(),
                    0,
                    "perfect disambiguation mis-speculated"
                );
            }
        }
    }
}
