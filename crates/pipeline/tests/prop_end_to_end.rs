//! The repository's strongest property: random programs, executed
//! speculatively and out of order under randomly drawn machine
//! configurations, retire *exactly* the architectural trace.

use aim_core::{
    CorruptionPolicy, MdtConfig, MdtTagging, PartialMatchPolicy, SetHash, SfcConfig,
    TrueDepRecovery,
};
use aim_isa::Interpreter;
use aim_lsq::LsqConfig;
use aim_pipeline::{simulate_with_trace, BackendConfig, OutputDepRecovery, SimConfig};
use aim_predictor::{EnforceMode, PredictorConfig};
use aim_workloads::stress::random_program;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct MachineKnobs {
    sfc_sets: usize,
    sfc_ways: usize,
    mdt_sets: usize,
    mdt_ways: usize,
    mode_idx: u8,
    partial_replay: bool,
    output_corrupt: bool,
    aggressive_td: bool,
    stall_bits: bool,
    oracle: u8,
    granularity_idx: u8,
    flush_endpoints: bool,
    untagged: bool,
    xor_fold: bool,
    mdt_filter: bool,
}

fn knobs() -> impl Strategy<Value = MachineKnobs> {
    (
        (0usize..4, 0usize..3, 0usize..4, 0usize..3),
        0u8..3,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u8..3,
        0u8..3,
        (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |(
                (sfc_s, sfc_w, mdt_s, mdt_w),
                mode_idx,
                partial_replay,
                output_corrupt,
                aggressive_td,
                stall_bits,
                oracle,
                granularity_idx,
                (flush_endpoints, untagged, xor_fold, mdt_filter),
            )| MachineKnobs {
                sfc_sets: 1 << (1 + sfc_s),
                sfc_ways: 1 + sfc_w,
                mdt_sets: 1 << (1 + mdt_s),
                mdt_ways: 1 + mdt_w,
                mode_idx,
                partial_replay,
                output_corrupt,
                aggressive_td,
                stall_bits,
                oracle,
                granularity_idx,
                flush_endpoints,
                untagged,
                xor_fold,
                mdt_filter,
            },
        )
}

fn config_from(k: &MachineKnobs) -> SimConfig {
    let mode = match k.mode_idx {
        0 => EnforceMode::TrueOnly,
        1 => EnforceMode::All,
        _ => EnforceMode::TotalOrder,
    };
    let mut cfg = SimConfig::baseline(BackendConfig::SfcMdt {
        sfc: SfcConfig {
            sets: k.sfc_sets,
            ways: k.sfc_ways,
            corruption: if k.flush_endpoints {
                CorruptionPolicy::FlushEndpoints { capacity: 4 }
            } else {
                CorruptionPolicy::CorruptBits
            },
            hash: if k.xor_fold {
                SetHash::XorFold
            } else {
                SetHash::LowBits
            },
        },
        mdt: MdtConfig {
            sets: k.mdt_sets,
            ways: k.mdt_ways,
            granularity: 8 << k.granularity_idx,
            true_dep_recovery: if k.aggressive_td {
                TrueDepRecovery::SingleLoadAggressive
            } else {
                TrueDepRecovery::Conservative
            },
            tagging: if k.untagged {
                MdtTagging::Untagged
            } else {
                MdtTagging::Tagged
            },
            hash: if k.xor_fold {
                SetHash::XorFold
            } else {
                SetHash::LowBits
            },
        },
    });
    cfg.dep_predictor = PredictorConfig::figure4(mode);
    cfg.partial_match_policy = if k.partial_replay {
        PartialMatchPolicy::Replay
    } else {
        PartialMatchPolicy::Combine
    };
    cfg.output_dep_recovery = if k.output_corrupt {
        OutputDepRecovery::MarkCorrupt
    } else {
        OutputDepRecovery::Flush
    };
    cfg.stall_bits = k.stall_bits;
    cfg.oracle_fix_probability = k.oracle as f64 / 2.0;
    cfg.mdt_filter = k.mdt_filter;
    cfg
}

proptest! {
    // Each case runs a full simulation; keep counts moderate.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_retire_the_architectural_trace(
        seed in any::<u64>(),
        k in knobs(),
    ) {
        let program = random_program(seed, 30, 25);
        let trace = Interpreter::new(&program).run(500_000).unwrap();
        prop_assert!(trace.halted());
        let cfg = config_from(&k);
        let stats = simulate_with_trace(&program, &trace, &cfg)
            .map_err(|e| TestCaseError::fail(format!("{k:?}: {e}")))?;
        prop_assert_eq!(stats.retired, trace.len() as u64);
    }

    #[test]
    fn random_programs_validate_under_lsq_sizes(
        seed in any::<u64>(),
        lq in 4usize..64,
        sq in 4usize..64,
    ) {
        let program = random_program(seed, 30, 25);
        let trace = Interpreter::new(&program).run(500_000).unwrap();
        let cfg = SimConfig::baseline(BackendConfig::Lsq(LsqConfig {
            load_entries: lq,
            store_entries: sq,
        }));
        let stats = simulate_with_trace(&program, &trace, &cfg)
            .map_err(|e| TestCaseError::fail(format!("lq {lq} sq {sq}: {e}")))?;
        prop_assert_eq!(stats.retired, trace.len() as u64);
    }
}
