//! Sampled fast-forward execution: functional warm-up alternating with
//! detailed cycle-accurate windows.
//!
//! A [`SampleSpec`](aim_types::SampleSpec) on [`SimConfig::sample`] switches
//! [`Machine::run`] (and every other run entry point) from simulating each
//! instruction cycle-accurately to a classic sampled schedule: `periods`
//! repetitions of *detail* (`detail_insts` cycle-accurate instructions)
//! followed by *warm* (`warm_insts` functional instructions), with any
//! remainder of the program running functionally. Event statistics are
//! extrapolated from the detailed windows by
//! [`SimStats::extrapolate`](crate::SimStats::extrapolate); the cycle count
//! uses a stratified per-period estimate (see `run_sampled`'s notes on
//! cold-start coverage and non-stationary profiles).
//!
//! # The warm engine
//!
//! The warm engine walks the golden architectural trace record by record —
//! no fetch, rename, scheduling, or reorder buffer — while keeping every
//! *long-lived* structure as warm as a detailed run would:
//!
//! * the I-cache is touched at each instruction's fetch address and the
//!   D-cache hierarchy (including any far-memory tier) at each memory
//!   access;
//! * the gshare predictor trains on every conditional branch through
//!   [`Gshare::warm_train`](aim_predictor::Gshare::warm_train), with the
//!   same oracle repair draw the detailed front end makes;
//! * the architectural register file is kept current through the retired
//!   rename map, so a detailed window starts from exact state;
//! * the memory backend sees its full dispatch → execute → retire call
//!   contract in program order, with a small *lag queue* (`WARM_LAG`
//!   entries) between execute and retirement so stores stay in flight long
//!   enough for store-to-load forwarding — and therefore SFC, MDT, and PCAX
//!   classification training — to behave realistically. Replays drain the
//!   lag queue and retry, mirroring the detailed scheduler; a replay that
//!   persists with nothing older in flight takes the §2.2 head-of-ROB
//!   bypass, exactly as the detailed pipeline would.
//!
//! Because the warm engine executes in program order from architectural
//! values, it can never mis-speculate: architectural state (and therefore
//! [`FinalState`](crate::FinalState)) is *exact* in sampled mode, while
//! timing converges with the detail fraction.
//!
//! # Mode transitions
//!
//! Entering a detail window resets fetch to the trace cursor and rebuilds
//! the gshare history from the actual directions of the retired branches —
//! the same history an empty detailed pipeline would hold. Leaving a window
//! squashes every in-flight instruction (the window boundary is an exact
//! retirement count), then calls [`MemBackend::flush`](aim_backend::MemBackend::flush)
//! so no stale speculative state leaks into the next functional stretch;
//! the backend-conformance harness checks every backend survives exactly
//! this warm↔detail handoff.
//!
//! [`SimConfig::sample`]: crate::SimConfig::sample
//! [`Machine::run`]: crate::Machine::run
//!
//! Multi-core runs ([`crate::MultiMachine`]) schedule cores cycle by cycle
//! and ignore the sampling policy.

use std::collections::VecDeque;

use aim_backend::{LoadOutcome, LoadRequest, MemKind, StoreOutcome, StoreRequest};
use aim_isa::TraceRecord;
use aim_types::{MemAccess, SeqNum};

use crate::machine::{Core, SimError};
use crate::stats::SampledStats;

/// Memory operations held in flight between warm execute and warm (lagged)
/// retirement, so stores forward to nearby loads during warm-up.
const WARM_LAG: usize = 8;

/// Bound on execute-replay retries for one warm memory operation. Each
/// retry first retires the oldest in-flight operation (freeing whatever
/// backend capacity caused the replay) and the head-of-ROB bypass catches
/// the drained-empty case, so hitting this bound means a backend contract
/// violation, not a slow program.
const WARM_RETRY_LIMIT: u32 = 64;

/// Unmeasured detailed warm-up (pipeline fill) at the head of each detail
/// window: the first `min(detail_insts / RAMP_DIVISOR, ramp_cap)`
/// retirements prime the reorder buffer and queues but do not contribute to
/// the extrapolated cycle count. The cap keeps long windows from wasting
/// measurement, and it scales with the machine: a few hundred retirements
/// fill the baseline window, but a kilo-entry-window class (especially
/// behind a far-memory tier, where steady state means a window full of
/// in-flight far misses) needs a couple of window depths of fill before its
/// memory-level parallelism — and therefore its cycles-per-instruction —
/// is representative.
const RAMP_DIVISOR: u64 = 2;
const RAMP_CAP: u64 = 256;

/// Fill stretch before a mid-program detail window is representative, in
/// multiples of the reorder-buffer depth.
const RAMP_WINDOW_DEPTHS: u64 = 2;

/// Fixed-point scale of the warm clock's cycles-per-instruction pace: the
/// warm engine advances `self.cycle` by `cpi_fp / CPI_FP_ONE` cycles per
/// instruction (see [`Core::warm_to`]).
const CPI_FP_ONE: u64 = 256;

/// Floor on the warm clock's pace, so a noisy near-zero window rate can
/// never freeze time (frozen time would park far misses in flight forever).
const CPI_FP_MIN: u64 = CPI_FP_ONE / 32;

/// The warm clock's pace: the most recent window's measured rate, in
/// fixed-point cycles per instruction; one cycle per instruction before any
/// window has measured (only reachable through degenerate policies — the
/// schedule opens with a detail window).
fn warm_rate(windows: &[(u64, u64)]) -> u64 {
    windows
        .iter()
        .rev()
        .find(|w| w.0 > 0)
        .map(|&(r, c)| (c * CPI_FP_ONE / r).max(CPI_FP_MIN))
        .unwrap_or(CPI_FP_ONE)
}

/// Deterministic per-period hash (SplitMix64 finalizer) used to place each
/// detail window at a pseudo-random offset inside its period. Pure function
/// of the period index: sampled runs stay bit-reproducible.
fn window_jitter(period: u32) -> u64 {
    let mut z = (period as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A warm-engine memory operation between execute and lagged retirement.
struct WarmOp {
    seq: SeqNum,
    access: MemAccess,
    value: u64,
    is_store: bool,
}

/// Stratified whole-run cycle estimate.
///
/// Every window's measured cycles count exactly once — a one-time transient
/// a window happens to contain (a phase change) is charged at face value,
/// never multiplied by the sampling factor — and `cold_cycles` (the cost of
/// window 0's genuine cold-start ramp, which is real work but a one-time
/// event no gap should inherit as a rate) is likewise added exactly once.
/// Each *gap* (the unmeasured stretch between a window and the next, i.e.
/// the window's ramp plus the warm stretch) is charged at the trapezoid
/// average of the two neighboring windows' cycles-per-instruction, which
/// tracks a drifting execution profile and halves the weight of any single
/// noisy window; the trailing gap after the last window uses that window's
/// rate alone. Returns `None` when no window measured anything (a
/// degenerate policy), leaving the caller's raw cycle count in place.
fn stratified_cycles(
    period_starts: &[u64],
    windows: &[(u64, u64)],
    cold: (u64, u64),
    total: u64,
) -> Option<u64> {
    let (cold_retired, cold_cycles) = cold;
    let mut est: u128 = cold_cycles as u128;
    let mut measured_any = false;
    for (p, &(retired, cycles)) in windows.iter().enumerate() {
        if retired == 0 {
            continue;
        }
        measured_any = true;
        est += cycles as u128;
        let start = period_starts[p];
        let end = period_starts.get(p + 1).copied().unwrap_or(total);
        // Window 0's cold-start ramp retirements are already charged at
        // face value through `cold_cycles`, so they are not part of the
        // gap to interpolate.
        let covered = if p == 0 { retired + cold_retired } else { retired };
        let gap = ((end - start).saturating_sub(covered)) as u128;
        let (r0, c0) = (retired as u128, cycles as u128);
        est += match windows.get(p + 1) {
            Some(&(rn, cn)) if rn > 0 => {
                let (rn, cn) = (rn as u128, cn as u128);
                if p == 0 {
                    // Window 0 sits at offset 0 to measure the program's
                    // cold start at face value, so even its post-ramp rate
                    // is cache-cold — far from representative of the
                    // hundreds of times longer gap it would otherwise be
                    // interpolated over. Charge gap 0 at the next window's
                    // (steady, jitter-placed) rate alone.
                    (gap * cn + rn / 2) / rn
                } else {
                    // gap × (c0/r0 + cn/rn) / 2, rounded.
                    let num = gap * (c0 * rn + cn * r0);
                    let den = 2 * r0 * rn;
                    (num + den / 2) / den
                }
            }
            _ => (gap * c0 + r0 / 2) / r0,
        };
    }
    measured_any.then(|| est.min(u64::MAX as u128) as u64)
}

impl Core<'_> {
    /// The sampled-mode driver behind [`Machine::run`](crate::Machine::run):
    /// alternates detail and warm phases per the configured
    /// [`SampleSpec`](aim_types::SampleSpec), then extrapolates whole-run
    /// statistics from the detailed windows.
    ///
    /// Each period runs its *detail window first*, then the warm stretch.
    /// Window 0 therefore opens at instruction 0 on the cold machine —
    /// exactly the state the full-detail run starts from — so the program's
    /// cold-start transient (cold caches, untrained predictors) is measured
    /// rather than silently skipped. Its ramp cycles are real work and are
    /// charged exactly once in the estimate, but they are *not* part of
    /// window 0's rate: a cold start is a one-time event, and letting its
    /// cycles-per-instruction leak into gap interpolation overcharges the
    /// first gap by the whole cold/steady CPI contrast (on a kilo-entry
    /// window behind the far tier that contrast is ~5×, which showed up as
    /// a double-digit whole-run IPC underestimate before the split).
    ///
    /// Cycle extrapolation is stratified: each window's cycles-per-
    /// instruction represents only its own period, so a non-stationary
    /// execution profile (an expensive start-up phase, a slow middle loop)
    /// is weighted by where it actually happened instead of being averaged
    /// into one global rate.
    pub(crate) fn run_sampled(&mut self) -> Result<(), SimError> {
        let spec = self.config.sample.expect("run_sampled requires a policy");
        let wall_start = std::time::Instant::now();
        let total = self.target_retired;
        let mut coverage = SampledStats::default();
        // Per-period strata: the retirement index where each period began,
        // and each window's (measured retirements, measured cycles).
        let mut period_starts: Vec<u64> = Vec::with_capacity(spec.periods as usize);
        let mut windows: Vec<(u64, u64)> = Vec::with_capacity(spec.periods as usize);
        // Window 0's cold-start ramp: (retired, cycles), charged once.
        let mut cold = (0u64, 0u64);
        for period in 0..spec.periods {
            if self.stats.retired >= total {
                break;
            }
            period_starts.push(self.stats.retired);
            let period_begin = self.stats.retired;
            // Jittered (random-start) stratification: each period's window
            // sits at a deterministically pseudo-random offset within the
            // period instead of at its head. Systematic (fixed-offset)
            // placement aliases with periodic program structure — a kernel
            // whose outer loop divides the period parks every window on the
            // same slice of each iteration, turning gap interpolation into
            // a systematic bias. Window 0 stays at offset 0 so the cold
            // start is measured, not interpolated.
            if period > 0 {
                let jitter = window_jitter(period) % (spec.warm_insts + 1);
                if jitter > 0 {
                    let rate = warm_rate(&windows);
                    self.warm_to((period_begin + jitter).min(total), rate, &mut coverage)?;
                    if self.stats.retired >= total {
                        // The program ended inside this period's leading
                        // warm stretch: no window measured, so the stretch
                        // belongs to the previous stratum's trailing gap.
                        period_starts.pop();
                        break;
                    }
                }
            }
            let window_target = (self.stats.retired + spec.detail_insts).min(total);
            // Every window opens on an empty pipeline, so measurement for
            // gap-rate purposes starts past a fill ramp (detailed warm-up,
            // SMARTS-style). For later windows the fill is a sampling
            // artifact and its cycles are discarded; window 0's fill is the
            // program's genuine cold start (cold caches, untrained
            // predictors), so its cycles are kept — charged exactly once in
            // the stratified estimate — while still being excluded from the
            // rate that gap interpolation extends over hundreds of times as
            // many instructions.
            let cap = RAMP_CAP.max(self.config.rob_entries as u64 * RAMP_WINDOW_DEPTHS);
            let ramp = (spec.detail_insts / RAMP_DIVISOR).min(cap);
            let ramp_target = (self.stats.retired + ramp).min(window_target);
            self.enter_detail(window_target);
            let ramp_start_cycle = self.cycle;
            let ramp_start_retired = self.stats.retired;
            while !self.halted && self.stats.retired < ramp_target {
                self.step()?;
            }
            if period == 0 {
                cold = (
                    self.stats.retired - ramp_start_retired,
                    self.cycle - ramp_start_cycle,
                );
                coverage.detail_cycles += self.cycle - ramp_start_cycle;
                coverage.detail_retired += self.stats.retired - ramp_start_retired;
            }
            let start_cycle = self.cycle;
            let start_retired = self.stats.retired;
            while !self.halted {
                self.step()?;
            }
            windows.push((self.stats.retired - start_retired, self.cycle - start_cycle));
            coverage.detail_cycles += self.cycle - start_cycle;
            coverage.detail_retired += self.stats.retired - start_retired;
            coverage.periods_run += 1;
            self.quiesce_detail();
            if self.stats.retired < total {
                // Trailing warm stretch to the period boundary (the leading
                // jitter already consumed part of this period's warm
                // budget).
                let warm_target = (period_begin + spec.period_insts()).min(total);
                if warm_target > self.stats.retired {
                    self.warm_to(warm_target, warm_rate(&windows), &mut coverage)?;
                }
            }
        }
        // Remainder of the program past the last scheduled period (folded
        // into the last period's stratum below).
        if self.stats.retired < total {
            self.warm_to(total, warm_rate(&windows), &mut coverage)?;
        }
        self.halted = true;
        self.target_retired = total;
        self.stats.cycles = self.cycle;
        self.stats.host.wall_ns = wall_start.elapsed().as_nanos() as u64;
        self.finalize_stats();
        self.stats.extrapolate(coverage);
        if let Some(est) = stratified_cycles(&period_starts, &windows, cold, total) {
            self.stats.cycles = est;
        }
        Ok(())
    }

    /// Runs the functional warm engine until `target` instructions have
    /// retired (architecturally), draining the lag queue at the end so the
    /// next detail window starts with nothing in flight.
    ///
    /// `cpi_fp` paces the warm clock in 1/[`CPI_FP_ONE`]-cycle fixed-point
    /// steps per instruction. The hierarchy's timing-dependent state — far
    /// misses completing `latency` cycles after allocation, MSHR occupancy,
    /// replacement timestamps — lives on the same clock the detailed
    /// windows measure, so warm stretches must advance it at roughly the
    /// machine's real rate: a hardwired one-cycle-per-instruction clock
    /// spreads far misses out in time on any machine running above (or
    /// below) IPC 1, handing the next window quieter (or busier) MSHRs and
    /// a different replacement order than a continuous run would hold. The
    /// caller passes the most recent window's measured rate.
    fn warm_to(
        &mut self,
        target: u64,
        cpi_fp: u64,
        coverage: &mut SampledStats,
    ) -> Result<(), SimError> {
        debug_assert!(self.rob.is_empty(), "warm engine requires a drained window");
        let mut lag: VecDeque<WarmOp> = VecDeque::with_capacity(WARM_LAG);
        let mut clock_acc: u64 = 0;
        // The detailed front end touches the I-cache once per fetch group,
        // not once per instruction, so straight-line code inside one line
        // collapses to a handful of touches. Warm fetch training dedups
        // consecutive same-line touches to match — and since sequential
        // code dominates, this halves the warm engine's hierarchy traffic.
        let line = self.config.hierarchy.l1i.line_bytes() as u64;
        let mut last_fetch_line = u64::MAX;
        while self.stats.retired < target {
            let cursor = self.stats.retired;
            let rec = *self.trace.get(cursor).expect("target bounded by trace");
            clock_acc += cpi_fp;
            self.cycle += clock_acc / CPI_FP_ONE;
            clock_acc %= CPI_FP_ONE;
            let fetch_line = self.program.fetch_addr(rec.pc).0 / line;
            if fetch_line != last_fetch_line {
                let _ = self
                    .memsys
                    .access_instr_at(self.program.fetch_addr(rec.pc), self.cycle);
                last_fetch_line = fetch_line;
            }
            if rec.instr.is_cond_branch() {
                self.gshare
                    .warm_train(rec.pc, rec.taken(), Some(&mut self.oracle));
            }
            if let Some((reg, value)) = rec.reg_write {
                if !reg.is_zero() {
                    let p = self.renamer.lookup(reg);
                    self.renamer.write(p, value);
                }
            }
            if rec.instr.is_load() || rec.instr.is_store() {
                self.warm_mem_op(&mut lag, &rec)?;
            }
            self.stats.retired += 1;
            if rec.instr.is_load() {
                self.stats.retired_loads += 1;
            } else if rec.instr.is_store() {
                self.stats.retired_stores += 1;
            }
            coverage.warm_retired += 1;
        }
        while !lag.is_empty() {
            self.warm_retire_front(&mut lag);
        }
        self.last_retire_cycle = self.cycle;
        Ok(())
    }

    /// Drives one architectural memory operation through the backend's full
    /// dispatch → execute contract, with lagged retirement and the detailed
    /// pipeline's replay-then-bypass discipline.
    fn warm_mem_op(&mut self, lag: &mut VecDeque<WarmOp>, rec: &TraceRecord) -> Result<(), SimError> {
        let is_store = rec.instr.is_store();
        let (access, arch_value) = if is_store {
            rec.mem_store.expect("store record has an access")
        } else {
            rec.mem_load.expect("load record has an access")
        };
        let kind = if is_store { MemKind::Store } else { MemKind::Load };

        if lag.len() >= WARM_LAG {
            self.warm_retire_front(lag);
        }
        while self.backend.can_dispatch(kind).is_err() {
            if lag.is_empty() {
                return Err(SimError::Deadlock(format!(
                    "warm dispatch refused with nothing in flight at pc {}",
                    rec.pc
                )));
            }
            self.warm_retire_front(lag);
        }
        let seq = SeqNum(self.next_seq);
        self.next_seq += 1;
        let hint = (is_store && self.backend.wants_dispatch_hint()).then_some(access);
        self.backend.dispatch(kind, seq, rec.pc, hint);

        let mut retries = 0u32;
        loop {
            let floor = lag.front().map_or(seq, |o| o.seq);
            // §2.2 head-of-ROB bypass, warm flavor: nothing older is in
            // flight and the backend already refused once, so committed
            // memory is current and the conflict-prone structures may be
            // skipped — exactly the detailed pipeline's escape hatch.
            let bypass = retries > 0 && lag.is_empty() && self.backend.supports_head_bypass();
            if is_store {
                let req = StoreRequest {
                    seq,
                    pc: rec.pc,
                    access,
                    value: arch_value,
                    floor,
                    bypass,
                };
                let outcome = {
                    let mem = self.memsys.mem();
                    self.backend.store_execute(&req, &mem)
                };
                match outcome {
                    StoreOutcome::Done { violations, .. } => {
                        debug_assert!(
                            violations.is_empty(),
                            "program-order warm store raised ordering violations"
                        );
                        if bypass {
                            // Mirror the detailed bypass: commit immediately
                            // so younger warm loads read current memory.
                            self.memsys.write(access, arch_value);
                        }
                        lag.push_back(WarmOp {
                            seq,
                            access,
                            value: arch_value,
                            is_store,
                        });
                        return Ok(());
                    }
                    StoreOutcome::Replay(_) => {}
                }
            } else if bypass {
                let value = self.memsys.read(access);
                let _ = self.memsys.access_data_at(access.addr(), self.cycle);
                self.warm_validate_load(rec, access, value)?;
                lag.push_back(WarmOp {
                    seq,
                    access,
                    value,
                    is_store,
                });
                return Ok(());
            } else {
                let req = LoadRequest {
                    seq,
                    pc: rec.pc,
                    access,
                    floor,
                    filtered: false,
                };
                let outcome = {
                    let mem = self.memsys.mem();
                    self.backend.load_execute(&req, &mem)
                };
                match outcome {
                    LoadOutcome::Done { value, .. } => {
                        let _ = self.memsys.access_data_at(access.addr(), self.cycle);
                        self.warm_validate_load(rec, access, value)?;
                        lag.push_back(WarmOp {
                            seq,
                            access,
                            value,
                            is_store,
                        });
                        return Ok(());
                    }
                    LoadOutcome::Replay(_) => {}
                    LoadOutcome::Anti(_) => {
                        return Err(SimError::Validation(format!(
                            "program-order warm load at pc {} raised an anti violation",
                            rec.pc
                        )));
                    }
                }
            }
            // Replayed: retire the oldest in-flight operation (freeing the
            // structure that refused) and retry.
            if !lag.is_empty() {
                self.warm_retire_front(lag);
            }
            retries += 1;
            if retries > WARM_RETRY_LIMIT {
                return Err(SimError::Deadlock(format!(
                    "warm {} at pc {} still replayed after {} retries",
                    if is_store { "store" } else { "load" },
                    rec.pc,
                    WARM_RETRY_LIMIT
                )));
            }
        }
    }

    /// Retires the oldest in-flight warm operation: stores commit to memory
    /// with their write-back cache traffic (the shared
    /// [`CoreMemSys::commit_store`](aim_mem::CoreMemSys::commit_store)
    /// path), then the backend sees the in-order retirement hook.
    fn warm_retire_front(&mut self, lag: &mut VecDeque<WarmOp>) {
        let Some(op) = lag.pop_front() else { return };
        if op.is_store {
            let _ = self.memsys.commit_store(op.access, op.value, self.cycle);
            self.backend.retire_store(op.seq, op.access);
        } else {
            self.backend.retire_load(op.seq, op.access);
        }
    }

    fn warm_validate_load(
        &self,
        rec: &TraceRecord,
        access: MemAccess,
        value: u64,
    ) -> Result<(), SimError> {
        if !self.config.validate_retirement {
            return Ok(());
        }
        let (expect_access, expect) = rec.mem_load.expect("load record has an access");
        if access != expect_access || value != expect {
            return Err(SimError::Validation(format!(
                "warm load at pc {} (trace {}): expected {expect_access}={expect:#x}, \
                 got {access}={value:#x}",
                rec.pc, rec.index
            )));
        }
        Ok(())
    }

    /// Points the detailed pipeline at the trace cursor with an empty
    /// window: fetch resumes on the correct path, and the gshare history
    /// holds the actual directions of every retired branch — the state an
    /// empty detailed pipeline would hold at this point.
    fn enter_detail(&mut self, window_target: u64) {
        debug_assert!(self.rob.is_empty() && self.fetch_buffer.is_empty());
        let cursor = self.stats.retired;
        self.target_retired = window_target;
        self.halted = false;
        self.fetch_halted = false;
        self.on_correct_path = true;
        self.trace_cursor = cursor;
        self.fetch_pc = self.trace.get(cursor).map_or(0, |r| r.pc);
        self.fetch_stall_until = self.cycle;
        let history = self.rebuild_history(cursor);
        self.gshare.restore_history(history);
        self.last_retire_cycle = self.cycle;
    }

    /// Drains a finished detail window back to architectural state: every
    /// in-flight instruction younger than the last retirement is squashed,
    /// the backend takes a full [`flush`](aim_backend::MemBackend::flush)
    /// (the warm↔detail handoff contract — no stale speculation state may
    /// survive into the functional stretch), and the speculative gshare
    /// history is rebuilt from retired reality.
    fn quiesce_detail(&mut self) {
        let survivor = match self.rob.head() {
            Some(h) => SeqNum(h.seq.0 - 1),
            None => SeqNum(self.next_seq - 1),
        };
        let cursor = self.stats.retired;
        let resume_pc = self.trace.get(cursor).map_or(0, |r| r.pc);
        self.squash_and_redirect(survivor, resume_pc, Some(cursor), 0);
        self.backend.flush();
        self.exec_events.clear();
        self.pending_violations.clear();
        let history = self.rebuild_history(cursor);
        self.gshare.restore_history(history);
        self.halted = false;
    }

    /// The gshare global history as of trace index `cursor`: the taken bits
    /// of the most recent retired conditional branches, oldest first — what
    /// a detailed pipeline's history register holds once every in-flight
    /// branch has resolved (mispredict recovery repairs each speculative
    /// bit to the actual direction).
    fn rebuild_history(&self, cursor: u64) -> u64 {
        let mut dirs = [false; 64];
        let mut n = 0;
        let mut i = cursor;
        while i > 0 && n < dirs.len() {
            i -= 1;
            let rec = self.trace.get(i).expect("cursor bounded by trace");
            if rec.instr.is_cond_branch() {
                dirs[n] = rec.taken();
                n += 1;
            }
        }
        let mut history = 0u64;
        for k in (0..n).rev() {
            history = (history << 1) | dirs[k] as u64;
        }
        history
    }
}
