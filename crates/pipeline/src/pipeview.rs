//! Per-instruction pipeline timelines, in the spirit of gem5's O3 pipeline
//! viewer: every retired instruction carries the cycle it passed each stage,
//! and [`render`] draws them as aligned ASCII lanes.
//!
//! Enable with [`SimConfig::pipeview`](crate::SimConfig::pipeview) and run
//! via [`simulate_pipeview`](crate::simulate_pipeview):
//!
//! ```
//! use aim_isa::{Assembler, Reg};
//! use aim_pipeline::{pipeview, simulate_pipeview, MachineClass, SimConfig};
//! use aim_predictor::EnforceMode;
//!
//! let mut asm = Assembler::new();
//! asm.movi(Reg::new(1), 5);
//! asm.movi(Reg::new(2), 0x100);
//! asm.label("loop");
//! asm.sd(Reg::new(1), Reg::new(2), 0);
//! asm.ld(Reg::new(3), Reg::new(2), 0);
//! asm.subi(Reg::new(1), Reg::new(1), 1);
//! asm.bne(Reg::new(1), Reg::ZERO, "loop");
//! asm.halt();
//!
//! let mut cfg = SimConfig::machine(MachineClass::Baseline).mode(EnforceMode::All).build();
//! cfg.pipeview = true;
//! let (_, records) = simulate_pipeview(&asm.assemble().unwrap(), &cfg).unwrap();
//! println!("{}", pipeview::render(&records, 60));
//! ```

use std::fmt::Write as _;

/// One retired instruction's passage through the pipeline.
///
/// All cycle stamps are absolute machine cycles; they are monotonically
/// non-decreasing in the order dispatched → issued → completed → retired.
/// An instruction that replayed keeps the stamps of its *final* (successful)
/// pass, with [`replayed`](PipeRecord::replayed) set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeRecord {
    /// Dispatch sequence number.
    pub seq: u64,
    /// Program counter (instruction index).
    pub pc: u64,
    /// Disassembled instruction text.
    pub instr: String,
    /// Cycle the instruction entered the ROB.
    pub dispatched: u64,
    /// Cycle the (final) execution pass began.
    pub issued: u64,
    /// Cycle the result was broadcast.
    pub completed: u64,
    /// Cycle the instruction retired.
    pub retired: u64,
    /// The memory unit dropped at least one execution pass (§2.4 replay).
    pub replayed: bool,
    /// Executed via the ROB-head bypass (§2.2).
    pub bypassed: bool,
}

/// Renders records as aligned ASCII timelines, `width` columns across.
///
/// Stage markers: `D` dispatch, `I` issue, `C` complete, `R` retire; `=`
/// fills issue→complete (execution) and `.` fills the other in-flight
/// spans. When two stages land in the same column the later marker wins.
/// Replayed instructions are flagged `r`, head-bypassed ones `b`.
///
/// Returns an empty string for an empty slice.
#[must_use]
pub fn render(records: &[PipeRecord], width: usize) -> String {
    let Some(first) = records.iter().map(|r| r.dispatched).min() else {
        return String::new();
    };
    let last = records.iter().map(|r| r.retired).max().expect("non-empty");
    let width = width.max(16);
    let span = last.saturating_sub(first).max(1) as f64;
    let scale = |cycle: u64| -> usize {
        let frac = cycle.saturating_sub(first) as f64 / span;
        ((frac * (width - 1) as f64).round() as usize).min(width - 1)
    };
    // Tolerate out-of-order stamps (a hand-built record, not the machine's
    // contract) by normalizing each span's endpoints.
    let ordered = |a: usize, b: usize| if a <= b { a..=b } else { b..=a };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "cycles {first}..{last} ({} instructions; D dispatch, I issue, C complete, R retire)",
        records.len()
    );
    for r in records {
        let mut lane = vec![b' '; width];
        lane[ordered(scale(r.dispatched), scale(r.retired))].fill(b'.');
        lane[ordered(scale(r.issued), scale(r.completed))].fill(b'=');
        lane[scale(r.dispatched)] = b'D';
        lane[scale(r.issued)] = b'I';
        lane[scale(r.completed)] = b'C';
        lane[scale(r.retired)] = b'R';
        let flags = match (r.replayed, r.bypassed) {
            (true, true) => "rb",
            (true, false) => "r ",
            (false, true) => " b",
            (false, false) => "  ",
        };
        let _ = writeln!(
            out,
            "{:>6} pc={:<5} {:<28} {} |{}|",
            r.seq,
            r.pc,
            truncate(&r.instr, 28),
            flags,
            String::from_utf8(lane).expect("ascii lane"),
        );
    }
    out
}

fn truncate(s: &str, max: usize) -> &str {
    match s.char_indices().nth(max) {
        Some((idx, _)) => &s[..idx],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, d: u64, i: u64, c: u64, r: u64) -> PipeRecord {
        PipeRecord {
            seq,
            pc: seq,
            instr: format!("op{seq}"),
            dispatched: d,
            issued: i,
            completed: c,
            retired: r,
            replayed: false,
            bypassed: false,
        }
    }

    #[test]
    fn empty_input_renders_empty() {
        assert_eq!(render(&[], 60), "");
    }

    #[test]
    fn markers_appear_in_stage_order() {
        let out = render(&[rec(1, 0, 10, 20, 30)], 40);
        let lane = out.lines().nth(1).unwrap();
        let (d, i) = (lane.find('D').unwrap(), lane.find('I').unwrap());
        let (c, r) = (lane.find('C').unwrap(), lane.find('R').unwrap());
        assert!(d < i && i < c && c < r, "{lane}");
    }

    #[test]
    fn coincident_stages_keep_the_later_marker() {
        // All four stages in one cycle: R must win the column.
        let out = render(&[rec(1, 5, 5, 5, 5)], 40);
        let lane = out.lines().nth(1).unwrap();
        assert!(lane.contains('R') && !lane.contains('D'));
    }

    #[test]
    fn lanes_share_one_time_axis() {
        let out = render(&[rec(1, 0, 1, 2, 3), rec(2, 97, 98, 99, 100)], 50);
        let lane = |n: usize| {
            let line = out.lines().nth(n).unwrap();
            let bar = line.find('|').unwrap();
            &line[bar + 1..line.len() - 1]
        };
        // The early instruction's lane sits entirely left of the late one's:
        // its retire column precedes the late instruction's first mark.
        let first_r = lane(1).find('R').unwrap();
        let second_start = lane(2).find(|c: char| c != ' ').unwrap();
        assert!(first_r < second_start, "{out}");
    }

    #[test]
    fn replay_and_bypass_flags_render() {
        let mut r = rec(1, 0, 1, 2, 3);
        r.replayed = true;
        r.bypassed = true;
        assert!(render(&[r], 40).lines().nth(1).unwrap().contains("rb"));
    }

    #[test]
    fn long_disassembly_is_truncated() {
        let mut r = rec(1, 0, 1, 2, 3);
        r.instr = "x".repeat(100);
        let lane = render(&[r], 40);
        assert!(lane.lines().nth(1).unwrap().len() < 120);
    }
}
