//! Register renaming: physical register file, register alias table, free
//! list, and walk-back recovery.

use aim_isa::Reg;

/// A physical register number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg(pub u32);

/// The renamer: RAT + physical register file + free list.
///
/// Both simulated processors "include Alpha 21264 style renaming and
/// checkpoint recovery" (§3). Recovery here is implemented by walking the
/// reorder buffer backwards and undoing each squashed instruction's mapping
/// ([`Renamer::undo`]) — functionally equivalent to restoring a checkpoint at
/// any instruction, with the cost modeled by the flush penalty.
///
/// `r0` is pinned to physical register 0, which is always zero and always
/// ready.
///
/// # Examples
///
/// ```
/// use aim_isa::Reg;
/// use aim_pipeline::Renamer;
///
/// let mut r = Renamer::new(40);
/// let rename = r.rename_dest(Reg::new(5)).unwrap();
/// r.write(rename.new_phys, 99);
/// assert_eq!(r.read(r.lookup(Reg::new(5))), 99);
/// ```
#[derive(Debug, Clone)]
pub struct Renamer {
    rat: [PhysReg; Reg::COUNT],
    values: Vec<u64>,
    ready: Vec<bool>,
    free: Vec<PhysReg>,
}

/// The mapping change performed by renaming one destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenameDest {
    /// The architectural destination.
    pub arch: Reg,
    /// The newly allocated physical register (not ready).
    pub new_phys: PhysReg,
    /// The previous mapping, freed at retirement or restored on squash.
    pub old_phys: PhysReg,
}

impl Renamer {
    /// Creates a renamer with `phys_regs` physical registers.
    ///
    /// Physical registers `0..32` initially back the architectural registers
    /// (all zero, all ready); the rest populate the free list.
    ///
    /// # Panics
    ///
    /// Panics if `phys_regs <= 32`.
    pub fn new(phys_regs: usize) -> Renamer {
        assert!(
            phys_regs > Reg::COUNT,
            "need more physical than architectural registers"
        );
        let mut rat = [PhysReg(0); Reg::COUNT];
        for (i, slot) in rat.iter_mut().enumerate() {
            *slot = PhysReg(i as u32);
        }
        Renamer {
            rat,
            values: vec![0; phys_regs],
            ready: vec![true; phys_regs],
            free: (Reg::COUNT as u32..phys_regs as u32)
                .rev()
                .map(PhysReg)
                .collect(),
        }
    }

    /// Number of free physical registers.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Current physical mapping of `arch`.
    pub fn lookup(&self, arch: Reg) -> PhysReg {
        self.rat[arch.index() as usize]
    }

    /// Allocates a new physical register for `arch` and updates the RAT.
    /// Returns `None` if the free list is empty (dispatch must stall).
    ///
    /// `r0` is never renamed; callers filter it out via [`aim_isa::Instr::def`].
    pub fn rename_dest(&mut self, arch: Reg) -> Option<RenameDest> {
        debug_assert!(!arch.is_zero(), "r0 is never renamed");
        let new_phys = self.free.pop()?;
        let old_phys = self.rat[arch.index() as usize];
        self.rat[arch.index() as usize] = new_phys;
        self.ready[new_phys.0 as usize] = false;
        self.values[new_phys.0 as usize] = 0;
        Some(RenameDest {
            arch,
            new_phys,
            old_phys,
        })
    }

    /// Whether `p` holds its final value.
    pub fn is_ready(&self, p: PhysReg) -> bool {
        self.ready[p.0 as usize]
    }

    /// Reads `p` (meaningful only once ready).
    pub fn read(&self, p: PhysReg) -> u64 {
        self.values[p.0 as usize]
    }

    /// Writes `p` and marks it ready (instruction completion).
    pub fn write(&mut self, p: PhysReg, value: u64) {
        debug_assert_ne!(p.0, 0, "p0 is the hardwired zero");
        self.values[p.0 as usize] = value;
        self.ready[p.0 as usize] = true;
    }

    /// Undoes a rename during walk-back recovery: restores the old mapping
    /// and returns the new register to the free list.
    ///
    /// Must be called in reverse dispatch order (youngest squashed first).
    pub fn undo(&mut self, rename: RenameDest) {
        self.rat[rename.arch.index() as usize] = rename.old_phys;
        self.free.push(rename.new_phys);
    }

    /// Releases the *old* physical register when the renaming instruction
    /// retires (the previous value can no longer be referenced).
    pub fn retire(&mut self, rename: RenameDest) {
        // p0..p31 initially back the architectural registers; p0 in
        // particular is the hardwired zero and must never be reallocated.
        if rename.old_phys.0 != 0 {
            self.free.push(rename.old_phys);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn initial_mapping_is_identity_and_ready() {
        let rn = Renamer::new(64);
        for i in 0..32u8 {
            let p = rn.lookup(r(i));
            assert_eq!(p, PhysReg(i as u32));
            assert!(rn.is_ready(p));
            assert_eq!(rn.read(p), 0);
        }
        assert_eq!(rn.free_count(), 32);
    }

    #[test]
    fn rename_write_read_roundtrip() {
        let mut rn = Renamer::new(64);
        let d = rn.rename_dest(r(3)).unwrap();
        assert!(!rn.is_ready(d.new_phys));
        rn.write(d.new_phys, 0x1234);
        assert!(rn.is_ready(d.new_phys));
        assert_eq!(rn.read(rn.lookup(r(3))), 0x1234);
    }

    #[test]
    fn free_list_exhaustion_returns_none() {
        let mut rn = Renamer::new(34);
        assert!(rn.rename_dest(r(1)).is_some());
        assert!(rn.rename_dest(r(2)).is_some());
        assert!(rn.rename_dest(r(3)).is_none());
    }

    #[test]
    fn undo_restores_mapping_in_reverse_order() {
        let mut rn = Renamer::new(64);
        let before = rn.lookup(r(7));
        let a = rn.rename_dest(r(7)).unwrap();
        let b = rn.rename_dest(r(7)).unwrap();
        assert_eq!(b.old_phys, a.new_phys);
        rn.undo(b);
        assert_eq!(rn.lookup(r(7)), a.new_phys);
        rn.undo(a);
        assert_eq!(rn.lookup(r(7)), before);
        assert_eq!(rn.free_count(), 32);
    }

    #[test]
    fn retire_frees_old_register() {
        let mut rn = Renamer::new(64);
        let a = rn.rename_dest(r(7)).unwrap();
        rn.write(a.new_phys, 5);
        let free_before = rn.free_count();
        rn.retire(a);
        // old mapping was p7 (an initial architectural backing != 0): freed.
        assert_eq!(rn.free_count(), free_before + 1);
    }

    #[test]
    fn retire_never_frees_p0() {
        let mut rn = Renamer::new(64);
        // r0 is never renamed, but an instruction whose old mapping is p0
        // could only arise artificially; guard anyway.
        let fake = RenameDest {
            arch: r(1),
            new_phys: PhysReg(40),
            old_phys: PhysReg(0),
        };
        let before = rn.free_count();
        rn.retire(fake);
        assert_eq!(rn.free_count(), before);
    }
}
