//! The multi-core machine: several [`Core`] pipelines over one shared
//! memory system, driven by a deterministic core scheduler.
//!
//! Each core runs its own program (with its own golden trace for fetch
//! steering) and owns private L1 caches; all cores share committed memory
//! and the unified L2 through an [`aim_mem::SharedHandle`]. The scheduler
//! decides which core advances one cycle next — round-robin for the
//! canonical interleaving, or a seeded random walk so the litmus harness
//! can explore many interleavings reproducibly.
//!
//! A `MultiMachine` with one core is *bit-identical* to the historical
//! single-core [`Machine`]: `Core::with_shared` folds the core id into the
//! oracle seed with an identity at core 0, [`CoreMemSys`] replicates the
//! single-core hierarchy's latency ladder exactly, and the round-robin
//! scheduler degenerates to the single-core cycle loop. The hostperf
//! `--check` gate asserts this across the full configuration matrix.
//!
//! [`CoreMemSys`]: aim_mem::CoreMemSys
//! [`Machine`]: crate::Machine

use aim_isa::{Interpreter, LitmusTest, Program, Trace};
use aim_mem::{MainMemory, SharedHandle, SharedMemSystem};

use crate::config::SimConfig;
use crate::machine::{Core, SimError};
use crate::stats::SimStats;

/// Which core advances on each global scheduling quantum.
///
/// Both schedules are deterministic: the same schedule value over the same
/// programs and configuration reproduces the same execution exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreSchedule {
    /// Every non-halted core steps once per global tick, in core-id order.
    /// With one core this is exactly the single-core cycle loop.
    RoundRobin,
    /// One uniformly chosen non-halted core advances a burst of 1–128
    /// cycles per global quantum, both drawn from a seeded xorshift stream.
    /// Bursts (rather than single cycles) matter: they let one core freeze
    /// at an arbitrary pipeline point — say, between a sibling-visible
    /// store executing and it committing — while another runs far past it,
    /// which is what surfaces the relaxed litmus outcomes. Different seeds
    /// give different interleavings; the litmus harness sweeps hundreds.
    Random {
        /// Stream seed (zero is remapped internally; any value is valid).
        seed: u64,
    },
}

/// Per-core and merged statistics of a multi-core run.
#[derive(Debug, Clone)]
pub struct MultiStats {
    /// One entry per core, in core-id order.
    pub per_core: Vec<SimStats>,
    /// Whole-machine view: counters summed, `cycles` the maximum over
    /// cores, L1 counters summed, the shared L2 counted once, and
    /// [`BackendStats::None`](aim_backend::BackendStats) (per-backend
    /// counters stay per-core — summing different variants is meaningless).
    pub merged: SimStats,
}

/// Architectural end state of a multi-core run.
#[derive(Debug)]
pub struct MultiFinalState {
    /// Final `r0..r31` per core, in core-id order.
    pub regs: Vec<Vec<u64>>,
    /// The shared committed memory image.
    pub mem: MainMemory,
}

/// Several cores over one shared memory system.
///
/// # Examples
///
/// Two cores, each running its own program, round-robin scheduled:
///
/// ```
/// use aim_isa::{Assembler, Interpreter, Reg};
/// use aim_pipeline::{BackendChoice, CoreSchedule, MachineClass, MultiMachine, SimConfig};
///
/// let mut asm = Assembler::new();
/// asm.movi(Reg::new(1), 7);
/// asm.halt();
/// let p0 = asm.assemble().unwrap();
/// let t0 = Interpreter::new(&p0).run(100).unwrap();
/// let p1 = p0.clone();
/// let t1 = Interpreter::new(&p1).run(100).unwrap();
///
/// let cfg = SimConfig::machine(MachineClass::Baseline).backend(BackendChoice::Lsq).build();
/// let mm = MultiMachine::new(&[(&p0, &t0), (&p1, &t1)], cfg);
/// let stats = mm.run(CoreSchedule::RoundRobin).unwrap();
/// assert_eq!(stats.per_core.len(), 2);
/// assert_eq!(stats.merged.retired, 4);
/// ```
pub struct MultiMachine<'a> {
    cores: Vec<Core<'a>>,
    shared: SharedHandle,
}

impl<'a> MultiMachine<'a> {
    /// Builds an N-core machine: one `(program, trace)` pair per core, all
    /// cores identically configured (core 0 keeps the seed verbatim,
    /// siblings fold their id in).
    ///
    /// Initial shared memory is the programs' data images written in core
    /// order (later cores win on overlap, which well-formed multi-core
    /// workloads avoid).
    pub fn new(workloads: &[(&'a Program, &'a Trace)], config: SimConfig) -> MultiMachine<'a> {
        let mut mem = MainMemory::new();
        for (program, _) in workloads {
            for (addr, bytes) in program.data() {
                mem.write_bytes(*addr, bytes);
            }
        }
        let shared = SharedMemSystem::new(mem, config.hierarchy).into_handle();
        let cores = workloads
            .iter()
            .enumerate()
            .map(|(id, (program, trace))| {
                Core::with_shared(program, trace, config.clone(), id, shared.clone())
            })
            .collect();
        MultiMachine { cores, shared }
    }

    /// Number of attached cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Runs all cores to completion under `schedule` and returns per-core
    /// plus merged statistics.
    ///
    /// # Errors
    ///
    /// Any core's [`SimError`] aborts the whole run (validation errors name
    /// the offending core's program state).
    pub fn run(mut self, schedule: CoreSchedule) -> Result<MultiStats, SimError> {
        self.run_loop(schedule)?;
        Ok(self.collect_stats())
    }

    /// Like [`MultiMachine::run`], but also returns the architectural end
    /// state (per-core register files and the shared memory image).
    ///
    /// # Errors
    ///
    /// See [`MultiMachine::run`].
    pub fn run_final(mut self, schedule: CoreSchedule) -> Result<(MultiStats, MultiFinalState), SimError> {
        self.run_loop(schedule)?;
        let stats = self.collect_stats();
        let regs = self.cores.iter().map(Core::arch_regs).collect();
        drop(self.cores);
        let mem = match std::rc::Rc::try_unwrap(self.shared) {
            Ok(cell) => cell.into_inner().into_memory(),
            Err(rc) => rc.borrow().mem().clone(),
        };
        Ok((stats, MultiFinalState { regs, mem }))
    }

    fn run_loop(&mut self, schedule: CoreSchedule) -> Result<(), SimError> {
        let wall_start = std::time::Instant::now();
        // A core with an empty trace has nothing to retire; it is born
        // halted (mirroring the single-core run_loop's early return).
        for core in &mut self.cores {
            if core.target_retired == 0 {
                core.halted = true;
            }
        }
        match schedule {
            CoreSchedule::RoundRobin => loop {
                let mut live = false;
                for core in &mut self.cores {
                    if !core.halted {
                        live = true;
                        core.step()?;
                    }
                }
                if !live {
                    break;
                }
            },
            CoreSchedule::Random { seed } => {
                let mut rng = Xorshift64Star::new(seed);
                loop {
                    let live: Vec<usize> = (0..self.cores.len())
                        .filter(|&i| !self.cores[i].halted)
                        .collect();
                    if live.is_empty() {
                        break;
                    }
                    let pick = live[(rng.next() % live.len() as u64) as usize];
                    let burst = (rng.next() % 128) + 1;
                    for _ in 0..burst {
                        if self.cores[pick].halted {
                            break;
                        }
                        self.cores[pick].step()?;
                    }
                }
            }
        }
        let wall_ns = wall_start.elapsed().as_nanos() as u64;
        // Re-finalize every core now that the machine is quiescent, so all
        // per-core stats carry the *same* final shared-L2 snapshot (each
        // core froze its own copy at its own halt time above).
        for core in &mut self.cores {
            core.stats.cycles = core.cycle;
            core.finalize_stats();
            core.stats.host.wall_ns = wall_ns;
        }
        Ok(())
    }

    fn collect_stats(&self) -> MultiStats {
        let per_core: Vec<SimStats> = self.cores.iter().map(|c| c.stats.clone()).collect();
        let merged = merge_stats(&per_core);
        MultiStats { per_core, merged }
    }
}

/// Merges per-core statistics into a whole-machine view (see
/// [`MultiStats::merged`] for the conventions).
fn merge_stats(per_core: &[SimStats]) -> SimStats {
    let mut m = SimStats::default();
    for (i, s) in per_core.iter().enumerate() {
        m.cycles = m.cycles.max(s.cycles);
        m.retired += s.retired;
        m.retired_loads += s.retired_loads;
        m.retired_stores += s.retired_stores;
        m.fetched += s.fetched;
        m.dispatched += s.dispatched;
        m.issued += s.issued;
        m.squashed += s.squashed;
        m.load_executions += s.load_executions;
        m.store_executions += s.store_executions;
        m.loads_forwarded += s.loads_forwarded;
        m.head_bypasses += s.head_bypasses;
        m.mdt_filtered_loads += s.mdt_filtered_loads;
        m.dispatch_stalls.rob_full += s.dispatch_stalls.rob_full;
        m.dispatch_stalls.no_phys_reg += s.dispatch_stalls.no_phys_reg;
        m.dispatch_stalls.lq_full += s.dispatch_stalls.lq_full;
        m.dispatch_stalls.sq_full += s.dispatch_stalls.sq_full;
        m.dispatch_stalls.fifo_full += s.dispatch_stalls.fifo_full;
        m.replays.load_mdt_conflicts += s.replays.load_mdt_conflicts;
        m.replays.store_mdt_conflicts += s.replays.store_mdt_conflicts;
        m.replays.store_sfc_conflicts += s.replays.store_sfc_conflicts;
        m.replays.load_corrupt += s.replays.load_corrupt;
        m.replays.load_partial += s.replays.load_partial;
        m.replays.order_waits += s.replays.order_waits;
        m.flushes.branch += s.flushes.branch;
        m.flushes.true_dep += s.flushes.true_dep;
        m.flushes.anti_dep += s.flushes.anti_dep;
        m.flushes.output_dep += s.flushes.output_dep;
        m.branches_retired += s.branches_retired;
        m.branch_mispredicts += s.branch_mispredicts;
        m.gshare.correct += s.gshare.correct;
        m.gshare.incorrect += s.gshare.incorrect;
        m.dep_predictor.arcs_inserted += s.dep_predictor.arcs_inserted;
        m.dep_predictor.arcs_filtered += s.dep_predictor.arcs_filtered;
        m.dep_predictor.producers_dispatched += s.dep_predictor.producers_dispatched;
        m.dep_predictor.consumers_dispatched += s.dep_predictor.consumers_dispatched;
        m.dep_predictor.merges += s.dep_predictor.merges;
        m.dep_predictor.clears += s.dep_predictor.clears;
        // Private L1s sum; the shared L2 snapshot is identical across cores
        // after the final re-finalization, so it is taken once.
        m.caches.0.hits += s.caches.0.hits;
        m.caches.0.misses += s.caches.0.misses;
        m.caches.1.hits += s.caches.1.hits;
        m.caches.1.misses += s.caches.1.misses;
        if i == 0 {
            m.caches.2 = s.caches.2;
            m.host.wall_ns = s.host.wall_ns;
        }
        m.host.event_strings_built += s.host.event_strings_built;
        // m.backend stays BackendStats::None: per-backend counters are
        // variant-typed and remain meaningful only per core.
    }
    m
}

/// Runs one litmus test on real pipelines under one schedule and returns
/// the observed-register outcome vector (same order as `test.observed`).
///
/// Each core's program is first run through the isolated single-core
/// [`Interpreter`] to produce the trace that steers its fetch stage —
/// litmus programs are straight-line, so steering is value-independent —
/// and golden-trace retirement validation is disabled
/// ([`SimConfig::validate_retirement`]): sibling stores legitimately change
/// the values loads observe.
///
/// # Errors
///
/// [`SimError::Program`] if a litmus program fails under the interpreter;
/// otherwise any [`SimError`] from the pipelines themselves.
pub fn run_litmus(
    test: &LitmusTest,
    config: &SimConfig,
    schedule: CoreSchedule,
) -> Result<Vec<u64>, SimError> {
    let traces: Vec<Trace> = test
        .programs
        .iter()
        .map(|p| {
            Interpreter::new(p)
                .run(100_000)
                .map_err(|e| SimError::Program(format!("litmus {}: {e}", test.name)))
        })
        .collect::<Result<_, _>>()?;
    let workloads: Vec<(&Program, &Trace)> =
        test.programs.iter().zip(traces.iter()).collect();
    let mut cfg = config.clone();
    cfg.validate_retirement = false;
    let mm = MultiMachine::new(&workloads, cfg);
    let (_, final_state) = mm.run_final(schedule)?;
    Ok(test
        .observed
        .iter()
        .map(|&(core, reg)| final_state.regs[core][reg.index() as usize])
        .collect())
}

/// xorshift64* — tiny deterministic stream for the random core schedule.
struct Xorshift64Star {
    state: u64,
}

impl Xorshift64Star {
    fn new(seed: u64) -> Xorshift64Star {
        Xorshift64Star {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BackendChoice, Machine, MachineClass};
    use aim_isa::{Assembler, Reg};

    fn cfg(backend: BackendChoice) -> SimConfig {
        SimConfig::machine(MachineClass::Baseline).backend(backend).build()
    }

    fn loop_program_at(iters: i64, base: i64) -> (Program, Trace) {
        let r = Reg::new;
        let mut asm = Assembler::new();
        asm.movi(r(1), iters);
        asm.movi(r(2), base);
        asm.movi(r(4), 0);
        asm.label("loop");
        asm.sd(r(1), r(2), 0);
        asm.ld(r(3), r(2), 0);
        asm.add(r(4), r(4), r(3));
        asm.subi(r(1), r(1), 1);
        asm.bne(r(1), Reg::ZERO, "loop");
        asm.halt();
        let program = asm.assemble().unwrap();
        let trace = Interpreter::new(&program).run(1_000_000).unwrap();
        (program, trace)
    }

    fn loop_program(iters: i64) -> (Program, Trace) {
        loop_program_at(iters, 0x1000)
    }

    #[test]
    fn single_core_multi_matches_machine_exactly() {
        let (program, trace) = loop_program(64);
        let solo = Machine::new(&program, &trace, cfg(BackendChoice::SfcMdt))
            .run()
            .unwrap();
        let multi = MultiMachine::new(&[(&program, &trace)], cfg(BackendChoice::SfcMdt))
            .run(CoreSchedule::RoundRobin)
            .unwrap();
        assert_eq!(multi.per_core.len(), 1);
        assert_eq!(
            format!("{:?}", solo.with_zeroed_host()),
            format!("{:?}", multi.per_core[0].with_zeroed_host()),
            "one-core MultiMachine must be bit-identical to Machine"
        );
    }

    #[test]
    fn merged_stats_sum_counters_and_take_l2_once() {
        // Disjoint working sets: each core validates against its own
        // isolated golden trace, so they must not share mutable words.
        let (p0, t0) = loop_program_at(32, 0x1000);
        let (p1, t1) = loop_program_at(48, 0x8000);
        let multi = MultiMachine::new(&[(&p0, &t0), (&p1, &t1)], cfg(BackendChoice::Lsq))
            .run(CoreSchedule::RoundRobin)
            .unwrap();
        let m = &multi.merged;
        let a = &multi.per_core[0];
        let b = &multi.per_core[1];
        assert_eq!(m.retired, a.retired + b.retired);
        assert_eq!(m.cycles, a.cycles.max(b.cycles));
        assert_eq!(m.caches.1.hits, a.caches.1.hits + b.caches.1.hits);
        // Shared L2: both cores snapshot the same final state.
        assert_eq!(a.caches.2, b.caches.2);
        assert_eq!(m.caches.2, a.caches.2);
        assert!(matches!(m.backend, aim_backend::BackendStats::None));
    }

    #[test]
    fn random_schedule_is_deterministic_per_seed() {
        let suite = aim_isa::litmus_suite();
        let sb = &suite[0];
        let c = cfg(BackendChoice::SfcMdt);
        let a = run_litmus(sb, &c, CoreSchedule::Random { seed: 17 }).unwrap();
        let b = run_litmus(sb, &c, CoreSchedule::Random { seed: 17 }).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn litmus_outcome_has_observed_arity() {
        for test in aim_isa::litmus_suite() {
            let o = run_litmus(&test, &cfg(BackendChoice::Lsq), CoreSchedule::RoundRobin).unwrap();
            assert_eq!(o.len(), test.observed.len(), "{}", test.name);
        }
    }
}
