//! Fetch stage: I-cache access, branch prediction, and the oracle boost
//! that keeps the wrong-path rate at the paper's effective accuracy.

use aim_isa::Instr;
use aim_mem::MemLevel;

use crate::machine::{Core, Fetched};

impl Core<'_> {
    pub(crate) fn fetch(&mut self) {
        if self.fetch_halted
            || self.cycle < self.fetch_stall_until
            || self.fetch_buffer.len() >= self.config.width
        {
            return;
        }

        // Model the I-cache on the first access of the group: a miss costs
        // the fill latency before any instruction is delivered. Fetch can
        // never be replayed, so a far-tier miss takes the queued
        // (never-refuse) path.
        let (level, latency) = self
            .memsys
            .access_instr_at(self.program.fetch_addr(self.fetch_pc), self.cycle);
        if level != MemLevel::L1 {
            self.fetch_stall_until = self.cycle + latency;
            return;
        }

        let mut branches = 0usize;
        for _ in 0..self.config.width {
            let Some(&instr) = self.program.instr(self.fetch_pc) else {
                // Wrong-path fetch ran off the instruction stream; wait for a
                // redirect.
                self.fetch_halted = true;
                return;
            };
            if instr.is_control() {
                if branches >= self.config.max_branches_per_cycle {
                    break;
                }
                branches += 1;
            }

            let pc = self.fetch_pc;
            // Fetch believes it is on the correct path when the trace record
            // under the cursor matches the pc. A mismatch is legal: a branch
            // fed by a mis-speculated value (whose ordering violation has not
            // been detected yet) can steer a "correct-path" redirect to a
            // wrong target. Such instructions are really wrong-path — the
            // violation's flush will squash them before they can retire — so
            // fetch degrades to off-path until the next recovery resyncs it.
            let on_path = self.on_correct_path
                && match self.trace_record(self.trace_cursor) {
                    Some(rec) if rec.pc == pc => true,
                    _ => {
                        self.on_correct_path = false;
                        false
                    }
                };
            let trace_next = on_path.then(|| {
                self.trace_record(self.trace_cursor)
                    .expect("matched above")
                    .next_pc
            });

            let history_snapshot = self.gshare.history();
            let predicted_next_pc = match instr {
                Instr::Jump { target } | Instr::Jal { target, .. } => target,
                Instr::Jr { .. } => trace_next.unwrap_or(pc + 1),
                Instr::Branch { target, .. } => {
                    let pred_taken = self.gshare.predict(pc);
                    let taken = match trace_next {
                        Some(next) => {
                            let actual_taken = next != pc + 1;
                            if pred_taken == actual_taken || self.oracle.fixes_mispredict() {
                                actual_taken
                            } else {
                                pred_taken
                            }
                        }
                        None => pred_taken,
                    };
                    self.gshare.speculate(taken);
                    if taken {
                        target
                    } else {
                        pc + 1
                    }
                }
                Instr::Halt => pc,
                _ => pc + 1,
            };

            self.fetch_buffer.push_back(Fetched {
                pc,
                instr,
                trace_index: on_path.then_some(self.trace_cursor),
                predicted_next_pc,
                history_snapshot,
            });
            self.stats.fetched += 1;

            if on_path {
                if Some(predicted_next_pc) == trace_next {
                    self.trace_cursor += 1;
                } else {
                    self.on_correct_path = false;
                }
            }
            self.fetch_pc = predicted_next_pc;
            if matches!(instr, Instr::Halt) {
                self.fetch_halted = true;
                break;
            }
        }
    }
}
