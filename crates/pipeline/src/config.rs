//! Simulator configuration: the paper's Figure 4 in code.

use std::fmt;

use aim_backend::{
    BackendParams, FilterConfig, LsqConfig, MdtConfig, PartialMatchPolicy, PcaxConfig, SfcConfig,
};
use aim_mem::{HierarchyConfig, MemSpec};
use aim_predictor::{EnforceMode, PredictorConfig};
use aim_types::SampleSpec;

pub use aim_backend::{BackendChoice, BackendConfig};

/// Recovery policy for output dependence violations (paper §2.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputDepRecovery {
    /// Conservatively flush all instructions subsequent to the completing
    /// (earlier) store.
    #[default]
    Flush,
    /// "The memory subsystem could simply mark the corresponding SFC entry as
    /// corrupt, and optionally alert the memory dependence predictor" — no
    /// pipeline flush.
    MarkCorrupt,
}

/// Full machine configuration. [`SimConfig::baseline`] and
/// [`SimConfig::aggressive`] reproduce the two columns of Figure 4;
/// [`SimConfig::machine`] starts a [`MachineBuilder`] that picks the
/// class-appropriate geometry for any [`BackendChoice`].
#[derive(Clone)]
pub struct SimConfig {
    /// Instructions fetched, dispatched and retired per cycle.
    pub width: usize,
    /// Maximum branches fetched per cycle (1 baseline, 8 aggressive).
    pub max_branches_per_cycle: usize,
    /// Issue bandwidth (identical fully pipelined function units).
    pub issue_width: usize,
    /// Reorder-buffer entries (= scheduling window; Figure 4 sizes them
    /// identically).
    pub rob_entries: usize,
    /// Physical registers (must exceed `rob_entries + 32`).
    pub phys_regs: usize,
    /// Branch misprediction penalty in cycles (Figure 4: 8).
    pub mispredict_penalty: u64,
    /// Extra penalty on MDT-detected violations, modeling the MDT tag check
    /// ("we increase the penalty for memory ordering violations by one cycle
    /// with the MDT", §3).
    pub mdt_violation_extra_penalty: u64,
    /// Extra store latency modeling the SFC tag check ("we increase the
    /// latency of store instructions by one cycle for all experiments with
    /// the SFC", §3).
    pub sfc_store_extra_latency: u64,
    /// Single-cycle integer-op latency.
    pub alu_latency: u64,
    /// Multiplier latency.
    pub mul_latency: u64,
    /// Address-generation latency for loads and stores.
    pub agu_latency: u64,
    /// Memory-system spec: cache geometry, the latency ladder, and the
    /// optional far-memory tier (the canonical [`MemSpec`]; the field keeps
    /// its pre-`MemSpec` name, which the content-addressed cache key's
    /// canonical `Debug` text depends on).
    pub hierarchy: HierarchyConfig,
    /// Which memory-ordering backend the machine instantiates (see
    /// [`aim_backend::build`]).
    pub backend: BackendConfig,
    /// Producer-set predictor geometry and enforcement mode.
    pub dep_predictor: PredictorConfig,
    /// Gshare size (2-bit counters; Figure 4: 4096 = 8 Kbit).
    pub gshare_counters: usize,
    /// Gshare global-history bits.
    pub gshare_history_bits: u32,
    /// Fraction of correct-path mispredicts repaired by the oracle
    /// (Figure 4: 0.8).
    pub oracle_fix_probability: f64,
    /// RNG seed for the oracle (deterministic runs).
    pub seed: u64,
    /// Partial-match handling in the SFC.
    pub partial_match_policy: PartialMatchPolicy,
    /// Output-dependence recovery policy.
    pub output_dep_recovery: OutputDepRecovery,
    /// Whether replayed instructions sleep until an SFC/MDT entry is freed
    /// (the stall-bit heuristic of §2.4.3). Only applies to backends that
    /// emit free events (see
    /// [`MemBackend::uses_stall_bits`](aim_backend::MemBackend::uses_stall_bits)).
    pub stall_bits: bool,
    /// Store FIFO capacity for the SFC/MDT backend (0 = unbounded; the paper
    /// does not size its FIFO, and the reorder buffer bounds it anyway).
    pub store_fifo_entries: usize,
    /// §4 extension: filter MDT accesses for loads that provably cannot
    /// conflict. "Search filtering has been proposed as a technique for
    /// decreasing the LSQ's dynamic power consumption ... search filtering
    /// could dramatically decrease the pressure on the MDT, thereby offering
    /// higher performance from a much smaller MDT." A load skips the MDT
    /// entirely when (a) no in-flight store is still unexecuted — so no
    /// later-executing older store could need the load's record — and (b) a
    /// counting filter over executed-unretired store granules shows no
    /// possible alias — so no anti-dependence check is needed. Off by
    /// default (the paper's evaluated design has no filter).
    pub mdt_filter: bool,
    /// Record a per-event pipeline trace (see [`Machine::run_traced`]);
    /// costs time and memory, off by default.
    ///
    /// [`Machine::run_traced`]: crate::Machine::run_traced
    pub event_trace: bool,
    /// Collect per-instruction stage timelines for the pipeline viewer (see
    /// [`crate::pipeview`]); bounded memory, off by default.
    pub pipeview: bool,
    /// Run the wakeup-list and store-census integrity checks even in
    /// release builds (they always run under `debug_assertions`). Wired to
    /// the `--paranoid` CLI flag; off by default because the censuses are
    /// O(window) per cycle.
    pub paranoid: bool,
    /// Validate every retirement against the golden interpreter trace
    /// (value, address, and path checks). On by default — this is the
    /// simulator's core correctness oracle. Multi-core litmus runs turn it
    /// off: sibling cores legitimately change the values loads observe, so
    /// an isolated per-core trace cannot predict them.
    pub validate_retirement: bool,
    /// Stop after this many retired instructions (0 = trace length).
    pub max_instrs: u64,
    /// Sampled fast-forward execution: when set, the machine alternates
    /// functional warm-up stretches with detailed cycle-accurate windows
    /// under this policy and extrapolates whole-run timing statistics from
    /// the detailed windows (see [`crate::sample`]). `None` (the default)
    /// simulates every instruction cycle-accurately.
    pub sample: Option<SampleSpec>,
}

/// **Compatibility contract** (the content-addressed serve cache keys the
/// canonical `Debug` text of the config): a config without a sampling
/// policy renders byte-identically to the pre-sampling derived output — the
/// `sample` field is printed only when populated, in which case the run
/// measures different (extrapolated) statistics and a new cache key is
/// correct. Mirrors the [`MemSpec`] `far` and `SimStats` treatment.
impl fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("SimConfig");
        d.field("width", &self.width)
            .field("max_branches_per_cycle", &self.max_branches_per_cycle)
            .field("issue_width", &self.issue_width)
            .field("rob_entries", &self.rob_entries)
            .field("phys_regs", &self.phys_regs)
            .field("mispredict_penalty", &self.mispredict_penalty)
            .field(
                "mdt_violation_extra_penalty",
                &self.mdt_violation_extra_penalty,
            )
            .field("sfc_store_extra_latency", &self.sfc_store_extra_latency)
            .field("alu_latency", &self.alu_latency)
            .field("mul_latency", &self.mul_latency)
            .field("agu_latency", &self.agu_latency)
            .field("hierarchy", &self.hierarchy)
            .field("backend", &self.backend)
            .field("dep_predictor", &self.dep_predictor)
            .field("gshare_counters", &self.gshare_counters)
            .field("gshare_history_bits", &self.gshare_history_bits)
            .field("oracle_fix_probability", &self.oracle_fix_probability)
            .field("seed", &self.seed)
            .field("partial_match_policy", &self.partial_match_policy)
            .field("output_dep_recovery", &self.output_dep_recovery)
            .field("stall_bits", &self.stall_bits)
            .field("store_fifo_entries", &self.store_fifo_entries)
            .field("mdt_filter", &self.mdt_filter)
            .field("event_trace", &self.event_trace)
            .field("pipeview", &self.pipeview)
            .field("paranoid", &self.paranoid)
            .field("validate_retirement", &self.validate_retirement)
            .field("max_instrs", &self.max_instrs);
        if self.sample.is_some() {
            d.field("sample", &self.sample);
        }
        d.finish()
    }
}

impl SimConfig {
    /// The paper's baseline 4-wide superscalar (Figure 4, left column).
    pub fn baseline(backend: BackendConfig) -> SimConfig {
        SimConfig {
            width: 4,
            max_branches_per_cycle: 1,
            issue_width: 4,
            rob_entries: 128,
            phys_regs: 128 + 64,
            mispredict_penalty: 8,
            mdt_violation_extra_penalty: 1,
            sfc_store_extra_latency: 1,
            alu_latency: 1,
            mul_latency: 3,
            agu_latency: 1,
            hierarchy: HierarchyConfig::default(),
            backend,
            dep_predictor: PredictorConfig::figure4(EnforceMode::All),
            gshare_counters: 4096,
            gshare_history_bits: 12,
            oracle_fix_probability: 0.8,
            seed: 0xA1A1,
            partial_match_policy: PartialMatchPolicy::Combine,
            output_dep_recovery: OutputDepRecovery::Flush,
            stall_bits: true,
            store_fifo_entries: 0,
            mdt_filter: false,
            event_trace: false,
            pipeview: false,
            paranoid: false,
            validate_retirement: true,
            max_instrs: 0,
            sample: None,
        }
    }

    /// The paper's aggressive 8-wide superscalar (Figure 4, right column).
    pub fn aggressive(backend: BackendConfig) -> SimConfig {
        SimConfig {
            width: 8,
            max_branches_per_cycle: 8,
            issue_width: 8,
            rob_entries: 1024,
            phys_regs: 1024 + 64,
            // The aggressive ENF configuration enforces a total order within
            // each producer set (§3.2).
            dep_predictor: PredictorConfig::figure4(EnforceMode::TotalOrder),
            ..SimConfig::baseline(backend)
        }
    }

    /// The kilo-entry-window machine: the aggressive 8-wide core scaled to
    /// a 4096-entry reorder buffer, the regime where thousands of loads can
    /// be simultaneously outstanding against a far-memory tier and
    /// associative LSQ search throttles (ROADMAP "scale the window to the
    /// extreme"; arXiv 2404.11044's operating point).
    pub fn huge(backend: BackendConfig) -> SimConfig {
        SimConfig {
            rob_entries: 4096,
            phys_regs: 4096 + 64,
            // §2.4.2's cheap output-dependence recovery: at a 4096-entry
            // window a conservative flush discards thousands of
            // instructions per same-address store reordering, so the huge
            // class takes the paper's stated alternative — "the memory
            // subsystem could simply mark the corresponding SFC entry as
            // corrupt" — instead of squashing.
            output_dep_recovery: OutputDepRecovery::MarkCorrupt,
            ..SimConfig::aggressive(backend)
        }
    }

    /// The backend-construction parameters this machine configuration
    /// implies (the input to [`aim_backend::build`]).
    pub fn backend_params(&self) -> BackendParams {
        BackendParams {
            config: self.backend,
            store_fifo_entries: self.store_fifo_entries,
            partial_match_policy: self.partial_match_policy,
            sfc_store_extra_latency: self.sfc_store_extra_latency,
            mdt_violation_extra_penalty: self.mdt_violation_extra_penalty,
        }
    }

    /// Starts a [`MachineBuilder`] for the given Figure 4 machine class:
    ///
    /// ```
    /// use aim_pipeline::{BackendChoice, MachineClass, SimConfig};
    ///
    /// let cfg = SimConfig::machine(MachineClass::Baseline)
    ///     .backend(BackendChoice::SfcMdt)
    ///     .build();
    /// assert_eq!(cfg.width, 4);
    /// ```
    pub fn machine(class: MachineClass) -> MachineBuilder {
        MachineBuilder {
            class,
            backend: BackendChoice::default(),
            mode: None,
            lsq: None,
            filter: None,
            pcax: None,
            mem: None,
            sample: None,
        }
    }
}

/// Which machine column a configuration starts from: the paper's two
/// Figure 4 classes, plus the kilo-entry-window extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineClass {
    /// The 4-wide, 128-entry-ROB machine (Figure 4, left column).
    Baseline,
    /// The 8-wide, 1024-entry-ROB machine (Figure 4, right column).
    Aggressive,
    /// The 8-wide, 4096-entry-ROB kilo-entry-window machine
    /// ([`SimConfig::huge`]), defaulting to the wide 256×256 LSQ.
    Huge,
}

/// Builds a [`SimConfig`] from a machine class and a [`BackendChoice`],
/// filling in the class-appropriate structure geometries (Figure 5's
/// baseline SFC/MDT vs Figure 6's aggressive ones, the 48×32 LSQ) and the
/// backend-appropriate predictor enforcement mode.
///
/// Defaults every knob sensibly; override only what an experiment varies:
/// [`backend`](MachineBuilder::backend) picks the family,
/// [`mode`](MachineBuilder::mode) the enforcement mode,
/// [`lsq`](MachineBuilder::lsq) / [`filter`](MachineBuilder::filter) /
/// [`pcax`](MachineBuilder::pcax) the structure geometries.
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    class: MachineClass,
    backend: BackendChoice,
    mode: Option<EnforceMode>,
    lsq: Option<LsqConfig>,
    filter: Option<FilterConfig>,
    pcax: Option<PcaxConfig>,
    mem: Option<MemSpec>,
    sample: Option<SampleSpec>,
}

impl MachineBuilder {
    /// Selects the backend family (default: [`BackendChoice::SfcMdt`]).
    pub fn backend(mut self, backend: BackendChoice) -> MachineBuilder {
        self.backend = backend;
        self
    }

    /// Overrides the producer-set enforcement mode. Default: the SFC/MDT
    /// and PCAX backends use the paper's evaluated modes
    /// ([`EnforceMode::All`] baseline, [`EnforceMode::TotalOrder`]
    /// aggressive, §3.2) — PCAX's memory unit *is* the SFC/MDT, which
    /// suffers the §3.1 anti/output flush storms without enforcement;
    /// every other backend uses [`EnforceMode::TrueOnly`] — for the bounds
    /// backends the predictor would only add spurious serialization, and
    /// the LSQ / filtered backends order true dependences themselves.
    pub fn mode(mut self, mode: EnforceMode) -> MachineBuilder {
        self.mode = Some(mode);
        self
    }

    /// Overrides the LSQ capacities (LSQ and filtered-LSQ backends;
    /// default: the Figure 5 48×32 queue).
    pub fn lsq(mut self, lsq: LsqConfig) -> MachineBuilder {
        self.lsq = Some(lsq);
        self
    }

    /// Overrides the store-presence filter geometry (filtered-LSQ backend).
    pub fn filter(mut self, filter: FilterConfig) -> MachineBuilder {
        self.filter = Some(filter);
        self
    }

    /// Overrides the PCAX classification-table geometry (PCAX backend).
    pub fn pcax(mut self, pcax: PcaxConfig) -> MachineBuilder {
        self.pcax = Some(pcax);
        self
    }

    /// Overrides the memory-system spec (default: [`MemSpec::figure4`], the
    /// paper's hierarchy with no far tier).
    pub fn mem(mut self, mem: MemSpec) -> MachineBuilder {
        self.mem = Some(mem);
        self
    }

    /// Enables sampled fast-forward execution under `spec` (default: off —
    /// every instruction simulates cycle-accurately).
    pub fn sample(mut self, spec: SampleSpec) -> MachineBuilder {
        self.sample = Some(spec);
        self
    }

    /// Produces the [`SimConfig`].
    pub fn build(self) -> SimConfig {
        let aggressive = self.class != MachineClass::Baseline;
        // Figure 5's baseline geometries vs Figure 6's aggressive ones. The
        // huge class grows both address-indexed tables with the window (a
        // 4096-entry window keeps thousands of stores and word addresses in
        // flight, thrashing the Figure 4 geometries with set-conflict
        // replays) — cheap, because they are RAM-indexed. The LSQ CAM, by
        // contrast, stays capped at 256×256 — that asymmetry is the paper's
        // scaling claim.
        let (sfc, mdt) = match self.class {
            MachineClass::Baseline => (SfcConfig::baseline(), MdtConfig::baseline()),
            MachineClass::Aggressive => (SfcConfig::aggressive(), MdtConfig::aggressive()),
            MachineClass::Huge => (SfcConfig::huge(), MdtConfig::huge()),
        };
        let lsq = self.lsq.unwrap_or(if self.class == MachineClass::Huge {
            LsqConfig::aggressive_256x256()
        } else {
            LsqConfig::baseline_48x32()
        });
        let backend = match self.backend {
            BackendChoice::NoSpec => BackendConfig::NoSpec,
            BackendChoice::Lsq => BackendConfig::Lsq(lsq),
            BackendChoice::Filtered => BackendConfig::FilteredLsq {
                lsq,
                filter: self.filter.unwrap_or(FilterConfig::baseline()),
            },
            BackendChoice::SfcMdt => BackendConfig::SfcMdt { sfc, mdt },
            BackendChoice::Pcax => BackendConfig::Pcax {
                sfc,
                mdt,
                pcax: self.pcax.unwrap_or(PcaxConfig::baseline()),
            },
            BackendChoice::Oracle => BackendConfig::Oracle,
        };
        let mode = self.mode.unwrap_or(match self.backend {
            BackendChoice::SfcMdt | BackendChoice::Pcax if aggressive => EnforceMode::TotalOrder,
            BackendChoice::SfcMdt | BackendChoice::Pcax => EnforceMode::All,
            _ => EnforceMode::TrueOnly,
        });
        let mut cfg = match self.class {
            MachineClass::Baseline => SimConfig::baseline(backend),
            MachineClass::Aggressive => SimConfig::aggressive(backend),
            MachineClass::Huge => SimConfig::huge(backend),
        };
        cfg.dep_predictor = PredictorConfig::figure4(mode);
        if let Some(mem) = self.mem {
            cfg.hierarchy = mem;
        }
        cfg.sample = self.sample;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_figure4() {
        let c = SimConfig::machine(MachineClass::Baseline)
            .backend(BackendChoice::Lsq)
            .build();
        assert_eq!(c.width, 4);
        assert_eq!(c.max_branches_per_cycle, 1);
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.mispredict_penalty, 8);
        assert_eq!(c.gshare_counters * 2, 8192); // 8 Kbit
        assert_eq!(c.oracle_fix_probability, 0.8);
        match c.backend {
            BackendConfig::Lsq(l) => {
                assert_eq!(l.load_entries, 48);
                assert_eq!(l.store_entries, 32);
            }
            _ => panic!("expected LSQ backend"),
        }
    }

    #[test]
    fn aggressive_matches_figure4() {
        let c = SimConfig::machine(MachineClass::Aggressive).build();
        assert_eq!(c.width, 8);
        assert_eq!(c.max_branches_per_cycle, 8);
        assert_eq!(c.rob_entries, 1024);
        match c.backend {
            BackendConfig::SfcMdt { sfc, mdt } => {
                assert_eq!(sfc.sets, 512); // 1K entries, 2-way
                assert_eq!(sfc.ways, 2);
                assert_eq!(mdt.sets, 8192); // 16K entries, 2-way
                assert_eq!(mdt.ways, 2);
            }
            _ => panic!("expected SFC/MDT backend"),
        }
        // §3.2: the aggressive ENF default is a total order per producer set.
        assert_eq!(c.dep_predictor.mode, EnforceMode::TotalOrder);
    }

    #[test]
    fn huge_scales_the_window_and_widens_the_lsq() {
        let c = SimConfig::machine(MachineClass::Huge).build();
        assert_eq!(c.width, 8);
        assert_eq!(c.rob_entries, 4096);
        assert_eq!(c.phys_regs, 4096 + 64);
        // §3.2's aggressive ENF default carries over to the huge class.
        assert_eq!(c.dep_predictor.mode, EnforceMode::TotalOrder);
        // The address-indexed tables grow with the window (RAM-indexed, so
        // capacity is cheap — unlike the LSQ CAM below, which stays capped).
        match c.backend {
            BackendConfig::SfcMdt { sfc, mdt } => {
                assert_eq!((sfc.sets, sfc.ways), (2048, 4));
                assert_eq!((mdt.sets, mdt.ways), (32768, 4));
            }
            _ => panic!("expected SFC/MDT backend"),
        }
        let lsq = SimConfig::machine(MachineClass::Huge)
            .backend(BackendChoice::Lsq)
            .build();
        match lsq.backend {
            BackendConfig::Lsq(l) => {
                assert_eq!((l.load_entries, l.store_entries), (256, 256));
            }
            _ => panic!("expected LSQ backend"),
        }
    }

    #[test]
    fn mem_knob_threads_the_spec_into_the_config() {
        use aim_mem::FarSpec;
        let spec = MemSpec::figure4().with_far(FarSpec::new(400, 64, 8));
        let c = SimConfig::machine(MachineClass::Huge).mem(spec).build();
        assert_eq!(c.hierarchy, spec);
        assert_eq!(c.hierarchy.far, Some(FarSpec::new(400, 64, 8)));
        // Default-filled specs are the default hierarchy (the cache-key
        // compatibility contract rides on this).
        let default_filled = SimConfig::machine(MachineClass::Baseline)
            .mem(MemSpec::figure4())
            .build();
        let implicit = SimConfig::machine(MachineClass::Baseline).build();
        assert_eq!(default_filled.hierarchy, implicit.hierarchy);
    }

    #[test]
    fn sample_knob_threads_and_debug_stays_compatible() {
        // Compatibility contract: with sampling off (the default), the
        // canonical Debug text must not mention the field at all — every
        // committed cache fingerprint rides on this.
        let off = SimConfig::machine(MachineClass::Baseline).build();
        assert_eq!(off.sample, None);
        let off_text = format!("{off:?}");
        assert!(!off_text.contains("sample"), "{off_text}");
        assert!(off_text.ends_with("max_instrs: 0 }"), "{off_text}");

        let spec = SampleSpec::new(2_000, 500, 10).unwrap();
        let on = SimConfig::machine(MachineClass::Baseline)
            .sample(spec)
            .build();
        assert_eq!(on.sample, Some(spec));
        let on_text = format!("{on:?}");
        assert!(
            on_text.contains(
                "max_instrs: 0, sample: Some(SampleSpec { warm_insts: 2000, \
                 detail_insts: 500, periods: 10 }) }"
            ),
            "{on_text}"
        );
    }

    #[test]
    fn backend_params_mirror_machine_knobs() {
        let mut c = SimConfig::machine(MachineClass::Baseline)
            .mode(EnforceMode::All)
            .build();
        c.store_fifo_entries = 8;
        c.sfc_store_extra_latency = 2;
        let p = c.backend_params();
        assert_eq!(p.config, c.backend);
        assert_eq!(p.store_fifo_entries, 8);
        assert_eq!(p.sfc_store_extra_latency, 2);
        assert_eq!(p.mdt_violation_extra_penalty, 1);
    }

    #[test]
    fn builder_covers_every_backend_choice() {
        for class in [MachineClass::Baseline, MachineClass::Aggressive] {
            for choice in BackendChoice::ALL {
                let c = SimConfig::machine(class).backend(choice).build();
                let expected = match choice {
                    BackendChoice::NoSpec => "nospec",
                    BackendChoice::Lsq => "lsq",
                    BackendChoice::Filtered => "flsq",
                    BackendChoice::SfcMdt => "sfc",
                    BackendChoice::Pcax => "pcax",
                    BackendChoice::Oracle => "oracle",
                };
                assert!(
                    c.backend.name().starts_with(expected),
                    "{choice}: {}",
                    c.backend.name()
                );
            }
        }
    }

    #[test]
    fn mode_defaults_follow_backend_and_class() {
        let base = SimConfig::machine(MachineClass::Baseline).build();
        assert_eq!(base.dep_predictor.mode, EnforceMode::All);
        let agg = SimConfig::machine(MachineClass::Aggressive).build();
        assert_eq!(agg.dep_predictor.mode, EnforceMode::TotalOrder);
        // PCAX wraps the SFC/MDT, so it inherits the same evaluated modes.
        let pcax = SimConfig::machine(MachineClass::Baseline)
            .backend(BackendChoice::Pcax)
            .build();
        assert_eq!(pcax.dep_predictor.mode, EnforceMode::All);
        let pcax_agg = SimConfig::machine(MachineClass::Aggressive)
            .backend(BackendChoice::Pcax)
            .build();
        assert_eq!(pcax_agg.dep_predictor.mode, EnforceMode::TotalOrder);
        for choice in [
            BackendChoice::NoSpec,
            BackendChoice::Lsq,
            BackendChoice::Filtered,
            BackendChoice::Oracle,
        ] {
            let c = SimConfig::machine(MachineClass::Baseline)
                .backend(choice)
                .build();
            assert_eq!(c.dep_predictor.mode, EnforceMode::TrueOnly, "{choice}");
        }
        let forced = SimConfig::machine(MachineClass::Aggressive)
            .mode(EnforceMode::All)
            .build();
        assert_eq!(forced.dep_predictor.mode, EnforceMode::All);
    }

    #[test]
    fn pcax_gets_class_appropriate_sfc_mdt() {
        let c = SimConfig::machine(MachineClass::Aggressive)
            .backend(BackendChoice::Pcax)
            .build();
        match c.backend {
            BackendConfig::Pcax { sfc, mdt, pcax } => {
                assert_eq!(sfc.sets, 512);
                assert_eq!(mdt.sets, 8192);
                assert_eq!(pcax.table.sets, 1024);
            }
            _ => panic!("expected PCAX backend"),
        }
    }
}
