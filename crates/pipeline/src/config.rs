//! Simulator configuration: the paper's Figure 4 in code.

use aim_backend::{BackendParams, FilterConfig, LsqConfig, MdtConfig, PartialMatchPolicy, SfcConfig};
use aim_mem::HierarchyConfig;
use aim_predictor::{EnforceMode, PredictorConfig};

pub use aim_backend::BackendConfig;

/// Recovery policy for output dependence violations (paper §2.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputDepRecovery {
    /// Conservatively flush all instructions subsequent to the completing
    /// (earlier) store.
    #[default]
    Flush,
    /// "The memory subsystem could simply mark the corresponding SFC entry as
    /// corrupt, and optionally alert the memory dependence predictor" — no
    /// pipeline flush.
    MarkCorrupt,
}

/// Full machine configuration. [`SimConfig::baseline`] and
/// [`SimConfig::aggressive`] reproduce the two columns of Figure 4.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Instructions fetched, dispatched and retired per cycle.
    pub width: usize,
    /// Maximum branches fetched per cycle (1 baseline, 8 aggressive).
    pub max_branches_per_cycle: usize,
    /// Issue bandwidth (identical fully pipelined function units).
    pub issue_width: usize,
    /// Reorder-buffer entries (= scheduling window; Figure 4 sizes them
    /// identically).
    pub rob_entries: usize,
    /// Physical registers (must exceed `rob_entries + 32`).
    pub phys_regs: usize,
    /// Branch misprediction penalty in cycles (Figure 4: 8).
    pub mispredict_penalty: u64,
    /// Extra penalty on MDT-detected violations, modeling the MDT tag check
    /// ("we increase the penalty for memory ordering violations by one cycle
    /// with the MDT", §3).
    pub mdt_violation_extra_penalty: u64,
    /// Extra store latency modeling the SFC tag check ("we increase the
    /// latency of store instructions by one cycle for all experiments with
    /// the SFC", §3).
    pub sfc_store_extra_latency: u64,
    /// Single-cycle integer-op latency.
    pub alu_latency: u64,
    /// Multiplier latency.
    pub mul_latency: u64,
    /// Address-generation latency for loads and stores.
    pub agu_latency: u64,
    /// Cache geometry and miss latencies.
    pub hierarchy: HierarchyConfig,
    /// Which memory-ordering backend the machine instantiates (see
    /// [`aim_backend::build`]).
    pub backend: BackendConfig,
    /// Producer-set predictor geometry and enforcement mode.
    pub dep_predictor: PredictorConfig,
    /// Gshare size (2-bit counters; Figure 4: 4096 = 8 Kbit).
    pub gshare_counters: usize,
    /// Gshare global-history bits.
    pub gshare_history_bits: u32,
    /// Fraction of correct-path mispredicts repaired by the oracle
    /// (Figure 4: 0.8).
    pub oracle_fix_probability: f64,
    /// RNG seed for the oracle (deterministic runs).
    pub seed: u64,
    /// Partial-match handling in the SFC.
    pub partial_match_policy: PartialMatchPolicy,
    /// Output-dependence recovery policy.
    pub output_dep_recovery: OutputDepRecovery,
    /// Whether replayed instructions sleep until an SFC/MDT entry is freed
    /// (the stall-bit heuristic of §2.4.3). Only applies to backends that
    /// emit free events (see
    /// [`MemBackend::uses_stall_bits`](aim_backend::MemBackend::uses_stall_bits)).
    pub stall_bits: bool,
    /// Store FIFO capacity for the SFC/MDT backend (0 = unbounded; the paper
    /// does not size its FIFO, and the reorder buffer bounds it anyway).
    pub store_fifo_entries: usize,
    /// §4 extension: filter MDT accesses for loads that provably cannot
    /// conflict. "Search filtering has been proposed as a technique for
    /// decreasing the LSQ's dynamic power consumption ... search filtering
    /// could dramatically decrease the pressure on the MDT, thereby offering
    /// higher performance from a much smaller MDT." A load skips the MDT
    /// entirely when (a) no in-flight store is still unexecuted — so no
    /// later-executing older store could need the load's record — and (b) a
    /// counting filter over executed-unretired store granules shows no
    /// possible alias — so no anti-dependence check is needed. Off by
    /// default (the paper's evaluated design has no filter).
    pub mdt_filter: bool,
    /// Record a per-event pipeline trace (see [`Machine::run_traced`]);
    /// costs time and memory, off by default.
    ///
    /// [`Machine::run_traced`]: crate::Machine::run_traced
    pub event_trace: bool,
    /// Collect per-instruction stage timelines for the pipeline viewer (see
    /// [`crate::pipeview`]); bounded memory, off by default.
    pub pipeview: bool,
    /// Stop after this many retired instructions (0 = trace length).
    pub max_instrs: u64,
}

impl SimConfig {
    /// The paper's baseline 4-wide superscalar (Figure 4, left column).
    pub fn baseline(backend: BackendConfig) -> SimConfig {
        SimConfig {
            width: 4,
            max_branches_per_cycle: 1,
            issue_width: 4,
            rob_entries: 128,
            phys_regs: 128 + 64,
            mispredict_penalty: 8,
            mdt_violation_extra_penalty: 1,
            sfc_store_extra_latency: 1,
            alu_latency: 1,
            mul_latency: 3,
            agu_latency: 1,
            hierarchy: HierarchyConfig::default(),
            backend,
            dep_predictor: PredictorConfig::figure4(EnforceMode::All),
            gshare_counters: 4096,
            gshare_history_bits: 12,
            oracle_fix_probability: 0.8,
            seed: 0xA1A1,
            partial_match_policy: PartialMatchPolicy::Combine,
            output_dep_recovery: OutputDepRecovery::Flush,
            stall_bits: true,
            store_fifo_entries: 0,
            mdt_filter: false,
            event_trace: false,
            pipeview: false,
            max_instrs: 0,
        }
    }

    /// The paper's aggressive 8-wide superscalar (Figure 4, right column).
    pub fn aggressive(backend: BackendConfig) -> SimConfig {
        SimConfig {
            width: 8,
            max_branches_per_cycle: 8,
            issue_width: 8,
            rob_entries: 1024,
            phys_regs: 1024 + 64,
            // The aggressive ENF configuration enforces a total order within
            // each producer set (§3.2).
            dep_predictor: PredictorConfig::figure4(EnforceMode::TotalOrder),
            ..SimConfig::baseline(backend)
        }
    }

    /// The backend-construction parameters this machine configuration
    /// implies (the input to [`aim_backend::build`]).
    pub fn backend_params(&self) -> BackendParams {
        BackendParams {
            config: self.backend,
            store_fifo_entries: self.store_fifo_entries,
            partial_match_policy: self.partial_match_policy,
            sfc_store_extra_latency: self.sfc_store_extra_latency,
            mdt_violation_extra_penalty: self.mdt_violation_extra_penalty,
        }
    }

    /// Convenience: baseline machine with the Figure 5 SFC/MDT geometry
    /// ("a 256 entry, 2-way associative store forwarding cache, an 8192
    /// entry, 2-way associative memory disambiguation table").
    pub fn baseline_sfc_mdt(mode: EnforceMode) -> SimConfig {
        let mut cfg = SimConfig::baseline(BackendConfig::SfcMdt {
            sfc: SfcConfig::baseline(),
            mdt: MdtConfig::baseline(),
        });
        cfg.dep_predictor = PredictorConfig::figure4(mode);
        cfg
    }

    /// Convenience: baseline machine with the Figure 5 idealized 48×32 LSQ.
    pub fn baseline_lsq() -> SimConfig {
        let mut cfg = SimConfig::baseline(BackendConfig::Lsq(LsqConfig::baseline_48x32()));
        cfg.dep_predictor = PredictorConfig::figure4(EnforceMode::TrueOnly);
        cfg
    }

    /// Convenience: baseline machine with the 48×32 LSQ behind an
    /// MDT-style membership filter (the hybrid of §2.2's address-indexed
    /// lookup and the associative store queue): loads whose word has no
    /// in-flight store skip the CAM search entirely.
    pub fn baseline_filtered_lsq() -> SimConfig {
        let mut cfg = SimConfig::baseline(BackendConfig::FilteredLsq {
            lsq: LsqConfig::baseline_48x32(),
            filter: FilterConfig::baseline(),
        });
        cfg.dep_predictor = PredictorConfig::figure4(EnforceMode::TrueOnly);
        cfg
    }

    /// Convenience: baseline machine with perfect disambiguation — the
    /// upper bound any real backend is bracketed by.
    pub fn baseline_oracle() -> SimConfig {
        let mut cfg = SimConfig::baseline(BackendConfig::Oracle);
        // With no violations possible, the predictor would only add
        // spurious serialization.
        cfg.dep_predictor = PredictorConfig::figure4(EnforceMode::TrueOnly);
        cfg
    }

    /// Convenience: baseline machine with no load speculation — the lower
    /// bound any real backend is bracketed by.
    pub fn baseline_nospec() -> SimConfig {
        let mut cfg = SimConfig::baseline(BackendConfig::NoSpec);
        cfg.dep_predictor = PredictorConfig::figure4(EnforceMode::TrueOnly);
        cfg
    }

    /// Convenience: aggressive machine with the Figure 6 SFC/MDT geometry
    /// ("a 1K entry, 2-way associative SFC, a 16K entry, 2-way associative
    /// MDT").
    pub fn aggressive_sfc_mdt(mode: EnforceMode) -> SimConfig {
        let mut cfg = SimConfig::aggressive(BackendConfig::SfcMdt {
            sfc: SfcConfig::aggressive(),
            mdt: MdtConfig::aggressive(),
        });
        cfg.dep_predictor = PredictorConfig::figure4(mode);
        cfg
    }

    /// Convenience: aggressive machine with an idealized LSQ of the given
    /// capacity.
    pub fn aggressive_lsq(lsq: LsqConfig) -> SimConfig {
        let mut cfg = SimConfig::aggressive(BackendConfig::Lsq(lsq));
        cfg.dep_predictor = PredictorConfig::figure4(EnforceMode::TrueOnly);
        cfg
    }

    /// Convenience: aggressive machine with a filtered LSQ of the given
    /// capacity.
    pub fn aggressive_filtered_lsq(lsq: LsqConfig) -> SimConfig {
        let mut cfg = SimConfig::aggressive(BackendConfig::FilteredLsq {
            lsq,
            filter: FilterConfig::baseline(),
        });
        cfg.dep_predictor = PredictorConfig::figure4(EnforceMode::TrueOnly);
        cfg
    }

    /// Convenience: aggressive machine with perfect disambiguation.
    pub fn aggressive_oracle() -> SimConfig {
        let mut cfg = SimConfig::aggressive(BackendConfig::Oracle);
        cfg.dep_predictor = PredictorConfig::figure4(EnforceMode::TrueOnly);
        cfg
    }

    /// Convenience: aggressive machine with no load speculation.
    pub fn aggressive_nospec() -> SimConfig {
        let mut cfg = SimConfig::aggressive(BackendConfig::NoSpec);
        cfg.dep_predictor = PredictorConfig::figure4(EnforceMode::TrueOnly);
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_figure4() {
        let c = SimConfig::baseline_lsq();
        assert_eq!(c.width, 4);
        assert_eq!(c.max_branches_per_cycle, 1);
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.mispredict_penalty, 8);
        assert_eq!(c.gshare_counters * 2, 8192); // 8 Kbit
        assert_eq!(c.oracle_fix_probability, 0.8);
        match c.backend {
            BackendConfig::Lsq(l) => {
                assert_eq!(l.load_entries, 48);
                assert_eq!(l.store_entries, 32);
            }
            _ => panic!("expected LSQ backend"),
        }
    }

    #[test]
    fn aggressive_matches_figure4() {
        let c = SimConfig::aggressive_sfc_mdt(EnforceMode::TotalOrder);
        assert_eq!(c.width, 8);
        assert_eq!(c.max_branches_per_cycle, 8);
        assert_eq!(c.rob_entries, 1024);
        match c.backend {
            BackendConfig::SfcMdt { sfc, mdt } => {
                assert_eq!(sfc.sets, 512); // 1K entries, 2-way
                assert_eq!(sfc.ways, 2);
                assert_eq!(mdt.sets, 8192); // 16K entries, 2-way
                assert_eq!(mdt.ways, 2);
            }
            _ => panic!("expected SFC/MDT backend"),
        }
        assert_eq!(c.dep_predictor.mode, EnforceMode::TotalOrder);
    }

    #[test]
    fn backend_params_mirror_machine_knobs() {
        let mut c = SimConfig::baseline_sfc_mdt(EnforceMode::All);
        c.store_fifo_entries = 8;
        c.sfc_store_extra_latency = 2;
        let p = c.backend_params();
        assert_eq!(p.config, c.backend);
        assert_eq!(p.store_fifo_entries, 8);
        assert_eq!(p.sfc_store_extra_latency, 2);
        assert_eq!(p.mdt_violation_extra_penalty, 1);
    }

    #[test]
    fn bounds_configs_use_bounds_backends() {
        assert_eq!(SimConfig::baseline_oracle().backend, BackendConfig::Oracle);
        assert_eq!(SimConfig::baseline_nospec().backend, BackendConfig::NoSpec);
        assert_eq!(
            SimConfig::aggressive_oracle().backend,
            BackendConfig::Oracle
        );
        assert_eq!(
            SimConfig::aggressive_nospec().backend,
            BackendConfig::NoSpec
        );
    }
}
