//! Aggregate simulation statistics.

use std::fmt;

use aim_backend::{BackendStats, DispatchStall, MemKind, ReplayCause};
use aim_mem::{CacheStats, FarStats};
use aim_predictor::{GshareStats, PredictorStats};
use aim_types::percent;

/// Why dispatch stalled, cycle by cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStalls {
    /// Reorder buffer full.
    pub rob_full: u64,
    /// No free physical register.
    pub no_phys_reg: u64,
    /// Load queue full (LSQ backend only).
    pub lq_full: u64,
    /// Store queue full (LSQ backend only).
    pub sq_full: u64,
    /// Store FIFO full (bounded-FIFO configurations only).
    pub fifo_full: u64,
}

impl DispatchStalls {
    /// Records one backend-reported dispatch stall against exactly one
    /// counter. This is the single point where backend stall causes map to
    /// statistics — dispatch must call it once per stalled cycle, never per
    /// queued instruction behind the stall.
    pub fn record(&mut self, stall: DispatchStall) {
        match stall {
            DispatchStall::LoadQueueFull => self.lq_full += 1,
            DispatchStall::StoreQueueFull => self.sq_full += 1,
            DispatchStall::StoreFifoFull => self.fifo_full += 1,
        }
    }
}

/// Why memory instructions were dropped and replayed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayCounts {
    /// Loads replayed on MDT set conflicts.
    pub load_mdt_conflicts: u64,
    /// Stores replayed on MDT set conflicts.
    pub store_mdt_conflicts: u64,
    /// Stores replayed on SFC set conflicts.
    pub store_sfc_conflicts: u64,
    /// Loads replayed on SFC corruption.
    pub load_corrupt: u64,
    /// Loads replayed on SFC partial matches (replay policy only).
    pub load_partial: u64,
    /// Loads replayed waiting for older stores (oracle/no-spec backends).
    pub order_waits: u64,
}

impl ReplayCounts {
    /// Total replays of any cause.
    pub fn total(&self) -> u64 {
        self.load_mdt_conflicts
            + self.store_mdt_conflicts
            + self.store_sfc_conflicts
            + self.load_corrupt
            + self.load_partial
            + self.order_waits
    }

    /// Records one backend-reported replay against exactly one counter.
    pub fn count(&mut self, kind: MemKind, cause: ReplayCause) {
        match (kind, cause) {
            (MemKind::Load, ReplayCause::MdtConflict) => self.load_mdt_conflicts += 1,
            (MemKind::Store, ReplayCause::MdtConflict) => self.store_mdt_conflicts += 1,
            (_, ReplayCause::SfcConflict) => self.store_sfc_conflicts += 1,
            (_, ReplayCause::Corrupt) => self.load_corrupt += 1,
            (_, ReplayCause::Partial) => self.load_partial += 1,
            (_, ReplayCause::OrderWait) => self.order_waits += 1,
        }
    }
}

/// Pipeline-flush counts by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushCounts {
    /// Branch misprediction recoveries.
    pub branch: u64,
    /// True dependence violation recoveries.
    pub true_dep: u64,
    /// Anti dependence violation recoveries.
    pub anti_dep: u64,
    /// Output dependence violation recoveries.
    pub output_dep: u64,
}

impl FlushCounts {
    /// Total flushes.
    pub fn total(&self) -> u64 {
        self.branch + self.true_dep + self.anti_dep + self.output_dep
    }

    /// Memory-ordering flushes only.
    pub fn memory(&self) -> u64 {
        self.true_dep + self.anti_dep + self.output_dep
    }
}

/// Host-side measurement of the simulation run itself (as opposed to the
/// simulated machine): wall-clock time and allocation-tracking counters.
///
/// Everything here depends on the host and is *not* deterministic; code
/// comparing runs for reproducibility should compare
/// [`SimStats::with_zeroed_host`] results instead of raw stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostPerf {
    /// Wall-clock nanoseconds spent inside the cycle loop.
    pub wall_ns: u64,
    /// Event-trace strings actually formatted. Zero whenever
    /// `SimConfig::event_trace` is off — the regression test for the
    /// allocation-free hot path asserts exactly that.
    pub event_strings_built: u64,
}

/// Coverage record of a sampled (fast-forward) run: how much of the program
/// ran functionally vs cycle-accurately. Present on [`SimStats::sampled`]
/// only when the run sampled, in which case the whole-run event counters and
/// cycle count are *extrapolated* from the detailed windows (see
/// [`SimStats::extrapolate`]); the retired-instruction counts are always
/// exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampledStats {
    /// Detailed windows actually completed (≤ the configured `periods`:
    /// short programs can end mid-schedule).
    pub periods_run: u32,
    /// Instructions retired by the functional warm-up engine.
    pub warm_retired: u64,
    /// Instructions retired inside detailed cycle-accurate windows.
    pub detail_retired: u64,
    /// Machine cycles spent inside detailed windows (the timing sample the
    /// whole-run cycle count scales up from).
    pub detail_cycles: u64,
}

impl SampledStats {
    /// Fraction of retired instructions that ran cycle-accurately, in
    /// percent.
    pub fn detail_fraction(&self) -> f64 {
        percent(self.detail_retired, self.warm_retired + self.detail_retired)
    }
}

/// Everything a simulation run measured.
#[derive(Clone, Default)]
pub struct SimStats {
    /// Executed machine cycles.
    pub cycles: u64,
    /// Retired (committed) instructions.
    pub retired: u64,
    /// Retired loads.
    pub retired_loads: u64,
    /// Retired stores.
    pub retired_stores: u64,
    /// Instructions fetched (including wrong-path).
    pub fetched: u64,
    /// Instructions dispatched into the window.
    pub dispatched: u64,
    /// Instructions issued to function units (includes replays).
    pub issued: u64,
    /// Instructions squashed by recoveries.
    pub squashed: u64,
    /// Dynamic loads that executed (attempts, including replays).
    pub load_executions: u64,
    /// Dynamic stores that executed (attempts, including replays).
    pub store_executions: u64,
    /// Loads forwarded in full from the SFC or store queue.
    pub loads_forwarded: u64,
    /// Head-of-ROB bypasses of the MDT/SFC (§2.2 lockup avoidance).
    pub head_bypasses: u64,
    /// Loads that skipped the MDT via the §4 search filter.
    pub mdt_filtered_loads: u64,
    /// Dispatch stall causes.
    pub dispatch_stalls: DispatchStalls,
    /// Replay causes.
    pub replays: ReplayCounts,
    /// Flush causes.
    pub flushes: FlushCounts,
    /// Conditional branches retired.
    pub branches_retired: u64,
    /// Conditional branch mispredicts (effective, after oracle).
    pub branch_mispredicts: u64,
    /// Counters from whichever memory-ordering backend ran — exactly one
    /// variant is populated, so reports never carry the other backends'
    /// fields as misleading nulls.
    pub backend: BackendStats,
    /// Gshare accuracy.
    pub gshare: GshareStats,
    /// Producer-set predictor counters.
    pub dep_predictor: PredictorStats,
    /// (L1I, L1D, L2) cache counters.
    pub caches: (CacheStats, CacheStats, CacheStats),
    /// Far-memory tier counters — populated only when the config carries a
    /// [`MemSpec::far`](aim_mem::MemSpec::far) tier. In a multi-core run
    /// the tier is shared, so every core reports the same aggregate.
    pub far: Option<FarStats>,
    /// Sampled-run coverage — populated only when the config carries a
    /// [`SampleSpec`](aim_types::SampleSpec), in which case the event
    /// counters and cycle count above are extrapolated from the detailed
    /// windows (retired counts stay exact).
    pub sampled: Option<SampledStats>,
    /// Host-side throughput measurement (non-deterministic; see
    /// [`HostPerf`]).
    pub host: HostPerf,
}

/// **Compatibility contract** (the hostperf differential gate fingerprints
/// `Debug` text of zeroed-host stats): a run without a far tier renders
/// byte-identically to the pre-far derived output — the `far` field is
/// printed only when populated, in which case the stats describe a machine
/// that could not previously be configured, so a new fingerprint is
/// correct.
impl fmt::Debug for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("SimStats");
        d.field("cycles", &self.cycles)
            .field("retired", &self.retired)
            .field("retired_loads", &self.retired_loads)
            .field("retired_stores", &self.retired_stores)
            .field("fetched", &self.fetched)
            .field("dispatched", &self.dispatched)
            .field("issued", &self.issued)
            .field("squashed", &self.squashed)
            .field("load_executions", &self.load_executions)
            .field("store_executions", &self.store_executions)
            .field("loads_forwarded", &self.loads_forwarded)
            .field("head_bypasses", &self.head_bypasses)
            .field("mdt_filtered_loads", &self.mdt_filtered_loads)
            .field("dispatch_stalls", &self.dispatch_stalls)
            .field("replays", &self.replays)
            .field("flushes", &self.flushes)
            .field("branches_retired", &self.branches_retired)
            .field("branch_mispredicts", &self.branch_mispredicts)
            .field("backend", &self.backend)
            .field("gshare", &self.gshare)
            .field("dep_predictor", &self.dep_predictor)
            .field("caches", &self.caches);
        if self.far.is_some() {
            d.field("far", &self.far);
        }
        if self.sampled.is_some() {
            d.field("sampled", &self.sampled);
        }
        d.field("host", &self.host).finish()
    }
}

impl SimStats {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Memory-ordering violations per retired memory instruction, in percent
    /// (the paper's "rate of memory dependence violations").
    pub fn violation_rate(&self) -> f64 {
        percent(
            self.flushes.memory(),
            self.retired_loads + self.retired_stores,
        )
    }

    /// Fraction of retired loads that were replayed due to SFC corruption.
    pub fn corrupt_replay_rate(&self) -> f64 {
        percent(self.replays.load_corrupt, self.retired_loads)
    }

    /// Fraction of retired stores replayed on SFC set conflicts.
    pub fn sfc_conflict_rate(&self) -> f64 {
        percent(self.replays.store_sfc_conflicts, self.retired_stores)
    }

    /// Fraction of retired loads replayed on MDT set conflicts.
    pub fn mdt_conflict_rate(&self) -> f64 {
        percent(self.replays.load_mdt_conflicts, self.retired_loads)
    }

    /// Host wall-clock seconds spent simulating.
    pub fn host_seconds(&self) -> f64 {
        self.host.wall_ns as f64 / 1e9
    }

    /// Host throughput in simulated kilocycles per wall-clock second.
    pub fn sim_kcycles_per_sec(&self) -> f64 {
        if self.host.wall_ns == 0 {
            0.0
        } else {
            self.cycles as f64 / 1e3 / self.host_seconds()
        }
    }

    /// Host throughput in retired (simulated) million instructions per
    /// wall-clock second.
    pub fn retired_mips(&self) -> f64 {
        if self.host.wall_ns == 0 {
            0.0
        } else {
            self.retired as f64 / 1e6 / self.host_seconds()
        }
    }

    /// A copy with [`SimStats::host`] zeroed — the deterministic portion of
    /// the statistics, suitable for run-to-run equality comparison.
    pub fn with_zeroed_host(&self) -> SimStats {
        SimStats {
            host: HostPerf::default(),
            ..self.clone()
        }
    }

    /// Converts detailed-window measurements into whole-run estimates after
    /// a sampled run: every *event* counter (fetches, issues, replays,
    /// flushes, …) and the cycle count scale by
    /// `retired / sampled.detail_retired` — events accrue per detailed
    /// instruction, so the windows are a proportional sample of the whole
    /// run. The retired-instruction counts are left exact (every
    /// instruction really retired, functionally or in detail), and the
    /// *structure* statistics (backend, gshare, predictor, caches, far) stay
    /// raw whole-run counts — both engines drive those structures, so their
    /// totals are already complete.
    ///
    /// No-op (beyond recording `sampled`) when no detailed instruction
    /// retired.
    pub fn extrapolate(&mut self, sampled: SampledStats) {
        let den = sampled.detail_retired;
        if den > 0 {
            let num = self.retired;
            let scale = |x: u64| ((x as u128 * num as u128 + den as u128 / 2) / den as u128) as u64;
            self.cycles = scale(sampled.detail_cycles);
            self.fetched = scale(self.fetched);
            self.dispatched = scale(self.dispatched);
            self.issued = scale(self.issued);
            self.squashed = scale(self.squashed);
            self.load_executions = scale(self.load_executions);
            self.store_executions = scale(self.store_executions);
            self.loads_forwarded = scale(self.loads_forwarded);
            self.head_bypasses = scale(self.head_bypasses);
            self.mdt_filtered_loads = scale(self.mdt_filtered_loads);
            let d = &mut self.dispatch_stalls;
            d.rob_full = scale(d.rob_full);
            d.no_phys_reg = scale(d.no_phys_reg);
            d.lq_full = scale(d.lq_full);
            d.sq_full = scale(d.sq_full);
            d.fifo_full = scale(d.fifo_full);
            let r = &mut self.replays;
            r.load_mdt_conflicts = scale(r.load_mdt_conflicts);
            r.store_mdt_conflicts = scale(r.store_mdt_conflicts);
            r.store_sfc_conflicts = scale(r.store_sfc_conflicts);
            r.load_corrupt = scale(r.load_corrupt);
            r.load_partial = scale(r.load_partial);
            r.order_waits = scale(r.order_waits);
            let fl = &mut self.flushes;
            fl.branch = scale(fl.branch);
            fl.true_dep = scale(fl.true_dep);
            fl.anti_dep = scale(fl.anti_dep);
            fl.output_dep = scale(fl.output_dep);
            self.branches_retired = scale(self.branches_retired);
            self.branch_mispredicts = scale(self.branch_mispredicts);
        }
        self.sampled = Some(sampled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_computation() {
        let s = SimStats {
            cycles: 100,
            retired: 250,
            ..SimStats::default()
        };
        assert_eq!(s.ipc(), 2.5);
        assert_eq!(SimStats::default().ipc(), 0.0);
    }

    #[test]
    fn rates() {
        let s = SimStats {
            retired_loads: 100,
            retired_stores: 100,
            flushes: FlushCounts {
                branch: 5,
                true_dep: 1,
                anti_dep: 1,
                output_dep: 0,
            },
            replays: ReplayCounts {
                load_corrupt: 20,
                store_sfc_conflicts: 50,
                load_mdt_conflicts: 16,
                ..ReplayCounts::default()
            },
            ..SimStats::default()
        };
        assert_eq!(s.violation_rate(), 1.0);
        assert_eq!(s.corrupt_replay_rate(), 20.0);
        assert_eq!(s.sfc_conflict_rate(), 50.0);
        assert_eq!(s.mdt_conflict_rate(), 16.0);
        assert_eq!(s.flushes.total(), 7);
        assert_eq!(s.replays.total(), 86);
    }

    #[test]
    fn debug_omits_far_until_populated() {
        // The fingerprint-compatibility contract: far-less stats must render
        // exactly as before the field existed.
        let s = SimStats::default();
        let text = format!("{s:?}");
        assert!(!text.contains("far"), "{text}");
        assert!(text.contains("caches: ") && text.contains("host: "), "{text}");
        let with_far = SimStats {
            far: Some(FarStats {
                accesses: 3,
                ..FarStats::default()
            }),
            ..SimStats::default()
        };
        let text = format!("{with_far:?}");
        assert!(text.contains("far: Some(FarStats { accesses: 3"), "{text}");
        // Field order around the optional field is preserved.
        let caches = text.find("caches: ").unwrap();
        let far = text.find("far: ").unwrap();
        let host = text.find("host: ").unwrap();
        assert!(caches < far && far < host);
    }

    #[test]
    fn debug_omits_sampled_until_populated() {
        // Same fingerprint contract as `far`: a non-sampled run renders
        // exactly as before the field existed.
        let s = SimStats::default();
        assert!(!format!("{s:?}").contains("sampled"));
        let with = SimStats {
            far: Some(FarStats::default()),
            sampled: Some(SampledStats {
                periods_run: 2,
                warm_retired: 900,
                detail_retired: 100,
                detail_cycles: 50,
            }),
            ..SimStats::default()
        };
        let text = format!("{with:?}");
        let far = text.find("far: ").unwrap();
        let sampled = text.find("sampled: Some(SampledStats").unwrap();
        let host = text.find("host: ").unwrap();
        assert!(far < sampled && sampled < host, "{text}");
    }

    #[test]
    fn extrapolate_scales_events_and_keeps_retired_exact() {
        let mut s = SimStats {
            cycles: 1_000_000, // warm-inflated; replaced by the estimate
            retired: 1_000,
            retired_loads: 300,
            retired_stores: 200,
            fetched: 120,
            issued: 110,
            loads_forwarded: 7,
            flushes: FlushCounts {
                branch: 3,
                ..FlushCounts::default()
            },
            ..SimStats::default()
        };
        s.extrapolate(SampledStats {
            periods_run: 4,
            warm_retired: 900,
            detail_retired: 100,
            detail_cycles: 50,
        });
        // Factor = 1000 / 100 = 10×.
        assert_eq!(s.cycles, 500);
        assert_eq!(s.fetched, 1_200);
        assert_eq!(s.issued, 1_100);
        assert_eq!(s.loads_forwarded, 70);
        assert_eq!(s.flushes.branch, 30);
        assert_eq!(s.retired, 1_000);
        assert_eq!(s.retired_loads, 300);
        assert_eq!(s.retired_stores, 200);
        assert_eq!(s.ipc(), 2.0);
        let c = s.sampled.unwrap();
        assert_eq!(c.detail_fraction(), 10.0);
    }

    #[test]
    fn extrapolate_with_no_detail_retired_only_records_coverage() {
        let mut s = SimStats {
            retired: 10,
            cycles: 10,
            fetched: 3,
            ..SimStats::default()
        };
        s.extrapolate(SampledStats::default());
        assert_eq!((s.cycles, s.fetched), (10, 3));
        assert_eq!(s.sampled, Some(SampledStats::default()));
    }

    #[test]
    fn dispatch_stall_record_increments_exactly_one_field() {
        // Regression for the once-duplicated load/store stall accounting:
        // each recorded stall must bump exactly one counter by exactly one.
        let cases = [
            (DispatchStall::LoadQueueFull, [1u64, 0, 0]),
            (DispatchStall::StoreQueueFull, [0, 1, 0]),
            (DispatchStall::StoreFifoFull, [0, 0, 1]),
        ];
        for (stall, expect) in cases {
            let mut d = DispatchStalls::default();
            d.record(stall);
            assert_eq!([d.lq_full, d.sq_full, d.fifo_full], expect, "{stall:?}");
            assert_eq!(d.rob_full, 0);
            assert_eq!(d.no_phys_reg, 0);
        }
    }

    #[test]
    fn replay_count_maps_kind_and_cause() {
        let mut r = ReplayCounts::default();
        r.count(MemKind::Load, ReplayCause::MdtConflict);
        r.count(MemKind::Store, ReplayCause::MdtConflict);
        r.count(MemKind::Store, ReplayCause::SfcConflict);
        r.count(MemKind::Load, ReplayCause::Corrupt);
        r.count(MemKind::Load, ReplayCause::Partial);
        r.count(MemKind::Load, ReplayCause::OrderWait);
        assert_eq!(r.load_mdt_conflicts, 1);
        assert_eq!(r.store_mdt_conflicts, 1);
        assert_eq!(r.store_sfc_conflicts, 1);
        assert_eq!(r.load_corrupt, 1);
        assert_eq!(r.load_partial, 1);
        assert_eq!(r.order_waits, 1);
        assert_eq!(r.total(), 6);
    }
}
