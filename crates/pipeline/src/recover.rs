//! Recovery: pending-violation bookkeeping, completion-time violation
//! application, control-mispredict repair, and pipeline squash.

use aim_types::{SeqNum, ViolationKind};

use crate::machine::Core;
use crate::rob::InstrState;

/// A pending memory-dependence violation, carried from execute to the
/// completion event that applies recovery.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingViolation {
    pub(crate) kind: ViolationKind,
    pub(crate) producer_pc: u64,
    pub(crate) consumer_pc: u64,
    pub(crate) squash_after: SeqNum,
    /// Apply §2.4.2 corrupt-marking instead of a flush (output violations
    /// under [`OutputDepRecovery::MarkCorrupt`]); those are applied at issue
    /// and never reach the pending queue, hence the invariant assert below.
    ///
    /// [`OutputDepRecovery::MarkCorrupt`]: crate::OutputDepRecovery::MarkCorrupt
    pub(crate) corrupt_only: bool,
}

impl Core<'_> {
    /// Records a violation to apply when the raising instruction (`seq`)
    /// completes, preserving the sorted-by-raiser invariant of
    /// `pending_violations`. Completion events arrive out of sequence order,
    /// so this is an ordered insert, not a push.
    pub(crate) fn queue_violation(&mut self, seq: SeqNum, v: PendingViolation) {
        let at = self.pending_violations.partition_point(|(s, _)| *s <= seq);
        self.pending_violations.insert(at, (seq, v));
    }

    /// The index range of violations raised by `seq` (contiguous, because
    /// the vector is sorted by raiser).
    pub(crate) fn violation_range(&self, seq: SeqNum) -> std::ops::Range<usize> {
        let start = self.pending_violations.partition_point(|(s, _)| *s < seq);
        let end = self.pending_violations.partition_point(|(s, _)| *s <= seq);
        start..end
    }

    pub(crate) fn take_violations(&mut self, seq: SeqNum) -> Vec<PendingViolation> {
        let range = self.violation_range(seq);
        let mut taken = std::mem::take(&mut self.violation_scratch);
        taken.clear();
        taken.extend(self.pending_violations.drain(range).map(|(_, v)| v));
        taken
    }

    pub(crate) fn apply_completion(
        &mut self,
        seq: SeqNum,
        idx: usize,
        violations: &[PendingViolation],
    ) {
        // An anti violation squashes the violating load itself; nothing else
        // about the instruction completes.
        if let Some(v) = violations
            .iter()
            .find(|v| v.kind == ViolationKind::Anti)
            .copied()
        {
            self.train_predictor(&v);
            self.stats.flushes.anti_dep += 1;
            self.recover_to(
                v.squash_after,
                self.config.mispredict_penalty + self.backend.violation_extra_penalty(),
            );
            return;
        }

        // Normal completion: broadcast the result.
        let cycle = self.cycle;
        let e = self.rob.get_at_mut(idx);
        debug_assert_eq!(e.seq, seq, "stale completion index");
        e.state = InstrState::Completed;
        e.completed_cycle = cycle;
        let pc = e.pc;
        let dest = e.dest;
        let result = e.result;
        let produces = e.dep_produces;
        let instr = e.instr;
        let predicted_next = e.predicted_next_pc;
        let actual_next = e.actual_next_pc;
        if self.config.event_trace {
            self.log(|| format!("complete {seq} pc={pc} result={result:#x}"));
        }

        if let Some(d) = dest {
            self.renamer.write(d.new_phys, result);
        }
        if let Some(tag) = produces {
            self.tags.mark_ready(tag);
        }

        // Control resolution.
        if instr.is_control() {
            let actual = actual_next.expect("control instructions resolve a target");
            if actual != predicted_next {
                self.stats.flushes.branch += 1;
                self.recover_control(seq, idx, actual);
                return;
            }
        }

        // Memory-ordering violations raised by this (surviving) instruction.
        let mut flush_point: Option<SeqNum> = None;
        let penalty = self.config.mispredict_penalty + self.backend.violation_extra_penalty();
        for v in violations {
            self.train_predictor(v);
            match v.kind {
                ViolationKind::True => self.stats.flushes.true_dep += 1,
                ViolationKind::Output => {
                    debug_assert!(!v.corrupt_only, "corrupt-only recovery applies at issue");
                    self.stats.flushes.output_dep += 1;
                }
                ViolationKind::Anti => unreachable!("handled above"),
            }
            flush_point = Some(flush_point.map_or(v.squash_after, |f| f.min(v.squash_after)));
        }
        if let Some(point) = flush_point {
            self.recover_to(point, penalty);
        }
    }

    fn train_predictor(&mut self, v: &PendingViolation) {
        self.dep_pred
            .record_violation(v.producer_pc, v.consumer_pc, v.kind);
    }

    /// Recovery for a resolved control misprediction: flush after the branch
    /// and steer fetch to the computed target.
    fn recover_control(&mut self, branch_seq: SeqNum, idx: usize, actual_next: u64) {
        let e = self.rob.get_at(idx);
        let resume_cursor = e.trace_index.map(|t| t + 1);
        // Rebuild the speculative history: everything after this branch is
        // gone, and the branch itself resolves to its actual direction.
        let snapshot = e.history_snapshot;
        let is_cond = e.instr.is_cond_branch();
        let taken = actual_next != e.pc + 1;
        self.gshare.restore_history(snapshot);
        if is_cond {
            self.gshare.speculate(taken);
        }
        self.squash_and_redirect(
            branch_seq,
            actual_next,
            resume_cursor,
            self.config.mispredict_penalty,
        );
    }

    /// Recovery for memory-ordering violations: flush everything after
    /// `survivor` and refetch the same (speculative) path from the first
    /// squashed instruction — taken from the ROB, or failing that the fetch
    /// buffer. If nothing younger exists anywhere, fetch is already
    /// consistent and only the penalty applies.
    fn recover_to(&mut self, survivor: SeqNum, penalty: u64) {
        let resume = self
            .rob
            .first_after(survivor)
            .map(|f| (f.pc, f.trace_index, f.history_snapshot))
            .or_else(|| {
                self.fetch_buffer
                    .front()
                    .map(|f| (f.pc, f.trace_index, f.history_snapshot))
            });
        match resume {
            Some((pc, cursor, history)) => {
                self.gshare.restore_history(history);
                self.squash_and_redirect(survivor, pc, cursor, penalty);
            }
            None => {
                // The violating instruction is the youngest anywhere; there
                // is nothing to squash and fetch needs no redirect.
                self.fetch_stall_until = self.fetch_stall_until.max(self.cycle + penalty);
            }
        }
    }

    pub(crate) fn squash_and_redirect(
        &mut self,
        survivor: SeqNum,
        resume_pc: u64,
        resume_cursor: Option<u64>,
        penalty: u64,
    ) {
        self.log(|| {
            format!(
                "recover  squash seq>{} resume pc={resume_pc} (+{penalty} cycles)",
                survivor.0
            )
        });
        let mut squashed = std::mem::take(&mut self.squash_scratch);
        self.rob.squash_after_into(survivor, &mut squashed);
        // The squashed entries held the largest stable positions; drop them
        // from the (sorted) wakeup list in one truncate.
        let live = self.rob.stable_end();
        let keep_waiting = self.waiting.partition_point(|&s| s < live);
        self.waiting.truncate(keep_waiting);
        // Pending violations are keyed by the raising instruction's sequence
        // number and the vector is sorted by it; every squashed instruction
        // is younger than `survivor`, so one truncate drops them all.
        let keep = self
            .pending_violations
            .partition_point(|(s, _)| *s <= survivor);
        self.pending_violations.truncate(keep);
        for e in &squashed {
            if let Some(d) = e.dest {
                self.renamer.undo(d);
            }
            if let Some(tag) = e.dep_produces {
                // A squashed producer's dependence no longer applies.
                self.tags.mark_ready(tag);
            }
            if e.counted_unexecuted {
                self.unexecuted_stores -= 1;
            }
            if e.filter_counted {
                let (access, _) = e.mem.expect("filter-counted stores executed");
                let bucket = self.filter_bucket(access);
                self.store_granule_filter[bucket] -= 1;
            }
            self.stats.squashed += 1;
        }
        // Fetched-but-undispatched instructions are discarded without being
        // counted as squashed (they never entered the window); the
        // fetched-vs-dispatched gap in the statistics accounts for them.
        self.fetch_buffer.clear();

        // The partial-vs-full flush decision (§2.3) needs to know whether a
        // surviving store may have live backend data; the scan is passed
        // lazily so backends that don't care never pay for it.
        let youngest = SeqNum(self.next_seq.saturating_sub(1));
        let rob = &self.rob;
        self.backend.squash_after(survivor, youngest, &|| {
            rob.iter().any(|e| {
                e.instr.is_store()
                    && !e.bypassed
                    && matches!(e.state, InstrState::Executing | InstrState::Completed)
            })
        });

        self.fetch_pc = resume_pc;
        self.on_correct_path = resume_cursor.is_some();
        if let Some(c) = resume_cursor {
            self.trace_cursor = c;
        }
        self.fetch_halted = false;
        self.fetch_stall_until = self.fetch_stall_until.max(self.cycle + penalty);
        squashed.clear();
        self.squash_scratch = squashed;
        // The wakeup-list truncation above and the census decrements are the
        // squash-path halves of the issue/dispatch bookkeeping; check both
        // immediately so a drift is pinned to the recovery that caused it.
        self.debug_check_wakeup_list();
        self.debug_check_filter_census();
    }
}
