//! Issue/execute stage: wake-up and select, functional evaluation, the
//! memory-backend execute protocol, and completion-event draining.

use std::cmp::Reverse;

use aim_backend::{LoadOutcome, LoadRequest, MemKind, StoreOutcome, StoreRequest};
use aim_isa::{ExecClass, Instr};
use aim_types::{Addr, MemAccess, SeqNum, ViolationKind};

use crate::config::OutputDepRecovery;
use crate::machine::Core;
use crate::recover::PendingViolation;
use crate::rob::InstrState;

/// Outcome of attempting a memory access at issue.
pub(crate) enum MemOutcome {
    /// The access completed; value and added latency.
    Done { value: u64, latency: u64 },
    /// The access was dropped; the instruction replays.
    Replay,
}

impl Core<'_> {
    pub(crate) fn issue(&mut self) {
        let mut budget = self.config.issue_width;
        let free_events = self.backend.free_event_count();
        let head_seq = self.rob.head().map(|h| h.seq);
        let mut to_issue = std::mem::take(&mut self.issue_scratch);
        to_issue.clear();
        self.debug_check_wakeup_list();

        // Walk the wakeup list — exactly the Waiting entries, oldest first —
        // rather than the whole window; selected entries leave the list (a
        // replay re-inserts them).
        let mut pos = 0;
        while pos < self.waiting.len() && budget > 0 {
            let idx = self.rob.index_of_stable(self.waiting[pos]);
            let e = self.rob.get_at(idx);
            debug_assert_eq!(e.state, InstrState::Waiting, "wakeup list drifted");
            let at_head = Some(e.seq) == head_seq;
            if let Some(snapshot) = e.stall_until_free_event {
                if free_events <= snapshot && !at_head {
                    pos += 1;
                    continue;
                }
            }
            if !e.srcs.iter().flatten().all(|&p| self.renamer.is_ready(p)) {
                pos += 1;
                continue;
            }
            if let Some(tag) = e.dep_consumes {
                if !self.tags.is_ready(tag) && !at_head {
                    pos += 1;
                    continue;
                }
            }
            to_issue.push((e.seq, idx));
            budget -= 1;
            self.waiting.remove(pos);
        }

        // The captured queue positions stay valid across the whole drain:
        // executing an instruction never pushes, retires, or squashes ROB
        // entries — it only mutates their fields.
        for (seq, idx) in to_issue.drain(..) {
            self.start_execute(seq, idx);
        }
        self.issue_scratch = to_issue;
    }

    fn src_values(&self, idx: usize) -> (u64, u64) {
        let e = self.rob.get_at(idx);
        let a = e.srcs[0].map_or(0, |p| self.renamer.read(p));
        let b = e.srcs[1].map_or(0, |p| self.renamer.read(p));
        (a, b)
    }

    fn start_execute(&mut self, seq: SeqNum, idx: usize) {
        debug_assert_eq!(self.rob.get_at(idx).seq, seq, "stale issue index");
        self.stats.issued += 1;
        if self.config.event_trace {
            let (pc, instr) = {
                let e = self.rob.get_at(idx);
                (e.pc, e.instr)
            };
            self.log(|| format!("issue    {seq} pc={pc} `{instr}`"));
        }
        let (a, b) = self.src_values(idx);
        let cycle = self.cycle;
        let e = self.rob.get_at_mut(idx);
        e.issued_cycle = cycle;
        let pc = e.pc;
        let instr = e.instr;

        let mut result = 0u64;
        let mut actual_next: Option<u64> = None;
        let latency = match instr {
            Instr::Alu { op, .. } => {
                result = op.eval(a, b);
                self.class_latency(instr.exec_class())
            }
            Instr::AluImm { op, imm, .. } => {
                result = op.eval(a, imm as u64);
                self.class_latency(instr.exec_class())
            }
            Instr::MovImm { imm, .. } => {
                result = imm as u64;
                self.config.alu_latency
            }
            Instr::Branch { cond, target, .. } => {
                actual_next = Some(if cond.eval(a, b) { target } else { pc + 1 });
                self.config.alu_latency
            }
            Instr::Jump { target } => {
                actual_next = Some(target);
                self.config.alu_latency
            }
            Instr::Jal { target, .. } => {
                result = pc + 1;
                actual_next = Some(target);
                self.config.alu_latency
            }
            Instr::Jr { .. } => {
                actual_next = Some(a);
                self.config.alu_latency
            }
            Instr::Halt | Instr::Nop => self.config.alu_latency,
            Instr::Load { offset, size, .. } => {
                // srcs[0] = base register.
                let raw = a.wrapping_add(offset as u64);
                let addr = Addr(raw & !(size.bytes() - 1)); // align wrong-path garbage
                let access = MemAccess::new(addr, size).expect("aligned by construction");
                match self.exec_load(seq, idx, pc, access) {
                    MemOutcome::Done { value, latency } => {
                        result = value;
                        self.rob.get_at_mut(idx).mem = Some((access, value));
                        self.config.agu_latency + latency
                    }
                    MemOutcome::Replay => return,
                }
            }
            Instr::Store { offset, size, .. } => {
                // srcs[0] = base, srcs[1] = data.
                let raw = a.wrapping_add(offset as u64);
                let addr = Addr(raw & !(size.bytes() - 1));
                let access = MemAccess::new(addr, size).expect("aligned by construction");
                match self.exec_store(seq, idx, pc, access, b) {
                    MemOutcome::Done { latency, .. } => {
                        self.rob.get_at_mut(idx).mem = Some((access, b));
                        self.config.agu_latency + latency
                    }
                    MemOutcome::Replay => return,
                }
            }
        };

        let e = self.rob.get_at_mut(idx);
        e.state = InstrState::Executing;
        e.result = result;
        e.actual_next_pc = actual_next;
        self.exec_events
            .push(Reverse((self.cycle + latency.max(1), seq.0)));
    }

    fn class_latency(&self, class: ExecClass) -> u64 {
        match class {
            ExecClass::Mul => self.config.mul_latency,
            _ => self.config.alu_latency,
        }
    }

    fn replay(&mut self, seq: SeqNum, idx: usize) {
        self.replay_with(seq, idx, true);
    }

    /// Replay without arming a stall bit: for drops the backend never saw
    /// (a far-memory MSHR refusal), where no backend free event will ever
    /// fire to clear the bit and arming it would park the instruction
    /// forever (the head-of-ROB exemption saves only the head).
    fn replay_no_stall(&mut self, seq: SeqNum, idx: usize) {
        self.replay_with(seq, idx, false);
    }

    fn replay_with(&mut self, seq: SeqNum, idx: usize, allow_stall: bool) {
        self.log(|| format!("replay   {seq} dropped by the memory unit"));
        // Stall bits only help when the backend emits free events that will
        // later clear them; on backends without them (which replay for
        // ordering, not capacity), a stall bit would never clear and the
        // instruction must retry every cycle instead.
        let stall = allow_stall && self.config.stall_bits && self.backend.uses_stall_bits();
        let free_events = self.backend.free_event_count();
        // Back onto the wakeup list, in (stable-position) order.
        let stable = self.rob.stable_of(idx);
        let at = self.waiting.partition_point(|&s| s < stable);
        debug_assert_ne!(self.waiting.get(at), Some(&stable), "double replay");
        self.waiting.insert(at, stable);
        let e = self.rob.get_at_mut(idx);
        e.state = InstrState::Waiting;
        e.replayed = true;
        e.stall_until_free_event = stall.then_some(free_events);
    }

    /// Whether the per-cycle integrity censuses run: always in debug
    /// builds, and in release builds when [`SimConfig::paranoid`] is set
    /// (the `--paranoid` CLI flag).
    ///
    /// [`SimConfig::paranoid`]: crate::SimConfig::paranoid
    #[inline]
    fn checks_enabled(&self) -> bool {
        cfg!(debug_assertions) || self.config.paranoid
    }

    /// Integrity invariant: the wakeup list holds the stable position of
    /// every Waiting ROB entry, each exactly once, in dispatch order. Drift
    /// would silently change the issue order (a missed entry never issues; a
    /// stale one would trip the in-loop state assert). Runs per issue cycle
    /// and after every squash truncation; see [`Core::checks_enabled`] for
    /// when.
    pub(crate) fn debug_check_wakeup_list(&self) {
        if !self.checks_enabled() {
            return;
        }
        let waiting_in_rob = self
            .rob
            .iter()
            .filter(|e| e.state == InstrState::Waiting)
            .count();
        assert_eq!(
            self.waiting.len(),
            waiting_in_rob,
            "wakeup list population drifted from ROB contents"
        );
        assert!(
            self.waiting.iter().zip(self.waiting.iter().skip(1)).all(|(a, b)| a < b),
            "wakeup list out of order"
        );
    }

    /// Integrity invariant: the store census and granule filter always
    /// equal the sums of the per-entry flags in the ROB. A drift here means
    /// a leak in the execute/retire/squash bookkeeping, which would silently
    /// rot the §4 filter into either unsoundness (under-count) or inertness
    /// (over-count). See [`Core::checks_enabled`] for when it runs.
    pub(crate) fn debug_check_filter_census(&self) {
        if !self.checks_enabled() || !self.config.mdt_filter {
            return;
        }
        let unexecuted = self.rob.iter().filter(|e| e.counted_unexecuted).count() as u64;
        assert_eq!(
            self.unexecuted_stores, unexecuted,
            "unexecuted-store census drifted from ROB contents"
        );
        let counted = self.rob.iter().filter(|e| e.filter_counted).count() as u64;
        let filter_total: u64 = self.store_granule_filter.iter().map(|&c| c as u64).sum();
        assert_eq!(
            filter_total, counted,
            "granule-filter population drifted from ROB contents"
        );
    }

    #[inline]
    pub(crate) fn filter_bucket(&self, access: MemAccess) -> usize {
        (access.addr().word_index() as usize) & (self.store_granule_filter.len() - 1)
    }

    /// §2.2 lockup avoidance: a replayed memory instruction at the head of
    /// the ROB may execute without consulting the backend's conflict-prone
    /// structures — all older instructions have retired, so committed memory
    /// is current. Only meaningful for backends that can refuse execution on
    /// structural conflicts.
    fn head_bypasses(&self, seq: SeqNum, idx: usize) -> bool {
        self.backend.supports_head_bypass() && self.at_head(seq) && self.rob.get_at(idx).replayed
    }

    fn exec_load(&mut self, seq: SeqNum, idx: usize, pc: u64, access: MemAccess) -> MemOutcome {
        self.stats.load_executions += 1;
        if self.head_bypasses(seq, idx) {
            self.stats.head_bypasses += 1;
            let value = self.memsys.read(access);
            // Queued (never-refuse) far semantics: the head must progress.
            let latency = self.memsys.access_data_at(access.addr(), self.cycle).1;
            self.rob.get_at_mut(idx).bypassed = true;
            return MemOutcome::Done { value, latency };
        }

        // Far-memory admission: a load that will miss to the far tier needs
        // an MSHR. Checked before the backend executes, so a refused load
        // replays with no backend side effects — and without a stall bit,
        // since no backend free event corresponds to an MSHR draining.
        if !self.memsys.admit_data_at(access.addr(), self.cycle) {
            self.replay_no_stall(seq, idx);
            return MemOutcome::Replay;
        }

        let floor = self.rob.floor(SeqNum(self.next_seq));
        let filtered = self.config.mdt_filter
            && self.backend.supports_load_filter()
            && self.unexecuted_stores == 0
            && self.store_granule_filter[self.filter_bucket(access)] == 0;
        if filtered {
            self.stats.mdt_filtered_loads += 1;
        }
        let req = LoadRequest {
            seq,
            pc,
            access,
            floor,
            filtered,
        };

        let outcome = {
            let mem = self.memsys.mem();
            self.backend.load_execute(&req, &mem)
        };
        match outcome {
            LoadOutcome::Done { value, forwarded } => {
                let latency = if forwarded {
                    self.stats.loads_forwarded += 1;
                    // Forwarding takes the L1-hit time: the SFC (or the
                    // idealized single-cycle store-queue bypass) is accessed
                    // in parallel with the L1.
                    let _ = self.memsys.access_data_at(access.addr(), self.cycle);
                    self.config.hierarchy.l1_hit_cycles
                } else {
                    self.memsys.access_data_at(access.addr(), self.cycle).1
                };
                MemOutcome::Done { value, latency }
            }
            LoadOutcome::Replay(cause) => {
                self.stats.replays.count(MemKind::Load, cause);
                self.replay(seq, idx);
                MemOutcome::Replay
            }
            LoadOutcome::Anti(v) => {
                // Anti violation: the load itself is flushed; carry the
                // recovery to the completion event.
                self.queue_violation(
                    seq,
                    PendingViolation {
                        kind: v.kind,
                        producer_pc: v.producer_pc,
                        consumer_pc: v.consumer_pc,
                        squash_after: v.squash_after,
                        corrupt_only: false,
                    },
                );
                let e = self.rob.get_at_mut(idx);
                e.state = InstrState::Executing;
                self.exec_events
                    .push(Reverse((self.cycle + self.config.agu_latency + 1, seq.0)));
                MemOutcome::Replay // caller must not reschedule
            }
        }
    }

    fn exec_store(
        &mut self,
        seq: SeqNum,
        idx: usize,
        pc: u64,
        access: MemAccess,
        value: u64,
    ) -> MemOutcome {
        self.stats.store_executions += 1;
        let floor = self.rob.floor(SeqNum(self.next_seq));
        let corrupt_on_output = self.config.output_dep_recovery == OutputDepRecovery::MarkCorrupt;
        let bypass = self.head_bypasses(seq, idx);
        let req = StoreRequest {
            seq,
            pc,
            access,
            value,
            floor,
            bypass,
        };

        let outcome = {
            let mem = self.memsys.mem();
            self.backend.store_execute(&req, &mem)
        };
        match outcome {
            StoreOutcome::Replay(cause) => {
                self.stats.replays.count(MemKind::Store, cause);
                self.replay(seq, idx);
                MemOutcome::Replay
            }
            StoreOutcome::Done { latency, violations } => {
                for v in violations {
                    let corrupt_only = v.kind == ViolationKind::Output && corrupt_on_output;
                    if corrupt_only {
                        // §2.4.2 recovery must take effect *now*: the store's
                        // own SFC write just cleared the corruption bits on
                        // its bytes, and a load issuing before the store's
                        // completion event would otherwise forward the stale
                        // value with no flush to save it.
                        self.backend.mark_corrupt(access);
                        self.dep_pred
                            .record_violation(v.producer_pc, v.consumer_pc, v.kind);
                        self.stats.flushes.output_dep += 1;
                        continue;
                    }
                    self.queue_violation(
                        seq,
                        PendingViolation {
                            kind: v.kind,
                            producer_pc: v.producer_pc,
                            consumer_pc: v.consumer_pc,
                            squash_after: v.squash_after,
                            corrupt_only,
                        },
                    );
                }
                if bypass {
                    self.stats.head_bypasses += 1;
                    // Commit immediately: the store is non-speculative at the
                    // head, and committing now closes the window in which a
                    // younger load could read stale memory unchecked by the
                    // skipped SFC. (Cross-core this is still a well-defined
                    // commit: the head can never be squashed, and every older
                    // instruction of this core has already retired.)
                    self.memsys.write(access, value);
                    self.rob.get_at_mut(idx).bypassed = true;
                }
                if self.config.mdt_filter {
                    // The store has now (successfully) executed: it can never
                    // re-check the MDT, and — unless it bypassed straight to
                    // memory — its data is live in flight. The census flag is
                    // only ever set for filter-capable backends, so no
                    // capability check is needed here.
                    let bucket = self.filter_bucket(access);
                    let e = self.rob.get_at_mut(idx);
                    if e.counted_unexecuted {
                        e.counted_unexecuted = false;
                        self.unexecuted_stores -= 1;
                        if !bypass {
                            e.filter_counted = true;
                            self.store_granule_filter[bucket] += 1;
                        }
                    }
                }
                MemOutcome::Done { value, latency }
            }
        }
    }

    // --- Complete -------------------------------------------------------

    pub(crate) fn complete(&mut self) {
        while let Some(&Reverse((when, seq_raw))) = self.exec_events.peek() {
            if when > self.cycle {
                break;
            }
            self.exec_events.pop();
            let seq = SeqNum(seq_raw);
            self.complete_one(seq);
        }
    }

    fn complete_one(&mut self, seq: SeqNum) {
        let Some(idx) = self.rob.index_of(seq) else {
            let range = self.violation_range(seq);
            self.pending_violations.drain(range);
            return; // squashed while executing
        };
        if self.rob.get_at(idx).state != InstrState::Executing {
            return;
        }
        let violations = self.take_violations(seq);
        self.apply_completion(seq, idx, &violations);
        self.violation_scratch = violations;
    }
}
