//! Retire stage: in-order commit, golden-trace validation, and the
//! backend/predictor retirement notifications.

use aim_isa::Instr;

use crate::machine::{Core, SimError, PIPEVIEW_CAPACITY};
use crate::pipeview::PipeRecord;
use crate::rob::{InFlight, InstrState};

impl Core<'_> {
    pub(crate) fn retire(&mut self) -> Result<(), SimError> {
        for _ in 0..self.config.width {
            let Some(head) = self.rob.head() else { break };
            if head.state != InstrState::Completed {
                break;
            }
            let e = self.rob.pop_head().expect("head checked");
            self.log(|| format!("retire   {} pc={} `{}`", e.seq, e.pc, e.instr));
            if self.config.validate_retirement {
                self.validate(&e)?;
            }
            if self.config.pipeview {
                if self.pipe_records.len() == PIPEVIEW_CAPACITY {
                    self.pipe_records.remove(0);
                }
                self.pipe_records.push(PipeRecord {
                    seq: e.seq.0,
                    pc: e.pc,
                    instr: e.instr.to_string(),
                    dispatched: e.dispatched_cycle,
                    issued: e.issued_cycle,
                    completed: e.completed_cycle,
                    retired: self.cycle,
                    replayed: e.replayed,
                    bypassed: e.bypassed,
                });
            }

            if let Some(d) = e.dest {
                self.renamer.retire(d);
            }

            if let Instr::Branch { .. } = e.instr {
                let actual_taken = e.actual_next_pc.expect("resolved") != e.pc + 1;
                let predicted_taken = e.predicted_next_pc != e.pc + 1;
                self.gshare
                    .update(e.pc, actual_taken, predicted_taken, e.history_snapshot);
                self.stats.branches_retired += 1;
                if actual_taken != predicted_taken {
                    self.stats.branch_mispredicts += 1;
                }
            }

            if e.instr.is_store() {
                let (access, value) = e.mem.expect("completed store has an access");
                // Memory commits before the backend retirement hook — the
                // backend contract lets backends read committed state for
                // their own retiring store. This is also the cross-core
                // commit point: sibling cores observe the store from here on.
                // The commit is buffered and never stalls retirement, so a
                // far-tier miss takes the queued (never-refuse) path — the
                // write-back traffic still occupies MSHRs and delays loads.
                let _ = self.memsys.commit_store(access, value, self.cycle);
                self.backend.retire_store(e.seq, access);
                if e.filter_counted {
                    let bucket = self.filter_bucket(access);
                    self.store_granule_filter[bucket] -= 1;
                }
                self.stats.retired_stores += 1;
            } else if e.instr.is_load() {
                let (access, _) = e.mem.expect("completed load has an access");
                self.backend.retire_load(e.seq, access);
                self.stats.retired_loads += 1;
            }

            self.stats.retired += 1;
            self.last_retire_cycle = self.cycle;

            if matches!(e.instr, Instr::Halt) || self.stats.retired >= self.target_retired {
                self.halted = true;
                self.stats.cycles = self.cycle;
                self.finalize_stats();
                break;
            }
        }
        Ok(())
    }

    fn validate(&self, e: &InFlight) -> Result<(), SimError> {
        let Some(t) = e.trace_index else {
            return Err(SimError::Validation(format!(
                "wrong-path instruction retired: seq {} pc {} `{}`",
                e.seq, e.pc, e.instr
            )));
        };
        if t != self.stats.retired {
            return Err(SimError::Validation(format!(
                "retirement order diverged: trace index {} at retirement {}",
                t, self.stats.retired
            )));
        }
        let rec = self
            .trace
            .get(t)
            .ok_or_else(|| SimError::Validation(format!("trace index {t} out of range")))?;
        if rec.pc != e.pc {
            return Err(SimError::Validation(format!(
                "pc mismatch at trace {t}: expected {}, retired {}",
                rec.pc, e.pc
            )));
        }
        if let Some((reg, expect)) = rec.reg_write {
            if e.result != expect {
                return Err(SimError::Validation(format!(
                    "wrong result at pc {} (trace {t}): {} should be {:#x}, got {:#x} \
                     [instr `{}`]",
                    e.pc, reg, expect, e.result, e.instr
                )));
            }
        }
        if let Some((acc, expect)) = rec.mem_load {
            let (got_acc, got_val) = e.mem.ok_or_else(|| {
                SimError::Validation(format!("load at pc {} retired without executing", e.pc))
            })?;
            if got_acc != acc || got_val != expect {
                return Err(SimError::Validation(format!(
                    "wrong load at pc {} (trace {t}): expected {acc}={expect:#x}, \
                     got {got_acc}={got_val:#x}",
                    e.pc
                )));
            }
        }
        if let Some((acc, expect)) = rec.mem_store {
            let (got_acc, got_val) = e.mem.ok_or_else(|| {
                SimError::Validation(format!("store at pc {} retired without executing", e.pc))
            })?;
            let bytes = acc.size().bytes();
            let mask = if bytes == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * bytes)) - 1
            };
            if got_acc != acc || (got_val & mask) != expect {
                return Err(SimError::Validation(format!(
                    "wrong store at pc {} (trace {t}): expected {acc}={expect:#x}, \
                     got {got_acc}={:#x}",
                    e.pc,
                    got_val & mask
                )));
            }
        }
        if e.instr.is_control() {
            let actual = e.actual_next_pc.expect("resolved control");
            if actual != rec.next_pc {
                return Err(SimError::Validation(format!(
                    "wrong branch outcome at pc {} (trace {t}): expected next {}, got {}",
                    e.pc, rec.next_pc, actual
                )));
            }
        }
        Ok(())
    }
}
