//! Dispatch stage: rename, dependence-predictor hints, backend admission,
//! and reorder-buffer insertion.

use aim_backend::MemKind;
use aim_isa::Instr;
use aim_types::SeqNum;

use crate::machine::Core;
use crate::rob::InFlight;

/// The memory kind of an instruction, if it is a memory instruction.
pub(crate) fn mem_kind(instr: Instr) -> Option<MemKind> {
    if instr.is_load() {
        Some(MemKind::Load)
    } else if instr.is_store() {
        Some(MemKind::Store)
    } else {
        None
    }
}

impl Core<'_> {
    pub(crate) fn dispatch(&mut self) {
        for _ in 0..self.config.width {
            let Some(front) = self.fetch_buffer.front().copied() else {
                break;
            };
            if !self.rob.has_room() {
                self.stats.dispatch_stalls.rob_full += 1;
                break;
            }
            if front.instr.def().is_some() && self.renamer.free_count() == 0 {
                self.stats.dispatch_stalls.no_phys_reg += 1;
                break;
            }
            let kind = mem_kind(front.instr);
            if let Some(k) = kind {
                // All backend admission control funnels through one check so
                // a stalled cycle is counted against exactly one cause.
                if let Err(stall) = self.backend.can_dispatch(k) {
                    self.stats.dispatch_stalls.record(stall);
                    break;
                }
            }

            self.fetch_buffer.pop_front();
            let seq = SeqNum(self.next_seq);
            self.next_seq += 1;

            let mut entry = InFlight::new(seq, front.pc, front.instr);
            entry.dispatched_cycle = self.cycle;
            entry.trace_index = front.trace_index;
            entry.predicted_next_pc = front.predicted_next_pc;
            entry.history_snapshot = front.history_snapshot;
            for (slot, src) in entry.srcs.iter_mut().zip(front.instr.uses()) {
                *slot = src.map(|r| self.renamer.lookup(r));
            }
            if let Some(arch) = front.instr.def() {
                entry.dest = Some(
                    self.renamer
                        .rename_dest(arch)
                        .expect("free list checked above"),
                );
            }
            if let Some(k) = kind {
                let hints = self.dep_pred.on_dispatch(front.pc, &mut self.tags);
                entry.dep_consumes = hints.consumes;
                entry.dep_produces = hints.produces;

                // Oracle-style backends want advance address knowledge; the
                // golden trace provides it for correct-path stores, and
                // wrong-path stores stay unknowable (`None`).
                let hint = if self.backend.wants_dispatch_hint() {
                    front
                        .trace_index
                        .and_then(|t| self.trace.get(t))
                        .and_then(|rec| rec.mem_store)
                        .map(|(access, _)| access)
                } else {
                    None
                };
                self.backend.dispatch(k, seq, front.pc, hint);
                if k == MemKind::Store
                    && self.config.mdt_filter
                    && self.backend.supports_load_filter()
                {
                    self.unexecuted_stores += 1;
                    entry.counted_unexecuted = true;
                }
            }

            self.log(|| format!("dispatch {seq} pc={} `{}`", front.pc, front.instr));
            self.rob.push(entry);
            self.waiting.push_back(self.rob.stable_of(self.rob.len() - 1));
            self.stats.dispatched += 1;
        }
    }
}
