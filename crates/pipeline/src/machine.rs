//! The machine driver: state, cycle loop, and run entry points. The stage
//! implementations live in sibling modules ([`crate::fetch`] et al.); the
//! memory-ordering machinery lives behind [`aim_backend::MemBackend`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

use aim_backend::MemBackend;
use aim_isa::{Instr, Program, Reg, Trace};
use aim_mem::{CoreMemSys, MainMemory, SharedHandle};
use aim_predictor::{Gshare, OracleBoost, ProducerSetPredictor, TagScoreboard};
use aim_types::SeqNum;

use crate::config::SimConfig;
use crate::pipeview::PipeRecord;
use crate::recover::PendingViolation;
use crate::rename::Renamer;
use crate::rob::{InFlight, Rob};
use crate::stats::SimStats;

/// Errors terminating a simulation abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The architectural interpreter rejected the program.
    Program(String),
    /// A retiring instruction diverged from the golden trace — a simulator
    /// correctness bug (e.g. a forwarding error the disambiguation hardware
    /// missed).
    Validation(String),
    /// No instruction retired for an implausibly long time.
    Deadlock(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Program(s) => write!(f, "program error: {s}"),
            SimError::Validation(s) => write!(f, "validation failed: {s}"),
            SimError::Deadlock(s) => write!(f, "pipeline deadlock: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

/// An instruction staged between fetch and dispatch.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fetched {
    pub(crate) pc: u64,
    pub(crate) instr: Instr,
    pub(crate) trace_index: Option<u64>,
    pub(crate) predicted_next_pc: u64,
    pub(crate) history_snapshot: u64,
}

/// The architectural end state of a run: the retired register file and the
/// committed memory image. Every backend must produce the same
/// [`FinalState`] for the same program — the cross-backend equivalence
/// property the `prop_backend_parity` integration test asserts.
#[derive(Debug)]
pub struct FinalState {
    /// Architectural registers `r0..r31` at halt.
    pub regs: Vec<u64>,
    /// Committed memory at halt.
    pub mem: MainMemory,
}

/// One simulated out-of-order processor core.
///
/// A `Core` owns a full pipeline (fetch through retire, with recovery) and
/// its private L1 caches, and reaches committed memory plus the unified L2
/// through an [`aim_mem::SharedHandle`]. Construct with [`Machine::new`]
/// (self-contained single-core, the historical `Machine`) and drive with
/// [`Machine::run`], or use the [`crate::simulate`] convenience function;
/// [`crate::MultiMachine`] attaches several cores to one shared memory
/// system and schedules them.
///
/// # Examples
///
/// ```
/// use aim_isa::{Assembler, Interpreter, Reg};
/// use aim_pipeline::{BackendChoice, Machine, MachineClass, SimConfig};
///
/// let mut asm = Assembler::new();
/// asm.movi(Reg::new(1), 42);
/// asm.halt();
/// let program = asm.assemble().unwrap();
/// let trace = Interpreter::new(&program).run(100).unwrap();
///
/// let machine = Machine::new(&program, &trace, SimConfig::machine(MachineClass::Baseline).backend(BackendChoice::Lsq).build());
/// let stats = machine.run().unwrap();
/// assert_eq!(stats.retired, 2);
/// ```
pub struct Core<'a> {
    pub(crate) config: SimConfig,
    pub(crate) program: &'a Program,
    pub(crate) trace: &'a Trace,

    pub(crate) cycle: u64,
    pub(crate) next_seq: u64,
    pub(crate) halted: bool,
    pub(crate) target_retired: u64,

    pub(crate) renamer: Renamer,
    pub(crate) rob: Rob,
    /// This core's private L1s over the (possibly shared) L2 and committed
    /// memory. Holding a [`SharedHandle`] makes a `Core` single-threaded
    /// (`!Send`); the bench harness constructs machines inside their worker
    /// threads, so cross-simulation parallelism is unaffected.
    pub(crate) memsys: CoreMemSys,
    pub(crate) backend: Box<dyn MemBackend + Send>,
    pub(crate) dep_pred: ProducerSetPredictor,
    pub(crate) tags: TagScoreboard,
    pub(crate) gshare: Gshare,
    pub(crate) oracle: OracleBoost,

    pub(crate) fetch_pc: u64,
    pub(crate) on_correct_path: bool,
    pub(crate) trace_cursor: u64,
    pub(crate) fetch_stall_until: u64,
    pub(crate) fetch_halted: bool,
    pub(crate) fetch_buffer: VecDeque<Fetched>,

    pub(crate) exec_events: BinaryHeap<Reverse<(u64, u64)>>,
    /// Violations awaiting their raiser's completion event, kept sorted by
    /// raising sequence number (see `Machine::queue_violation`) so lookup
    /// and squash are range operations instead of whole-vector scans.
    pub(crate) pending_violations: Vec<(SeqNum, PendingViolation)>,

    /// Scratch buffers reused across cycles so the steady-state loop
    /// allocates nothing: issue's ready list, recovery's squash list, and
    /// completion's taken-violation list keep their capacity run-long.
    pub(crate) issue_scratch: Vec<(SeqNum, usize)>,
    pub(crate) squash_scratch: Vec<InFlight>,
    pub(crate) violation_scratch: Vec<PendingViolation>,

    /// The scheduler's wakeup list: stable ROB positions
    /// ([`Rob::stable_of`](crate::rob::Rob::stable_of)) of exactly the
    /// [`InstrState::Waiting`](crate::rob::InstrState) entries, sorted in
    /// dispatch order. The issue scan walks this instead of the whole
    /// window; dispatch appends, issue removes, replay re-inserts, and a
    /// squash truncates the (youngest-last) tail.
    pub(crate) waiting: VecDeque<u64>,

    /// §4 MDT search filter: count of in-flight stores that have not yet
    /// (successfully) executed, and a counting filter over the granules of
    /// executed-but-unretired stores.
    pub(crate) unexecuted_stores: u64,
    /// Retired-instruction timelines for the pipeline viewer
    /// ([`SimConfig::pipeview`]), capped at [`PIPEVIEW_CAPACITY`].
    pub(crate) pipe_records: Vec<PipeRecord>,
    pub(crate) store_granule_filter: Vec<u32>,

    pub(crate) stats: SimStats,
    pub(crate) last_retire_cycle: u64,
    /// Event log (only populated when `config.event_trace` is set); bounded
    /// to the most recent [`TRACE_CAPACITY`] events.
    pub(crate) events: VecDeque<String>,
}

/// Maximum retired-instruction records kept by the pipeline viewer; the
/// newest records win, so a long run shows its final window.
pub const PIPEVIEW_CAPACITY: usize = 4096;

/// Maximum events retained by the pipeline trace (a ring of the most recent).
pub const TRACE_CAPACITY: usize = 65_536;

/// The historical single-core name: a [`Core`] constructed with
/// [`Machine::new`] owns its entire memory system and behaves exactly as
/// the pre-multi-core machine did.
pub type Machine<'a> = Core<'a>;

/// No-forward-progress bound for the per-core deadlock detector.
const DEADLOCK_CYCLES: u64 = 200_000;

impl<'a> Core<'a> {
    /// Creates a self-contained single-core machine over `program`,
    /// validated against `trace` (the golden architectural run of the same
    /// program).
    pub fn new(program: &'a Program, trace: &'a Trace, config: SimConfig) -> Core<'a> {
        let memsys = CoreMemSys::single(program.build_memory(), config.hierarchy);
        Core::attach(program, trace, config, memsys)
    }

    /// Creates a core attached to an existing shared memory system as
    /// `core_id`. The per-core oracle seed folds the core id in so sibling
    /// cores draw independent streams; core 0 keeps the configured seed
    /// bit-for-bit (the N=1 equivalence gate).
    pub fn with_shared(
        program: &'a Program,
        trace: &'a Trace,
        mut config: SimConfig,
        core_id: usize,
        shared: SharedHandle,
    ) -> Core<'a> {
        config.seed ^= (core_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let memsys = CoreMemSys::attach(core_id, config.hierarchy, shared);
        Core::attach(program, trace, config, memsys)
    }

    fn attach(
        program: &'a Program,
        trace: &'a Trace,
        config: SimConfig,
        memsys: CoreMemSys,
    ) -> Core<'a> {
        let backend = aim_backend::build(&config.backend_params());
        let target_retired = if config.max_instrs == 0 {
            trace.len() as u64
        } else {
            config.max_instrs.min(trace.len() as u64)
        };
        Core {
            renamer: Renamer::new(config.phys_regs),
            rob: Rob::new(config.rob_entries),
            memsys,
            backend,
            dep_pred: ProducerSetPredictor::with_config(config.dep_predictor),
            tags: TagScoreboard::new(),
            gshare: Gshare::new(config.gshare_counters, config.gshare_history_bits),
            oracle: OracleBoost::new(config.oracle_fix_probability, config.seed),
            fetch_pc: 0,
            on_correct_path: true,
            trace_cursor: 0,
            fetch_stall_until: 0,
            fetch_halted: false,
            fetch_buffer: VecDeque::new(),
            exec_events: BinaryHeap::new(),
            pending_violations: Vec::new(),
            issue_scratch: Vec::new(),
            waiting: VecDeque::new(),
            squash_scratch: Vec::new(),
            violation_scratch: Vec::new(),
            unexecuted_stores: 0,
            pipe_records: Vec::new(),
            store_granule_filter: vec![0; 1024],
            cycle: 0,
            next_seq: 1,
            halted: false,
            target_retired,
            stats: SimStats::default(),
            last_retire_cycle: 0,
            events: VecDeque::new(),
            config,
            program,
            trace,
        }
    }

    /// Appends a pipeline event to the trace ring when tracing is enabled.
    ///
    /// The closure keeps formatting lazy: with `event_trace` off nothing is
    /// formatted or allocated, which
    /// [`HostPerf::event_strings_built`](crate::HostPerf) records.
    pub(crate) fn log(&mut self, event: impl FnOnce() -> String) {
        if self.config.event_trace {
            if self.events.len() == TRACE_CAPACITY {
                self.events.pop_front();
            }
            let line = format!("{:>8}  {}", self.cycle, event());
            self.stats.host.event_strings_built += 1;
            self.events.push_back(line);
        }
    }

    /// Runs the machine to completion (program halt or instruction budget)
    /// and returns the statistics.
    ///
    /// # Errors
    ///
    /// [`SimError::Validation`] if a retiring instruction diverges from the
    /// golden trace, [`SimError::Deadlock`] if no progress is made for an
    /// implausibly long stretch.
    pub fn run(self) -> Result<SimStats, SimError> {
        self.run_traced().map(|(stats, _)| stats)
    }

    /// Like [`Machine::run`], but also returns the recorded event trace
    /// (empty unless [`SimConfig::event_trace`] is set): one line per fetch
    /// redirect, dispatch, issue, replay, completion, recovery and
    /// retirement, newest last, bounded to [`TRACE_CAPACITY`] events.
    ///
    /// # Errors
    ///
    /// See [`Machine::run`].
    pub fn run_traced(mut self) -> Result<(SimStats, Vec<String>), SimError> {
        self.run_loop()?;
        Ok((self.stats, self.events.into()))
    }

    /// Like [`Machine::run`], but also returns the per-instruction stage
    /// timelines collected for the pipeline viewer. Set
    /// [`SimConfig::pipeview`]; otherwise the returned list is empty. Only
    /// the newest [`PIPEVIEW_CAPACITY`] retirements are kept.
    ///
    /// # Errors
    ///
    /// See [`Machine::run`].
    pub fn run_pipeview(mut self) -> Result<(SimStats, Vec<PipeRecord>), SimError> {
        self.run_loop()?;
        Ok((self.stats, self.pipe_records))
    }

    /// Like [`Machine::run`], but also returns the architectural end state
    /// (retired register file and committed memory) for cross-backend
    /// equivalence checks.
    ///
    /// # Errors
    ///
    /// See [`Machine::run`].
    pub fn run_final(mut self) -> Result<(SimStats, FinalState), SimError> {
        self.run_loop()?;
        let regs = self.arch_regs();
        Ok((
            self.stats,
            FinalState {
                regs,
                mem: self.memsys.into_memory(),
            },
        ))
    }

    /// The retired architectural register file `r0..r31`.
    pub(crate) fn arch_regs(&self) -> Vec<u64> {
        (0..32)
            .map(|i| self.renamer.read(self.renamer.lookup(Reg::new(i))))
            .collect()
    }

    /// Advances the core by one cycle: retire, then (unless halted)
    /// complete/issue/dispatch/fetch, with the per-core deadlock check.
    /// This is the multi-core scheduling quantum — the single-core
    /// [`Machine::run`] loop calls it back to back.
    pub(crate) fn step(&mut self) -> Result<(), SimError> {
        self.cycle += 1;
        self.retire()?;
        if self.halted {
            self.debug_check_filter_census();
            return Ok(());
        }
        self.complete();
        self.issue();
        self.dispatch();
        self.fetch();

        if self.cycle - self.last_retire_cycle > DEADLOCK_CYCLES {
            return Err(SimError::Deadlock(format!(
                "no retirement for {} cycles at cycle {}; retired {}, rob {} entries, \
                 head {:?}",
                DEADLOCK_CYCLES,
                self.cycle,
                self.stats.retired,
                self.rob.len(),
                self.rob.head().map(|h| (h.seq, h.pc, h.state))
            )));
        }
        Ok(())
    }

    fn run_loop(&mut self) -> Result<(), SimError> {
        if self.target_retired == 0 {
            return Ok(());
        }
        if self.config.sample.is_some() {
            return self.run_sampled();
        }
        let wall_start = std::time::Instant::now();
        while !self.halted {
            self.step()?;
        }
        self.stats.cycles = self.cycle;
        self.stats.host.wall_ns = wall_start.elapsed().as_nanos() as u64;
        self.finalize_stats();
        Ok(())
    }

    pub(crate) fn finalize_stats(&mut self) {
        self.backend.stats_into(&mut self.stats.backend);
        self.stats.gshare = self.gshare.stats();
        self.stats.dep_predictor = self.dep_pred.stats();
        self.stats.caches = self.memsys.stats();
        self.stats.far = self.memsys.far_stats();
    }

    pub(crate) fn at_head(&self, seq: SeqNum) -> bool {
        self.rob.head().map(|h| h.seq) == Some(seq)
    }

    pub(crate) fn trace_record(&self, cursor: u64) -> Option<&aim_isa::TraceRecord> {
        self.trace.get(cursor)
    }
}
