//! The execution-driven out-of-order machine: cycle loop, recovery, and the
//! pluggable memory-ordering backend.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

use aim_core::{Mdt, PartialMatchPolicy, Sfc, SfcLoadResult};
use aim_isa::{ExecClass, Instr, Program, Trace};
use aim_lsq::Lsq;
use aim_mem::{CacheHierarchy, MainMemory, MemLevel, StoreFifo};
use aim_predictor::{Gshare, OracleBoost, ProducerSetPredictor, TagScoreboard};
use aim_types::{Addr, MemAccess, SeqNum, ViolationKind};

use crate::config::{BackendConfig, OutputDepRecovery, SimConfig};
use crate::pipeview::PipeRecord;
use crate::rename::Renamer;
use crate::rob::{InFlight, InstrState, Rob};
use crate::stats::SimStats;

/// Errors terminating a simulation abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The architectural interpreter rejected the program.
    Program(String),
    /// A retiring instruction diverged from the golden trace — a simulator
    /// correctness bug (e.g. a forwarding error the disambiguation hardware
    /// missed).
    Validation(String),
    /// No instruction retired for an implausibly long time.
    Deadlock(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Program(s) => write!(f, "program error: {s}"),
            SimError::Validation(s) => write!(f, "validation failed: {s}"),
            SimError::Deadlock(s) => write!(f, "pipeline deadlock: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

/// The memory-ordering machinery in use.
enum Backend {
    Lsq(Lsq),
    SfcMdt { sfc: Sfc, mdt: Mdt },
}

/// A pending memory-dependence violation, carried from execute to the
/// completion event that applies recovery.
#[derive(Debug, Clone, Copy)]
struct PendingViolation {
    kind: ViolationKind,
    producer_pc: u64,
    consumer_pc: u64,
    squash_after: SeqNum,
    /// Apply §2.4.2 corrupt-marking instead of a flush (output violations
    /// under [`OutputDepRecovery::MarkCorrupt`]); those are applied at issue
    /// and never reach the pending queue, hence the invariant assert below.
    corrupt_only: bool,
}

/// An instruction staged between fetch and dispatch.
#[derive(Debug, Clone, Copy)]
struct Fetched {
    pc: u64,
    instr: Instr,
    trace_index: Option<u64>,
    predicted_next_pc: u64,
    history_snapshot: u64,
}

/// Outcome of attempting a memory access at issue.
enum MemOutcome {
    /// The access completed; value and added latency.
    Done { value: u64, latency: u64 },
    /// The access was dropped; the instruction replays.
    Replay,
}

/// The simulated out-of-order processor.
///
/// Construct with [`Machine::new`] and drive with [`Machine::run`], or use
/// the [`crate::simulate`] convenience function.
///
/// # Examples
///
/// ```
/// use aim_isa::{Assembler, Interpreter, Reg};
/// use aim_pipeline::{Machine, SimConfig};
///
/// let mut asm = Assembler::new();
/// asm.movi(Reg::new(1), 42);
/// asm.halt();
/// let program = asm.assemble().unwrap();
/// let trace = Interpreter::new(&program).run(100).unwrap();
///
/// let machine = Machine::new(&program, &trace, SimConfig::baseline_lsq());
/// let stats = machine.run().unwrap();
/// assert_eq!(stats.retired, 2);
/// ```
pub struct Machine<'a> {
    config: SimConfig,
    program: &'a Program,
    trace: &'a Trace,

    cycle: u64,
    next_seq: u64,
    halted: bool,
    target_retired: u64,

    renamer: Renamer,
    rob: Rob,
    mem: MainMemory,
    hierarchy: CacheHierarchy,
    store_fifo: StoreFifo,
    backend: Backend,
    dep_pred: ProducerSetPredictor,
    tags: TagScoreboard,
    gshare: Gshare,
    oracle: OracleBoost,

    fetch_pc: u64,
    on_correct_path: bool,
    trace_cursor: u64,
    fetch_stall_until: u64,
    fetch_halted: bool,
    fetch_buffer: VecDeque<Fetched>,

    exec_events: BinaryHeap<Reverse<(u64, u64)>>,
    /// Violations awaiting their raiser's completion event, kept sorted by
    /// raising sequence number (see [`Machine::queue_violation`]) so lookup
    /// and squash are range operations instead of whole-vector scans.
    pending_violations: Vec<(SeqNum, PendingViolation)>,

    /// Scratch buffers reused across cycles so the steady-state loop
    /// allocates nothing: issue's ready list, recovery's squash list, and
    /// completion's taken-violation list keep their capacity run-long.
    issue_scratch: Vec<SeqNum>,
    squash_scratch: Vec<InFlight>,
    violation_scratch: Vec<PendingViolation>,

    /// §4 MDT search filter: count of in-flight stores that have not yet
    /// (successfully) executed, and a counting filter over the granules of
    /// executed-but-unretired stores.
    unexecuted_stores: u64,
    /// Retired-instruction timelines for the pipeline viewer
    /// ([`SimConfig::pipeview`]), capped at [`PIPEVIEW_CAPACITY`].
    pipe_records: Vec<PipeRecord>,
    store_granule_filter: Vec<u32>,

    stats: SimStats,
    last_retire_cycle: u64,
    /// Event log (only populated when `config.event_trace` is set); bounded
    /// to the most recent [`TRACE_CAPACITY`] events.
    events: VecDeque<String>,
}

/// Maximum events retained by the pipeline trace (a ring of the most recent).
/// Maximum retired-instruction records kept by the pipeline viewer; the
/// newest records win, so a long run shows its final window.
pub const PIPEVIEW_CAPACITY: usize = 4096;

pub const TRACE_CAPACITY: usize = 65_536;

impl<'a> Machine<'a> {
    /// Creates a machine over `program`, validated against `trace` (the
    /// golden architectural run of the same program).
    pub fn new(program: &'a Program, trace: &'a Trace, config: SimConfig) -> Machine<'a> {
        let backend = match config.backend {
            BackendConfig::Lsq(c) => Backend::Lsq(Lsq::new(c)),
            BackendConfig::SfcMdt { sfc, mdt } => Backend::SfcMdt {
                sfc: Sfc::new(sfc),
                mdt: Mdt::new(mdt),
            },
        };
        let target_retired = if config.max_instrs == 0 {
            trace.len() as u64
        } else {
            config.max_instrs.min(trace.len() as u64)
        };
        Machine {
            renamer: Renamer::new(config.phys_regs),
            rob: Rob::new(config.rob_entries),
            mem: program.build_memory(),
            hierarchy: CacheHierarchy::new(config.hierarchy),
            store_fifo: StoreFifo::new(),
            backend,
            dep_pred: ProducerSetPredictor::with_config(config.dep_predictor),
            tags: TagScoreboard::new(),
            gshare: Gshare::new(config.gshare_counters, config.gshare_history_bits),
            oracle: OracleBoost::new(config.oracle_fix_probability, config.seed),
            fetch_pc: 0,
            on_correct_path: true,
            trace_cursor: 0,
            fetch_stall_until: 0,
            fetch_halted: false,
            fetch_buffer: VecDeque::new(),
            exec_events: BinaryHeap::new(),
            pending_violations: Vec::new(),
            issue_scratch: Vec::new(),
            squash_scratch: Vec::new(),
            violation_scratch: Vec::new(),
            unexecuted_stores: 0,
            pipe_records: Vec::new(),
            store_granule_filter: vec![0; 1024],
            cycle: 0,
            next_seq: 1,
            halted: false,
            target_retired,
            stats: SimStats::default(),
            last_retire_cycle: 0,
            events: VecDeque::new(),
            config,
            program,
            trace,
        }
    }

    /// Appends a pipeline event to the trace ring when tracing is enabled.
    ///
    /// The closure keeps formatting lazy: with `event_trace` off nothing is
    /// formatted or allocated, which
    /// [`HostPerf::event_strings_built`](crate::HostPerf) records.
    fn log(&mut self, event: impl FnOnce() -> String) {
        if self.config.event_trace {
            if self.events.len() == TRACE_CAPACITY {
                self.events.pop_front();
            }
            let line = format!("{:>8}  {}", self.cycle, event());
            self.stats.host.event_strings_built += 1;
            self.events.push_back(line);
        }
    }

    /// Runs the machine to completion (program halt or instruction budget)
    /// and returns the statistics.
    ///
    /// # Errors
    ///
    /// [`SimError::Validation`] if a retiring instruction diverges from the
    /// golden trace, [`SimError::Deadlock`] if no progress is made for an
    /// implausibly long stretch.
    pub fn run(self) -> Result<SimStats, SimError> {
        self.run_traced().map(|(stats, _)| stats)
    }

    /// Like [`Machine::run`], but also returns the recorded event trace
    /// (empty unless [`SimConfig::event_trace`] is set): one line per fetch
    /// redirect, dispatch, issue, replay, completion, recovery and
    /// retirement, newest last, bounded to [`TRACE_CAPACITY`] events.
    ///
    /// # Errors
    ///
    /// See [`Machine::run`].
    pub fn run_traced(mut self) -> Result<(SimStats, Vec<String>), SimError> {
        self.run_loop()?;
        Ok((self.stats, self.events.into()))
    }

    /// Like [`Machine::run`], but also returns the per-instruction stage
    /// timelines collected for the pipeline viewer. Set
    /// [`SimConfig::pipeview`]; otherwise the returned list is empty. Only
    /// the newest [`PIPEVIEW_CAPACITY`] retirements are kept.
    ///
    /// # Errors
    ///
    /// See [`Machine::run`].
    pub fn run_pipeview(mut self) -> Result<(SimStats, Vec<PipeRecord>), SimError> {
        self.run_loop()?;
        Ok((self.stats, self.pipe_records))
    }

    fn run_loop(&mut self) -> Result<(), SimError> {
        const DEADLOCK_CYCLES: u64 = 200_000;
        if self.target_retired == 0 {
            return Ok(());
        }
        let wall_start = std::time::Instant::now();
        loop {
            self.cycle += 1;
            self.retire()?;
            if self.halted {
                self.debug_check_filter_census();
                break;
            }
            self.complete();
            self.issue();
            self.dispatch();
            self.fetch();

            if self.cycle - self.last_retire_cycle > DEADLOCK_CYCLES {
                return Err(SimError::Deadlock(format!(
                    "no retirement for {} cycles at cycle {}; retired {}, rob {} entries, \
                     head {:?}",
                    DEADLOCK_CYCLES,
                    self.cycle,
                    self.stats.retired,
                    self.rob.len(),
                    self.rob.head().map(|h| (h.seq, h.pc, h.state))
                )));
            }
        }
        self.stats.cycles = self.cycle;
        self.stats.host.wall_ns = wall_start.elapsed().as_nanos() as u64;
        self.finalize_stats();
        Ok(())
    }

    fn finalize_stats(&mut self) {
        self.stats.store_fifo_peak = self.store_fifo.peak_occupancy();
        self.stats.gshare = self.gshare.stats();
        self.stats.dep_predictor = self.dep_pred.stats();
        self.stats.caches = self.hierarchy.stats();
        match &self.backend {
            Backend::Lsq(l) => self.stats.lsq = Some(l.stats()),
            Backend::SfcMdt { sfc, mdt } => {
                self.stats.sfc = Some(sfc.stats());
                self.stats.mdt = Some(mdt.stats());
                self.stats.sfc_peak_occupancy = sfc.peak_occupancy();
                self.stats.mdt_peak_occupancy = mdt.peak_occupancy();
            }
        }
    }

    /// Cumulative count of SFC/MDT entry frees and reclamations — the event
    /// stream that clears stall bits (§2.4.3: "the scheduler clears all stall
    /// bits whenever the MDT or SFC evicts an entry").
    fn free_event_count(&self) -> u64 {
        match &self.backend {
            Backend::Lsq(_) => 0,
            Backend::SfcMdt { sfc, mdt } => {
                let s = sfc.stats();
                let m = mdt.stats();
                s.frees + s.reclaims + m.frees + m.reclaims
            }
        }
    }

    // --- Fetch ---------------------------------------------------------

    fn trace_record(&self, cursor: u64) -> Option<&aim_isa::TraceRecord> {
        self.trace.get(cursor)
    }

    fn fetch(&mut self) {
        if self.fetch_halted
            || self.cycle < self.fetch_stall_until
            || self.fetch_buffer.len() >= self.config.width
        {
            return;
        }

        // Model the I-cache on the first access of the group: a miss costs
        // the fill latency before any instruction is delivered.
        let (level, latency) = self
            .hierarchy
            .access_instr(self.program.fetch_addr(self.fetch_pc));
        if level != MemLevel::L1 {
            self.fetch_stall_until = self.cycle + latency;
            return;
        }

        let mut branches = 0usize;
        for _ in 0..self.config.width {
            let Some(&instr) = self.program.instr(self.fetch_pc) else {
                // Wrong-path fetch ran off the instruction stream; wait for a
                // redirect.
                self.fetch_halted = true;
                return;
            };
            if instr.is_control() {
                if branches >= self.config.max_branches_per_cycle {
                    break;
                }
                branches += 1;
            }

            let pc = self.fetch_pc;
            // Fetch believes it is on the correct path when the trace record
            // under the cursor matches the pc. A mismatch is legal: a branch
            // fed by a mis-speculated value (whose ordering violation has not
            // been detected yet) can steer a "correct-path" redirect to a
            // wrong target. Such instructions are really wrong-path — the
            // violation's flush will squash them before they can retire — so
            // fetch degrades to off-path until the next recovery resyncs it.
            let on_path = self.on_correct_path
                && match self.trace_record(self.trace_cursor) {
                    Some(rec) if rec.pc == pc => true,
                    _ => {
                        self.on_correct_path = false;
                        false
                    }
                };
            let trace_next = on_path.then(|| {
                self.trace_record(self.trace_cursor)
                    .expect("matched above")
                    .next_pc
            });

            let history_snapshot = self.gshare.history();
            let predicted_next_pc = match instr {
                Instr::Jump { target } | Instr::Jal { target, .. } => target,
                Instr::Jr { .. } => trace_next.unwrap_or(pc + 1),
                Instr::Branch { target, .. } => {
                    let pred_taken = self.gshare.predict(pc);
                    let taken = match trace_next {
                        Some(next) => {
                            let actual_taken = next != pc + 1;
                            if pred_taken == actual_taken || self.oracle.fixes_mispredict() {
                                actual_taken
                            } else {
                                pred_taken
                            }
                        }
                        None => pred_taken,
                    };
                    self.gshare.speculate(taken);
                    if taken {
                        target
                    } else {
                        pc + 1
                    }
                }
                Instr::Halt => pc,
                _ => pc + 1,
            };

            self.fetch_buffer.push_back(Fetched {
                pc,
                instr,
                trace_index: on_path.then_some(self.trace_cursor),
                predicted_next_pc,
                history_snapshot,
            });
            self.stats.fetched += 1;

            if on_path {
                if Some(predicted_next_pc) == trace_next {
                    self.trace_cursor += 1;
                } else {
                    self.on_correct_path = false;
                }
            }
            self.fetch_pc = predicted_next_pc;
            if matches!(instr, Instr::Halt) {
                self.fetch_halted = true;
                break;
            }
        }
    }

    // --- Dispatch ------------------------------------------------------

    fn dispatch(&mut self) {
        for _ in 0..self.config.width {
            let Some(front) = self.fetch_buffer.front().copied() else {
                break;
            };
            if !self.rob.has_room() {
                self.stats.dispatch_stalls.rob_full += 1;
                break;
            }
            if front.instr.def().is_some() && self.renamer.free_count() == 0 {
                self.stats.dispatch_stalls.no_phys_reg += 1;
                break;
            }
            if let Backend::Lsq(lsq) = &self.backend {
                if front.instr.is_load() && !lsq.can_dispatch_load() {
                    self.stats.dispatch_stalls.lq_full += 1;
                    break;
                }
                if front.instr.is_store() && !lsq.can_dispatch_store() {
                    self.stats.dispatch_stalls.sq_full += 1;
                    break;
                }
            }
            if matches!(self.backend, Backend::SfcMdt { .. })
                && front.instr.is_store()
                && self.config.store_fifo_entries > 0
                && self.store_fifo.len() >= self.config.store_fifo_entries
            {
                self.stats.dispatch_stalls.fifo_full += 1;
                break;
            }

            self.fetch_buffer.pop_front();
            let seq = SeqNum(self.next_seq);
            self.next_seq += 1;

            let mut entry = InFlight::new(seq, front.pc, front.instr);
            entry.dispatched_cycle = self.cycle;
            entry.trace_index = front.trace_index;
            entry.predicted_next_pc = front.predicted_next_pc;
            entry.history_snapshot = front.history_snapshot;
            for (slot, src) in entry.srcs.iter_mut().zip(front.instr.uses()) {
                *slot = src.map(|r| self.renamer.lookup(r));
            }
            if let Some(arch) = front.instr.def() {
                entry.dest = Some(
                    self.renamer
                        .rename_dest(arch)
                        .expect("free list checked above"),
                );
            }
            if front.instr.is_load() || front.instr.is_store() {
                let hints = self.dep_pred.on_dispatch(front.pc, &mut self.tags);
                entry.dep_consumes = hints.consumes;
                entry.dep_produces = hints.produces;
            }

            match &mut self.backend {
                Backend::Lsq(lsq) => {
                    if front.instr.is_load() {
                        lsq.dispatch_load(seq, front.pc);
                    } else if front.instr.is_store() {
                        lsq.dispatch_store(seq, front.pc);
                    }
                }
                Backend::SfcMdt { .. } => {
                    if front.instr.is_store() {
                        self.store_fifo.push(seq);
                        if self.config.mdt_filter {
                            self.unexecuted_stores += 1;
                            entry.counted_unexecuted = true;
                        }
                    }
                }
            }

            self.log(|| format!("dispatch {seq} pc={} `{}`", front.pc, front.instr));
            self.rob.push(entry);
            self.stats.dispatched += 1;
        }
    }

    // --- Issue / execute ------------------------------------------------

    fn issue(&mut self) {
        let mut budget = self.config.issue_width;
        let free_events = self.free_event_count();
        let head_seq = self.rob.head().map(|h| h.seq);
        let mut to_issue = std::mem::take(&mut self.issue_scratch);
        to_issue.clear();

        for e in self.rob.iter() {
            if budget == 0 {
                break;
            }
            if e.state != InstrState::Waiting {
                continue;
            }
            let at_head = Some(e.seq) == head_seq;
            if let Some(snapshot) = e.stall_until_free_event {
                if free_events <= snapshot && !at_head {
                    continue;
                }
            }
            if !e.srcs.iter().flatten().all(|&p| self.renamer.is_ready(p)) {
                continue;
            }
            if let Some(tag) = e.dep_consumes {
                if !self.tags.is_ready(tag) && !at_head {
                    continue;
                }
            }
            to_issue.push(e.seq);
            budget -= 1;
        }

        for seq in to_issue.drain(..) {
            self.start_execute(seq);
        }
        self.issue_scratch = to_issue;
    }

    fn src_values(&self, seq: SeqNum) -> (u64, u64) {
        let e = self.rob.get(seq).expect("issuing instruction exists");
        let a = e.srcs[0].map_or(0, |p| self.renamer.read(p));
        let b = e.srcs[1].map_or(0, |p| self.renamer.read(p));
        (a, b)
    }

    fn start_execute(&mut self, seq: SeqNum) {
        self.stats.issued += 1;
        if self.config.event_trace {
            let (pc, instr) = {
                let e = self.rob.get(seq).expect("issuing instruction exists");
                (e.pc, e.instr)
            };
            self.log(|| format!("issue    {seq} pc={pc} `{instr}`"));
        }
        let (a, b) = self.src_values(seq);
        let cycle = self.cycle;
        let e = self.rob.get_mut(seq).expect("issuing instruction exists");
        e.issued_cycle = cycle;
        let pc = e.pc;
        let instr = e.instr;

        let mut result = 0u64;
        let mut actual_next: Option<u64> = None;
        let latency = match instr {
            Instr::Alu { op, .. } => {
                result = op.eval(a, b);
                self.class_latency(instr.exec_class())
            }
            Instr::AluImm { op, imm, .. } => {
                result = op.eval(a, imm as u64);
                self.class_latency(instr.exec_class())
            }
            Instr::MovImm { imm, .. } => {
                result = imm as u64;
                self.config.alu_latency
            }
            Instr::Branch { cond, target, .. } => {
                actual_next = Some(if cond.eval(a, b) { target } else { pc + 1 });
                self.config.alu_latency
            }
            Instr::Jump { target } => {
                actual_next = Some(target);
                self.config.alu_latency
            }
            Instr::Jal { target, .. } => {
                result = pc + 1;
                actual_next = Some(target);
                self.config.alu_latency
            }
            Instr::Jr { .. } => {
                actual_next = Some(a);
                self.config.alu_latency
            }
            Instr::Halt | Instr::Nop => self.config.alu_latency,
            Instr::Load { offset, size, .. } => {
                // srcs[0] = base register.
                let raw = a.wrapping_add(offset as u64);
                let addr = Addr(raw & !(size.bytes() - 1)); // align wrong-path garbage
                let access = MemAccess::new(addr, size).expect("aligned by construction");
                match self.exec_load(seq, pc, access) {
                    MemOutcome::Done { value, latency } => {
                        result = value;
                        self.rob.get_mut(seq).expect("exists").mem = Some((access, value));
                        self.config.agu_latency + latency
                    }
                    MemOutcome::Replay => return,
                }
            }
            Instr::Store { offset, size, .. } => {
                // srcs[0] = base, srcs[1] = data.
                let raw = a.wrapping_add(offset as u64);
                let addr = Addr(raw & !(size.bytes() - 1));
                let access = MemAccess::new(addr, size).expect("aligned by construction");
                match self.exec_store(seq, pc, access, b) {
                    MemOutcome::Done { latency, .. } => {
                        self.rob.get_mut(seq).expect("exists").mem = Some((access, b));
                        self.config.agu_latency + latency
                    }
                    MemOutcome::Replay => return,
                }
            }
        };

        let e = self.rob.get_mut(seq).expect("issuing instruction exists");
        e.state = InstrState::Executing;
        e.result = result;
        e.actual_next_pc = actual_next;
        self.exec_events
            .push(Reverse((self.cycle + latency.max(1), seq.0)));
    }

    fn class_latency(&self, class: ExecClass) -> u64 {
        match class {
            ExecClass::Mul => self.config.mul_latency,
            _ => self.config.alu_latency,
        }
    }

    fn replay(&mut self, seq: SeqNum) {
        self.log(|| format!("replay   {seq} dropped by the memory unit"));
        let free_events = self.free_event_count();
        let stall = self.config.stall_bits;
        let e = self.rob.get_mut(seq).expect("replaying instruction exists");
        e.state = InstrState::Waiting;
        e.replayed = true;
        e.stall_until_free_event = stall.then_some(free_events);
    }

    fn at_head(&self, seq: SeqNum) -> bool {
        self.rob.head().map(|h| h.seq) == Some(seq)
    }

    /// Debug-build invariant: the store census and granule filter always
    /// equal the sums of the per-entry flags in the ROB. A drift here means
    /// a leak in the execute/retire/squash bookkeeping, which would silently
    /// rot the §4 filter into either unsoundness (under-count) or inertness
    /// (over-count).
    fn debug_check_filter_census(&self) {
        if !cfg!(debug_assertions) || !self.config.mdt_filter {
            return;
        }
        let unexecuted = self.rob.iter().filter(|e| e.counted_unexecuted).count() as u64;
        debug_assert_eq!(
            self.unexecuted_stores, unexecuted,
            "unexecuted-store census drifted from ROB contents"
        );
        let counted = self.rob.iter().filter(|e| e.filter_counted).count() as u64;
        let filter_total: u64 = self.store_granule_filter.iter().map(|&c| c as u64).sum();
        debug_assert_eq!(
            filter_total, counted,
            "granule-filter population drifted from ROB contents"
        );
    }

    #[inline]
    fn filter_bucket(&self, access: MemAccess) -> usize {
        (access.addr().word_index() as usize) & (self.store_granule_filter.len() - 1)
    }

    fn exec_load(&mut self, seq: SeqNum, pc: u64, access: MemAccess) -> MemOutcome {
        self.stats.load_executions += 1;
        let floor = self.rob.floor(SeqNum(self.next_seq));
        let bypass = self.at_head(seq)
            && self.rob.get(seq).is_some_and(|e| e.replayed)
            && matches!(self.backend, Backend::SfcMdt { .. });
        let filtered = self.config.mdt_filter
            && self.unexecuted_stores == 0
            && self.store_granule_filter[self.filter_bucket(access)] == 0;
        if filtered && matches!(self.backend, Backend::SfcMdt { .. }) && !bypass {
            self.stats.mdt_filtered_loads += 1;
        }

        // Phase 1: consult the backend. Side effects on `self` beyond the
        // backend structures are deferred to phase 2.
        enum LoadPlan {
            Value { value: u64, forwarded: bool },
            ReplayMdtConflict,
            ReplayCorrupt,
            ReplayPartial,
            Anti(PendingViolation),
            Bypass,
        }

        let plan = match &mut self.backend {
            Backend::Lsq(lsq) => {
                let lv = lsq.load_execute(seq, access, &self.mem);
                LoadPlan::Value {
                    value: lv.value,
                    forwarded: lv.forwarded_bytes == access.mask().count(),
                }
            }
            Backend::SfcMdt { sfc, mdt } => {
                if bypass {
                    LoadPlan::Bypass
                } else if filtered {
                    // §4 search filter: no unexecuted store can later check
                    // this load, and no executed-unretired store can alias
                    // it — the MDT access is provably unnecessary. The SFC
                    // lookup still runs (canceled-store lines reject
                    // conservatively).
                    match sfc.load_lookup(access, floor) {
                        SfcLoadResult::Corrupt => LoadPlan::ReplayCorrupt,
                        SfcLoadResult::Forward(value) => LoadPlan::Value {
                            value,
                            forwarded: true,
                        },
                        _ => LoadPlan::Value {
                            value: self.mem.read(access),
                            forwarded: false,
                        },
                    }
                } else {
                    match mdt.on_load_execute(seq, pc, access, floor) {
                        Err(_) => LoadPlan::ReplayMdtConflict,
                        Ok(Some(v)) => LoadPlan::Anti(PendingViolation {
                            kind: v.kind,
                            producer_pc: v.producer_pc,
                            consumer_pc: v.consumer_pc,
                            squash_after: v.squash_after,
                            corrupt_only: false,
                        }),
                        Ok(None) => match sfc.load_lookup(access, floor) {
                            SfcLoadResult::Corrupt => LoadPlan::ReplayCorrupt,
                            SfcLoadResult::Forward(value) => LoadPlan::Value {
                                value,
                                forwarded: true,
                            },
                            SfcLoadResult::Miss => LoadPlan::Value {
                                value: self.mem.read(access),
                                forwarded: false,
                            },
                            SfcLoadResult::Partial { data, valid } => {
                                if self.config.partial_match_policy == PartialMatchPolicy::Replay {
                                    LoadPlan::ReplayPartial
                                } else {
                                    // Combine SFC bytes with memory bytes.
                                    let word = access.word_addr();
                                    let mut value = 0u64;
                                    for (k, byte_idx) in access.mask().iter_bytes().enumerate() {
                                        let byte = if valid.contains_byte(byte_idx) {
                                            data[byte_idx as usize]
                                        } else {
                                            self.mem.read_byte(Addr(word.0 + byte_idx as u64))
                                        };
                                        value |= (byte as u64) << (8 * k);
                                    }
                                    LoadPlan::Value {
                                        value,
                                        forwarded: false,
                                    }
                                }
                            }
                        },
                    }
                }
            }
        };

        // Phase 2: apply side effects.
        match plan {
            LoadPlan::Value { value, forwarded } => {
                let latency = if forwarded {
                    self.stats.loads_forwarded += 1;
                    // Forwarding takes the L1-hit time: the SFC (or the
                    // idealized single-cycle store-queue bypass) is accessed
                    // in parallel with the L1.
                    let _ = self.hierarchy.access_data(access.addr());
                    self.config.hierarchy.l1_hit_cycles
                } else {
                    self.hierarchy.access_data(access.addr()).1
                };
                MemOutcome::Done { value, latency }
            }
            LoadPlan::Bypass => {
                // §2.2: the head of the ROB may execute without accessing the
                // MDT or the SFC; all older instructions have retired, so
                // committed memory is current.
                self.stats.head_bypasses += 1;
                let value = self.mem.read(access);
                let latency = self.hierarchy.access_data(access.addr()).1;
                self.rob.get_mut(seq).expect("exists").bypassed = true;
                MemOutcome::Done { value, latency }
            }
            LoadPlan::ReplayMdtConflict => {
                self.stats.replays.load_mdt_conflicts += 1;
                self.replay(seq);
                MemOutcome::Replay
            }
            LoadPlan::ReplayCorrupt => {
                self.stats.replays.load_corrupt += 1;
                self.replay(seq);
                MemOutcome::Replay
            }
            LoadPlan::ReplayPartial => {
                self.stats.replays.load_partial += 1;
                self.replay(seq);
                MemOutcome::Replay
            }
            LoadPlan::Anti(v) => {
                // Anti violation: the load itself is flushed; carry the
                // recovery to the completion event.
                self.queue_violation(seq, v);
                let e = self.rob.get_mut(seq).expect("exists");
                e.state = InstrState::Executing;
                self.exec_events
                    .push(Reverse((self.cycle + self.config.agu_latency + 1, seq.0)));
                MemOutcome::Replay // caller must not reschedule
            }
        }
    }

    fn exec_store(&mut self, seq: SeqNum, pc: u64, access: MemAccess, value: u64) -> MemOutcome {
        self.stats.store_executions += 1;
        let floor = self.rob.floor(SeqNum(self.next_seq));
        let corrupt_on_output = self.config.output_dep_recovery == OutputDepRecovery::MarkCorrupt;
        let bypass = self.at_head(seq)
            && self.rob.get(seq).is_some_and(|e| e.replayed)
            && matches!(self.backend, Backend::SfcMdt { .. });

        enum StorePlan {
            Done {
                violations: Vec<aim_core::Violation>,
                bypassed: bool,
            },
            ReplayMdt,
            ReplaySfc,
        }

        let plan = match &mut self.backend {
            Backend::Lsq(lsq) => {
                let violations = lsq
                    .store_execute(seq, access, value, &self.mem)
                    .map(|v| aim_core::Violation {
                        kind: v.kind,
                        producer_pc: v.producer_pc,
                        consumer_pc: v.consumer_pc,
                        squash_after: v.squash_after,
                    })
                    .into_iter()
                    .collect();
                StorePlan::Done {
                    violations,
                    bypassed: false,
                }
            }
            Backend::SfcMdt { sfc, mdt } => {
                if bypass {
                    // §2.2: a store at the head "writes its value to the
                    // store FIFO and retires" without the SFC. The MDT check
                    // still runs when its entry exists — a younger load may
                    // have executed with a stale value while this store was
                    // being replayed. If the MDT cannot even allocate an
                    // entry, no younger load or store to this granule has
                    // executed, so skipping the check is safe.
                    let violations = mdt
                        .on_store_execute(seq, pc, access, floor)
                        .unwrap_or_default();
                    StorePlan::Done {
                        violations,
                        bypassed: true,
                    }
                } else {
                    match mdt.on_store_execute(seq, pc, access, floor) {
                        Err(_) => StorePlan::ReplayMdt,
                        Ok(violations) => {
                            if sfc.store_write(seq, access, value, floor).is_err() {
                                // The MDT update stands; the violations will
                                // be re-detected when the store re-executes.
                                StorePlan::ReplaySfc
                            } else {
                                StorePlan::Done {
                                    violations,
                                    bypassed: false,
                                }
                            }
                        }
                    }
                }
            }
        };

        match plan {
            StorePlan::ReplayMdt => {
                self.stats.replays.store_mdt_conflicts += 1;
                self.replay(seq);
                MemOutcome::Replay
            }
            StorePlan::ReplaySfc => {
                self.stats.replays.store_sfc_conflicts += 1;
                self.replay(seq);
                MemOutcome::Replay
            }
            StorePlan::Done {
                violations,
                bypassed,
            } => {
                for v in violations {
                    let corrupt_only = v.kind == ViolationKind::Output && corrupt_on_output;
                    if corrupt_only {
                        // §2.4.2 recovery must take effect *now*: the store's
                        // own SFC write just cleared the corruption bits on
                        // its bytes, and a load issuing before the store's
                        // completion event would otherwise forward the stale
                        // value with no flush to save it.
                        if let Backend::SfcMdt { sfc, .. } = &mut self.backend {
                            sfc.corrupt_line(access);
                        }
                        self.dep_pred
                            .record_violation(v.producer_pc, v.consumer_pc, v.kind);
                        self.stats.flushes.output_dep += 1;
                        continue;
                    }
                    self.queue_violation(
                        seq,
                        PendingViolation {
                            kind: v.kind,
                            producer_pc: v.producer_pc,
                            consumer_pc: v.consumer_pc,
                            squash_after: v.squash_after,
                            corrupt_only,
                        },
                    );
                }
                let latency = match &self.backend {
                    Backend::Lsq(_) => 1,
                    Backend::SfcMdt { .. } => 1 + self.config.sfc_store_extra_latency,
                };
                if bypassed {
                    self.stats.head_bypasses += 1;
                    // Commit immediately: the store is non-speculative at the
                    // head, and committing now closes the window in which a
                    // younger load could read stale memory unchecked by the
                    // skipped SFC.
                    self.mem.write(access, value);
                    self.rob.get_mut(seq).expect("exists").bypassed = true;
                }
                if matches!(self.backend, Backend::SfcMdt { .. }) {
                    self.store_fifo.fill(seq, access, value);
                    if self.config.mdt_filter {
                        // The store has now (successfully) executed: it can
                        // never re-check the MDT, and — unless it bypassed
                        // straight to memory — its data is live in flight.
                        let bucket = self.filter_bucket(access);
                        let e = self.rob.get_mut(seq).expect("exists");
                        if e.counted_unexecuted {
                            e.counted_unexecuted = false;
                            if !bypassed {
                                e.filter_counted = true;
                            }
                            self.unexecuted_stores -= 1;
                            if !bypassed {
                                self.store_granule_filter[bucket] += 1;
                            }
                        }
                    }
                }
                MemOutcome::Done { value, latency }
            }
        }
    }

    // --- Complete -------------------------------------------------------

    fn complete(&mut self) {
        while let Some(&Reverse((when, seq_raw))) = self.exec_events.peek() {
            if when > self.cycle {
                break;
            }
            self.exec_events.pop();
            let seq = SeqNum(seq_raw);
            self.complete_one(seq);
        }
    }

    /// Records a violation to apply when the raising instruction (`seq`)
    /// completes, preserving the sorted-by-raiser invariant of
    /// `pending_violations`. Completion events arrive out of sequence order,
    /// so this is an ordered insert, not a push.
    fn queue_violation(&mut self, seq: SeqNum, v: PendingViolation) {
        let at = self
            .pending_violations
            .partition_point(|(s, _)| *s <= seq);
        self.pending_violations.insert(at, (seq, v));
    }

    /// The index range of violations raised by `seq` (contiguous, because
    /// the vector is sorted by raiser).
    fn violation_range(&self, seq: SeqNum) -> std::ops::Range<usize> {
        let start = self.pending_violations.partition_point(|(s, _)| *s < seq);
        let end = self.pending_violations.partition_point(|(s, _)| *s <= seq);
        start..end
    }

    fn take_violations(&mut self, seq: SeqNum) -> Vec<PendingViolation> {
        let range = self.violation_range(seq);
        let mut taken = std::mem::take(&mut self.violation_scratch);
        taken.clear();
        taken.extend(self.pending_violations.drain(range).map(|(_, v)| v));
        taken
    }

    fn complete_one(&mut self, seq: SeqNum) {
        let Some(e) = self.rob.get(seq) else {
            let range = self.violation_range(seq);
            self.pending_violations.drain(range);
            return; // squashed while executing
        };
        if e.state != InstrState::Executing {
            return;
        }
        let violations = self.take_violations(seq);
        self.apply_completion(seq, &violations);
        self.violation_scratch = violations;
    }

    fn apply_completion(&mut self, seq: SeqNum, violations: &[PendingViolation]) {
        // An anti violation squashes the violating load itself; nothing else
        // about the instruction completes.
        if let Some(v) = violations
            .iter()
            .find(|v| v.kind == ViolationKind::Anti)
            .copied()
        {
            self.train_predictor(&v);
            self.stats.flushes.anti_dep += 1;
            self.recover_to(
                v.squash_after,
                self.config.mispredict_penalty + self.config.mdt_violation_extra_penalty,
            );
            return;
        }

        // Normal completion: broadcast the result.
        let cycle = self.cycle;
        let e = self.rob.get_mut(seq).expect("checked above");
        e.state = InstrState::Completed;
        e.completed_cycle = cycle;
        if self.config.event_trace {
            let (pc, result) = {
                let e = self.rob.get(seq).expect("checked above");
                (e.pc, e.result)
            };
            self.log(|| format!("complete {seq} pc={pc} result={result:#x}"));
        }
        let e = self.rob.get_mut(seq).expect("checked above");
        let dest = e.dest;
        let result = e.result;
        let produces = e.dep_produces;
        let instr = e.instr;
        let predicted_next = e.predicted_next_pc;
        let actual_next = e.actual_next_pc;

        if let Some(d) = dest {
            self.renamer.write(d.new_phys, result);
        }
        if let Some(tag) = produces {
            self.tags.mark_ready(tag);
        }

        // Control resolution.
        if instr.is_control() {
            let actual = actual_next.expect("control instructions resolve a target");
            if actual != predicted_next {
                self.stats.flushes.branch += 1;
                self.recover_control(seq, actual);
                return;
            }
        }

        // Memory-ordering violations raised by this (surviving) instruction.
        let mut flush_point: Option<SeqNum> = None;
        let mut penalty = self.config.mispredict_penalty;
        for v in violations {
            self.train_predictor(v);
            match v.kind {
                ViolationKind::True => self.stats.flushes.true_dep += 1,
                ViolationKind::Output => {
                    debug_assert!(!v.corrupt_only, "corrupt-only recovery applies at issue");
                    self.stats.flushes.output_dep += 1;
                }
                ViolationKind::Anti => unreachable!("handled above"),
            }
            if matches!(self.backend, Backend::SfcMdt { .. }) {
                penalty = self.config.mispredict_penalty + self.config.mdt_violation_extra_penalty;
            }
            flush_point = Some(flush_point.map_or(v.squash_after, |f| f.min(v.squash_after)));
        }
        if let Some(point) = flush_point {
            self.recover_to(point, penalty);
        }
    }

    fn train_predictor(&mut self, v: &PendingViolation) {
        self.dep_pred
            .record_violation(v.producer_pc, v.consumer_pc, v.kind);
    }

    // --- Recovery --------------------------------------------------------

    /// Recovery for a resolved control misprediction: flush after the branch
    /// and steer fetch to the computed target.
    fn recover_control(&mut self, branch_seq: SeqNum, actual_next: u64) {
        let e = self.rob.get(branch_seq).expect("branch in flight");
        let resume_cursor = e.trace_index.map(|t| t + 1);
        // Rebuild the speculative history: everything after this branch is
        // gone, and the branch itself resolves to its actual direction.
        let snapshot = e.history_snapshot;
        let is_cond = e.instr.is_cond_branch();
        let taken = actual_next != e.pc + 1;
        self.gshare.restore_history(snapshot);
        if is_cond {
            self.gshare.speculate(taken);
        }
        self.squash_and_redirect(
            branch_seq,
            actual_next,
            resume_cursor,
            self.config.mispredict_penalty,
        );
    }

    /// Recovery for memory-ordering violations: flush everything after
    /// `survivor` and refetch the same (speculative) path from the first
    /// squashed instruction — taken from the ROB, or failing that the fetch
    /// buffer. If nothing younger exists anywhere, fetch is already
    /// consistent and only the penalty applies.
    fn recover_to(&mut self, survivor: SeqNum, penalty: u64) {
        let resume = self
            .rob
            .first_after(survivor)
            .map(|f| (f.pc, f.trace_index, f.history_snapshot))
            .or_else(|| {
                self.fetch_buffer
                    .front()
                    .map(|f| (f.pc, f.trace_index, f.history_snapshot))
            });
        match resume {
            Some((pc, cursor, history)) => {
                self.gshare.restore_history(history);
                self.squash_and_redirect(survivor, pc, cursor, penalty);
            }
            None => {
                // The violating instruction is the youngest anywhere; there
                // is nothing to squash and fetch needs no redirect.
                self.fetch_stall_until = self.fetch_stall_until.max(self.cycle + penalty);
            }
        }
    }

    fn squash_and_redirect(
        &mut self,
        survivor: SeqNum,
        resume_pc: u64,
        resume_cursor: Option<u64>,
        penalty: u64,
    ) {
        self.log(|| {
            format!(
                "recover  squash seq>{} resume pc={resume_pc} (+{penalty} cycles)",
                survivor.0
            )
        });
        let mut squashed = std::mem::take(&mut self.squash_scratch);
        self.rob.squash_after_into(survivor, &mut squashed);
        // Pending violations are keyed by the raising instruction's sequence
        // number and the vector is sorted by it; every squashed instruction
        // is younger than `survivor`, so one truncate drops them all.
        let keep = self
            .pending_violations
            .partition_point(|(s, _)| *s <= survivor);
        self.pending_violations.truncate(keep);
        for e in &squashed {
            if let Some(d) = e.dest {
                self.renamer.undo(d);
            }
            if let Some(tag) = e.dep_produces {
                // A squashed producer's dependence no longer applies.
                self.tags.mark_ready(tag);
            }
            if e.counted_unexecuted {
                self.unexecuted_stores -= 1;
            }
            if e.filter_counted {
                let (access, _) = e.mem.expect("filter-counted stores executed");
                let bucket = self.filter_bucket(access);
                self.store_granule_filter[bucket] -= 1;
            }
            self.stats.squashed += 1;
        }
        // Fetched-but-undispatched instructions are discarded without being
        // counted as squashed (they never entered the window); the
        // fetched-vs-dispatched gap in the statistics accounts for them.
        self.fetch_buffer.clear();

        match &mut self.backend {
            Backend::Lsq(lsq) => lsq.squash_after(survivor),
            Backend::SfcMdt { sfc, .. } => {
                self.store_fifo.squash_after(survivor);
                // "When a full pipeline flush occurs the memory unit simply
                // flushes the SFC ... when a partial pipeline flush occurs
                // the memory unit cannot flush the SFC, because the pipeline
                // still contains completed stores that were not flushed and
                // have not been retired" (§2.3).
                // A store writes the SFC when it executes; any surviving
                // store that has begun executing may have live SFC data
                // (bypassed stores skip the SFC and commit directly).
                let surviving_completed_store = self.rob.iter().any(|e| {
                    e.instr.is_store()
                        && !e.bypassed
                        && matches!(e.state, InstrState::Executing | InstrState::Completed)
                });
                if surviving_completed_store {
                    sfc.on_partial_flush(survivor, SeqNum(self.next_seq.saturating_sub(1)));
                } else {
                    sfc.on_full_flush();
                }
                // The MDT intentionally ignores flushes (§2.2).
            }
        }

        self.fetch_pc = resume_pc;
        self.on_correct_path = resume_cursor.is_some();
        if let Some(c) = resume_cursor {
            self.trace_cursor = c;
        }
        self.fetch_halted = false;
        self.fetch_stall_until = self.fetch_stall_until.max(self.cycle + penalty);
        squashed.clear();
        self.squash_scratch = squashed;
        self.debug_check_filter_census();
    }

    // --- Retire -----------------------------------------------------------

    fn retire(&mut self) -> Result<(), SimError> {
        for _ in 0..self.config.width {
            let Some(head) = self.rob.head() else { break };
            if head.state != InstrState::Completed {
                break;
            }
            let e = self.rob.pop_head().expect("head checked");
            self.log(|| format!("retire   {} pc={} `{}`", e.seq, e.pc, e.instr));
            self.validate(&e)?;
            if self.config.pipeview {
                if self.pipe_records.len() == PIPEVIEW_CAPACITY {
                    self.pipe_records.remove(0);
                }
                self.pipe_records.push(PipeRecord {
                    seq: e.seq.0,
                    pc: e.pc,
                    instr: e.instr.to_string(),
                    dispatched: e.dispatched_cycle,
                    issued: e.issued_cycle,
                    completed: e.completed_cycle,
                    retired: self.cycle,
                    replayed: e.replayed,
                    bypassed: e.bypassed,
                });
            }

            if let Some(d) = e.dest {
                self.renamer.retire(d);
            }

            if let Instr::Branch { .. } = e.instr {
                let actual_taken = e.actual_next_pc.expect("resolved") != e.pc + 1;
                let predicted_taken = e.predicted_next_pc != e.pc + 1;
                self.gshare
                    .update(e.pc, actual_taken, predicted_taken, e.history_snapshot);
                self.stats.branches_retired += 1;
                if actual_taken != predicted_taken {
                    self.stats.branch_mispredicts += 1;
                }
            }

            if e.instr.is_store() {
                let (access, value) = e.mem.expect("completed store has an access");
                self.mem.write(access, value);
                let _ = self.hierarchy.access_data(access.addr());
                match &mut self.backend {
                    Backend::Lsq(lsq) => {
                        let _ = lsq.store_retire(e.seq);
                    }
                    Backend::SfcMdt { sfc, mdt } => {
                        self.store_fifo
                            .pop_retired(e.seq)
                            .expect("retiring store is the FIFO head");
                        sfc.on_store_retire(e.seq, access);
                        mdt.on_store_retire(e.seq, access);
                        if e.filter_counted {
                            let bucket = (access.addr().word_index() as usize)
                                & (self.store_granule_filter.len() - 1);
                            self.store_granule_filter[bucket] -= 1;
                        }
                    }
                }
                self.stats.retired_stores += 1;
            } else if e.instr.is_load() {
                let (access, _) = e.mem.expect("completed load has an access");
                match &mut self.backend {
                    Backend::Lsq(lsq) => lsq.load_retire(e.seq),
                    Backend::SfcMdt { mdt, .. } => {
                        mdt.on_load_retire(e.seq, access);
                    }
                }
                self.stats.retired_loads += 1;
            }

            self.stats.retired += 1;
            self.last_retire_cycle = self.cycle;

            if matches!(e.instr, Instr::Halt) || self.stats.retired >= self.target_retired {
                self.halted = true;
                self.stats.cycles = self.cycle;
                self.finalize_stats();
                break;
            }
        }
        Ok(())
    }

    fn validate(&self, e: &InFlight) -> Result<(), SimError> {
        let Some(t) = e.trace_index else {
            return Err(SimError::Validation(format!(
                "wrong-path instruction retired: seq {} pc {} `{}`",
                e.seq, e.pc, e.instr
            )));
        };
        if t != self.stats.retired {
            return Err(SimError::Validation(format!(
                "retirement order diverged: trace index {} at retirement {}",
                t, self.stats.retired
            )));
        }
        let rec = self
            .trace
            .get(t)
            .ok_or_else(|| SimError::Validation(format!("trace index {t} out of range")))?;
        if rec.pc != e.pc {
            return Err(SimError::Validation(format!(
                "pc mismatch at trace {t}: expected {}, retired {}",
                rec.pc, e.pc
            )));
        }
        if let Some((reg, expect)) = rec.reg_write {
            if e.result != expect {
                return Err(SimError::Validation(format!(
                    "wrong result at pc {} (trace {t}): {} should be {:#x}, got {:#x} \
                     [instr `{}`]",
                    e.pc, reg, expect, e.result, e.instr
                )));
            }
        }
        if let Some((acc, expect)) = rec.mem_load {
            let (got_acc, got_val) = e.mem.ok_or_else(|| {
                SimError::Validation(format!("load at pc {} retired without executing", e.pc))
            })?;
            if got_acc != acc || got_val != expect {
                return Err(SimError::Validation(format!(
                    "wrong load at pc {} (trace {t}): expected {acc}={expect:#x}, \
                     got {got_acc}={got_val:#x}",
                    e.pc
                )));
            }
        }
        if let Some((acc, expect)) = rec.mem_store {
            let (got_acc, got_val) = e.mem.ok_or_else(|| {
                SimError::Validation(format!("store at pc {} retired without executing", e.pc))
            })?;
            let bytes = acc.size().bytes();
            let mask = if bytes == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * bytes)) - 1
            };
            if got_acc != acc || (got_val & mask) != expect {
                return Err(SimError::Validation(format!(
                    "wrong store at pc {} (trace {t}): expected {acc}={expect:#x}, \
                     got {got_acc}={:#x}",
                    e.pc,
                    got_val & mask
                )));
            }
        }
        if e.instr.is_control() {
            let actual = e.actual_next_pc.expect("resolved control");
            if actual != rec.next_pc {
                return Err(SimError::Validation(format!(
                    "wrong branch outcome at pc {} (trace {t}): expected next {}, got {}",
                    e.pc, rec.next_pc, actual
                )));
            }
        }
        Ok(())
    }
}
