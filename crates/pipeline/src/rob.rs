//! The reorder buffer and the in-flight instruction record.

use std::collections::VecDeque;

use aim_isa::Instr;
use aim_predictor::DepTag;
use aim_types::{MemAccess, SeqNum};

use crate::rename::{PhysReg, RenameDest};

/// Lifecycle of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrState {
    /// In the scheduling window, waiting for operands / dependence tag.
    Waiting,
    /// Issued; executing on a function unit.
    Executing,
    /// Execution finished; result broadcast; awaiting retirement.
    Completed,
}

/// One in-flight instruction: the union of its ROB, scheduler and payload
/// state.
#[derive(Debug, Clone)]
pub struct InFlight {
    /// Dense, monotonically increasing dispatch sequence number.
    pub seq: SeqNum,
    /// Program counter (instruction index).
    pub pc: u64,
    /// The decoded instruction.
    pub instr: Instr,
    /// Position in the golden trace, if fetched on the correct path.
    pub trace_index: Option<u64>,
    /// The next PC fetch assumed after this instruction.
    pub predicted_next_pc: u64,
    /// Renamed destination, if the instruction writes a register.
    pub dest: Option<RenameDest>,
    /// Renamed sources (physical registers to wait on).
    pub srcs: [Option<PhysReg>; 2],
    /// Dependence tag this instruction must consume before issue.
    pub dep_consumes: Option<DepTag>,
    /// Dependence tag this instruction produces at successful completion.
    pub dep_produces: Option<DepTag>,
    /// Current pipeline state.
    pub state: InstrState,
    /// Result value (dest write, or link value).
    pub result: u64,
    /// Resolved memory access and its data (loads: loaded value; stores:
    /// store data).
    pub mem: Option<(MemAccess, u64)>,
    /// Resolved next PC (control instructions, at completion).
    pub actual_next_pc: Option<u64>,
    /// Memory instruction previously dropped on a structural conflict or
    /// corruption; eligible for the ROB-head bypass.
    pub replayed: bool,
    /// Executed via the ROB-head bypass (skipped the SFC/MDT).
    pub bypassed: bool,
    /// Stall bit (§2.4.3): sleeping until an SFC/MDT entry is freed. Holds
    /// the free-event counter value at which the instruction may wake.
    pub stall_until_free_event: Option<u64>,
    /// Speculative global branch history at fetch, before this instruction's
    /// own prediction; recovery rolls the predictor back to it.
    pub history_snapshot: u64,
    /// Cycle the instruction entered the ROB (pipeline viewer).
    pub dispatched_cycle: u64,
    /// Cycle the latest execution pass began (pipeline viewer).
    pub issued_cycle: u64,
    /// Cycle the result was broadcast (pipeline viewer).
    pub completed_cycle: u64,
    /// Store bookkeeping for the §4 MDT search filter: still counted in the
    /// unexecuted-store census.
    pub counted_unexecuted: bool,
    /// Store bookkeeping: this store incremented the executed-store granule
    /// filter and must decrement it at retire or squash.
    pub filter_counted: bool,
}

impl InFlight {
    /// Creates a freshly dispatched record.
    pub fn new(seq: SeqNum, pc: u64, instr: Instr) -> InFlight {
        InFlight {
            seq,
            pc,
            instr,
            trace_index: None,
            predicted_next_pc: pc + 1,
            dest: None,
            srcs: [None, None],
            dep_consumes: None,
            dep_produces: None,
            state: InstrState::Waiting,
            result: 0,
            mem: None,
            actual_next_pc: None,
            replayed: false,
            bypassed: false,
            stall_until_free_event: None,
            history_snapshot: 0,
            dispatched_cycle: 0,
            issued_cycle: 0,
            completed_cycle: 0,
            counted_unexecuted: false,
            filter_counted: false,
        }
    }

    /// The next PC this instruction actually leads to, as far as is known:
    /// resolved control flow if completed, otherwise the predicted path.
    pub fn known_next_pc(&self) -> u64 {
        self.actual_next_pc.unwrap_or(self.predicted_next_pc)
    }
}

/// The reorder buffer: in-flight instructions in dispatch order.
///
/// Sequence numbers are monotonically increasing but not dense across
/// flushes, so lookup is by binary search.
///
/// # Examples
///
/// ```
/// use aim_isa::Instr;
/// use aim_pipeline::{InFlight, Rob};
/// use aim_types::SeqNum;
///
/// let mut rob = Rob::new(8);
/// rob.push(InFlight::new(SeqNum(1), 0, Instr::Nop));
/// rob.push(InFlight::new(SeqNum(2), 1, Instr::Halt));
/// assert_eq!(rob.head().unwrap().seq, SeqNum(1));
/// let squashed = rob.squash_after(SeqNum(1));
/// assert_eq!(squashed.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Rob {
    entries: VecDeque<InFlight>,
    capacity: usize,
}

impl Rob {
    /// Creates an empty ROB with `capacity` entries.
    pub fn new(capacity: usize) -> Rob {
        Rob {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ROB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether another instruction can dispatch.
    pub fn has_room(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Appends a newly dispatched instruction.
    ///
    /// # Panics
    ///
    /// Panics if full or out of order.
    pub fn push(&mut self, entry: InFlight) {
        assert!(self.has_room(), "ROB overflow");
        if let Some(tail) = self.entries.back() {
            assert!(tail.seq < entry.seq, "ROB dispatch out of order");
        }
        self.entries.push_back(entry);
    }

    /// The oldest in-flight instruction.
    pub fn head(&self) -> Option<&InFlight> {
        self.entries.front()
    }

    /// Pops the head at retirement.
    pub fn pop_head(&mut self) -> Option<InFlight> {
        self.entries.pop_front()
    }

    fn index_of(&self, seq: SeqNum) -> Option<usize> {
        self.entries.binary_search_by_key(&seq, |e| e.seq).ok()
    }

    /// Immutable lookup by sequence number.
    pub fn get(&self, seq: SeqNum) -> Option<&InFlight> {
        self.index_of(seq).map(|i| &self.entries[i])
    }

    /// Mutable lookup by sequence number.
    pub fn get_mut(&mut self, seq: SeqNum) -> Option<&mut InFlight> {
        self.index_of(seq).map(move |i| &mut self.entries[i])
    }

    /// The oldest instruction younger than `survivor` (the first to be
    /// squashed by a flush after `survivor`).
    pub fn first_after(&self, survivor: SeqNum) -> Option<&InFlight> {
        let idx = self.entries.partition_point(|e| e.seq <= survivor);
        self.entries.get(idx)
    }

    /// Removes and returns all instructions younger than `survivor`,
    /// youngest first (the order walk-back recovery needs).
    pub fn squash_after(&mut self, survivor: SeqNum) -> Vec<InFlight> {
        let mut squashed = Vec::new();
        self.squash_after_into(survivor, &mut squashed);
        squashed
    }

    /// Like [`Rob::squash_after`], but fills a caller-provided buffer
    /// (cleared first) so the recovery hot path can reuse its allocation
    /// across flushes.
    pub fn squash_after_into(&mut self, survivor: SeqNum, out: &mut Vec<InFlight>) {
        out.clear();
        while matches!(self.entries.back(), Some(e) if e.seq > survivor) {
            out.push(self.entries.pop_back().expect("back checked"));
        }
    }

    /// Iterates over in-flight instructions, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &InFlight> {
        self.entries.iter()
    }

    /// Iterates mutably, oldest first.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut InFlight> {
        self.entries.iter_mut()
    }

    /// The sequence number of the oldest in-flight instruction; used as the
    /// retirement floor for SFC/MDT stale-entry reclamation. When empty, the
    /// floor is `next_seq` (everything older is done).
    pub fn floor(&self, next_seq: SeqNum) -> SeqNum {
        self.entries.front().map_or(next_seq, |e| e.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> InFlight {
        InFlight::new(SeqNum(seq), seq, Instr::Nop)
    }

    #[test]
    fn push_pop_fifo() {
        let mut rob = Rob::new(4);
        rob.push(entry(1));
        rob.push(entry(2));
        assert_eq!(rob.len(), 2);
        assert_eq!(rob.head().unwrap().seq, SeqNum(1));
        assert_eq!(rob.pop_head().unwrap().seq, SeqNum(1));
        assert_eq!(rob.head().unwrap().seq, SeqNum(2));
    }

    #[test]
    fn capacity_gates() {
        let mut rob = Rob::new(2);
        rob.push(entry(1));
        rob.push(entry(2));
        assert!(!rob.has_room());
    }

    #[test]
    fn lookup_with_sparse_seqs() {
        let mut rob = Rob::new(8);
        for s in [1, 5, 9, 20] {
            rob.push(entry(s));
        }
        assert_eq!(rob.get(SeqNum(9)).unwrap().pc, 9);
        assert!(rob.get(SeqNum(10)).is_none());
        rob.get_mut(SeqNum(5)).unwrap().result = 42;
        assert_eq!(rob.get(SeqNum(5)).unwrap().result, 42);
    }

    #[test]
    fn first_after_finds_oldest_squash_candidate() {
        let mut rob = Rob::new(8);
        for s in [1, 5, 9, 20] {
            rob.push(entry(s));
        }
        assert_eq!(rob.first_after(SeqNum(5)).unwrap().seq, SeqNum(9));
        assert_eq!(rob.first_after(SeqNum(4)).unwrap().seq, SeqNum(5));
        assert!(rob.first_after(SeqNum(20)).is_none());
    }

    #[test]
    fn squash_returns_youngest_first() {
        let mut rob = Rob::new(8);
        for s in [1, 5, 9, 20] {
            rob.push(entry(s));
        }
        let squashed = rob.squash_after(SeqNum(5));
        let seqs: Vec<u64> = squashed.iter().map(|e| e.seq.0).collect();
        assert_eq!(seqs, vec![20, 9]);
        assert_eq!(rob.len(), 2);
    }

    #[test]
    fn floor_tracks_head() {
        let mut rob = Rob::new(4);
        assert_eq!(rob.floor(SeqNum(7)), SeqNum(7));
        rob.push(entry(3));
        assert_eq!(rob.floor(SeqNum(7)), SeqNum(3));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_push_panics() {
        let mut rob = Rob::new(4);
        rob.push(entry(5));
        rob.push(entry(3));
    }
}
