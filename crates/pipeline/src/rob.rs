//! The reorder buffer and the in-flight instruction record.

use std::collections::VecDeque;

use aim_isa::Instr;
use aim_predictor::DepTag;
use aim_types::{MemAccess, SeqNum};

use crate::rename::{PhysReg, RenameDest};

/// Lifecycle of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrState {
    /// In the scheduling window, waiting for operands / dependence tag.
    Waiting,
    /// Issued; executing on a function unit.
    Executing,
    /// Execution finished; result broadcast; awaiting retirement.
    Completed,
}

/// One in-flight instruction: the union of its ROB, scheduler and payload
/// state.
#[derive(Debug, Clone)]
pub struct InFlight {
    /// Dense, monotonically increasing dispatch sequence number.
    pub seq: SeqNum,
    /// Program counter (instruction index).
    pub pc: u64,
    /// The decoded instruction.
    pub instr: Instr,
    /// Position in the golden trace, if fetched on the correct path.
    pub trace_index: Option<u64>,
    /// The next PC fetch assumed after this instruction.
    pub predicted_next_pc: u64,
    /// Renamed destination, if the instruction writes a register.
    pub dest: Option<RenameDest>,
    /// Renamed sources (physical registers to wait on).
    pub srcs: [Option<PhysReg>; 2],
    /// Dependence tag this instruction must consume before issue.
    pub dep_consumes: Option<DepTag>,
    /// Dependence tag this instruction produces at successful completion.
    pub dep_produces: Option<DepTag>,
    /// Current pipeline state.
    pub state: InstrState,
    /// Result value (dest write, or link value).
    pub result: u64,
    /// Resolved memory access and its data (loads: loaded value; stores:
    /// store data).
    pub mem: Option<(MemAccess, u64)>,
    /// Resolved next PC (control instructions, at completion).
    pub actual_next_pc: Option<u64>,
    /// Memory instruction previously dropped on a structural conflict or
    /// corruption; eligible for the ROB-head bypass.
    pub replayed: bool,
    /// Executed via the ROB-head bypass (skipped the SFC/MDT).
    pub bypassed: bool,
    /// Stall bit (§2.4.3): sleeping until an SFC/MDT entry is freed. Holds
    /// the free-event counter value at which the instruction may wake.
    pub stall_until_free_event: Option<u64>,
    /// Speculative global branch history at fetch, before this instruction's
    /// own prediction; recovery rolls the predictor back to it.
    pub history_snapshot: u64,
    /// Cycle the instruction entered the ROB (pipeline viewer).
    pub dispatched_cycle: u64,
    /// Cycle the latest execution pass began (pipeline viewer).
    pub issued_cycle: u64,
    /// Cycle the result was broadcast (pipeline viewer).
    pub completed_cycle: u64,
    /// Store bookkeeping for the §4 MDT search filter: still counted in the
    /// unexecuted-store census.
    pub counted_unexecuted: bool,
    /// Store bookkeeping: this store incremented the executed-store granule
    /// filter and must decrement it at retire or squash.
    pub filter_counted: bool,
}

impl InFlight {
    /// Creates a freshly dispatched record.
    pub fn new(seq: SeqNum, pc: u64, instr: Instr) -> InFlight {
        InFlight {
            seq,
            pc,
            instr,
            trace_index: None,
            predicted_next_pc: pc + 1,
            dest: None,
            srcs: [None, None],
            dep_consumes: None,
            dep_produces: None,
            state: InstrState::Waiting,
            result: 0,
            mem: None,
            actual_next_pc: None,
            replayed: false,
            bypassed: false,
            stall_until_free_event: None,
            history_snapshot: 0,
            dispatched_cycle: 0,
            issued_cycle: 0,
            completed_cycle: 0,
            counted_unexecuted: false,
            filter_counted: false,
        }
    }

    /// The next PC this instruction actually leads to, as far as is known:
    /// resolved control flow if completed, otherwise the predicted path.
    pub fn known_next_pc(&self) -> u64 {
        self.actual_next_pc.unwrap_or(self.predicted_next_pc)
    }
}

/// The reorder buffer: in-flight instructions in dispatch order.
///
/// Sequence numbers are monotonically increasing but not dense across
/// flushes, so lookup is by binary search.
///
/// # Examples
///
/// ```
/// use aim_isa::Instr;
/// use aim_pipeline::{InFlight, Rob};
/// use aim_types::SeqNum;
///
/// let mut rob = Rob::new(8);
/// rob.push(InFlight::new(SeqNum(1), 0, Instr::Nop));
/// rob.push(InFlight::new(SeqNum(2), 1, Instr::Halt));
/// assert_eq!(rob.head().unwrap().seq, SeqNum(1));
/// let squashed = rob.squash_after(SeqNum(1));
/// assert_eq!(squashed.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Rob {
    entries: VecDeque<InFlight>,
    capacity: usize,
    /// Count of entries ever popped from the head; the offset between an
    /// entry's queue position and its [`Rob::stable_of`] position.
    base: u64,
}

impl Rob {
    /// Creates an empty ROB with `capacity` entries.
    pub fn new(capacity: usize) -> Rob {
        Rob {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            base: 0,
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ROB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether another instruction can dispatch.
    pub fn has_room(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Appends a newly dispatched instruction.
    ///
    /// # Panics
    ///
    /// Panics if full or out of order.
    pub fn push(&mut self, entry: InFlight) {
        assert!(self.has_room(), "ROB overflow");
        if let Some(tail) = self.entries.back() {
            assert!(tail.seq < entry.seq, "ROB dispatch out of order");
        }
        self.entries.push_back(entry);
    }

    /// The oldest in-flight instruction.
    pub fn head(&self) -> Option<&InFlight> {
        self.entries.front()
    }

    /// Pops the head at retirement.
    pub fn pop_head(&mut self) -> Option<InFlight> {
        let popped = self.entries.pop_front();
        self.base += popped.is_some() as u64;
        popped
    }

    /// The *stable position* of the entry at queue position `idx`: its queue
    /// position plus the number of entries ever retired. Unlike a raw queue
    /// position it survives head pops, and unlike a sequence number it maps
    /// back to a queue position with one subtraction — the scheduler's
    /// wakeup list holds these. Stable positions of live entries increase
    /// monotonically in dispatch order; a squash frees the largest ones for
    /// reuse (see [`Rob::stable_end`]).
    #[inline]
    pub fn stable_of(&self, idx: usize) -> u64 {
        self.base + idx as u64
    }

    /// Converts a live entry's stable position back to its current queue
    /// position (for [`Rob::get_at`]).
    #[inline]
    pub fn index_of_stable(&self, stable: u64) -> usize {
        debug_assert!(stable >= self.base, "stable position already retired");
        (stable - self.base) as usize
    }

    /// One past the largest live stable position. After a squash, any
    /// recorded stable position `>= stable_end()` refers to a removed entry.
    #[inline]
    pub fn stable_end(&self) -> u64 {
        self.base + self.entries.len() as u64
    }

    pub(crate) fn index_of(&self, seq: SeqNum) -> Option<usize> {
        let head = self.entries.front()?.seq;
        let tail = self.entries.back().expect("front exists").seq;
        if seq < head || seq > tail {
            return None;
        }
        // Sequence numbers are strictly increasing, so an entry's index is
        // bounded by its seq distance from either end of the queue. With no
        // squash-induced gaps in between (the common case) the upper bound
        // is exact and the lookup is a single probe.
        let len = self.entries.len();
        let mut hi = ((seq.0 - head.0) as usize).min(len - 1);
        if self.entries[hi].seq == seq {
            return Some(hi);
        }
        let mut lo = (len - 1).saturating_sub((tail.0 - seq.0) as usize);
        // entries[hi] was just ruled out; search the remaining [lo, hi).
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.entries[mid].seq.cmp(&seq) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }

    /// Immutable lookup by sequence number.
    pub fn get(&self, seq: SeqNum) -> Option<&InFlight> {
        self.index_of(seq).map(|i| &self.entries[i])
    }

    /// Mutable lookup by sequence number.
    pub fn get_mut(&mut self, seq: SeqNum) -> Option<&mut InFlight> {
        self.index_of(seq).map(move |i| &mut self.entries[i])
    }

    /// Direct lookup by queue position (as yielded by
    /// [`Rob::iter_from_seq`]). Positions are stable only while no
    /// push/pop/squash intervenes; the execute stage relies on this to look
    /// an instruction up once per issue and reuse the position thereafter.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn get_at(&self, idx: usize) -> &InFlight {
        &self.entries[idx]
    }

    /// Mutable counterpart of [`Rob::get_at`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn get_at_mut(&mut self, idx: usize) -> &mut InFlight {
        &mut self.entries[idx]
    }

    /// The oldest instruction younger than `survivor` (the first to be
    /// squashed by a flush after `survivor`).
    pub fn first_after(&self, survivor: SeqNum) -> Option<&InFlight> {
        let idx = self.entries.partition_point(|e| e.seq <= survivor);
        self.entries.get(idx)
    }

    /// Removes and returns all instructions younger than `survivor`,
    /// youngest first (the order walk-back recovery needs).
    pub fn squash_after(&mut self, survivor: SeqNum) -> Vec<InFlight> {
        let mut squashed = Vec::new();
        self.squash_after_into(survivor, &mut squashed);
        squashed
    }

    /// Like [`Rob::squash_after`], but fills a caller-provided buffer
    /// (cleared first) so the recovery hot path can reuse its allocation
    /// across flushes.
    pub fn squash_after_into(&mut self, survivor: SeqNum, out: &mut Vec<InFlight>) {
        out.clear();
        while matches!(self.entries.back(), Some(e) if e.seq > survivor) {
            out.push(self.entries.pop_back().expect("back checked"));
        }
    }

    /// Iterates over in-flight instructions, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &InFlight> {
        self.entries.iter()
    }

    /// Iterates oldest-first over the suffix of instructions with
    /// `seq >= bound`, yielding each entry's queue position alongside it.
    /// With `bound = SeqNum(0)` this covers the whole buffer; the issue
    /// stage uses it to skip the long already-issued prefix and to capture
    /// stable positions for [`Rob::get_at`] during the issue drain.
    pub fn iter_from_seq(&self, bound: SeqNum) -> impl Iterator<Item = (usize, &InFlight)> {
        let start = self.entries.partition_point(|e| e.seq < bound);
        self.entries
            .range(start..)
            .enumerate()
            .map(move |(i, e)| (start + i, e))
    }

    /// Iterates mutably, oldest first.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut InFlight> {
        self.entries.iter_mut()
    }

    /// The sequence number of the oldest in-flight instruction; used as the
    /// retirement floor for SFC/MDT stale-entry reclamation. When empty, the
    /// floor is `next_seq` (everything older is done).
    pub fn floor(&self, next_seq: SeqNum) -> SeqNum {
        self.entries.front().map_or(next_seq, |e| e.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> InFlight {
        InFlight::new(SeqNum(seq), seq, Instr::Nop)
    }

    #[test]
    fn push_pop_fifo() {
        let mut rob = Rob::new(4);
        rob.push(entry(1));
        rob.push(entry(2));
        assert_eq!(rob.len(), 2);
        assert_eq!(rob.head().unwrap().seq, SeqNum(1));
        assert_eq!(rob.pop_head().unwrap().seq, SeqNum(1));
        assert_eq!(rob.head().unwrap().seq, SeqNum(2));
    }

    #[test]
    fn capacity_gates() {
        let mut rob = Rob::new(2);
        rob.push(entry(1));
        rob.push(entry(2));
        assert!(!rob.has_room());
    }

    #[test]
    fn lookup_with_sparse_seqs() {
        let mut rob = Rob::new(8);
        for s in [1, 5, 9, 20] {
            rob.push(entry(s));
        }
        assert_eq!(rob.get(SeqNum(9)).unwrap().pc, 9);
        assert!(rob.get(SeqNum(10)).is_none());
        rob.get_mut(SeqNum(5)).unwrap().result = 42;
        assert_eq!(rob.get(SeqNum(5)).unwrap().result, 42);
    }

    #[test]
    fn lookup_hits_every_entry_across_gap_patterns() {
        // Exercise the bounded-range fast path (dense prefixes) and the
        // fallback search (gaps on either side of the probed seq).
        for gaps in [
            vec![1, 2, 3, 4],
            vec![1, 2, 10, 11],
            vec![1, 8, 9, 10],
            vec![2, 30, 31, 90],
        ] {
            let mut rob = Rob::new(8);
            for &s in &gaps {
                rob.push(entry(s));
            }
            for &s in &gaps {
                assert_eq!(rob.get(SeqNum(s)).unwrap().seq, SeqNum(s), "{gaps:?}");
            }
            // Every absent seq inside and outside the window misses.
            for s in 0..=gaps.last().unwrap() + 2 {
                if !gaps.contains(&s) {
                    assert!(rob.get(SeqNum(s)).is_none(), "{gaps:?} found absent {s}");
                }
            }
        }
    }

    #[test]
    fn lookup_survives_retire_and_squash_churn() {
        // Head removals shift indices away from the seq-distance bound;
        // tail squashes plus redispatch reintroduce gaps at the young end.
        let mut rob = Rob::new(8);
        for s in [1, 2, 3, 4, 5] {
            rob.push(entry(s));
        }
        rob.pop_head();
        rob.pop_head(); // head is now seq 3 at index 0
        assert_eq!(rob.get(SeqNum(5)).unwrap().seq, SeqNum(5));
        assert!(rob.get(SeqNum(2)).is_none());
        rob.squash_after(SeqNum(3));
        rob.push(entry(9)); // [3, 9]
        assert_eq!(rob.get(SeqNum(9)).unwrap().seq, SeqNum(9));
        assert_eq!(rob.get(SeqNum(3)).unwrap().seq, SeqNum(3));
        assert!(rob.get(SeqNum(4)).is_none());
        assert!(rob.get(SeqNum(10)).is_none());
    }

    #[test]
    fn first_after_finds_oldest_squash_candidate() {
        let mut rob = Rob::new(8);
        for s in [1, 5, 9, 20] {
            rob.push(entry(s));
        }
        assert_eq!(rob.first_after(SeqNum(5)).unwrap().seq, SeqNum(9));
        assert_eq!(rob.first_after(SeqNum(4)).unwrap().seq, SeqNum(5));
        assert!(rob.first_after(SeqNum(20)).is_none());
    }

    #[test]
    fn squash_returns_youngest_first() {
        let mut rob = Rob::new(8);
        for s in [1, 5, 9, 20] {
            rob.push(entry(s));
        }
        let squashed = rob.squash_after(SeqNum(5));
        let seqs: Vec<u64> = squashed.iter().map(|e| e.seq.0).collect();
        assert_eq!(seqs, vec![20, 9]);
        assert_eq!(rob.len(), 2);
    }

    #[test]
    fn floor_tracks_head() {
        let mut rob = Rob::new(4);
        assert_eq!(rob.floor(SeqNum(7)), SeqNum(7));
        rob.push(entry(3));
        assert_eq!(rob.floor(SeqNum(7)), SeqNum(3));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_push_panics() {
        let mut rob = Rob::new(4);
        rob.push(entry(5));
        rob.push(entry(3));
    }
}
