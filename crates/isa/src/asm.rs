//! A label-aware assembler for building [`Program`]s in Rust code.

use std::collections::HashMap;
use std::fmt;

use aim_types::{AccessSize, Addr};

use crate::instr::{AluOp, BranchCond, Instr, Reg};
use crate::Program;

/// Errors produced at [`Assembler::assemble`] time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch or jump referenced a label that was never defined.
    UnknownLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnknownLabel(l) => write!(f, "unknown label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum Slot {
    Done(Instr),
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        label: String,
    },
    Jump {
        label: String,
    },
    Jal {
        rd: Reg,
        label: String,
    },
}

/// Builds a [`Program`] instruction by instruction, resolving forward label
/// references at [`assemble`](Assembler::assemble) time.
///
/// # Examples
///
/// ```
/// use aim_isa::{Assembler, Reg};
///
/// let mut asm = Assembler::new();
/// asm.movi(Reg::new(1), 3);
/// asm.label("spin");
/// asm.subi(Reg::new(1), Reg::new(1), 1);
/// asm.bne(Reg::new(1), Reg::ZERO, "spin");
/// asm.halt();
/// let program = asm.assemble()?;
/// assert_eq!(program.len(), 4);
/// # Ok::<(), aim_isa::AsmError>(())
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    slots: Vec<Slot>,
    labels: HashMap<String, u64>,
    duplicate: Option<String>,
    data: Vec<(Addr, Vec<u8>)>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Current instruction index (where the next emitted instruction lands).
    pub fn here(&self) -> u64 {
        self.slots.len() as u64
    }

    /// Defines `name` at the current position.
    pub fn label(&mut self, name: &str) {
        if self.labels.insert(name.to_string(), self.here()).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(name.to_string());
        }
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instr) {
        self.slots.push(Slot::Done(instr));
    }

    /// Adds a region to the program's initial data image.
    pub fn data(&mut self, addr: Addr, bytes: Vec<u8>) {
        self.data.push((addr, bytes));
    }

    /// Adds a region of little-endian 64-bit words to the data image.
    pub fn data_words(&mut self, addr: Addr, words: &[u64]) {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.data.push((addr, bytes));
    }

    // --- ALU ---------------------------------------------------------------

    /// `rd = rs1 + rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 - rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 & rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::And,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 | rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Or,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 ^ rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Xor,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 * rs2` (low 64 bits).
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Mul,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 << rs2`.
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Sll,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = (rs1 < rs2) ? 1 : 0`, signed.
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Slt,
            rd,
            rs1,
            rs2,
        });
    }

    // --- ALU immediate -----------------------------------------------------

    /// `rd = rs1 + imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Instr::AluImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = rs1 - imm`.
    pub fn subi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Instr::AluImm {
            op: AluOp::Sub,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = rs1 & imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Instr::AluImm {
            op: AluOp::And,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = rs1 ^ imm`.
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Instr::AluImm {
            op: AluOp::Xor,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = rs1 << imm`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Instr::AluImm {
            op: AluOp::Sll,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = rs1 >> imm` (logical).
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Instr::AluImm {
            op: AluOp::Srl,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = rs1 * imm`.
    pub fn muli(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Instr::AluImm {
            op: AluOp::Mul,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = imm` (full 64-bit immediate).
    pub fn movi(&mut self, rd: Reg, imm: i64) {
        self.emit(Instr::MovImm { rd, imm });
    }

    /// `rd = rs` (register move; encoded as `rd = rs + 0`).
    pub fn mov(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    // --- Memory ------------------------------------------------------------

    /// `rd = zero_extend(mem[base + offset])`.
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i64, size: AccessSize) {
        self.emit(Instr::Load {
            rd,
            base,
            offset,
            size,
        });
    }

    /// 8-byte load.
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.load(rd, base, offset, AccessSize::Double);
    }

    /// 4-byte load.
    pub fn lw(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.load(rd, base, offset, AccessSize::Word);
    }

    /// 1-byte load.
    pub fn lb(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.load(rd, base, offset, AccessSize::Byte);
    }

    /// `mem[base + offset] = rs`.
    pub fn store(&mut self, rs: Reg, base: Reg, offset: i64, size: AccessSize) {
        self.emit(Instr::Store {
            rs,
            base,
            offset,
            size,
        });
    }

    /// 8-byte store.
    pub fn sd(&mut self, rs: Reg, base: Reg, offset: i64) {
        self.store(rs, base, offset, AccessSize::Double);
    }

    /// 4-byte store.
    pub fn sw(&mut self, rs: Reg, base: Reg, offset: i64) {
        self.store(rs, base, offset, AccessSize::Word);
    }

    /// 1-byte store.
    pub fn sb(&mut self, rs: Reg, base: Reg, offset: i64) {
        self.store(rs, base, offset, AccessSize::Byte);
    }

    // --- Control -----------------------------------------------------------

    /// Conditional branch to `label`.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: &str) {
        self.slots.push(Slot::Branch {
            cond,
            rs1,
            rs2,
            label: label.to_string(),
        });
    }

    /// Branch if equal.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchCond::Eq, rs1, rs2, label);
    }

    /// Branch if not equal.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchCond::Ne, rs1, rs2, label);
    }

    /// Branch if less than (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchCond::Lt, rs1, rs2, label);
    }

    /// Branch if greater than or equal (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchCond::Ge, rs1, rs2, label);
    }

    /// Branch if less than (unsigned).
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchCond::Ltu, rs1, rs2, label);
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: &str) {
        self.slots.push(Slot::Jump {
            label: label.to_string(),
        });
    }

    /// Jump-and-link to `label`.
    pub fn jal(&mut self, rd: Reg, label: &str) {
        self.slots.push(Slot::Jal {
            rd,
            label: label.to_string(),
        });
    }

    /// Indirect jump through `rs`.
    pub fn jr(&mut self, rs: Reg) {
        self.emit(Instr::Jr { rs });
    }

    /// Stop the machine.
    pub fn halt(&mut self) {
        self.emit(Instr::Halt);
    }

    /// Do-nothing instruction.
    pub fn nop(&mut self) {
        self.emit(Instr::Nop);
    }

    /// Resolves labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnknownLabel`] for unresolved references and
    /// [`AsmError::DuplicateLabel`] if any label was defined twice.
    pub fn assemble(self) -> Result<Program, AsmError> {
        if let Some(dup) = self.duplicate {
            return Err(AsmError::DuplicateLabel(dup));
        }
        let resolve = |label: &str| -> Result<u64, AsmError> {
            self.labels
                .get(label)
                .copied()
                .ok_or_else(|| AsmError::UnknownLabel(label.to_string()))
        };
        let mut instrs = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let instr = match slot {
                Slot::Done(i) => *i,
                Slot::Branch {
                    cond,
                    rs1,
                    rs2,
                    label,
                } => Instr::Branch {
                    cond: *cond,
                    rs1: *rs1,
                    rs2: *rs2,
                    target: resolve(label)?,
                },
                Slot::Jump { label } => Instr::Jump {
                    target: resolve(label)?,
                },
                Slot::Jal { rd, label } => Instr::Jal {
                    rd: *rd,
                    target: resolve(label)?,
                },
            };
            instrs.push(instr);
        }
        let mut program = Program::from_instrs(instrs);
        for (addr, bytes) in self.data {
            program.add_data(addr, bytes);
        }
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = Assembler::new();
        asm.label("start");
        asm.beq(r(1), r(2), "end"); // forward
        asm.jump("start"); // backward
        asm.label("end");
        asm.halt();
        let p = asm.assemble().unwrap();
        assert_eq!(
            p.instrs()[0],
            Instr::Branch {
                cond: BranchCond::Eq,
                rs1: r(1),
                rs2: r(2),
                target: 2
            }
        );
        assert_eq!(p.instrs()[1], Instr::Jump { target: 0 });
    }

    #[test]
    fn unknown_label_errors() {
        let mut asm = Assembler::new();
        asm.jump("nowhere");
        let err = asm.assemble().unwrap_err();
        assert_eq!(err, AsmError::UnknownLabel("nowhere".to_string()));
        assert!(err.to_string().contains("nowhere"));
    }

    #[test]
    fn duplicate_label_errors() {
        let mut asm = Assembler::new();
        asm.label("x");
        asm.nop();
        asm.label("x");
        asm.halt();
        assert_eq!(
            asm.assemble().unwrap_err(),
            AsmError::DuplicateLabel("x".to_string())
        );
    }

    #[test]
    fn data_words_little_endian() {
        let mut asm = Assembler::new();
        asm.halt();
        asm.data_words(Addr(0x100), &[0x0102_0304_0506_0708]);
        let p = asm.assemble().unwrap();
        let mem = p.build_memory();
        assert_eq!(mem.read_byte(Addr(0x100)), 0x08);
        assert_eq!(mem.read_byte(Addr(0x107)), 0x01);
    }

    #[test]
    fn mov_is_addi_zero() {
        let mut asm = Assembler::new();
        asm.mov(r(1), r(2));
        let p = asm.assemble().unwrap();
        assert_eq!(
            p.instrs()[0],
            Instr::AluImm {
                op: AluOp::Add,
                rd: r(1),
                rs1: r(2),
                imm: 0
            }
        );
    }

    #[test]
    fn jal_links_and_targets() {
        let mut asm = Assembler::new();
        asm.jal(r(31), "fn");
        asm.halt();
        asm.label("fn");
        asm.jr(r(31));
        let p = asm.assemble().unwrap();
        assert_eq!(
            p.instrs()[0],
            Instr::Jal {
                rd: r(31),
                target: 2
            }
        );
    }

    #[test]
    fn here_tracks_position() {
        let mut asm = Assembler::new();
        assert_eq!(asm.here(), 0);
        asm.nop();
        asm.nop();
        assert_eq!(asm.here(), 2);
    }
}
