//! Architectural retirement traces.

use aim_types::MemAccess;

use crate::instr::{Instr, Reg};

/// One retired instruction in the architectural (golden) execution.
///
/// The out-of-order pipeline compares every instruction it retires against
/// the corresponding record; any divergence is a simulator correctness bug
/// (e.g. a forwarding error the disambiguation hardware failed to catch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Dynamic instruction number (0-based retirement order).
    pub index: u64,
    /// Instruction index (program counter) of this instruction.
    pub pc: u64,
    /// The instruction itself.
    pub instr: Instr,
    /// Architectural register written, with the value.
    pub reg_write: Option<(Reg, u64)>,
    /// Memory written: access plus the stored value.
    pub mem_store: Option<(MemAccess, u64)>,
    /// Memory read: access plus the loaded value.
    pub mem_load: Option<(MemAccess, u64)>,
    /// The next program counter (branch/jump outcomes included).
    pub next_pc: u64,
}

impl TraceRecord {
    /// Whether this instruction redirected control flow (did not fall
    /// through to `pc + 1`). For a conditional branch this is its taken
    /// direction — the signal the branch predictor trains on during
    /// functional warm-up.
    pub fn taken(&self) -> bool {
        self.next_pc != self.pc + 1
    }
}

/// The golden in-order retirement trace of a program run.
///
/// # Examples
///
/// ```
/// use aim_isa::{Assembler, Interpreter};
///
/// let mut asm = Assembler::new();
/// asm.nop();
/// asm.halt();
/// let p = asm.assemble().unwrap();
/// let trace = Interpreter::new(&p).run(10).unwrap();
/// assert_eq!(trace.len(), 2);
/// assert!(trace.halted());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    halted: bool,
}

impl Trace {
    pub(crate) fn new() -> Trace {
        Trace::default()
    }

    pub(crate) fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    pub(crate) fn set_halted(&mut self) {
        self.halted = true;
    }

    /// Number of retired instructions (including the final `Halt`, if any).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no instructions were retired.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether the program reached `Halt` within the run's instruction budget.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The record for dynamic instruction `index`.
    pub fn get(&self, index: u64) -> Option<&TraceRecord> {
        self.records.get(index as usize)
    }

    /// All records in retirement order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_accumulates() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(TraceRecord {
            index: 0,
            pc: 0,
            instr: Instr::Nop,
            reg_write: None,
            mem_store: None,
            mem_load: None,
            next_pc: 1,
        });
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(0).unwrap().next_pc, 1);
        assert!(t.get(1).is_none());
        assert!(!t.halted());
        t.set_halted();
        assert!(t.halted());
    }

    #[test]
    fn taken_is_any_non_fallthrough() {
        let mut rec = TraceRecord {
            index: 0,
            pc: 10,
            instr: Instr::Nop,
            reg_write: None,
            mem_store: None,
            mem_load: None,
            next_pc: 11,
        };
        assert!(!rec.taken());
        rec.next_pc = 42;
        assert!(rec.taken());
    }
}
