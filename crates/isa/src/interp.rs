//! The architectural (in-order) interpreter.

use core::fmt;

use aim_mem::MainMemory;
use aim_types::{Addr, MemAccess, MisalignedAccess};

use crate::instr::{Instr, Reg};
use crate::trace::{Trace, TraceRecord};
use crate::Program;

/// Errors raised by architectural execution.
///
/// These indicate *program* bugs (a workload kernel computing a bad address),
/// not simulator bugs; workloads are required to be clean under the
/// interpreter before they are run on the out-of-order pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// The program counter left the instruction stream.
    PcOutOfRange {
        /// The offending program counter.
        pc: u64,
    },
    /// A load or store computed a misaligned effective address.
    Misaligned {
        /// The program counter of the access.
        pc: u64,
        /// Details of the misalignment.
        access: MisalignedAccess,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PcOutOfRange { pc } => write!(f, "pc {pc} out of range"),
            ExecError::Misaligned { pc, access } => write!(f, "at pc {pc}: {access}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The in-order architectural executor.
///
/// Runs a [`Program`] to completion (or an instruction budget), producing the
/// golden retirement [`Trace`]. Register `r0` always reads zero; writes to it
/// are discarded.
///
/// # Examples
///
/// ```
/// use aim_isa::{Assembler, Interpreter, Reg};
/// use aim_types::Addr;
///
/// let mut asm = Assembler::new();
/// asm.movi(Reg::new(1), 0x1000);
/// asm.movi(Reg::new(2), 42);
/// asm.sd(Reg::new(2), Reg::new(1), 0);
/// asm.ld(Reg::new(3), Reg::new(1), 0);
/// asm.halt();
/// let p = asm.assemble().unwrap();
///
/// let mut interp = Interpreter::new(&p);
/// interp.run(100).unwrap();
/// assert_eq!(interp.reg(Reg::new(3)), 42);
/// ```
#[derive(Debug)]
pub struct Interpreter<'a> {
    program: &'a Program,
    regs: [u64; Reg::COUNT],
    pc: u64,
    mem: MainMemory,
    halted: bool,
    executed: u64,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter at `pc = 0` with memory initialized from the
    /// program's data image.
    pub fn new(program: &'a Program) -> Interpreter<'a> {
        Interpreter {
            program,
            regs: [0; Reg::COUNT],
            pc: 0,
            mem: program.build_memory(),
            halted: false,
            executed: 0,
        }
    }

    /// Current value of `r`.
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index() as usize]
        }
    }

    /// Sets `r` (writes to `r0` are ignored). Useful for test setup.
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = value;
        }
    }

    /// Current program counter (instruction index).
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Whether `Halt` has been executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// The architectural memory.
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }

    /// Mutable access to the architectural memory (test setup).
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.mem
    }

    /// Executes one instruction, returning its trace record, or `Ok(None)` if
    /// the machine has already halted.
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn step(&mut self) -> Result<Option<TraceRecord>, ExecError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let instr = *self
            .program
            .instr(pc)
            .ok_or(ExecError::PcOutOfRange { pc })?;

        let mut record = TraceRecord {
            index: self.executed,
            pc,
            instr,
            reg_write: None,
            mem_store: None,
            mem_load: None,
            next_pc: pc + 1,
        };

        let mem_access = |base: Reg, offset: i64, size, regs: &Self| {
            let addr = Addr(regs.reg(base).wrapping_add(offset as u64));
            MemAccess::new(addr, size).map_err(|access| ExecError::Misaligned { pc, access })
        };

        match instr {
            Instr::Alu { op, rd, rs1, rs2 } => {
                let v = op.eval(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
                if !rd.is_zero() {
                    record.reg_write = Some((rd, v));
                }
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let v = op.eval(self.reg(rs1), imm as u64);
                self.set_reg(rd, v);
                if !rd.is_zero() {
                    record.reg_write = Some((rd, v));
                }
            }
            Instr::MovImm { rd, imm } => {
                self.set_reg(rd, imm as u64);
                if !rd.is_zero() {
                    record.reg_write = Some((rd, imm as u64));
                }
            }
            Instr::Load {
                rd,
                base,
                offset,
                size,
            } => {
                let access = mem_access(base, offset, size, self)?;
                let v = self.mem.read(access);
                self.set_reg(rd, v);
                record.mem_load = Some((access, v));
                if !rd.is_zero() {
                    record.reg_write = Some((rd, v));
                }
            }
            Instr::Store {
                rs,
                base,
                offset,
                size,
            } => {
                let access = mem_access(base, offset, size, self)?;
                let v = self.reg(rs);
                self.mem.write(access, v);
                record.mem_store = Some((access, self.mem.read(access)));
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                if cond.eval(self.reg(rs1), self.reg(rs2)) {
                    record.next_pc = target;
                }
            }
            Instr::Jump { target } => {
                record.next_pc = target;
            }
            Instr::Jal { rd, target } => {
                let link = pc + 1;
                self.set_reg(rd, link);
                if !rd.is_zero() {
                    record.reg_write = Some((rd, link));
                }
                record.next_pc = target;
            }
            Instr::Jr { rs } => {
                record.next_pc = self.reg(rs);
            }
            Instr::Halt => {
                self.halted = true;
                record.next_pc = pc;
            }
            Instr::Nop => {}
        }

        self.pc = record.next_pc;
        self.executed += 1;
        Ok(Some(record))
    }

    /// Runs until `Halt` or `max_instrs` instructions, collecting the trace.
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn run(&mut self, max_instrs: u64) -> Result<Trace, ExecError> {
        let mut trace = Trace::new();
        while self.executed < max_instrs {
            match self.step()? {
                Some(record) => {
                    trace.push(record);
                    if self.halted {
                        trace.set_halted();
                        break;
                    }
                }
                None => {
                    trace.set_halted();
                    break;
                }
            }
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use aim_types::AccessSize;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn r0_reads_zero_and_ignores_writes() {
        let mut asm = Assembler::new();
        asm.movi(Reg::ZERO, 77);
        asm.add(r(1), Reg::ZERO, Reg::ZERO);
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut i = Interpreter::new(&p);
        i.run(10).unwrap();
        assert_eq!(i.reg(Reg::ZERO), 0);
        assert_eq!(i.reg(r(1)), 0);
    }

    #[test]
    fn loop_executes_correct_count() {
        let mut asm = Assembler::new();
        asm.movi(r(1), 10);
        asm.movi(r(2), 0);
        asm.label("l");
        asm.addi(r(2), r(2), 3);
        asm.subi(r(1), r(1), 1);
        asm.bne(r(1), Reg::ZERO, "l");
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut i = Interpreter::new(&p);
        let t = i.run(1000).unwrap();
        assert_eq!(i.reg(r(2)), 30);
        assert!(t.halted());
        // 2 setup + 10 * 3 loop body + halt
        assert_eq!(t.len(), 2 + 30 + 1);
    }

    #[test]
    fn store_then_load_roundtrip_subword() {
        let mut asm = Assembler::new();
        asm.movi(r(1), 0x2000);
        asm.movi(r(2), 0x1234_5678_9abc_def0u64 as i64);
        asm.sd(r(2), r(1), 0);
        asm.lb(r(3), r(1), 1);
        asm.lw(r(4), r(1), 4);
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut i = Interpreter::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.reg(r(3)), 0xde);
        assert_eq!(i.reg(r(4)), 0x1234_5678);
    }

    #[test]
    fn trace_records_loads_stores_and_next_pc() {
        let mut asm = Assembler::new();
        asm.movi(r(1), 0x100);
        asm.sw(r(1), r(1), 0);
        asm.lw(r(2), r(1), 0);
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = Interpreter::new(&p).run(100).unwrap();
        let store = t.get(1).unwrap();
        assert_eq!(store.mem_store.unwrap().1, 0x100);
        let load = t.get(2).unwrap();
        assert_eq!(load.mem_load.unwrap().1, 0x100);
        assert_eq!(load.reg_write, Some((r(2), 0x100)));
        let halt = t.get(3).unwrap();
        assert_eq!(halt.next_pc, halt.pc);
    }

    #[test]
    fn misaligned_access_raises() {
        let mut asm = Assembler::new();
        asm.movi(r(1), 0x101);
        asm.lw(r(2), r(1), 0);
        asm.halt();
        let p = asm.assemble().unwrap();
        let err = Interpreter::new(&p).run(10).unwrap_err();
        assert!(matches!(err, ExecError::Misaligned { pc: 1, .. }));
    }

    #[test]
    fn pc_out_of_range_raises() {
        let p = Program::from_instrs(vec![Instr::Nop]);
        let err = Interpreter::new(&p).run(10).unwrap_err();
        assert_eq!(err, ExecError::PcOutOfRange { pc: 1 });
    }

    #[test]
    fn jal_jr_call_return() {
        let mut asm = Assembler::new();
        asm.jal(r(31), "fn");
        asm.movi(r(1), 1);
        asm.halt();
        asm.label("fn");
        asm.movi(r(2), 2);
        asm.jr(r(31));
        let p = asm.assemble().unwrap();
        let mut i = Interpreter::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.reg(r(1)), 1);
        assert_eq!(i.reg(r(2)), 2);
    }

    #[test]
    fn run_respects_budget_without_halt() {
        let mut asm = Assembler::new();
        asm.label("spin");
        asm.jump("spin");
        let p = asm.assemble().unwrap();
        let mut i = Interpreter::new(&p);
        let t = i.run(25).unwrap();
        assert_eq!(t.len(), 25);
        assert!(!t.halted());
    }

    #[test]
    fn negative_offsets_work() {
        let mut asm = Assembler::new();
        asm.movi(r(1), 0x208);
        asm.movi(r(2), 5);
        asm.sd(r(2), r(1), -8);
        asm.ld(r(3), r(1), -8);
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut i = Interpreter::new(&p);
        i.run(10).unwrap();
        assert_eq!(i.reg(r(3)), 5);
        assert_eq!(
            i.memory()
                .read(MemAccess::new(Addr(0x200), AccessSize::Double).unwrap()),
            5
        );
    }

    #[test]
    fn taken_and_not_taken_branch_next_pc() {
        let mut asm = Assembler::new();
        asm.movi(r(1), 1);
        asm.beq(r(1), Reg::ZERO, "skip"); // not taken
        asm.bne(r(1), Reg::ZERO, "skip"); // taken
        asm.nop();
        asm.label("skip");
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = Interpreter::new(&p).run(100).unwrap();
        assert_eq!(t.get(1).unwrap().next_pc, 2);
        assert_eq!(t.get(2).unwrap().next_pc, 4);
    }
}
