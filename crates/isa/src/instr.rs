//! Instruction definitions and pure functional semantics.

use core::fmt;

use aim_types::AccessSize;

/// An architectural register, `r0`–`r31`. `r0` is hardwired to zero.
///
/// # Examples
///
/// ```
/// use aim_isa::Reg;
///
/// let r5 = Reg::new(5);
/// assert_eq!(r5.index(), 5);
/// assert!(Reg::ZERO.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero register `r0`.
    pub const ZERO: Reg = Reg(0);
    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// Creates register `r{index}`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub fn new(index: u8) -> Reg {
        assert!((index as usize) < Reg::COUNT, "register index out of range");
        Reg(index)
    }

    /// The register number.
    #[inline]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired-zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Two-operand integer operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (amount taken mod 64).
    Sll,
    /// Logical shift right (amount taken mod 64).
    Srl,
    /// Arithmetic shift right (amount taken mod 64).
    Sra,
    /// Set-if-less-than, signed: `1` if `a < b` else `0`.
    Slt,
    /// Set-if-less-than, unsigned.
    Sltu,
    /// Wrapping multiplication (low 64 bits).
    Mul,
}

impl AluOp {
    /// Evaluates the operation on 64-bit operands.
    ///
    /// # Examples
    ///
    /// ```
    /// use aim_isa::AluOp;
    ///
    /// assert_eq!(AluOp::Add.eval(2, 3), 5);
    /// assert_eq!(AluOp::Slt.eval(u64::MAX, 0), 1); // -1 < 0 signed
    /// ```
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b as u32),
            AluOp::Srl => a.wrapping_shr(b as u32),
            AluOp::Sra => (a as i64).wrapping_shr(b as u32) as u64,
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
            AluOp::Mul => a.wrapping_mul(b),
        }
    }
}

/// Conditions for conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less than, signed.
    Lt,
    /// Branch if greater than or equal, signed.
    Ge,
    /// Branch if less than, unsigned.
    Ltu,
    /// Branch if greater than or equal, unsigned.
    Geu,
}

impl BranchCond {
    /// Evaluates the condition on 64-bit operands.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// Execution-resource class of an instruction (drives functional-unit
/// latency in the pipeline model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecClass {
    /// Single-cycle integer operation.
    Alu,
    /// Pipelined multiplier.
    Mul,
    /// Conditional branch or jump resolution.
    Branch,
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// No work (`Nop`, `Halt`).
    None,
}

/// One decoded instruction.
///
/// Branch and jump targets are absolute instruction indices (the assembler
/// resolves labels to these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `rd = op(rs1, rs2)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// `rd = op(rs1, imm)`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Immediate (sign-extended to 64 bits).
        imm: i64,
    },
    /// `rd = imm` (64-bit immediate move).
    MovImm {
        /// Destination.
        rd: Reg,
        /// Immediate.
        imm: i64,
    },
    /// `rd = zero_extend(mem[rs1 + offset])`.
    Load {
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
        /// Access width.
        size: AccessSize,
    },
    /// `mem[base + offset] = low_bytes(rs)`.
    Store {
        /// Data source.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
        /// Access width.
        size: AccessSize,
    },
    /// Conditional branch to `target` when `cond(rs1, rs2)`.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First comparand.
        rs1: Reg,
        /// Second comparand.
        rs2: Reg,
        /// Absolute instruction index of the taken target.
        target: u64,
    },
    /// Unconditional jump to `target`.
    Jump {
        /// Absolute instruction index.
        target: u64,
    },
    /// Jump-and-link: `rd = pc + 1`, then jump to `target`.
    Jal {
        /// Link destination register.
        rd: Reg,
        /// Absolute instruction index.
        target: u64,
    },
    /// Indirect jump to the instruction index in `rs`.
    Jr {
        /// Register holding the target instruction index.
        rs: Reg,
    },
    /// Stop the machine.
    Halt,
    /// Do nothing.
    Nop,
}

impl Instr {
    /// The architectural register written by this instruction, if any
    /// (writes to `r0` are discarded and reported as `None`).
    pub fn def(&self) -> Option<Reg> {
        let rd = match *self {
            Instr::Alu { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::MovImm { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::Jal { rd, .. } => rd,
            _ => return None,
        };
        if rd.is_zero() {
            None
        } else {
            Some(rd)
        }
    }

    /// The architectural registers read by this instruction (up to two).
    pub fn uses(&self) -> [Option<Reg>; 2] {
        match *self {
            Instr::Alu { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Instr::AluImm { rs1, .. } => [Some(rs1), None],
            Instr::MovImm { .. } => [None, None],
            Instr::Load { base, .. } => [Some(base), None],
            Instr::Store { rs, base, .. } => [Some(base), Some(rs)],
            Instr::Branch { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Instr::Jump { .. } | Instr::Jal { .. } => [None, None],
            Instr::Jr { rs } => [Some(rs), None],
            Instr::Halt | Instr::Nop => [None, None],
        }
    }

    /// Whether this is a memory read.
    pub fn is_load(&self) -> bool {
        matches!(self, Instr::Load { .. })
    }

    /// Whether this is a memory write.
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::Store { .. })
    }

    /// Whether this is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Instr::Branch { .. })
    }

    /// Whether this instruction may redirect the front end (any branch or
    /// jump, conditional or not).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. } | Instr::Jump { .. } | Instr::Jal { .. } | Instr::Jr { .. }
        )
    }

    /// The functional-unit class of this instruction.
    pub fn exec_class(&self) -> ExecClass {
        match self {
            Instr::Alu { op, .. } | Instr::AluImm { op, .. } => {
                if *op == AluOp::Mul {
                    ExecClass::Mul
                } else {
                    ExecClass::Alu
                }
            }
            Instr::MovImm { .. } => ExecClass::Alu,
            Instr::Load { .. } => ExecClass::Load,
            Instr::Store { .. } => ExecClass::Store,
            Instr::Branch { .. } | Instr::Jump { .. } | Instr::Jal { .. } | Instr::Jr { .. } => {
                ExecClass::Branch
            }
            Instr::Halt | Instr::Nop => ExecClass::None,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Alu { op, rd, rs1, rs2 } => write!(f, "{op:?} {rd}, {rs1}, {rs2}"),
            Instr::AluImm { op, rd, rs1, imm } => write!(f, "{op:?}i {rd}, {rs1}, {imm}"),
            Instr::MovImm { rd, imm } => write!(f, "movi {rd}, {imm}"),
            Instr::Load {
                rd,
                base,
                offset,
                size,
            } => write!(f, "ld{} {rd}, {offset}({base})", size.bytes()),
            Instr::Store {
                rs,
                base,
                offset,
                size,
            } => write!(f, "st{} {rs}, {offset}({base})", size.bytes()),
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => write!(f, "b{cond:?} {rs1}, {rs2}, @{target}"),
            Instr::Jump { target } => write!(f, "j @{target}"),
            Instr::Jal { rd, target } => write!(f, "jal {rd}, @{target}"),
            Instr::Jr { rs } => write!(f, "jr {rs}"),
            Instr::Halt => write!(f, "halt"),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_bounds() {
        assert_eq!(Reg::new(31).index(), 31);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.eval(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.eval(0, 1), u64::MAX);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Sll.eval(1, 63), 1 << 63);
        assert_eq!(AluOp::Srl.eval(u64::MAX, 63), 1);
        assert_eq!(AluOp::Sra.eval(u64::MAX, 63), u64::MAX);
        assert_eq!(AluOp::Slt.eval(1, 2), 1);
        assert_eq!(AluOp::Slt.eval(u64::MAX, 0), 1);
        assert_eq!(AluOp::Sltu.eval(u64::MAX, 0), 0);
        assert_eq!(AluOp::Mul.eval(3, 5), 15);
    }

    #[test]
    fn shift_amount_wraps_mod_64() {
        assert_eq!(AluOp::Sll.eval(1, 64), 1);
        assert_eq!(AluOp::Sll.eval(1, 65), 2);
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchCond::Eq.eval(4, 4));
        assert!(BranchCond::Ne.eval(4, 5));
        assert!(BranchCond::Lt.eval(u64::MAX, 0)); // signed -1 < 0
        assert!(!BranchCond::Ltu.eval(u64::MAX, 0));
        assert!(BranchCond::Ge.eval(0, u64::MAX));
        assert!(BranchCond::Geu.eval(u64::MAX, 0));
    }

    #[test]
    fn def_excludes_r0() {
        let i = Instr::AluImm {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs1: Reg::new(1),
            imm: 1,
        };
        assert_eq!(i.def(), None);
        let j = Instr::MovImm {
            rd: Reg::new(3),
            imm: 0,
        };
        assert_eq!(j.def(), Some(Reg::new(3)));
    }

    #[test]
    fn uses_of_store_include_data_and_base() {
        let s = Instr::Store {
            rs: Reg::new(7),
            base: Reg::new(8),
            offset: 0,
            size: AccessSize::Word,
        };
        assert_eq!(s.uses(), [Some(Reg::new(8)), Some(Reg::new(7))]);
        assert!(s.is_store() && !s.is_load());
    }

    #[test]
    fn exec_class_partition() {
        assert_eq!(
            Instr::Alu {
                op: AluOp::Mul,
                rd: Reg::new(1),
                rs1: Reg::new(2),
                rs2: Reg::new(3)
            }
            .exec_class(),
            ExecClass::Mul
        );
        assert_eq!(Instr::Jump { target: 0 }.exec_class(), ExecClass::Branch);
        assert_eq!(Instr::Halt.exec_class(), ExecClass::None);
    }

    #[test]
    fn control_classification() {
        assert!(Instr::Jr { rs: Reg::new(1) }.is_control());
        assert!(!Instr::Jr { rs: Reg::new(1) }.is_cond_branch());
        assert!(Instr::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            target: 0
        }
        .is_cond_branch());
        assert!(!Instr::Nop.is_control());
    }

    #[test]
    fn display_round_trip_smoke() {
        let i = Instr::Load {
            rd: Reg::new(1),
            base: Reg::new(2),
            offset: -8,
            size: AccessSize::Double,
        };
        assert_eq!(i.to_string(), "ld8 r1, -8(r2)");
    }
}
