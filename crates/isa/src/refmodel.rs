//! Multi-core operational reference model.
//!
//! The single-core [`Interpreter`] is the golden oracle for one pipeline; a
//! multi-core machine has no single golden execution, only a *set* of allowed
//! final states. This module defines that set operationally, with a model
//! deliberately **weaker** than anything the simulated machine can produce,
//! so that every machine execution is guaranteed to land inside it:
//!
//! * Each core executes its (straight-line) program in order.
//! * A store enters the core's private store buffer (FIFO). A separate
//!   `Drain` event later publishes the oldest entry to shared memory.
//! * Shared memory keeps the full *version history* of every 8-byte word.
//! * A load **must** forward from the youngest matching entry in its own
//!   store buffer (the machine's store-to-load forwarding paths all read
//!   program-order-preceding same-core stores). With no match it may read
//!   *any* committed version at or above the core's per-word read floor;
//!   the chosen version becomes the new floor (per-location coherence of
//!   reads on the same core).
//! * Draining a store raises the draining core's own floor past it — a core
//!   never reads memory older than a store it has itself committed.
//!
//! This admits the classic relaxed outcomes (store buffering, message
//! passing with a stale data read, IRIW) while still forbidding the two
//! behaviours the simulated machine genuinely cannot exhibit: load-buffering
//! cycles (stores commit only at retirement, after the core's own earlier
//! loads are done) and a core missing its own store. Litmus tests therefore
//! assert machine outcomes `⊆` [`allowed_outcomes`] — a sound check on every
//! backend — and the forwarding variants keep it non-vacuous.
//!
//! Only straight-line programs over `movi`/ALU/8-byte-aligned `ld`/`sd`/
//! `halt` are accepted; control flow would make per-core paths depend on
//! cross-core values, which the fetch-steering contract of the pipeline
//! does not cover.
//!
//! [`Interpreter`]: crate::Interpreter

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::fmt;

use aim_mem::MainMemory;
use aim_types::{AccessSize, Addr, MemAccess};

use crate::instr::{Instr, Reg};
use crate::Program;

/// Errors raised while exploring the reference model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefError {
    /// An instruction outside the supported straight-line subset.
    Unsupported {
        /// Core that fetched it.
        core: usize,
        /// Its program counter.
        pc: u64,
        /// The instruction.
        instr: Instr,
    },
    /// A memory access that is not an aligned 8-byte word.
    BadAccess {
        /// Core that issued it.
        core: usize,
        /// Its program counter.
        pc: u64,
    },
    /// A core's program counter ran off its instruction stream.
    PcOutOfRange {
        /// The core.
        core: usize,
        /// The offending program counter.
        pc: u64,
    },
    /// Enumeration visited more distinct states than the configured budget.
    StateBudget {
        /// The budget that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for RefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefError::Unsupported { core, pc, instr } => {
                write!(f, "core {core} pc {pc}: `{instr}` outside litmus subset")
            }
            RefError::BadAccess { core, pc } => {
                write!(f, "core {core} pc {pc}: access is not an aligned 8-byte word")
            }
            RefError::PcOutOfRange { core, pc } => {
                write!(f, "core {core}: pc {pc} out of range")
            }
            RefError::StateBudget { limit } => {
                write!(f, "state budget of {limit} distinct states exceeded")
            }
        }
    }
}

impl std::error::Error for RefError {}

/// Exploration budget for [`allowed_outcomes`].
#[derive(Debug, Clone, Copy)]
pub struct RefLimits {
    /// Maximum number of distinct states to visit before giving up with
    /// [`RefError::StateBudget`]. Litmus-sized programs stay far below the
    /// default.
    pub max_states: usize,
}

impl Default for RefLimits {
    fn default() -> RefLimits {
        RefLimits {
            max_states: 1 << 20,
        }
    }
}

/// One core's architectural state in the model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CoreState {
    pc: u64,
    regs: [u64; Reg::COUNT],
    halted: bool,
    /// FIFO store buffer of `(word address, value)`, oldest first.
    sb: VecDeque<(u64, u64)>,
}

/// A full model state: all cores plus shared memory's version histories and
/// the per-(core, word) read floors.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RefState {
    cores: Vec<CoreState>,
    /// Word address → committed versions, index 0 the initial value.
    versions: BTreeMap<u64, Vec<u64>>,
    /// Per core: word address → lowest version index it may still read.
    floors: Vec<BTreeMap<u64, usize>>,
}

/// One enabled transition out of a state.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Execute the next instruction of `core`. For a load that reads shared
    /// memory, `load_version` picks which committed version it observes.
    Step {
        core: usize,
        load_version: Option<usize>,
    },
    /// Publish the oldest store-buffer entry of `core` to shared memory.
    Drain { core: usize },
}

impl RefState {
    fn initial(programs: &[Program]) -> RefState {
        RefState {
            cores: programs
                .iter()
                .map(|_| CoreState {
                    pc: 0,
                    regs: [0; Reg::COUNT],
                    halted: false,
                    sb: VecDeque::new(),
                })
                .collect(),
            versions: BTreeMap::new(),
            floors: vec![BTreeMap::new(); programs.len()],
        }
    }

    fn terminal(&self) -> bool {
        self.cores.iter().all(|c| c.halted && c.sb.is_empty())
    }

    /// The committed version history of `word`, created on first touch from
    /// the merged initial memory image.
    fn history<'a>(
        versions: &'a mut BTreeMap<u64, Vec<u64>>,
        init: &MainMemory,
        word: u64,
    ) -> &'a mut Vec<u64> {
        versions.entry(word).or_insert_with(|| {
            let access = MemAccess::new(Addr(word), AccessSize::Double)
                .expect("word addresses are 8-byte aligned by construction");
            vec![init.read(access)]
        })
    }
}

/// The model over a fixed set of programs.
struct Model<'a> {
    programs: &'a [Program],
    /// Merged initial data image (core order), the source of word version 0.
    init: MainMemory,
}

impl<'a> Model<'a> {
    fn new(programs: &'a [Program]) -> Model<'a> {
        let mut init = MainMemory::new();
        for p in programs {
            for (addr, bytes) in p.data() {
                init.write_bytes(*addr, bytes);
            }
        }
        Model { programs, init }
    }

    /// The 8-byte word address accessed by a load/store, or an error if it
    /// is not an aligned double.
    fn word_of(
        &self,
        core: usize,
        pc: u64,
        base: u64,
        offset: i64,
        size: AccessSize,
    ) -> Result<u64, RefError> {
        let addr = base.wrapping_add(offset as u64);
        if size != AccessSize::Double || !addr.is_multiple_of(8) {
            return Err(RefError::BadAccess { core, pc });
        }
        Ok(addr)
    }

    /// All transitions enabled in `state`. Empty iff the state is terminal.
    fn enabled(&self, state: &RefState) -> Result<Vec<Event>, RefError> {
        let mut events = Vec::new();
        for (core, c) in state.cores.iter().enumerate() {
            if !c.sb.is_empty() {
                events.push(Event::Drain { core });
            }
            if c.halted {
                continue;
            }
            let instr = *self.programs[core]
                .instr(c.pc)
                .ok_or(RefError::PcOutOfRange { core, pc: c.pc })?;
            match instr {
                Instr::Load {
                    base, offset, size, ..
                } => {
                    let word = self.word_of(core, c.pc, c.regs[base.index() as usize], offset, size)?;
                    if c.sb.iter().rev().any(|&(w, _)| w == word) {
                        // Forwarding from the own store buffer is mandatory:
                        // exactly one way to execute this load.
                        events.push(Event::Step {
                            core,
                            load_version: None,
                        });
                    } else {
                        let floor = state.floors[core].get(&word).copied().unwrap_or(0);
                        let len = state.versions.get(&word).map_or(1, Vec::len);
                        for v in floor..len {
                            events.push(Event::Step {
                                core,
                                load_version: Some(v),
                            });
                        }
                    }
                }
                _ => events.push(Event::Step {
                    core,
                    load_version: None,
                }),
            }
        }
        Ok(events)
    }

    /// Applies `event` to a copy of `state`.
    fn apply(&self, state: &RefState, event: Event) -> Result<RefState, RefError> {
        let mut next = state.clone();
        match event {
            Event::Drain { core } => {
                let (word, value) = next.cores[core]
                    .sb
                    .pop_front()
                    .expect("drain only enabled with a non-empty store buffer");
                let history = RefState::history(&mut next.versions, &self.init, word);
                history.push(value);
                let latest = history.len() - 1;
                // A core never reads below its own committed store.
                next.floors[core].insert(word, latest);
            }
            Event::Step { core, load_version } => {
                let pc = next.cores[core].pc;
                let instr = *self.programs[core]
                    .instr(pc)
                    .ok_or(RefError::PcOutOfRange { core, pc })?;
                let c = &mut next.cores[core];
                let reg = |c: &CoreState, r: Reg| c.regs[r.index() as usize];
                let set = |c: &mut CoreState, r: Reg, v: u64| {
                    if !r.is_zero() {
                        c.regs[r.index() as usize] = v;
                    }
                };
                match instr {
                    Instr::Alu { op, rd, rs1, rs2 } => {
                        let v = op.eval(reg(c, rs1), reg(c, rs2));
                        set(c, rd, v);
                    }
                    Instr::AluImm { op, rd, rs1, imm } => {
                        let v = op.eval(reg(c, rs1), imm as u64);
                        set(c, rd, v);
                    }
                    Instr::MovImm { rd, imm } => set(c, rd, imm as u64),
                    Instr::Nop => {}
                    Instr::Halt => {
                        c.halted = true;
                        return Ok(next);
                    }
                    Instr::Store {
                        rs,
                        base,
                        offset,
                        size,
                    } => {
                        let word = self.word_of(core, pc, reg(c, base), offset, size)?;
                        let value = reg(c, rs);
                        c.sb.push_back((word, value));
                    }
                    Instr::Load {
                        rd,
                        base,
                        offset,
                        size,
                    } => {
                        let word = self.word_of(core, pc, reg(c, base), offset, size)?;
                        let forwarded = c.sb.iter().rev().find(|&&(w, _)| w == word).map(|&(_, v)| v);
                        let value = match (forwarded, load_version) {
                            (Some(v), _) => v,
                            (None, Some(idx)) => {
                                let history =
                                    RefState::history(&mut next.versions, &self.init, word);
                                let value = history[idx];
                                next.floors[core].insert(word, idx);
                                let c = &mut next.cores[core];
                                set(c, rd, value);
                                c.pc += 1;
                                return Ok(next);
                            }
                            (None, None) => {
                                unreachable!("memory loads carry an explicit version choice")
                            }
                        };
                        set(c, rd, value);
                    }
                    other => {
                        return Err(RefError::Unsupported {
                            core,
                            pc,
                            instr: other,
                        })
                    }
                }
                next.cores[core].pc += 1;
            }
        }
        Ok(next)
    }

    fn outcome(&self, state: &RefState, observed: &[(usize, Reg)]) -> Vec<u64> {
        observed
            .iter()
            .map(|&(core, r)| state.cores[core].regs[r.index() as usize])
            .collect()
    }
}

/// Enumerates every final value of the `observed` registers (`(core, reg)`
/// pairs) the model allows for the given per-core programs.
///
/// Exhaustive DFS over interleavings with duplicate-state pruning; errors if
/// the state space exceeds `limits.max_states` so a truncated exploration can
/// never masquerade as a complete one.
///
/// # Examples
///
/// A one-core program degenerates to the interpreter's single outcome:
///
/// ```
/// use aim_isa::{allowed_outcomes, Assembler, RefLimits, Reg};
///
/// let mut asm = Assembler::new();
/// asm.movi(Reg::new(1), 7);
/// asm.halt();
/// let p = asm.assemble().unwrap();
///
/// let outcomes =
///     allowed_outcomes(&[p], &[(0, Reg::new(1))], &RefLimits::default()).unwrap();
/// assert_eq!(outcomes.into_iter().collect::<Vec<_>>(), vec![vec![7]]);
/// ```
pub fn allowed_outcomes(
    programs: &[Program],
    observed: &[(usize, Reg)],
    limits: &RefLimits,
) -> Result<BTreeSet<Vec<u64>>, RefError> {
    let model = Model::new(programs);
    let start = RefState::initial(programs);
    let mut outcomes = BTreeSet::new();
    let mut seen: HashSet<RefState> = HashSet::new();
    let mut stack = vec![start.clone()];
    seen.insert(start);
    while let Some(state) = stack.pop() {
        if state.terminal() {
            outcomes.insert(model.outcome(&state, observed));
            continue;
        }
        for event in model.enabled(&state)? {
            let next = model.apply(&state, event)?;
            if seen.insert(next.clone()) {
                if seen.len() > limits.max_states {
                    return Err(RefError::StateBudget {
                        limit: limits.max_states,
                    });
                }
                stack.push(next);
            }
        }
    }
    Ok(outcomes)
}

/// Runs one seeded random walk through the model and returns the observed
/// registers of the final state it reaches.
///
/// Used to cross-check [`allowed_outcomes`]: every sampled outcome must be a
/// member of the enumerated set.
pub fn sample_outcome(
    programs: &[Program],
    observed: &[(usize, Reg)],
    seed: u64,
) -> Result<Vec<u64>, RefError> {
    let model = Model::new(programs);
    let mut state = RefState::initial(programs);
    let mut rng = SplitMix64::new(seed);
    // Straight-line programs terminate: every Step advances a pc and every
    // Drain shrinks a buffer that only Steps refill. The bound is defensive.
    let mut budget = 64 * programs.iter().map(Program::len).sum::<usize>().max(1);
    while !state.terminal() {
        let events = model.enabled(&state)?;
        let pick = (rng.next() % events.len() as u64) as usize;
        state = model.apply(&state, events[pick])?;
        budget -= 1;
        assert!(budget > 0, "random walk failed to terminate");
    }
    Ok(model.outcome(&state, observed))
}

/// SplitMix64 — tiny seeded generator for the random walk (no external
/// dependencies; quality is ample for schedule sampling).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::litmus;

    fn by_name(name: &str) -> litmus::LitmusTest {
        litmus::litmus_suite()
            .into_iter()
            .find(|t| t.name == name)
            .unwrap_or_else(|| panic!("no litmus test named {name}"))
    }

    fn outcomes(test: &litmus::LitmusTest) -> BTreeSet<Vec<u64>> {
        allowed_outcomes(&test.programs, &test.observed, &RefLimits::default()).unwrap()
    }

    #[test]
    fn sb_allows_the_relaxed_outcome() {
        let t = by_name("SB");
        let set = outcomes(&t);
        // Both loads may miss the sibling's buffered store...
        assert!(set.contains(&vec![0, 0]), "store buffering must be allowed");
        // ...and the SC outcomes are there too.
        assert!(set.contains(&vec![1, 1]));
        assert!(set.contains(&vec![0, 1]));
        assert!(set.contains(&vec![1, 0]));
    }

    #[test]
    fn sb_fwd_forces_forwarding() {
        let t = by_name("SB+fwd");
        for o in outcomes(&t) {
            // Observed layout: (r5 forwarded own store, r2, r3).
            assert_eq!(o[0], 1, "own store must forward: {o:?}");
        }
    }

    #[test]
    fn mp_allows_stale_data_but_not_stale_flag_semantics() {
        let t = by_name("MP");
        let set = outcomes(&t);
        // Relaxed: flag observed set, data still old.
        assert!(set.contains(&vec![1, 0]), "MP relaxed outcome must be allowed");
        assert!(set.contains(&vec![1, 42]));
        assert!(set.contains(&vec![0, 0]));
        // Data=42 with flag unobserved is also fine (reader may see the data
        // store first) — the model is weaker than TSO on purpose.
        assert!(set.contains(&vec![0, 42]));
    }

    #[test]
    fn mp_fwd_writer_sees_own_data() {
        let t = by_name("MP+fwd");
        for o in outcomes(&t) {
            assert_eq!(o[0], 42, "writer must observe its own store: {o:?}");
        }
    }

    #[test]
    fn lb_forbids_the_cycle() {
        let t = by_name("LB");
        let set = outcomes(&t);
        assert!(
            !set.contains(&vec![1, 1]),
            "load-buffering cycle must be forbidden"
        );
        assert!(set.contains(&vec![0, 0]));
        assert!(set.contains(&vec![1, 0]));
        assert!(set.contains(&vec![0, 1]));
    }

    #[test]
    fn iriw_allows_disagreeing_readers() {
        let t = by_name("IRIW");
        let set = outcomes(&t);
        // Readers may disagree on the order of the two independent writes.
        assert!(
            set.contains(&vec![1, 0, 1, 0]),
            "IRIW relaxed outcome must be allowed"
        );
    }

    #[test]
    fn sampling_is_contained_in_enumeration() {
        for t in litmus::litmus_suite() {
            let set = outcomes(&t);
            for seed in 0..200u64 {
                let o = sample_outcome(&t.programs, &t.observed, seed).unwrap();
                assert!(
                    set.contains(&o),
                    "{}: sampled outcome {o:?} not in enumerated set",
                    t.name
                );
            }
        }
    }

    #[test]
    fn control_flow_is_rejected() {
        let mut asm = crate::Assembler::new();
        asm.label("top");
        asm.jump("top");
        let p = asm.assemble().unwrap();
        let err = allowed_outcomes(&[p], &[], &RefLimits::default()).unwrap_err();
        assert!(matches!(err, RefError::Unsupported { .. }));
    }

    #[test]
    fn sub_word_access_is_rejected() {
        let mut asm = crate::Assembler::new();
        asm.movi(Reg::new(1), 0x1000);
        asm.sw(Reg::new(2), Reg::new(1), 0);
        asm.halt();
        let p = asm.assemble().unwrap();
        let err = allowed_outcomes(&[p], &[], &RefLimits::default()).unwrap_err();
        assert!(matches!(err, RefError::BadAccess { .. }));
    }

    #[test]
    fn state_budget_is_enforced() {
        let t = by_name("IRIW");
        let err =
            allowed_outcomes(&t.programs, &t.observed, &RefLimits { max_states: 4 }).unwrap_err();
        assert_eq!(err, RefError::StateBudget { limit: 4 });
    }

    #[test]
    fn initial_memory_comes_from_the_data_image() {
        let mut asm = crate::Assembler::new();
        asm.data_words(aim_types::Addr(0x2000), &[0xABCD]);
        asm.movi(Reg::new(1), 0x2000);
        asm.ld(Reg::new(2), Reg::new(1), 0);
        asm.halt();
        let p = asm.assemble().unwrap();
        let set =
            allowed_outcomes(&[p], &[(0, Reg::new(2))], &RefLimits::default()).unwrap();
        assert_eq!(set.into_iter().collect::<Vec<_>>(), vec![vec![0xABCD]]);
    }
}
