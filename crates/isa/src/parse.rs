//! A text front end for the [`Assembler`]: parse `.s`-style source into a
//! [`Program`].
//!
//! # Syntax
//!
//! One statement per line; `#` or `;` starts a comment.
//!
//! ```text
//! # data regions: .data <addr>: <word> <word> ...
//! .data 0x1000: 1 2 3 0xdead
//!
//!         movi  r1, 100          # 64-bit immediate move
//!         movi  r2, 0x1000
//! loop:                          # labels end with ':'
//!         ld8   r3, 0(r2)        # ld1/ld2/ld4/ld8  rd, offset(base)
//!         addi  r3, r3, 1
//!         st8   r3, 0(r2)        # st1/st2/st4/st8  rs, offset(base)
//!         subi  r1, r1, 1
//!         bne   r1, r0, loop     # beq/bne/blt/bge/bltu/bgeu rs1, rs2, label
//!         halt
//! ```
//!
//! Register operands are `r0`–`r31`. ALU mnemonics: `add sub and or xor mul
//! sll srl sra slt sltu` (register) and `addi subi andi ori xori muli slli
//! srli srai slti` (immediate), plus `mov rd, rs`, `jal rd, label`,
//! `j label`, `jr rs`, `nop`, `halt`.

use core::fmt;

use aim_types::{AccessSize, Addr};

use crate::asm::Assembler;
use crate::instr::{AluOp, BranchCond, Reg};
use crate::Program;

/// A parse failure, with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

fn err(line: usize, message: impl Into<String>) -> ParseAsmError {
    ParseAsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseAsmError> {
    let idx = tok
        .strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| (n as usize) < Reg::COUNT)
        .ok_or_else(|| err(line, format!("expected a register r0..r31, got `{tok}`")))?;
    Ok(Reg::new(idx))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, ParseAsmError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16)
    } else {
        body.replace('_', "").parse::<u64>()
    }
    .map_err(|_| err(line, format!("expected an integer, got `{tok}`")))?;
    let signed = value as i64;
    Ok(if neg { signed.wrapping_neg() } else { signed })
}

/// Splits `offset(base)` into its parts.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i64, Reg), ParseAsmError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected offset(base), got `{tok}`")))?;
    let close = tok
        .strip_suffix(')')
        .ok_or_else(|| err(line, format!("missing `)` in `{tok}`")))?;
    let offset = if open == 0 {
        0
    } else {
        parse_imm(&tok[..open], line)?
    };
    let base = parse_reg(&close[open + 1..], line)?;
    Ok((offset, base))
}

fn operands(rest: &str) -> Vec<&str> {
    rest.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

fn alu_op(mnemonic: &str) -> Option<AluOp> {
    Some(match mnemonic {
        "add" | "addi" => AluOp::Add,
        "sub" | "subi" => AluOp::Sub,
        "and" | "andi" => AluOp::And,
        "or" | "ori" => AluOp::Or,
        "xor" | "xori" => AluOp::Xor,
        "mul" | "muli" => AluOp::Mul,
        "sll" | "slli" => AluOp::Sll,
        "srl" | "srli" => AluOp::Srl,
        "sra" | "srai" => AluOp::Sra,
        "slt" | "slti" => AluOp::Slt,
        "sltu" | "sltui" => AluOp::Sltu,
        _ => return None,
    })
}

fn branch_cond(mnemonic: &str) -> Option<BranchCond> {
    Some(match mnemonic {
        "beq" => BranchCond::Eq,
        "bne" => BranchCond::Ne,
        "blt" => BranchCond::Lt,
        "bge" => BranchCond::Ge,
        "bltu" => BranchCond::Ltu,
        "bgeu" => BranchCond::Geu,
        _ => return None,
    })
}

fn access_size(suffix: &str) -> Option<AccessSize> {
    Some(match suffix {
        "1" => AccessSize::Byte,
        "2" => AccessSize::Half,
        "4" => AccessSize::Word,
        "8" => AccessSize::Double,
        _ => return None,
    })
}

/// Parses assembler source into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseAsmError`] with the offending line for syntax errors,
/// unknown mnemonics, bad operands, or assembler-level failures (unknown or
/// duplicate labels).
///
/// # Examples
///
/// ```
/// use aim_isa::{parse_program, Interpreter, Reg};
///
/// let program = parse_program(
///     "        movi r1, 3\n\
///      loop:   addi r2, r2, 5\n\
///              subi r1, r1, 1\n\
///              bne  r1, r0, loop\n\
///              halt\n",
/// )?;
/// let mut interp = Interpreter::new(&program);
/// interp.run(100).unwrap();
/// assert_eq!(interp.reg(Reg::new(2)), 15);
/// # Ok::<(), aim_isa::ParseAsmError>(())
/// ```
pub fn parse_program(source: &str) -> Result<Program, ParseAsmError> {
    let mut asm = Assembler::new();

    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split(['#', ';']).next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }

        // Data directive.
        if let Some(rest) = text.strip_prefix(".data") {
            let (addr_tok, words_tok) = rest
                .split_once(':')
                .ok_or_else(|| err(line, ".data wants `<addr>: <words...>`"))?;
            let addr = parse_imm(addr_tok.trim(), line)? as u64;
            let words = words_tok
                .split_whitespace()
                .map(|w| parse_imm(w, line).map(|v| v as u64))
                .collect::<Result<Vec<u64>, _>>()?;
            asm.data_words(Addr(addr), &words);
            continue;
        }

        // Leading label(s).
        let mut text = text;
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(line, format!("bad label `{label}`")));
            }
            asm.label(label);
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        let ops = operands(rest);
        let want = |n: usize| -> Result<(), ParseAsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("`{mnemonic}` wants {n} operands, got {}", ops.len()),
                ))
            }
        };

        match mnemonic {
            "nop" => {
                want(0)?;
                asm.nop();
            }
            "halt" => {
                want(0)?;
                asm.halt();
            }
            "movi" => {
                want(2)?;
                asm.movi(parse_reg(ops[0], line)?, parse_imm(ops[1], line)?);
            }
            "mov" => {
                want(2)?;
                asm.mov(parse_reg(ops[0], line)?, parse_reg(ops[1], line)?);
            }
            "j" | "jump" => {
                want(1)?;
                asm.jump(ops[0]);
            }
            "jal" => {
                want(2)?;
                asm.jal(parse_reg(ops[0], line)?, ops[1]);
            }
            "jr" => {
                want(1)?;
                asm.jr(parse_reg(ops[0], line)?);
            }
            m if branch_cond(m).is_some() => {
                want(3)?;
                asm.branch(
                    branch_cond(m).expect("checked"),
                    parse_reg(ops[0], line)?,
                    parse_reg(ops[1], line)?,
                    ops[2],
                );
            }
            m if m.starts_with("ld") && access_size(&m[2..]).is_some() => {
                want(2)?;
                let size = access_size(&m[2..]).expect("checked");
                let rd = parse_reg(ops[0], line)?;
                let (offset, base) = parse_mem_operand(ops[1], line)?;
                asm.load(rd, base, offset, size);
            }
            m if m.starts_with("st") && access_size(&m[2..]).is_some() => {
                want(2)?;
                let size = access_size(&m[2..]).expect("checked");
                let rs = parse_reg(ops[0], line)?;
                let (offset, base) = parse_mem_operand(ops[1], line)?;
                asm.store(rs, base, offset, size);
            }
            m if alu_op(m).is_some() => {
                want(3)?;
                let op = alu_op(m).expect("checked");
                let rd = parse_reg(ops[0], line)?;
                let rs1 = parse_reg(ops[1], line)?;
                // Immediate forms all end in `i` (addi, slli, …); register
                // forms never do.
                if m.ends_with('i') {
                    asm.emit(crate::Instr::AluImm {
                        op,
                        rd,
                        rs1,
                        imm: parse_imm(ops[2], line)?,
                    });
                } else {
                    asm.emit(crate::Instr::Alu {
                        op,
                        rd,
                        rs1,
                        rs2: parse_reg(ops[2], line)?,
                    });
                }
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        }
    }

    asm.assemble()
        .map_err(|e| err(source.lines().count(), e.to_string()))
}

fn alu_mnemonic(op: AluOp, imm: bool) -> &'static str {
    match (op, imm) {
        (AluOp::Add, false) => "add",
        (AluOp::Sub, false) => "sub",
        (AluOp::And, false) => "and",
        (AluOp::Or, false) => "or",
        (AluOp::Xor, false) => "xor",
        (AluOp::Mul, false) => "mul",
        (AluOp::Sll, false) => "sll",
        (AluOp::Srl, false) => "srl",
        (AluOp::Sra, false) => "sra",
        (AluOp::Slt, false) => "slt",
        (AluOp::Sltu, false) => "sltu",
        (AluOp::Add, true) => "addi",
        (AluOp::Sub, true) => "subi",
        (AluOp::And, true) => "andi",
        (AluOp::Or, true) => "ori",
        (AluOp::Xor, true) => "xori",
        (AluOp::Mul, true) => "muli",
        (AluOp::Sll, true) => "slli",
        (AluOp::Srl, true) => "srli",
        (AluOp::Sra, true) => "srai",
        (AluOp::Slt, true) => "slti",
        (AluOp::Sltu, true) => "sltui",
    }
}

fn branch_mnemonic(cond: BranchCond) -> &'static str {
    match cond {
        BranchCond::Eq => "beq",
        BranchCond::Ne => "bne",
        BranchCond::Lt => "blt",
        BranchCond::Ge => "bge",
        BranchCond::Ltu => "bltu",
        BranchCond::Geu => "bgeu",
    }
}

/// Renders a [`Program`] as assembler source that [`parse_program`] accepts
/// (a disassembler). Branch targets become `L<index>` labels; data regions
/// whose length is word-aligned become `.data` directives.
///
/// # Examples
///
/// ```
/// use aim_isa::{parse_program, program_to_asm};
///
/// let p = parse_program("movi r1, 7\nhalt\n")?;
/// let text = program_to_asm(&p);
/// let q = parse_program(&text)?;
/// assert_eq!(p.instrs(), q.instrs());
/// # Ok::<(), aim_isa::ParseAsmError>(())
/// ```
pub fn program_to_asm(program: &Program) -> String {
    use crate::instr::Instr;
    use std::collections::BTreeSet;
    use std::fmt::Write as _;

    let mut targets = BTreeSet::new();
    for instr in program.instrs() {
        match *instr {
            Instr::Branch { target, .. } | Instr::Jump { target } | Instr::Jal { target, .. } => {
                targets.insert(target);
            }
            _ => {}
        }
    }

    let mut out = String::new();
    for (addr, bytes) in program.data() {
        if bytes.len() % 8 == 0 {
            let words: Vec<String> = bytes
                .chunks_exact(8)
                .map(|c| format!("{:#x}", u64::from_le_bytes(c.try_into().expect("8 bytes"))))
                .collect();
            let _ = writeln!(out, ".data {:#x}: {}", addr.0, words.join(" "));
        }
    }

    for (i, instr) in program.instrs().iter().enumerate() {
        if targets.contains(&(i as u64)) {
            let _ = writeln!(out, "L{i}:");
        }
        let text = match *instr {
            Instr::Alu { op, rd, rs1, rs2 } => {
                format!("{} {rd}, {rs1}, {rs2}", alu_mnemonic(op, false))
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                format!("{} {rd}, {rs1}, {imm}", alu_mnemonic(op, true))
            }
            Instr::MovImm { rd, imm } => format!("movi {rd}, {imm}"),
            Instr::Load {
                rd,
                base,
                offset,
                size,
            } => {
                format!("ld{} {rd}, {offset}({base})", size.bytes())
            }
            Instr::Store {
                rs,
                base,
                offset,
                size,
            } => {
                format!("st{} {rs}, {offset}({base})", size.bytes())
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                format!("{} {rs1}, {rs2}, L{target}", branch_mnemonic(cond))
            }
            Instr::Jump { target } => format!("j L{target}"),
            Instr::Jal { rd, target } => format!("jal {rd}, L{target}"),
            Instr::Jr { rs } => format!("jr {rs}"),
            Instr::Halt => "halt".to_string(),
            Instr::Nop => "nop".to_string(),
        };
        let _ = writeln!(out, "        {text}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interpreter;

    #[test]
    fn parses_the_doc_example() {
        let src = "\
# data regions
.data 0x1000: 1 2 3 0xdead

        movi  r1, 4
        movi  r2, 0x1000
        movi  r4, 0
loop:
        ld8   r3, 0(r2)
        add   r4, r4, r3
        addi  r2, r2, 8
        subi  r1, r1, 1
        bne   r1, r0, loop
        halt
";
        let program = parse_program(src).unwrap();
        let mut interp = Interpreter::new(&program);
        interp.run(1000).unwrap();
        assert_eq!(interp.reg(Reg::new(4)), 1 + 2 + 3 + 0xdead);
    }

    #[test]
    fn all_alu_mnemonics_parse() {
        let src = "\
add r1, r2, r3
sub r1, r2, r3
and r1, r2, r3
or  r1, r2, r3
xor r1, r2, r3
mul r1, r2, r3
sll r1, r2, r3
srl r1, r2, r3
sra r1, r2, r3
slt r1, r2, r3
sltu r1, r2, r3
addi r1, r2, -5
subi r1, r2, 5
andi r1, r2, 0xff
ori  r1, r2, 1
xori r1, r2, 2
muli r1, r2, 3
slli r1, r2, 4
srli r1, r2, 5
srai r1, r2, 6
slti r1, r2, 7
halt
";
        let program = parse_program(src).unwrap();
        assert_eq!(program.len(), 22);
    }

    #[test]
    fn memory_operand_forms() {
        let p = parse_program("ld4 r1, (r2)\nst2 r3, -16(r4)\nhalt\n").unwrap();
        assert_eq!(
            p.instrs()[0],
            crate::Instr::Load {
                rd: Reg::new(1),
                base: Reg::new(2),
                offset: 0,
                size: AccessSize::Word
            }
        );
        assert_eq!(
            p.instrs()[1],
            crate::Instr::Store {
                rs: Reg::new(3),
                base: Reg::new(4),
                offset: -16,
                size: AccessSize::Half
            }
        );
    }

    #[test]
    fn labels_and_jumps() {
        let src = "\
start: j over
       nop
over:  jal r31, fn
       halt
fn:    jr r31
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.instrs()[0], crate::Instr::Jump { target: 2 });
        assert_eq!(
            p.instrs()[2],
            crate::Instr::Jal {
                rd: Reg::new(31),
                target: 4
            }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_program("nop\nfrobnicate r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));

        let e = parse_program("ld8 r1\n").unwrap_err();
        assert!(e.message.contains("2 operands"));

        let e = parse_program("add r1, r2, 99\n").unwrap_err();
        assert!(e.message.contains("register"));

        let e = parse_program("beq r1, r2, nowhere\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = parse_program("; comment only\n\n  # another\nhalt ; trailing\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn disassembly_round_trips() {
        let src = "\
.data 0x2000: 0x1 0x2
        movi r1, 2
        movi r2, 0x2000
loop:   ld8  r3, 0(r2)
        add  r4, r4, r3
        addi r2, r2, 8
        subi r1, r1, 1
        bne  r1, r0, loop
        jal  r31, fin
        nop
fin:    halt
";
        let p = parse_program(src).unwrap();
        let text = program_to_asm(&p);
        let q = parse_program(&text).unwrap();
        assert_eq!(p.instrs(), q.instrs());
        assert_eq!(p.data(), q.data());
    }

    #[test]
    fn negative_and_hex_immediates() {
        let p = parse_program("movi r1, -0x10\nmovi r2, 1_000\nhalt\n").unwrap();
        let mut interp = Interpreter::new(&p);
        interp.run(10).unwrap();
        assert_eq!(interp.reg(Reg::new(1)) as i64, -16);
        assert_eq!(interp.reg(Reg::new(2)), 1000);
    }
}
