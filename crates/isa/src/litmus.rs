//! Classic memory-model litmus tests, assembled for the simulated ISA.
//!
//! Each test is a set of per-core straight-line programs plus the registers
//! whose final values classify the outcome. The multi-core harness runs the
//! programs on real pipelines under many schedules and asserts every
//! observed outcome is in the set the operational reference model
//! ([`crate::allowed_outcomes`]) enumerates.
//!
//! The shared locations are `x = 0x1000` and `y = 0x1008` (distinct 8-byte
//! words, same cache line on common geometries — deliberately, so L2
//! sharing is exercised). All observed registers default to zero, so an
//! unexecuted load is indistinguishable from reading the initial value;
//! every program here executes all its loads unconditionally.

use crate::asm::Assembler;
use crate::instr::Reg;
use crate::Program;

/// Address of shared word `x`.
pub const LITMUS_X: i64 = 0x1000;
/// Address of shared word `y`.
pub const LITMUS_Y: i64 = 0x1008;

/// One litmus test: per-core programs plus the observed registers.
#[derive(Debug)]
pub struct LitmusTest {
    /// Conventional short name ("SB", "MP", ...).
    pub name: &'static str,
    /// What the test probes, one line.
    pub description: &'static str,
    /// One program per core, index = core id.
    pub programs: Vec<Program>,
    /// `(core, register)` pairs whose final values form the outcome vector,
    /// in reporting order.
    pub observed: Vec<(usize, Reg)>,
}

/// Registers used by every litmus program: `rx`/`ry` hold the shared
/// addresses, `r1` the stored value, `r2`+ the observed loads.
fn rx() -> Reg {
    Reg::new(10)
}

fn ry() -> Reg {
    Reg::new(11)
}

fn addrs(asm: &mut Assembler) {
    asm.movi(rx(), LITMUS_X);
    asm.movi(ry(), LITMUS_Y);
}

fn assemble(asm: Assembler) -> Program {
    asm.assemble().expect("litmus programs are well-formed")
}

/// The litmus suite: SB, MP, LB, IRIW plus store-to-load-forwarding
/// variants of SB and MP.
///
/// # Examples
///
/// ```
/// use aim_isa::{allowed_outcomes, litmus_suite, RefLimits};
///
/// for test in litmus_suite() {
///     let allowed =
///         allowed_outcomes(&test.programs, &test.observed, &RefLimits::default()).unwrap();
///     assert!(!allowed.is_empty(), "{} has outcomes", test.name);
/// }
/// ```
pub fn litmus_suite() -> Vec<LitmusTest> {
    let r1 = Reg::new(1);
    let r2 = Reg::new(2);
    let r3 = Reg::new(3);
    let r4 = Reg::new(4);
    let r5 = Reg::new(5);

    let mut suite = Vec::new();

    // SB — store buffering. Core 0: x=1; read y. Core 1: y=1; read x.
    // r2=r3=0 is the relaxed outcome a store buffer produces.
    {
        let mut c0 = Assembler::new();
        addrs(&mut c0);
        c0.movi(r1, 1);
        c0.sd(r1, rx(), 0);
        c0.ld(r2, ry(), 0);
        c0.halt();
        let mut c1 = Assembler::new();
        addrs(&mut c1);
        c1.movi(r1, 1);
        c1.sd(r1, ry(), 0);
        c1.ld(r3, rx(), 0);
        c1.halt();
        suite.push(LitmusTest {
            name: "SB",
            description: "store buffering: both cores may miss the sibling's buffered store",
            programs: vec![assemble(c0), assemble(c1)],
            observed: vec![(0, r2), (1, r3)],
        });
    }

    // SB+fwd — as SB, but core 0 also reads x back before reading y. The
    // read must forward its own buffered store (r5 == 1 always), making the
    // forwarding path a hard assertion on every backend.
    {
        let mut c0 = Assembler::new();
        addrs(&mut c0);
        c0.movi(r1, 1);
        c0.sd(r1, rx(), 0);
        c0.ld(r5, rx(), 0);
        c0.ld(r2, ry(), 0);
        c0.halt();
        let mut c1 = Assembler::new();
        addrs(&mut c1);
        c1.movi(r1, 1);
        c1.sd(r1, ry(), 0);
        c1.ld(r3, rx(), 0);
        c1.halt();
        suite.push(LitmusTest {
            name: "SB+fwd",
            description: "store buffering with mandatory own-store forwarding (r5 must be 1)",
            programs: vec![assemble(c0), assemble(c1)],
            observed: vec![(0, r5), (0, r2), (1, r3)],
        });
    }

    // MP — message passing. Core 0: data=42; flag=1. Core 1: read flag,
    // then data. The machine has no fences, so flag=1 with stale data=0 is
    // an allowed (and observable) outcome.
    {
        let mut c0 = Assembler::new();
        addrs(&mut c0);
        c0.movi(r1, 42);
        c0.sd(r1, rx(), 0);
        c0.movi(r2, 1);
        c0.sd(r2, ry(), 0);
        c0.halt();
        let mut c1 = Assembler::new();
        addrs(&mut c1);
        c1.ld(r3, ry(), 0);
        c1.ld(r4, rx(), 0);
        c1.halt();
        suite.push(LitmusTest {
            name: "MP",
            description: "message passing without fences: stale data under a set flag is allowed",
            programs: vec![assemble(c0), assemble(c1)],
            observed: vec![(1, r3), (1, r4)],
        });
    }

    // MP+fwd — as MP, but the writer reads its own data back between the
    // two stores: r5 must be 42 on every schedule.
    {
        let mut c0 = Assembler::new();
        addrs(&mut c0);
        c0.movi(r1, 42);
        c0.sd(r1, rx(), 0);
        c0.ld(r5, rx(), 0);
        c0.movi(r2, 1);
        c0.sd(r2, ry(), 0);
        c0.halt();
        let mut c1 = Assembler::new();
        addrs(&mut c1);
        c1.ld(r3, ry(), 0);
        c1.ld(r4, rx(), 0);
        c1.halt();
        suite.push(LitmusTest {
            name: "MP+fwd",
            description: "message passing where the writer forwards its own data (r5 must be 42)",
            programs: vec![assemble(c0), assemble(c1)],
            observed: vec![(0, r5), (1, r3), (1, r4)],
        });
    }

    // LB — load buffering. Core 0: read y; x=1. Core 1: read x; y=1.
    // r1=r3=1 requires both loads to read stores that are program-order
    // *later* on the other core; stores commit at retirement, so the
    // machine cannot produce it and the model forbids it.
    {
        let mut c0 = Assembler::new();
        addrs(&mut c0);
        c0.ld(r1, ry(), 0);
        c0.movi(r2, 1);
        c0.sd(r2, rx(), 0);
        c0.halt();
        let mut c1 = Assembler::new();
        addrs(&mut c1);
        c1.ld(r3, rx(), 0);
        c1.movi(r4, 1);
        c1.sd(r4, ry(), 0);
        c1.halt();
        suite.push(LitmusTest {
            name: "LB",
            description: "load buffering: the r1=r3=1 cycle is forbidden",
            programs: vec![assemble(c0), assemble(c1)],
            observed: vec![(0, r1), (1, r3)],
        });
    }

    // IRIW — independent reads of independent writes. Two writers, two
    // readers reading the locations in opposite orders; the readers may
    // disagree on the write order.
    {
        let mut w0 = Assembler::new();
        addrs(&mut w0);
        w0.movi(r1, 1);
        w0.sd(r1, rx(), 0);
        w0.halt();
        let mut w1 = Assembler::new();
        addrs(&mut w1);
        w1.movi(r1, 1);
        w1.sd(r1, ry(), 0);
        w1.halt();
        let mut rd0 = Assembler::new();
        addrs(&mut rd0);
        rd0.ld(r1, rx(), 0);
        rd0.ld(r2, ry(), 0);
        rd0.halt();
        let mut rd1 = Assembler::new();
        addrs(&mut rd1);
        rd1.ld(r3, ry(), 0);
        rd1.ld(r4, rx(), 0);
        rd1.halt();
        suite.push(LitmusTest {
            name: "IRIW",
            description: "independent reads of independent writes: readers may disagree on order",
            programs: vec![assemble(w0), assemble(w1), assemble(rd0), assemble(rd1)],
            observed: vec![(2, r1), (2, r2), (3, r3), (3, r4)],
        });
    }

    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_shape() {
        let suite = litmus_suite();
        let names: Vec<_> = suite.iter().map(|t| t.name).collect();
        assert_eq!(names, ["SB", "SB+fwd", "MP", "MP+fwd", "LB", "IRIW"]);
        for t in &suite {
            assert!(t.programs.len() >= 2, "{} is multi-core", t.name);
            for (core, _) in &t.observed {
                assert!(*core < t.programs.len(), "{}: observed core in range", t.name);
            }
        }
    }

    #[test]
    fn programs_are_interpreter_clean() {
        // Every per-core program must run standalone under the golden
        // interpreter — the pipeline harness uses those isolated traces for
        // fetch steering.
        for t in litmus_suite() {
            for (core, p) in t.programs.iter().enumerate() {
                let mut interp = crate::Interpreter::new(p);
                let trace = interp
                    .run(1_000)
                    .unwrap_or_else(|e| panic!("{} core {core}: {e}", t.name));
                assert!(trace.halted(), "{} core {core} halts", t.name);
            }
        }
    }

    #[test]
    fn no_core_loads_the_same_word_twice() {
        // The reference model's per-(core, word) read floor forbids reading
        // an older version after a newer one. That is per-location read
        // coherence — sound for the machine — but to keep the harness
        // assertions simple the suite avoids depending on it: no program
        // loads the same shared word twice (own-store forwarding reads are
        // pinned by the buffer, not the floor).
        use crate::instr::Instr;
        for t in litmus_suite() {
            for (core, p) in t.programs.iter().enumerate() {
                let mut interp = crate::Interpreter::new(p);
                let trace = interp.run(1_000).unwrap();
                let mut seen = std::collections::HashSet::new();
                for rec in trace.records() {
                    if let Some((access, _)) = rec.mem_load {
                        if !matches!(p.instr(rec.pc), Some(Instr::Store { .. })) {
                            let fresh = seen.insert(access.addr().0);
                            // A load after a same-core store to the word is
                            // a forwarding read; those may repeat.
                            let stored_before = trace
                                .records()
                                .iter()
                                .take_while(|r| r.index < rec.index)
                                .any(|r| {
                                    r.mem_store.is_some_and(|(a, _)| a.addr() == access.addr())
                                });
                            assert!(
                                fresh || stored_before,
                                "{} core {core}: repeated load of {:#x}",
                                t.name,
                                access.addr().0
                            );
                        }
                    }
                }
            }
        }
    }
}
