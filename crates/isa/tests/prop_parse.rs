//! Property tests: the text assembler never panics, and accepts everything
//! the disassembler emits.

use aim_isa::{parse_program, program_to_asm};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary text never panics the parser: it either parses or returns a
    /// line-numbered error.
    #[test]
    fn parser_is_total(source in "[ -~\\n]{0,400}") {
        match parse_program(&source) {
            Ok(program) => {
                // Whatever parsed must disassemble and reparse identically.
                let text = program_to_asm(&program);
                let again = parse_program(&text).expect("disassembly reparses");
                prop_assert_eq!(program.instrs(), again.instrs());
            }
            Err(e) => {
                prop_assert!(e.line >= 1);
                prop_assert!(!e.message.is_empty());
            }
        }
    }

    /// Token soup assembled from plausible fragments never panics either.
    #[test]
    fn mnemonic_soup_is_total(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("add"), Just("ld8"), Just("st4"), Just("movi"), Just("beq"),
                Just("r1"), Just("r31"), Just("r99"), Just("0x10"), Just("-5"),
                Just("(r2)"), Just("8(r2)"), Just("label:"), Just(","), Just("halt"),
                Just(".data"), Just(":"), Just("#x"),
            ],
            0..30,
        ),
        newlines in proptest::collection::vec(any::<bool>(), 0..30),
    ) {
        let mut source = String::new();
        for (i, part) in parts.iter().enumerate() {
            source.push_str(part);
            source.push(if newlines.get(i).copied().unwrap_or(false) { '\n' } else { ' ' });
        }
        let _ = parse_program(&source); // must not panic
    }
}
