//! Exhaustive coverage of the text assembler's grammar, errors, and the
//! disassembler's round-trip guarantee over every instruction form.

use aim_isa::{parse_program, program_to_asm, AluOp, Instr, Interpreter, Program, Reg};
use aim_types::{AccessSize, Addr};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

#[test]
fn every_instruction_kind_round_trips() {
    use aim_isa::BranchCond;
    let instrs = vec![
        Instr::Nop,
        Instr::MovImm { rd: r(1), imm: -42 },
        Instr::Alu {
            op: AluOp::Sltu,
            rd: r(2),
            rs1: r(3),
            rs2: r(4),
        },
        Instr::AluImm {
            op: AluOp::Sra,
            rd: r(5),
            rs1: r(6),
            imm: 7,
        },
        Instr::Load {
            rd: r(7),
            base: r(8),
            offset: -8,
            size: AccessSize::Byte,
        },
        Instr::Store {
            rs: r(9),
            base: r(10),
            offset: 16,
            size: AccessSize::Half,
        },
        Instr::Branch {
            cond: BranchCond::Geu,
            rs1: r(11),
            rs2: r(12),
            target: 8,
        },
        Instr::Jump { target: 8 },
        Instr::Jal {
            rd: r(31),
            target: 8,
        },
        Instr::Jr { rs: r(31) },
        Instr::Halt,
    ];
    let mut program = Program::from_instrs(instrs);
    program.add_data(Addr(0x9000), vec![1, 0, 0, 0, 0, 0, 0, 0]);
    let text = program_to_asm(&program);
    let reparsed = parse_program(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    assert_eq!(program.instrs(), reparsed.instrs());
    assert_eq!(program.data(), reparsed.data());
}

#[test]
fn every_branch_mnemonic_round_trips() {
    let src = "\
t:      beq  r1, r2, t
        bne  r1, r2, t
        blt  r1, r2, t
        bge  r1, r2, t
        bltu r1, r2, t
        bgeu r1, r2, t
        halt
";
    let p = parse_program(src).unwrap();
    let q = parse_program(&program_to_asm(&p)).unwrap();
    assert_eq!(p.instrs(), q.instrs());
}

#[test]
fn all_load_store_sizes_parse() {
    let src = "\
ld1 r1, (r2)
ld2 r1, (r2)
ld4 r1, (r2)
ld8 r1, (r2)
st1 r1, (r2)
st2 r1, (r2)
st4 r1, (r2)
st8 r1, (r2)
halt
";
    let p = parse_program(src).unwrap();
    assert_eq!(p.len(), 9);
    for (i, size) in AccessSize::ALL.iter().enumerate() {
        match p.instrs()[i] {
            Instr::Load { size: s, .. } => assert_eq!(s, *size),
            ref other => panic!("expected a load, got {other}"),
        }
    }
}

#[test]
fn parse_error_catalogue() {
    let cases: &[(&str, &str)] = &[
        ("movi r32, 1\n", "register"),
        ("movi r1, banana\n", "integer"),
        ("ld8 r1, r2\n", "offset(base)"),
        ("ld8 r1, 8(r2\n", "missing `)`"),
        ("ld3 r1, (r2)\n", "unknown mnemonic"),
        (".data 0x10 1 2\n", ".data wants"),
        ("x y: nop\n", "bad label"),
        ("add r1, r2\n", "3 operands"),
        ("jr\n", "1 operands"),
    ];
    for (src, needle) in cases {
        let e = parse_program(src).unwrap_err();
        assert!(
            e.message.contains(needle),
            "source {src:?}: expected {needle:?} in {:?}",
            e.message
        );
    }
}

#[test]
fn multiple_labels_on_one_line() {
    let p = parse_program("a: b: nop\n j a\n j b\n halt\n").unwrap();
    assert_eq!(p.instrs()[1], Instr::Jump { target: 0 });
    assert_eq!(p.instrs()[2], Instr::Jump { target: 0 });
}

#[test]
fn parsed_program_executes_like_builder_program() {
    // The same algorithm via both front ends must produce identical traces.
    let src = "\
        movi r1, 20
        movi r2, 0x8000
loop:   st8  r1, 0(r2)
        ld8  r3, 0(r2)
        add  r4, r4, r3
        addi r2, r2, 8
        subi r1, r1, 1
        bne  r1, r0, loop
        halt
";
    let parsed = parse_program(src).unwrap();

    let mut asm = aim_isa::Assembler::new();
    asm.movi(r(1), 20);
    asm.movi(r(2), 0x8000);
    asm.label("loop");
    asm.sd(r(1), r(2), 0);
    asm.ld(r(3), r(2), 0);
    asm.add(r(4), r(4), r(3));
    asm.addi(r(2), r(2), 8);
    asm.subi(r(1), r(1), 1);
    asm.bne(r(1), Reg::ZERO, "loop");
    asm.halt();
    let built = asm.assemble().unwrap();

    assert_eq!(parsed.instrs(), built.instrs());
    let ta = Interpreter::new(&parsed).run(10_000).unwrap();
    let tb = Interpreter::new(&built).run(10_000).unwrap();
    assert_eq!(ta.records(), tb.records());
}
