//! Property tests: ISA semantics and assembler behaviour.

use aim_isa::{AluOp, Assembler, BranchCond, Instr, Interpreter, Program, Reg};
use aim_types::AccessSize;
use proptest::prelude::*;

fn alu_reference(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a << (b % 64),
        AluOp::Srl => a >> (b % 64),
        AluOp::Sra => ((a as i64) >> (b % 64)) as u64,
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Sltu => (a < b) as u64,
        AluOp::Mul => a.wrapping_mul(b),
    }
}

const ALU_OPS: [AluOp; 11] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Mul,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every ALU op, executed through the interpreter, matches an
    /// independently written reference semantics.
    #[test]
    fn alu_ops_match_reference(op_idx in 0usize..11, a in any::<u64>(), b in any::<u64>()) {
        let op = ALU_OPS[op_idx];
        let r = Reg::new;
        let program = Program::from_instrs(vec![
            Instr::Alu { op, rd: r(3), rs1: r(1), rs2: r(2) },
            Instr::Halt,
        ]);
        let mut interp = Interpreter::new(&program);
        interp.set_reg(r(1), a);
        interp.set_reg(r(2), b);
        interp.run(10).unwrap();
        prop_assert_eq!(interp.reg(r(3)), alu_reference(op, a, b));
    }

    /// Store-then-load round-trips through memory for every size and offset,
    /// with correct zero-extension.
    #[test]
    fn memory_roundtrip_zero_extends(
        value in any::<u64>(),
        size_idx in 0usize..4,
        word in 0u64..8,
    ) {
        let size = AccessSize::ALL[size_idx];
        let sub_slots = 8 / size.bytes();
        for sub in 0..sub_slots {
            let offset = (word * 8 + sub * size.bytes()) as i64;
            let mut asm = Assembler::new();
            let r = Reg::new;
            asm.movi(r(1), 0x2000);
            asm.movi(r(2), value as i64);
            asm.store(r(2), r(1), offset, size);
            asm.load(r(3), r(1), offset, size);
            asm.halt();
            let program = asm.assemble().unwrap();
            let mut interp = Interpreter::new(&program);
            interp.run(10).unwrap();
            let mask = if size.bytes() == 8 { u64::MAX } else { (1 << (8 * size.bytes())) - 1 };
            prop_assert_eq!(interp.reg(r(3)), value & mask);
        }
    }

    /// Branch conditions agree with their Rust-level comparisons.
    #[test]
    fn branch_conditions_match_reference(a in any::<u64>(), b in any::<u64>()) {
        let cases: [(BranchCond, bool); 6] = [
            (BranchCond::Eq, a == b),
            (BranchCond::Ne, a != b),
            (BranchCond::Lt, (a as i64) < (b as i64)),
            (BranchCond::Ge, (a as i64) >= (b as i64)),
            (BranchCond::Ltu, a < b),
            (BranchCond::Geu, a >= b),
        ];
        for (cond, expect) in cases {
            prop_assert_eq!(cond.eval(a, b), expect, "{:?}", cond);
        }
    }

    /// Any program built of forward branches and ALU ops terminates at its
    /// Halt with a consistent trace: next_pc chains through every record.
    #[test]
    fn trace_next_pc_chains(skips in proptest::collection::vec(any::<bool>(), 1..20)) {
        let mut asm = Assembler::new();
        let r = Reg::new;
        for (i, &skip) in skips.iter().enumerate() {
            let label = format!("l{i}");
            asm.movi(r(1), skip as i64);
            asm.bne(r(1), Reg::ZERO, &label);
            asm.addi(r(2), r(2), 1);
            asm.label(&label);
        }
        asm.halt();
        let program = asm.assemble().unwrap();
        let trace = Interpreter::new(&program).run(10_000).unwrap();
        prop_assert!(trace.halted());
        for w in trace.records().windows(2) {
            prop_assert_eq!(w[0].next_pc, w[1].pc, "trace must chain");
        }
        let skipped = skips.iter().filter(|&&s| s).count();
        let executed_adds = skips.len() - skipped;
        let interp_len = 2 * skips.len() + executed_adds + 1;
        prop_assert_eq!(trace.len(), interp_len);
    }
}
