//! Property tests: LSQ forwarding against an exhaustive byte-wise reference.
//!
//! The reference recomputes every load's value by scanning *all* executed
//! older stores per byte (youngest wins) with memory as the fallback — the
//! specification the LSQ's associative age-prioritized search implements.

use aim_lsq::{Lsq, LsqConfig};
use aim_mem::MainMemory;
use aim_types::{AccessSize, Addr, MemAccess, SeqNum, ViolationKind};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct St {
    slot: u8,
    size_idx: u8,
    sub: u8,
    value: u64,
}

fn st_strategy() -> impl Strategy<Value = St> {
    (0u8..12, 0u8..4, any::<u8>(), any::<u64>()).prop_map(|(slot, size_idx, sub, value)| St {
        slot,
        size_idx,
        sub,
        value,
    })
}

fn mem_access(slot: u8, size_idx: u8, sub: u8) -> MemAccess {
    let size = AccessSize::ALL[size_idx as usize];
    let sub = (sub as u64 % (8 / size.bytes())) * size.bytes();
    MemAccess::new(Addr(0x8000 + (slot as u64 % 12) * 8 + sub), size).unwrap()
}

fn reference_value(
    stores: &[(u64, MemAccess, u64)],
    reader_seq: u64,
    acc: MemAccess,
    mem: &MainMemory,
) -> u64 {
    let mut value = 0u64;
    for (k, byte_idx) in acc.mask().iter_bytes().enumerate() {
        let addr = acc.word_addr().0 + byte_idx as u64;
        let mut byte = mem.read_byte(Addr(addr));
        let mut best = 0u64;
        for (seq, sacc, sval) in stores {
            if *seq < reader_seq
                && *seq > best
                && sacc.word_addr() == acc.word_addr()
                && sacc.mask().contains_byte(byte_idx)
            {
                best = *seq;
                byte = (*sval >> (8 * (addr - sacc.addr().0))) as u8;
            }
        }
        value |= (byte as u64) << (8 * k);
    }
    value
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn forwarding_matches_exhaustive_reference(
        stores in proptest::collection::vec(st_strategy(), 0..24),
        load in (0u8..12, 0u8..4, any::<u8>()),
        mem_seed in any::<u64>(),
    ) {
        let mut mem = MainMemory::new();
        let mut s = mem_seed | 1;
        for slot in 0..12u64 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            mem.write(MemAccess::new(Addr(0x8000 + slot * 8), AccessSize::Double).unwrap(), s);
        }

        let mut lsq = Lsq::new(LsqConfig { load_entries: 4, store_entries: 32 });
        let mut executed = Vec::new();
        for (i, st) in stores.iter().enumerate() {
            let seq = i as u64 + 1;
            let acc = mem_access(st.slot, st.size_idx, st.sub);
            lsq.dispatch_store(SeqNum(seq), seq);
            lsq.store_execute(SeqNum(seq), acc, st.value, &mem);
            executed.push((seq, acc, st.value));
        }
        let load_seq = stores.len() as u64 + 1;
        let lacc = mem_access(load.0, load.1, load.2);
        lsq.dispatch_load(SeqNum(load_seq), load_seq);
        let got = lsq.load_execute(SeqNum(load_seq), lacc, &mem);
        let expect = reference_value(&executed, load_seq, lacc, &mem);
        prop_assert_eq!(got.value, expect);
    }

    /// A late store raises a violation exactly when it changes what an
    /// already-executed younger load should have read (the silent-store
    /// rule).
    #[test]
    fn violations_are_value_based(
        early_value in any::<u64>(),
        late_value in any::<u64>(),
        slot in 0u8..4,
    ) {
        let mut mem = MainMemory::new();
        let acc = mem_access(slot, 3, 0);
        mem.write(acc, early_value);

        let mut lsq = Lsq::new(LsqConfig::baseline_48x32());
        lsq.dispatch_store(SeqNum(1), 0x10);
        lsq.dispatch_load(SeqNum(2), 0x20);
        // The load executes before the older store.
        let got = lsq.load_execute(SeqNum(2), acc, &mem);
        prop_assert_eq!(got.value, early_value);
        let violation = lsq.store_execute(SeqNum(1), acc, late_value, &mem);
        if late_value == early_value {
            prop_assert!(violation.is_none(), "silent store must not be flagged");
        } else {
            let v = violation.expect("value-changing late store must be flagged");
            prop_assert_eq!(v.kind, ViolationKind::True);
            prop_assert_eq!(v.squash_after, SeqNum(1));
        }
    }
}
