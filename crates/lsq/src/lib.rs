//! The idealized load/store queue (LSQ) baseline.
//!
//! The paper compares its SFC/MDT against "a highly idealized LSQ with
//! infinite ports, infinite search bandwidth, and single-cycle bypass
//! latency" (§3). This crate is that baseline:
//!
//! * **Store-to-load forwarding**: when a load executes, it searches the
//!   store queue associatively and age-prioritized — for every requested
//!   byte, the youngest older executed store wins; missing bytes come from
//!   the committed memory.
//! * **Memory disambiguation**: when a store executes, it searches the load
//!   queue for younger loads to overlapping bytes that already executed. The
//!   check is *value-based*, so "the LSQ does not falsely flag memory
//!   ordering violations caused by silent stores" (§2.1, §3): a violation is
//!   raised only if the late store actually changes what the load should
//!   have read.
//! * **Aggressive recovery**: "the load queue supplies the PC of the earliest
//!   load that violated a true dependence ... the load queue enables the
//!   processor to recover from a true dependence violation by flushing the
//!   earliest conflicting load and all subsequent instructions" (§2.4).
//! * **Capacity pressure**: unlike the scalable SFC/MDT, the LSQ's entry
//!   counts (48×32, 120×80, 256×256 in the paper's figures) gate dispatch;
//!   the pipeline stalls when a queue fills — the key effect behind Figure 6.
//!
//! Because it renames in-flight stores to the same address (each store holds
//! its own queue slot), the LSQ never suffers anti or output violations.
//!
//! # Examples
//!
//! ```
//! use aim_lsq::{Lsq, LsqConfig};
//! use aim_mem::MainMemory;
//! use aim_types::{AccessSize, Addr, MemAccess, SeqNum};
//!
//! let mut lsq = Lsq::new(LsqConfig::baseline_48x32());
//! let mem = MainMemory::new();
//! let acc = MemAccess::new(Addr(0x100), AccessSize::Double).unwrap();
//!
//! lsq.dispatch_store(SeqNum(1), 0x10);
//! lsq.dispatch_load(SeqNum(2), 0x14);
//! lsq.store_execute(SeqNum(1), acc, 77, &mem);
//! let got = lsq.load_execute(SeqNum(2), acc, &mem);
//! assert_eq!(got.value, 77); // forwarded from the older store
//! ```

use std::collections::VecDeque;

use aim_mem::MainMemory;
use aim_types::{Addr, MemAccess, SeqNum, ViolationKind};

/// Queue capacities. The paper's figures use 48×32 (baseline), and 120×80 /
/// 256×256 (aggressive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsqConfig {
    /// Load queue entries.
    pub load_entries: usize,
    /// Store queue entries.
    pub store_entries: usize,
}

impl LsqConfig {
    /// The baseline figure-5 LSQ: 48-entry load queue, 32-entry store queue.
    pub fn baseline_48x32() -> LsqConfig {
        LsqConfig {
            load_entries: 48,
            store_entries: 32,
        }
    }

    /// The aggressive figure-6 reference LSQ: 120×80.
    pub fn aggressive_120x80() -> LsqConfig {
        LsqConfig {
            load_entries: 120,
            store_entries: 80,
        }
    }

    /// The large figure-6 LSQ: 256×256.
    pub fn aggressive_256x256() -> LsqConfig {
        LsqConfig {
            load_entries: 256,
            store_entries: 256,
        }
    }
}

/// A true-dependence violation detected by the store-execute search of the
/// load queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsqViolation {
    /// Always [`ViolationKind::True`]; the LSQ renames stores, so anti and
    /// output violations cannot occur.
    pub kind: ViolationKind,
    /// PC of the late-executing store (the producer).
    pub producer_pc: u64,
    /// PC of the earliest conflicting load (the consumer).
    pub consumer_pc: u64,
    /// Squash every instruction with `seq > squash_after` (the earliest
    /// conflicting load is flushed and re-executed).
    pub squash_after: SeqNum,
}

/// The value a load obtains, with forwarding provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsqLoadValue {
    /// The (zero-extended) loaded value.
    pub value: u64,
    /// How many of the access's bytes came from the store queue.
    pub forwarded_bytes: u32,
}

/// Activity counters; the search counts drive the paper's dynamic-power
/// argument (every load searches the SQ, every store searches the LQ).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsqStats {
    /// Associative store-queue searches (one per executed load).
    pub sq_searches: u64,
    /// Associative load-queue searches (one per executed store).
    pub lq_searches: u64,
    /// Loads fully satisfied from the store queue.
    pub full_forwards: u64,
    /// Loads partially satisfied (merged with memory).
    pub partial_forwards: u64,
    /// True dependence violations raised.
    pub violations: u64,
    /// Would-be violations suppressed because the store was silent.
    pub silent_store_suppressions: u64,
    /// Peak load-queue occupancy.
    pub peak_lq: usize,
    /// Peak store-queue occupancy.
    pub peak_sq: usize,
    /// Store-queue entries examined across all searches — each is a CAM
    /// comparator firing, the paper's dynamic-power currency.
    pub sq_entries_compared: u64,
    /// Load-queue entries examined across all searches.
    pub lq_entries_compared: u64,
}

#[derive(Debug, Clone, Copy)]
struct LoadEntry {
    seq: SeqNum,
    pc: u64,
    access: Option<MemAccess>,
    value: u64,
}

#[derive(Debug, Clone, Copy)]
struct StoreEntry {
    seq: SeqNum,
    pc: u64,
    access: Option<MemAccess>,
    value: u64,
}

/// The idealized load/store queue.
#[derive(Debug, Clone)]
pub struct Lsq {
    config: LsqConfig,
    loads: VecDeque<LoadEntry>,
    stores: VecDeque<StoreEntry>,
    stats: LsqStats,
}

impl Lsq {
    /// Creates an empty LSQ.
    pub fn new(config: LsqConfig) -> Lsq {
        Lsq {
            config,
            loads: VecDeque::new(),
            stores: VecDeque::new(),
            stats: LsqStats::default(),
        }
    }

    /// The configured capacities.
    pub fn config(&self) -> LsqConfig {
        self.config
    }

    /// Activity counters.
    pub fn stats(&self) -> LsqStats {
        self.stats
    }

    /// Whether a load can be dispatched (load queue not full).
    pub fn can_dispatch_load(&self) -> bool {
        self.loads.len() < self.config.load_entries
    }

    /// Whether a store can be dispatched (store queue not full).
    pub fn can_dispatch_store(&self) -> bool {
        self.stores.len() < self.config.store_entries
    }

    /// Current (load, store) queue occupancies.
    pub fn occupancy(&self) -> (usize, usize) {
        (self.loads.len(), self.stores.len())
    }

    /// Allocates a load-queue slot at dispatch (program order).
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or `seq` is not the youngest.
    pub fn dispatch_load(&mut self, seq: SeqNum, pc: u64) {
        assert!(self.can_dispatch_load(), "load queue full at dispatch");
        if let Some(tail) = self.loads.back() {
            assert!(tail.seq < seq, "load dispatch out of program order");
        }
        self.loads.push_back(LoadEntry {
            seq,
            pc,
            access: None,
            value: 0,
        });
        self.stats.peak_lq = self.stats.peak_lq.max(self.loads.len());
    }

    /// Allocates a store-queue slot at dispatch (program order).
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or `seq` is not the youngest.
    pub fn dispatch_store(&mut self, seq: SeqNum, pc: u64) {
        assert!(self.can_dispatch_store(), "store queue full at dispatch");
        if let Some(tail) = self.stores.back() {
            assert!(tail.seq < seq, "store dispatch out of program order");
        }
        self.stores.push_back(StoreEntry {
            seq,
            pc,
            access: None,
            value: 0,
        });
        self.stats.peak_sq = self.stats.peak_sq.max(self.stores.len());
    }

    /// Byte-wise resolution: the value an access would read given all
    /// *executed* stores older than `reader_seq`, falling back to committed
    /// memory. A real store queue performs this as one age-prioritized CAM
    /// search over every entry; the model charges one comparison per
    /// occupied entry (see [`LsqStats::sq_entries_compared`]).
    fn resolve(&self, reader_seq: SeqNum, access: MemAccess, mem: &MainMemory) -> (u64, u32) {
        let word = access.word_addr();
        let mut value = 0u64;
        let mut forwarded = 0u32;
        for (k, byte_idx) in access.mask().iter_bytes().enumerate() {
            let byte_addr = Addr(word.0 + byte_idx as u64);
            // Youngest older executed store covering this byte.
            let mut byte: Option<u8> = None;
            for st in self.stores.iter().rev() {
                if st.seq >= reader_seq {
                    continue;
                }
                if let Some(sacc) = st.access {
                    if sacc.word_addr() == word && sacc.mask().contains_byte(byte_idx) {
                        let off = byte_addr.0 - sacc.addr().0;
                        byte = Some((st.value >> (8 * off)) as u8);
                        break;
                    }
                }
            }
            let b = match byte {
                Some(b) => {
                    forwarded += 1;
                    b
                }
                None => mem.read_byte(byte_addr),
            };
            value |= (b as u64) << (8 * k);
        }
        (value, forwarded)
    }

    /// A load executes: associative, age-prioritized search of the store
    /// queue, merged byte-wise with committed memory.
    ///
    /// # Panics
    ///
    /// Panics if `seq` was never dispatched (simulator invariant).
    pub fn load_execute(
        &mut self,
        seq: SeqNum,
        access: MemAccess,
        mem: &MainMemory,
    ) -> LsqLoadValue {
        self.stats.sq_searches += 1;
        self.stats.sq_entries_compared += self.stores.len() as u64;
        let (value, forwarded) = self.resolve(seq, access, mem);
        if forwarded > 0 {
            if forwarded == access.mask().count() {
                self.stats.full_forwards += 1;
            } else {
                self.stats.partial_forwards += 1;
            }
        }
        let entry = self
            .loads
            .iter_mut()
            .find(|l| l.seq == seq)
            .expect("load executed without dispatch");
        entry.access = Some(access);
        entry.value = value;
        LsqLoadValue {
            value,
            forwarded_bytes: forwarded,
        }
    }

    /// A load executes *without* searching the store queue: the caller's
    /// pre-filter (e.g. the filtered backend's store-presence counters)
    /// proved no executed in-flight store can supply any of its bytes, so
    /// the value comes from committed memory alone and no CAM comparator
    /// fires. The load-queue entry is still recorded — disambiguation
    /// against *unexecuted* older stores happens later, in
    /// [`store_execute`](Lsq::store_execute)'s load-queue search, which is
    /// why skipping the store-queue search here is safe.
    ///
    /// # Panics
    ///
    /// Panics if `seq` was never dispatched (simulator invariant).
    pub fn load_execute_unsearched(
        &mut self,
        seq: SeqNum,
        access: MemAccess,
        mem: &MainMemory,
    ) -> LsqLoadValue {
        let word = access.word_addr();
        let mut value = 0u64;
        for (k, byte_idx) in access.mask().iter_bytes().enumerate() {
            let b = mem.read_byte(Addr(word.0 + byte_idx as u64));
            value |= (b as u64) << (8 * k);
        }
        let entry = self
            .loads
            .iter_mut()
            .find(|l| l.seq == seq)
            .expect("load executed without dispatch");
        entry.access = Some(access);
        entry.value = value;
        LsqLoadValue {
            value,
            forwarded_bytes: 0,
        }
    }

    /// A store executes: records its data, then searches the load queue for
    /// younger executed loads whose value the store changes.
    ///
    /// Returns the violation for the *earliest* conflicting load, if any.
    ///
    /// # Panics
    ///
    /// Panics if `seq` was never dispatched (simulator invariant).
    pub fn store_execute(
        &mut self,
        seq: SeqNum,
        access: MemAccess,
        value: u64,
        mem: &MainMemory,
    ) -> Option<LsqViolation> {
        let (pc, prev_access) = {
            let entry = self
                .stores
                .iter_mut()
                .find(|s| s.seq == seq)
                .expect("store executed without dispatch");
            let prev = entry.access;
            entry.access = Some(access);
            entry.value = value;
            (entry.pc, prev)
        };
        debug_assert!(prev_access.is_none(), "store executed twice");

        self.stats.lq_searches += 1;
        self.stats.lq_entries_compared += self.loads.len() as u64;
        let mut earliest: Option<(SeqNum, u64)> = None;
        let mut silent_hit = false;
        // Collect candidate loads first (borrow rules: resolve() needs &self).
        let candidates: Vec<(SeqNum, u64, MemAccess, u64)> = self
            .loads
            .iter()
            .filter_map(|l| {
                let lacc = l.access?;
                (l.seq > seq && lacc.overlaps(access)).then_some((l.seq, l.pc, lacc, l.value))
            })
            .collect();
        for (lseq, lpc, lacc, lvalue) in candidates {
            let (should_be, _) = self.resolve(lseq, lacc, mem);
            if should_be != lvalue {
                if earliest.is_none_or(|(s, _)| lseq < s) {
                    earliest = Some((lseq, lpc));
                }
            } else {
                silent_hit = true;
            }
        }

        match earliest {
            Some((lseq, lpc)) => {
                self.stats.violations += 1;
                Some(LsqViolation {
                    kind: ViolationKind::True,
                    producer_pc: pc,
                    consumer_pc: lpc,
                    squash_after: SeqNum(lseq.0.saturating_sub(1)),
                })
            }
            None => {
                if silent_hit {
                    self.stats.silent_store_suppressions += 1;
                }
                None
            }
        }
    }

    /// A load retires and leaves the queue head.
    ///
    /// # Panics
    ///
    /// Panics if the head is not `seq` (retirement must be in order).
    pub fn load_retire(&mut self, seq: SeqNum) {
        let head = self.loads.pop_front().expect("load retire on empty queue");
        assert_eq!(head.seq, seq, "load retirement out of order");
    }

    /// A store retires and leaves the queue head; returns its access and
    /// value for the commit to memory.
    ///
    /// # Panics
    ///
    /// Panics if the head is not `seq` or the store never executed.
    pub fn store_retire(&mut self, seq: SeqNum) -> (MemAccess, u64) {
        let head = self
            .stores
            .pop_front()
            .expect("store retire on empty queue");
        assert_eq!(head.seq, seq, "store retirement out of order");
        (
            head.access.expect("retiring store never executed"),
            head.value,
        )
    }

    /// Removes all entries younger than `survivor` on a pipeline flush —
    /// "the LSQ recovers from partial pipeline flushes simply by adjusting
    /// its tail pointers" (§2.2).
    pub fn squash_after(&mut self, survivor: SeqNum) {
        while matches!(self.loads.back(), Some(e) if e.seq > survivor) {
            self.loads.pop_back();
        }
        while matches!(self.stores.back(), Some(e) if e.seq > survivor) {
            self.stores.pop_back();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_types::AccessSize;

    fn acc(addr: u64, size: AccessSize) -> MemAccess {
        MemAccess::new(Addr(addr), size).unwrap()
    }

    fn d(addr: u64) -> MemAccess {
        acc(addr, AccessSize::Double)
    }

    fn lsq() -> Lsq {
        Lsq::new(LsqConfig::baseline_48x32())
    }

    #[test]
    fn forwards_from_youngest_older_store() {
        let mut q = lsq();
        let mem = MainMemory::new();
        q.dispatch_store(SeqNum(1), 0x10);
        q.dispatch_store(SeqNum(2), 0x14);
        q.dispatch_load(SeqNum(3), 0x18);
        q.store_execute(SeqNum(1), d(0x100), 0xAAAA, &mem);
        q.store_execute(SeqNum(2), d(0x100), 0xBBBB, &mem);
        let v = q.load_execute(SeqNum(3), d(0x100), &mem);
        assert_eq!(v.value, 0xBBBB); // renaming: the younger store wins
        assert_eq!(v.forwarded_bytes, 8);
        assert_eq!(q.stats().full_forwards, 1);
    }

    #[test]
    fn younger_store_does_not_forward_to_older_load() {
        let mut q = lsq();
        let mut mem = MainMemory::new();
        mem.write(d(0x100), 0x1111);
        q.dispatch_load(SeqNum(1), 0x10);
        q.dispatch_store(SeqNum(2), 0x14);
        q.store_execute(SeqNum(2), d(0x100), 0x2222, &mem);
        let v = q.load_execute(SeqNum(1), d(0x100), &mem);
        assert_eq!(v.value, 0x1111); // from memory: store is younger
        assert_eq!(v.forwarded_bytes, 0);
    }

    #[test]
    fn partial_forward_merges_with_memory() {
        let mut q = lsq();
        let mut mem = MainMemory::new();
        mem.write(d(0x100), 0x8877_6655_4433_2211);
        q.dispatch_store(SeqNum(1), 0x10);
        q.dispatch_load(SeqNum(2), 0x14);
        q.store_execute(SeqNum(1), acc(0x100, AccessSize::Word), 0xEEEE_FFFF, &mem);
        let v = q.load_execute(SeqNum(2), d(0x100), &mem);
        assert_eq!(v.value, 0x8877_6655_EEEE_FFFF);
        assert_eq!(v.forwarded_bytes, 4);
        assert_eq!(q.stats().partial_forwards, 1);
    }

    #[test]
    fn late_store_raises_true_violation() {
        let mut q = lsq();
        let mem = MainMemory::new();
        q.dispatch_store(SeqNum(1), 0x10);
        q.dispatch_load(SeqNum(2), 0x14);
        q.load_execute(SeqNum(2), d(0x100), &mem); // reads 0 from memory
        let v = q.store_execute(SeqNum(1), d(0x100), 7, &mem).unwrap();
        assert_eq!(v.kind, ViolationKind::True);
        assert_eq!(v.producer_pc, 0x10);
        assert_eq!(v.consumer_pc, 0x14);
        assert_eq!(v.squash_after, SeqNum(1)); // flush the load itself
    }

    #[test]
    fn silent_store_is_not_flagged() {
        let mut q = lsq();
        let mut mem = MainMemory::new();
        mem.write(d(0x100), 7);
        q.dispatch_store(SeqNum(1), 0x10);
        q.dispatch_load(SeqNum(2), 0x14);
        q.load_execute(SeqNum(2), d(0x100), &mem); // reads 7
                                                   // The late store writes the same 7: silent, no violation.
        assert!(q.store_execute(SeqNum(1), d(0x100), 7, &mem).is_none());
        assert_eq!(q.stats().silent_store_suppressions, 1);
        assert_eq!(q.stats().violations, 0);
    }

    #[test]
    fn overwritten_silent_store_case_from_paper() {
        // ST A (silent w.r.t. later ST B) completes after ST B and LD both
        // completed; the load got B's value, which is still what it should
        // read. No violation.
        let mut q = lsq();
        let mem = MainMemory::new();
        q.dispatch_store(SeqNum(1), 0x10); // ST x <- 5 (late)
        q.dispatch_store(SeqNum(2), 0x14); // ST x <- 9
        q.dispatch_load(SeqNum(3), 0x18); // LD x
        q.store_execute(SeqNum(2), d(0x100), 9, &mem);
        q.load_execute(SeqNum(3), d(0x100), &mem); // gets 9, correct
        assert!(q.store_execute(SeqNum(1), d(0x100), 5, &mem).is_none());
    }

    #[test]
    fn earliest_conflicting_load_selected() {
        let mut q = lsq();
        let mem = MainMemory::new();
        q.dispatch_store(SeqNum(1), 0x10);
        q.dispatch_load(SeqNum(2), 0x14);
        q.dispatch_load(SeqNum(3), 0x18);
        q.load_execute(SeqNum(3), d(0x100), &mem);
        q.load_execute(SeqNum(2), d(0x100), &mem);
        let v = q.store_execute(SeqNum(1), d(0x100), 1, &mem).unwrap();
        assert_eq!(v.squash_after, SeqNum(1)); // flush from load #2
        assert_eq!(v.consumer_pc, 0x14);
    }

    #[test]
    fn non_overlapping_accesses_do_not_conflict() {
        let mut q = lsq();
        let mem = MainMemory::new();
        q.dispatch_store(SeqNum(1), 0x10);
        q.dispatch_load(SeqNum(2), 0x14);
        q.load_execute(SeqNum(2), d(0x108), &mem);
        assert!(q.store_execute(SeqNum(1), d(0x100), 1, &mem).is_none());
    }

    #[test]
    fn capacity_gates_dispatch() {
        let mut q = Lsq::new(LsqConfig {
            load_entries: 1,
            store_entries: 1,
        });
        q.dispatch_load(SeqNum(1), 0);
        assert!(!q.can_dispatch_load());
        assert!(q.can_dispatch_store());
        q.dispatch_store(SeqNum(2), 0);
        assert!(!q.can_dispatch_store());
        q.load_retire(SeqNum(1));
        assert!(q.can_dispatch_load());
    }

    #[test]
    fn retire_returns_store_data_in_order() {
        let mut q = lsq();
        let mem = MainMemory::new();
        q.dispatch_store(SeqNum(1), 0x10);
        q.dispatch_store(SeqNum(2), 0x14);
        q.store_execute(SeqNum(1), d(0x100), 11, &mem);
        q.store_execute(SeqNum(2), d(0x108), 22, &mem);
        assert_eq!(q.store_retire(SeqNum(1)), (d(0x100), 11));
        assert_eq!(q.store_retire(SeqNum(2)), (d(0x108), 22));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_retire_panics() {
        let mut q = lsq();
        q.dispatch_load(SeqNum(1), 0);
        q.dispatch_load(SeqNum(2), 0);
        q.load_retire(SeqNum(2));
    }

    #[test]
    fn squash_trims_both_queues() {
        let mut q = lsq();
        q.dispatch_load(SeqNum(1), 0);
        q.dispatch_store(SeqNum(2), 0);
        q.dispatch_load(SeqNum(3), 0);
        q.dispatch_store(SeqNum(4), 0);
        q.squash_after(SeqNum(2));
        assert_eq!(q.occupancy(), (1, 1));
        // Squashed slots are reusable.
        q.dispatch_load(SeqNum(5), 0);
        q.dispatch_store(SeqNum(6), 0);
        assert_eq!(q.occupancy(), (2, 2));
    }

    #[test]
    fn squashed_store_no_longer_forwards() {
        let mut q = lsq();
        let mem = MainMemory::new();
        q.dispatch_store(SeqNum(1), 0x10);
        q.store_execute(SeqNum(1), d(0x100), 0xAA, &mem);
        q.squash_after(SeqNum(0));
        q.dispatch_load(SeqNum(2), 0x14);
        let v = q.load_execute(SeqNum(2), d(0x100), &mem);
        assert_eq!(v.value, 0); // memory, not the squashed store
    }

    #[test]
    fn search_counters_accumulate() {
        let mut q = lsq();
        let mem = MainMemory::new();
        q.dispatch_store(SeqNum(1), 0);
        q.dispatch_load(SeqNum(2), 0);
        q.store_execute(SeqNum(1), d(0x100), 1, &mem);
        q.load_execute(SeqNum(2), d(0x100), &mem);
        assert_eq!(q.stats().sq_searches, 1);
        assert_eq!(q.stats().lq_searches, 1);
        assert_eq!(q.stats().sq_entries_compared, 1);
        assert_eq!(q.stats().peak_lq, 1);
        assert_eq!(q.stats().peak_sq, 1);
    }

    #[test]
    fn unsearched_load_reads_memory_and_fires_no_comparators() {
        let mut q = lsq();
        let mut mem = MainMemory::new();
        mem.write(d(0x108), 0x5A5A);
        q.dispatch_store(SeqNum(1), 0x10);
        q.dispatch_load(SeqNum(2), 0x14);
        q.store_execute(SeqNum(1), d(0x100), 7, &mem);
        let v = q.load_execute_unsearched(SeqNum(2), d(0x108), &mem);
        assert_eq!(v.value, 0x5A5A);
        assert_eq!(v.forwarded_bytes, 0);
        assert_eq!(q.stats().sq_searches, 0);
        assert_eq!(q.stats().sq_entries_compared, 0);
    }

    #[test]
    fn unsearched_load_is_still_seen_by_store_disambiguation() {
        // The unsearched path must leave the load visible to the safety-net
        // load-queue search an older store performs when it finally executes.
        let mut q = lsq();
        let mem = MainMemory::new();
        q.dispatch_store(SeqNum(1), 0x10);
        q.dispatch_load(SeqNum(2), 0x14);
        q.load_execute_unsearched(SeqNum(2), d(0x100), &mem); // reads 0
        let v = q.store_execute(SeqNum(1), d(0x100), 9, &mem).unwrap();
        assert_eq!(v.kind, ViolationKind::True);
        assert_eq!(v.squash_after, SeqNum(1));
    }
}
