//! Memory substrate for the `aim-sim` simulator.
//!
//! This crate provides everything below the processor's memory-ordering
//! machinery:
//!
//! * [`MainMemory`] — a sparse, byte-addressable 64-bit memory holding the
//!   *committed* architectural state. Speculative store data never lands here;
//!   it lives in the store queue (LSQ backend) or the store forwarding cache
//!   (SFC backend) until retirement.
//! * [`Cache`] — a generic set-associative, LRU, tag-only cache model used for
//!   the L1 instruction, L1 data and unified L2 caches. Data always comes from
//!   [`MainMemory`]; the cache models *timing* (hits and misses), matching the
//!   methodology of the paper, whose caches supply latencies while retirement
//!   results are validated against an architectural trace.
//! * [`CacheHierarchy`] — the L1I/L1D/L2 arrangement of the paper's Figure 4
//!   with its 10/10/100-cycle miss latencies.
//! * [`MemSpec`] — the canonical per-tier description of the whole memory
//!   system (cache geometries, latency ladder, optional far tier), threaded
//!   through the `SimConfig` builder and the wire `JobSpec` alike.
//! * [`FarMemory`] — an optional high-latency far-memory tier behind the
//!   shared L2 (hundreds-of-cycles loads, MSHR-bounded in-flight misses,
//!   batched completion), enabled via [`MemSpec::far`].
//! * [`SharedMemSystem`] / [`CoreMemSys`] — the multi-core split of the same
//!   hierarchy: private per-core L1s in front of one shared L2 and one
//!   committed memory, behind a single-threaded [`SharedHandle`].
//! * [`StoreFifo`] — the paper's non-associative store FIFO: "a store enters
//!   the non-associative store FIFO at dispatch, writes its data and address
//!   to the FIFO during execution, and exits the FIFO at retirement" (Fig. 1).
//!
//! # Examples
//!
//! ```
//! use aim_mem::MainMemory;
//! use aim_types::{AccessSize, Addr, MemAccess};
//!
//! let mut mem = MainMemory::new();
//! let acc = MemAccess::new(Addr(0x1000), AccessSize::Word).unwrap();
//! mem.write(acc, 0xdead_beef);
//! assert_eq!(mem.read(acc), 0xdead_beef);
//! ```

mod cache;
mod far;
mod hierarchy;
mod memory;
mod shared;
mod store_fifo;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use far::{FarMemory, FarSpec, FarStats};
pub use hierarchy::{CacheHierarchy, HierarchyConfig, MemLevel, MemSpec};
pub use memory::MainMemory;
pub use shared::{CoreMemSys, SharedHandle, SharedMemSystem};
pub use store_fifo::{StoreFifo, StoreFifoEntry};
