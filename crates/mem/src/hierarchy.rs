//! The L1I / L1D / L2 cache hierarchy of the paper's Figure 4, and the
//! canonical [`MemSpec`] describing every tier of the memory system.

use std::fmt;

use aim_types::Addr;

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::far::FarSpec;

/// Which level of the hierarchy served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemLevel {
    /// Served by the first-level cache.
    L1,
    /// Missed L1, hit the unified L2.
    L2,
    /// Missed both caches; served by main memory.
    Memory,
}

/// The canonical per-tier description of the memory system: cache
/// geometries, the latency ladder, and (optionally) the far-memory tier.
///
/// This is the single config type every layer threads — the `SimConfig`
/// builder's `.mem(..)` knob, the shared memory system, the wire
/// `JobSpec`, and the content-addressed cache key all speak `MemSpec`.
/// The legacy name [`HierarchyConfig`] is an alias.
///
/// Defaults reproduce Figure 4 of the paper (no far tier):
///
/// | cache | geometry | miss latency |
/// |---|---|---|
/// | L1 I | 8 KB, 2-way, 128 B lines | 10 cycles |
/// | L1 D | 8 KB, 4-way, 64 B lines | 10 cycles |
/// | L2 | 512 KB, 8-way, 128 B lines | 100 cycles |
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct MemSpec {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Cycles for an L1 hit (pipelined load-use latency).
    pub l1_hit_cycles: u64,
    /// Additional cycles when an access misses L1 and hits L2.
    pub l1_miss_cycles: u64,
    /// Additional cycles when an access misses L2 and is served by near
    /// memory. Ignored when a far tier is configured — the far tier
    /// replaces the backing store and its completion time replaces this
    /// ladder step.
    pub l2_miss_cycles: u64,
    /// The far-memory tier behind the shared L2, if any.
    pub far: Option<FarSpec>,
}

/// The pre-`MemSpec` name of the memory config, kept as an alias so the
/// original call sites (and their serialized `Debug` text) keep working.
pub type HierarchyConfig = MemSpec;

impl Default for MemSpec {
    fn default() -> MemSpec {
        MemSpec {
            l1i: CacheConfig::new(8 * 1024, 2, 128),
            l1d: CacheConfig::new(8 * 1024, 4, 64),
            l2: CacheConfig::new(512 * 1024, 8, 128),
            l1_hit_cycles: 1,
            l1_miss_cycles: 10,
            l2_miss_cycles: 100,
            far: None,
        }
    }
}

impl MemSpec {
    /// The paper's Figure 4 hierarchy (the [`Default`]), spelled as a
    /// builder entry point.
    pub fn figure4() -> MemSpec {
        MemSpec::default()
    }

    /// Returns the spec with a far-memory tier behind the shared L2.
    pub fn with_far(mut self, far: FarSpec) -> MemSpec {
        self.far = Some(far);
        self
    }

    /// Returns the spec with a different near-memory (L2-miss) latency.
    pub fn with_l2_miss_cycles(mut self, cycles: u64) -> MemSpec {
        self.l2_miss_cycles = cycles;
        self
    }

    /// The far-memory coalescing granule for `addr`: the L2 line number
    /// (far misses are tracked at the granularity of the L2 fill).
    pub fn far_line(&self, addr: Addr) -> u64 {
        addr.0 / self.l2.line_bytes() as u64
    }
}

/// **Compatibility contract** (the content-addressed result cache and the
/// hostperf stats fingerprint both hash `Debug` text): a `MemSpec` without
/// a far tier renders byte-identically to the pre-refactor derived
/// `HierarchyConfig` output, so every pre-existing config keeps its cache
/// key. Only a spec with `far: Some(..)` renders the new field (under the
/// `MemSpec` name) — a genuinely new machine, so a new key is correct.
impl fmt::Debug for MemSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct(if self.far.is_some() {
            "MemSpec"
        } else {
            "HierarchyConfig"
        });
        d.field("l1i", &self.l1i)
            .field("l1d", &self.l1d)
            .field("l2", &self.l2)
            .field("l1_hit_cycles", &self.l1_hit_cycles)
            .field("l1_miss_cycles", &self.l1_miss_cycles)
            .field("l2_miss_cycles", &self.l2_miss_cycles);
        if self.far.is_some() {
            d.field("far", &self.far);
        }
        d.finish()
    }
}

/// The simulated machine's cache hierarchy: split L1, unified L2.
///
/// Purely a timing model — see [`Cache`]. Instruction fetches probe L1I→L2;
/// data accesses probe L1D→L2. Store commits update tags like loads (write-
/// allocate) but the commit itself is buffered and never stalls retirement.
///
/// This is the legacy self-contained form with a flat near-memory backing
/// latency; it ignores any [`MemSpec::far`] tier. The pipeline runs on the
/// multi-core split ([`CoreMemSys`](crate::CoreMemSys) over a
/// [`SharedMemSystem`](crate::SharedMemSystem)), which is where the
/// far-memory tier is modeled.
///
/// # Examples
///
/// ```
/// use aim_mem::{CacheHierarchy, HierarchyConfig, MemLevel};
/// use aim_types::Addr;
///
/// let mut h = CacheHierarchy::new(HierarchyConfig::default());
/// let (level, lat) = h.access_data(Addr(0x4000));
/// assert_eq!(level, MemLevel::Memory); // cold
/// let (level, lat2) = h.access_data(Addr(0x4000));
/// assert_eq!(level, MemLevel::L1);
/// assert!(lat2 < lat);
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
}

impl CacheHierarchy {
    /// Builds an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> CacheHierarchy {
        CacheHierarchy {
            config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
        }
    }

    /// The configured parameters.
    pub fn config(&self) -> HierarchyConfig {
        self.config
    }

    fn access(
        l1: &mut Cache,
        l2: &mut Cache,
        cfg: &HierarchyConfig,
        addr: Addr,
    ) -> (MemLevel, u64) {
        if l1.access(addr) {
            (MemLevel::L1, cfg.l1_hit_cycles)
        } else if l2.access(addr) {
            (MemLevel::L2, cfg.l1_hit_cycles + cfg.l1_miss_cycles)
        } else {
            (
                MemLevel::Memory,
                cfg.l1_hit_cycles + cfg.l1_miss_cycles + cfg.l2_miss_cycles,
            )
        }
    }

    /// Fetches an instruction address; returns the serving level and latency.
    pub fn access_instr(&mut self, addr: Addr) -> (MemLevel, u64) {
        Self::access(&mut self.l1i, &mut self.l2, &self.config, addr)
    }

    /// Accesses a data address (load, or store commit); returns the serving
    /// level and latency in cycles.
    pub fn access_data(&mut self, addr: Addr) -> (MemLevel, u64) {
        Self::access(&mut self.l1d, &mut self.l2, &self.config, addr)
    }

    /// Hit/miss counters for (L1I, L1D, L2).
    pub fn stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        (self.l1i.stats(), self.l1d.stats(), self.l2.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_figure4() {
        let cfg = HierarchyConfig::default();
        assert_eq!(cfg.l1i.capacity_bytes(), 8 * 1024);
        assert_eq!(cfg.l1i.ways(), 2);
        assert_eq!(cfg.l1i.line_bytes(), 128);
        assert_eq!(cfg.l1d.ways(), 4);
        assert_eq!(cfg.l1d.line_bytes(), 64);
        assert_eq!(cfg.l2.capacity_bytes(), 512 * 1024);
        assert_eq!(cfg.l2.ways(), 8);
        assert_eq!(cfg.l1_miss_cycles, 10);
        assert_eq!(cfg.l2_miss_cycles, 100);
    }

    #[test]
    fn latency_ladder() {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        let (lv0, lat0) = h.access_data(Addr(0x9000));
        assert_eq!((lv0, lat0), (MemLevel::Memory, 111));
        let (lv1, lat1) = h.access_data(Addr(0x9000));
        assert_eq!((lv1, lat1), (MemLevel::L1, 1));
        // A different address in the same L2 line but a different L1D line:
        // L1D lines are 64 B, L2 lines are 128 B.
        let (lv2, lat2) = h.access_data(Addr(0x9040));
        assert_eq!((lv2, lat2), (MemLevel::L2, 11));
    }

    #[test]
    fn instruction_and_data_paths_are_split() {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        h.access_instr(Addr(0x100));
        // Same address on the data side still misses L1D (but hits the
        // unified L2, which the instruction fill populated).
        let (lv, _) = h.access_data(Addr(0x100));
        assert_eq!(lv, MemLevel::L2);
    }

    #[test]
    fn debug_without_far_matches_the_legacy_derived_text() {
        // The compatibility contract: the cache key and the stats
        // fingerprint hash Debug text, so a far-less MemSpec must render
        // exactly as the old derived HierarchyConfig did.
        let text = format!("{:?}", MemSpec::default());
        assert_eq!(
            text,
            "HierarchyConfig { \
             l1i: CacheConfig { capacity_bytes: 8192, ways: 2, line_bytes: 128 }, \
             l1d: CacheConfig { capacity_bytes: 8192, ways: 4, line_bytes: 64 }, \
             l2: CacheConfig { capacity_bytes: 524288, ways: 8, line_bytes: 128 }, \
             l1_hit_cycles: 1, l1_miss_cycles: 10, l2_miss_cycles: 100 }"
        );
        assert!(!text.contains("far"));
    }

    #[test]
    fn debug_with_far_renders_the_new_surface() {
        let spec = MemSpec::figure4().with_far(FarSpec::new(400, 64, 8));
        let text = format!("{spec:?}");
        assert!(text.starts_with("MemSpec {"), "{text}");
        assert!(
            text.contains("far: Some(FarSpec { latency: 400, mshrs: 64, batch: 8 })"),
            "{text}"
        );
    }

    #[test]
    fn far_line_uses_the_l2_line_size() {
        let spec = MemSpec::default(); // 128 B L2 lines
        assert_eq!(spec.far_line(Addr(0)), 0);
        assert_eq!(spec.far_line(Addr(127)), 0);
        assert_eq!(spec.far_line(Addr(128)), 1);
    }

    #[test]
    fn stats_attribution() {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        h.access_instr(Addr(0));
        h.access_data(Addr(0));
        h.access_data(Addr(0));
        let (i, d, l2) = h.stats();
        assert_eq!(i.accesses(), 1);
        assert_eq!(d.accesses(), 2);
        assert_eq!(d.hits, 1);
        assert_eq!(l2.accesses(), 2); // one I-side miss, one D-side miss
    }
}
