//! The L1I / L1D / L2 cache hierarchy of the paper's Figure 4.

use aim_types::Addr;

use crate::cache::{Cache, CacheConfig, CacheStats};

/// Which level of the hierarchy served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemLevel {
    /// Served by the first-level cache.
    L1,
    /// Missed L1, hit the unified L2.
    L2,
    /// Missed both caches; served by main memory.
    Memory,
}

/// Latency and geometry parameters for [`CacheHierarchy`].
///
/// Defaults reproduce Figure 4 of the paper:
///
/// | cache | geometry | miss latency |
/// |---|---|---|
/// | L1 I | 8 KB, 2-way, 128 B lines | 10 cycles |
/// | L1 D | 8 KB, 4-way, 64 B lines | 10 cycles |
/// | L2 | 512 KB, 8-way, 128 B lines | 100 cycles |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Cycles for an L1 hit (pipelined load-use latency).
    pub l1_hit_cycles: u64,
    /// Additional cycles when an access misses L1 and hits L2.
    pub l1_miss_cycles: u64,
    /// Additional cycles when an access misses L2.
    pub l2_miss_cycles: u64,
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig::new(8 * 1024, 2, 128),
            l1d: CacheConfig::new(8 * 1024, 4, 64),
            l2: CacheConfig::new(512 * 1024, 8, 128),
            l1_hit_cycles: 1,
            l1_miss_cycles: 10,
            l2_miss_cycles: 100,
        }
    }
}

/// The simulated machine's cache hierarchy: split L1, unified L2.
///
/// Purely a timing model — see [`Cache`]. Instruction fetches probe L1I→L2;
/// data accesses probe L1D→L2. Store commits update tags like loads (write-
/// allocate) but the commit itself is buffered and never stalls retirement.
///
/// # Examples
///
/// ```
/// use aim_mem::{CacheHierarchy, HierarchyConfig, MemLevel};
/// use aim_types::Addr;
///
/// let mut h = CacheHierarchy::new(HierarchyConfig::default());
/// let (level, lat) = h.access_data(Addr(0x4000));
/// assert_eq!(level, MemLevel::Memory); // cold
/// let (level, lat2) = h.access_data(Addr(0x4000));
/// assert_eq!(level, MemLevel::L1);
/// assert!(lat2 < lat);
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
}

impl CacheHierarchy {
    /// Builds an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> CacheHierarchy {
        CacheHierarchy {
            config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
        }
    }

    /// The configured parameters.
    pub fn config(&self) -> HierarchyConfig {
        self.config
    }

    fn access(
        l1: &mut Cache,
        l2: &mut Cache,
        cfg: &HierarchyConfig,
        addr: Addr,
    ) -> (MemLevel, u64) {
        if l1.access(addr) {
            (MemLevel::L1, cfg.l1_hit_cycles)
        } else if l2.access(addr) {
            (MemLevel::L2, cfg.l1_hit_cycles + cfg.l1_miss_cycles)
        } else {
            (
                MemLevel::Memory,
                cfg.l1_hit_cycles + cfg.l1_miss_cycles + cfg.l2_miss_cycles,
            )
        }
    }

    /// Fetches an instruction address; returns the serving level and latency.
    pub fn access_instr(&mut self, addr: Addr) -> (MemLevel, u64) {
        Self::access(&mut self.l1i, &mut self.l2, &self.config, addr)
    }

    /// Accesses a data address (load, or store commit); returns the serving
    /// level and latency in cycles.
    pub fn access_data(&mut self, addr: Addr) -> (MemLevel, u64) {
        Self::access(&mut self.l1d, &mut self.l2, &self.config, addr)
    }

    /// Hit/miss counters for (L1I, L1D, L2).
    pub fn stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        (self.l1i.stats(), self.l1d.stats(), self.l2.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_figure4() {
        let cfg = HierarchyConfig::default();
        assert_eq!(cfg.l1i.capacity_bytes(), 8 * 1024);
        assert_eq!(cfg.l1i.ways(), 2);
        assert_eq!(cfg.l1i.line_bytes(), 128);
        assert_eq!(cfg.l1d.ways(), 4);
        assert_eq!(cfg.l1d.line_bytes(), 64);
        assert_eq!(cfg.l2.capacity_bytes(), 512 * 1024);
        assert_eq!(cfg.l2.ways(), 8);
        assert_eq!(cfg.l1_miss_cycles, 10);
        assert_eq!(cfg.l2_miss_cycles, 100);
    }

    #[test]
    fn latency_ladder() {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        let (lv0, lat0) = h.access_data(Addr(0x9000));
        assert_eq!((lv0, lat0), (MemLevel::Memory, 111));
        let (lv1, lat1) = h.access_data(Addr(0x9000));
        assert_eq!((lv1, lat1), (MemLevel::L1, 1));
        // A different address in the same L2 line but a different L1D line:
        // L1D lines are 64 B, L2 lines are 128 B.
        let (lv2, lat2) = h.access_data(Addr(0x9040));
        assert_eq!((lv2, lat2), (MemLevel::L2, 11));
    }

    #[test]
    fn instruction_and_data_paths_are_split() {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        h.access_instr(Addr(0x100));
        // Same address on the data side still misses L1D (but hits the
        // unified L2, which the instruction fill populated).
        let (lv, _) = h.access_data(Addr(0x100));
        assert_eq!(lv, MemLevel::L2);
    }

    #[test]
    fn stats_attribution() {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        h.access_instr(Addr(0));
        h.access_data(Addr(0));
        h.access_data(Addr(0));
        let (i, d, l2) = h.stats();
        assert_eq!(i.accesses(), 1);
        assert_eq!(d.accesses(), 2);
        assert_eq!(d.hits, 1);
        assert_eq!(l2.accesses(), 2); // one I-side miss, one D-side miss
    }
}
