//! Sparse, byte-addressable committed memory.

use std::collections::HashMap;

use aim_types::{Addr, MemAccess};

const PAGE_SHIFT: u64 = 12;
const PAGE_BYTES: usize = 1 << PAGE_SHIFT;

/// Sparse, byte-addressable 64-bit main memory.
///
/// Holds the *committed* architectural memory state. Reads of unmapped bytes
/// return zero (the simulated machine's memory is zero-initialized), which
/// also gives wrong-path loads to arbitrary addresses a well-defined value —
/// the paper's simulator likewise "executes all instructions, including those
/// on mispredicted paths".
///
/// All multi-byte values are little-endian.
///
/// # Examples
///
/// ```
/// use aim_mem::MainMemory;
/// use aim_types::{AccessSize, Addr, MemAccess};
///
/// let mut mem = MainMemory::new();
/// let lo = MemAccess::new(Addr(0x10), AccessSize::Word).unwrap();
/// mem.write(lo, 0x1122_3344);
/// let byte = MemAccess::new(Addr(0x11), AccessSize::Byte).unwrap();
/// assert_eq!(mem.read(byte), 0x33);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MainMemory {
    pages: HashMap<u64, Box<[u8]>>,
}

impl MainMemory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> MainMemory {
        MainMemory::default()
    }

    /// Reads one byte; unmapped bytes read as zero.
    #[inline]
    pub fn read_byte(&self, addr: Addr) -> u8 {
        let page = addr.0 >> PAGE_SHIFT;
        let off = (addr.0 as usize) & (PAGE_BYTES - 1);
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    /// Writes one byte, allocating the containing page on demand.
    #[inline]
    pub fn write_byte(&mut self, addr: Addr, value: u8) {
        let page = addr.0 >> PAGE_SHIFT;
        let off = (addr.0 as usize) & (PAGE_BYTES - 1);
        let p = self
            .pages
            .entry(page)
            .or_insert_with(|| vec![0u8; PAGE_BYTES].into_boxed_slice());
        p[off] = value;
    }

    /// Reads an aligned access as a little-endian, zero-extended value.
    pub fn read(&self, access: MemAccess) -> u64 {
        let mut v = 0u64;
        for i in 0..access.size().bytes() {
            let b = self.read_byte(access.addr().wrapping_add(i));
            v |= (b as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `size` bytes of `value` at an aligned access,
    /// little-endian.
    pub fn write(&mut self, access: MemAccess, value: u64) {
        for i in 0..access.size().bytes() {
            self.write_byte(access.addr().wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Copies `bytes` into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_byte(addr.wrapping_add(i as u64), b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: Addr, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_byte(addr.wrapping_add(i as u64)))
            .collect()
    }

    /// Number of 4 KiB pages currently allocated.
    pub fn allocated_pages(&self) -> usize {
        self.pages.len()
    }

    /// Every non-zero byte as `(address, value)`, sorted by address.
    ///
    /// Because unmapped bytes read as zero, two memories with the same
    /// non-zero byte set are architecturally indistinguishable — this is the
    /// canonical form the cross-backend parity tests compare.
    pub fn nonzero_bytes(&self) -> Vec<(u64, u8)> {
        let mut out = Vec::new();
        for (&page, bytes) in &self.pages {
            let base = page << PAGE_SHIFT;
            for (off, &b) in bytes.iter().enumerate() {
                if b != 0 {
                    out.push((base + off as u64, b));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_types::AccessSize;

    fn acc(addr: u64, size: AccessSize) -> MemAccess {
        MemAccess::new(Addr(addr), size).unwrap()
    }

    #[test]
    fn unmapped_reads_zero() {
        let mem = MainMemory::new();
        assert_eq!(mem.read(acc(0xdead_0000, AccessSize::Double)), 0);
        assert_eq!(mem.read_byte(Addr(u64::MAX)), 0);
    }

    #[test]
    fn write_read_roundtrip_all_sizes() {
        let mut mem = MainMemory::new();
        for (i, &size) in AccessSize::ALL.iter().enumerate() {
            let a = acc(0x1000 + 16 * i as u64, size);
            let v = 0x8877_6655_4433_2211u64;
            mem.write(a, v);
            let expect = if size.bytes() == 8 {
                v
            } else {
                v & ((1u64 << (8 * size.bytes())) - 1)
            };
            assert_eq!(mem.read(a), expect, "size {size}");
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = MainMemory::new();
        mem.write(acc(0x2000, AccessSize::Double), 0x0102_0304_0506_0708);
        assert_eq!(mem.read_byte(Addr(0x2000)), 0x08);
        assert_eq!(mem.read_byte(Addr(0x2007)), 0x01);
        assert_eq!(mem.read(acc(0x2004, AccessSize::Word)), 0x0102_0304);
    }

    #[test]
    fn page_boundary_block_copy() {
        let mut mem = MainMemory::new();
        let start = Addr((1 << 12) - 2);
        mem.write_bytes(start, &[1, 2, 3, 4]);
        assert_eq!(mem.read_bytes(start, 4), vec![1, 2, 3, 4]);
        assert_eq!(mem.allocated_pages(), 2);
    }

    #[test]
    fn partial_overwrite_preserves_neighbors() {
        let mut mem = MainMemory::new();
        mem.write(acc(0x3000, AccessSize::Double), u64::MAX);
        mem.write(acc(0x3002, AccessSize::Half), 0);
        assert_eq!(
            mem.read(acc(0x3000, AccessSize::Double)),
            0xffff_ffff_0000_ffff
        );
    }
}
