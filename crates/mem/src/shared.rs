//! The shared memory system: one committed [`MainMemory`] and one unified
//! L2 cache, shared by N per-core memory systems.
//!
//! This is the multi-core split of [`CacheHierarchy`](crate::CacheHierarchy):
//! the L1 instruction and data caches are private to a core (they live in
//! [`CoreMemSys`]), while the L2 and committed memory are process-wide state
//! behind a [`SharedHandle`]. A single-core machine is the degenerate case —
//! one `CoreMemSys` holding the only handle — and its hit/miss/latency
//! behavior is operation-for-operation identical to `CacheHierarchy`, which
//! is what the N=1 stats-fingerprint gate in `table_hostperf --check`
//! asserts.
//!
//! Sharing is single-threaded by design (`Rc<RefCell<..>>`): the multi-core
//! scheduler interleaves cores deterministically on one host thread, which
//! keeps every simulated schedule reproducible from its seed. Cross-thread
//! parallelism stays where it already is — *between* independent
//! simulations in `run_matrix`, never inside one machine.
//!
//! The defined cross-core commit point is a store's retirement (or its
//! head-of-ROB bypass, which can only happen when every older instruction
//! of that core has already retired): [`CoreMemSys::write`] is the only
//! path by which a core's store becomes visible to its siblings, so
//! committed stores from different cores interleave in retirement order
//! under whatever core schedule the driver runs.
//!
//! # Examples
//!
//! ```
//! use aim_mem::{CoreMemSys, HierarchyConfig, MainMemory, MemLevel, SharedMemSystem};
//! use aim_types::Addr;
//!
//! let shared = SharedMemSystem::new(MainMemory::new(), HierarchyConfig::default()).into_handle();
//! let mut c0 = CoreMemSys::attach(0, HierarchyConfig::default(), shared.clone());
//! let mut c1 = CoreMemSys::attach(1, HierarchyConfig::default(), shared);
//!
//! let (level, _) = c0.access_data(Addr(0x4000));
//! assert_eq!(level, MemLevel::Memory); // cold everywhere
//! // Core 1 misses its private L1D but hits the shared L2 that core 0 filled.
//! let (level, _) = c1.access_data(Addr(0x4000));
//! assert_eq!(level, MemLevel::L2);
//! ```

use std::cell::{Ref, RefCell};
use std::rc::Rc;

use aim_types::{Addr, MemAccess};

use crate::cache::{Cache, CacheStats};
use crate::far::{FarMemory, FarStats};
use crate::hierarchy::{HierarchyConfig, MemLevel};
use crate::memory::MainMemory;

/// The process-wide tier of the memory system: committed architectural
/// memory plus the unified L2 cache (and, when configured, the far-memory
/// tier behind it), shared by every core.
#[derive(Debug)]
pub struct SharedMemSystem {
    mem: MainMemory,
    l2: Cache,
    far: Option<FarMemory>,
}

/// A shared, single-threaded handle to the [`SharedMemSystem`]. Cores hold
/// clones; the multi-core driver holds one more for final-state extraction.
pub type SharedHandle = Rc<RefCell<SharedMemSystem>>;

impl SharedMemSystem {
    /// Builds the shared tier over an initial committed-memory image. A
    /// [`MemSpec::far`](crate::MemSpec::far) tier, when present, lives here
    /// — shared by every attached core, like the L2 it sits behind.
    pub fn new(mem: MainMemory, config: HierarchyConfig) -> SharedMemSystem {
        SharedMemSystem {
            mem,
            l2: Cache::new(config.l2),
            far: config.far.map(FarMemory::new),
        }
    }

    /// Wraps the system in a [`SharedHandle`] for cores to clone.
    pub fn into_handle(self) -> SharedHandle {
        Rc::new(RefCell::new(self))
    }

    /// The committed memory image.
    pub fn mem(&self) -> &MainMemory {
        &self.mem
    }

    /// Mutable committed memory (store commit, test setup).
    pub fn mem_mut(&mut self) -> &mut MainMemory {
        &mut self.mem
    }

    /// Hit/miss counters of the shared L2.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Counters of the far-memory tier, if one is configured.
    pub fn far_stats(&self) -> Option<FarStats> {
        self.far.as_ref().map(FarMemory::stats)
    }

    /// Unwraps the committed memory image.
    pub fn into_memory(self) -> MainMemory {
        self.mem
    }
}

/// One core's view of the memory system: private L1I/L1D caches in front of
/// the [`SharedMemSystem`].
///
/// The access methods replicate `CacheHierarchy`'s latency ladder exactly
/// (L1 hit → `l1_hit_cycles`; L2 hit → `+l1_miss_cycles`; memory →
/// `+l2_miss_cycles`), so a core attached to an otherwise-idle shared
/// system is indistinguishable from the single-core hierarchy.
#[derive(Debug)]
pub struct CoreMemSys {
    core_id: usize,
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    shared: SharedHandle,
}

impl CoreMemSys {
    /// Attaches a new core (cold private L1s) to a shared system.
    pub fn attach(core_id: usize, config: HierarchyConfig, shared: SharedHandle) -> CoreMemSys {
        CoreMemSys {
            core_id,
            config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            shared,
        }
    }

    /// Builds a self-contained single-core memory system (core id 0) over
    /// its own private shared tier — the single-core `Machine` path.
    pub fn single(mem: MainMemory, config: HierarchyConfig) -> CoreMemSys {
        CoreMemSys::attach(0, config, SharedMemSystem::new(mem, config).into_handle())
    }

    /// This core's id.
    pub fn core_id(&self) -> usize {
        self.core_id
    }

    /// The configured hierarchy parameters.
    pub fn config(&self) -> HierarchyConfig {
        self.config
    }

    /// The handle to the shared tier (clone to attach sibling cores).
    pub fn shared(&self) -> &SharedHandle {
        &self.shared
    }

    fn access(&mut self, instr: bool, addr: Addr) -> (MemLevel, u64) {
        let cfg = &self.config;
        let l1 = if instr { &mut self.l1i } else { &mut self.l1d };
        if l1.access(addr) {
            (MemLevel::L1, cfg.l1_hit_cycles)
        } else if self.shared.borrow_mut().l2.access(addr) {
            (MemLevel::L2, cfg.l1_hit_cycles + cfg.l1_miss_cycles)
        } else {
            (
                MemLevel::Memory,
                cfg.l1_hit_cycles + cfg.l1_miss_cycles + cfg.l2_miss_cycles,
            )
        }
    }

    fn access_at(&mut self, instr: bool, addr: Addr, now: u64) -> (MemLevel, u64) {
        let cfg = self.config;
        let l1 = if instr { &mut self.l1i } else { &mut self.l1d };
        if l1.access(addr) {
            return (MemLevel::L1, cfg.l1_hit_cycles);
        }
        let mut shared = self.shared.borrow_mut();
        let base = cfg.l1_hit_cycles + cfg.l1_miss_cycles;
        if shared.l2.access(addr) {
            (MemLevel::L2, base)
        } else {
            match shared.far.as_mut() {
                Some(far) => (MemLevel::Memory, base + far.access(cfg.far_line(addr), now)),
                None => (MemLevel::Memory, base + cfg.l2_miss_cycles),
            }
        }
    }

    /// Fetches an instruction address; returns the serving level and latency.
    ///
    /// This legacy form ignores any far tier (it has no notion of the
    /// current cycle) — far-aware callers use [`CoreMemSys::access_instr_at`].
    pub fn access_instr(&mut self, addr: Addr) -> (MemLevel, u64) {
        self.access(true, addr)
    }

    /// Accesses a data address (load, or store commit); returns the serving
    /// level and latency in cycles.
    ///
    /// This legacy form ignores any far tier (it has no notion of the
    /// current cycle) — far-aware callers use [`CoreMemSys::access_data_at`].
    pub fn access_data(&mut self, addr: Addr) -> (MemLevel, u64) {
        self.access(false, addr)
    }

    /// Fetches an instruction address at cycle `now`. Identical to
    /// [`CoreMemSys::access_instr`] without a far tier; with one, an L2
    /// miss goes to far memory with never-refuse (queueing) semantics.
    pub fn access_instr_at(&mut self, addr: Addr, now: u64) -> (MemLevel, u64) {
        self.access_at(true, addr, now)
    }

    /// Accesses a data address at cycle `now`. Identical to
    /// [`CoreMemSys::access_data`] without a far tier; with one, an L2
    /// miss goes to far memory with never-refuse (queueing) semantics —
    /// the path for accesses that cannot be replayed (store commit,
    /// head-of-ROB bypass, forwarded-load tag touch).
    pub fn access_data_at(&mut self, addr: Addr, now: u64) -> (MemLevel, u64) {
        self.access_at(false, addr, now)
    }

    /// Admission check for a refusable data access at cycle `now`: `false`
    /// means the access would miss both caches into a far tier whose MSHRs
    /// are all busy (counted against the tier's `busy` stat) — nothing is
    /// filled or allocated, so the caller can drop and replay the access as
    /// if it never happened. Always `true` without a far tier.
    pub fn admit_data_at(&mut self, addr: Addr, now: u64) -> bool {
        let mut shared = self.shared.borrow_mut();
        let s = &mut *shared;
        match s.far.as_mut() {
            Some(far) if !self.l1d.probe(addr) && !s.l2.probe(addr) => {
                far.admit(self.config.far_line(addr), now)
            }
            _ => true,
        }
    }

    /// Accesses a data address at cycle `now` with refusable far-memory
    /// semantics: `None` means the access would miss to far memory but
    /// every MSHR is busy — nothing is filled or counted, so the caller
    /// can replay the access later as if it never happened. Always `Some`
    /// without a far tier (then identical to [`CoreMemSys::access_data`]).
    pub fn try_access_data_at(&mut self, addr: Addr, now: u64) -> Option<(MemLevel, u64)> {
        let cfg = self.config;
        let far_miss = self.shared.borrow().far.is_some()
            && !self.l1d.probe(addr)
            && !self.shared.borrow().l2.probe(addr);
        if far_miss {
            // Reserve the MSHR before filling any tags: a refused access
            // must leave no trace, so its replay probes a cold path again.
            let mut shared = self.shared.borrow_mut();
            let far = shared.far.as_mut().expect("probed far_miss above");
            let extra = far.try_access(cfg.far_line(addr), now)?;
            let l1_hit = self.l1d.access(addr);
            let l2_hit = shared.l2.access(addr);
            debug_assert!(!l1_hit && !l2_hit, "probes said both tags miss");
            return Some((
                MemLevel::Memory,
                cfg.l1_hit_cycles + cfg.l1_miss_cycles + extra,
            ));
        }
        Some(self.access_at(false, addr, now))
    }

    /// Counters of the shared far-memory tier, if one is configured.
    pub fn far_stats(&self) -> Option<FarStats> {
        self.shared.borrow().far_stats()
    }

    /// Reads committed memory.
    pub fn read(&self, access: MemAccess) -> u64 {
        self.shared.borrow().mem.read(access)
    }

    /// Commits a store to shared memory — the cross-core visibility point.
    pub fn write(&mut self, access: MemAccess, value: u64) {
        self.shared.borrow_mut().mem.write(access, value);
    }

    /// Commits a store at cycle `now` with its write-back cache traffic:
    /// writes the value to shared memory and issues the never-refuse data
    /// access that fills the tags and occupies far-tier MSHRs. This is the
    /// single commit path for both detailed retirement and functional
    /// warm-up, so the cache/far state a sampled window inherits matches
    /// what a full-detail run would have produced. Returns the serving
    /// level and latency (retirement ignores it — commit never stalls).
    pub fn commit_store(&mut self, access: MemAccess, value: u64, now: u64) -> (MemLevel, u64) {
        self.write(access, value);
        self.access_data_at(access.addr(), now)
    }

    /// Borrows the committed memory image (for backends, which take
    /// `&MainMemory`). The borrow is a `RefCell` guard: do not hold it
    /// across another `CoreMemSys` call.
    pub fn mem(&self) -> Ref<'_, MainMemory> {
        Ref::map(self.shared.borrow(), |s| &s.mem)
    }

    /// Hit/miss counters for (this core's L1I, this core's L1D, the shared
    /// L2). The L2 column reports the whole shared cache — for a
    /// single-core system that is exactly the per-core traffic; with
    /// siblings attached it aggregates every core's refills.
    pub fn stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        (
            self.l1i.stats(),
            self.l1d.stats(),
            self.shared.borrow().l2.stats(),
        )
    }

    /// Unwraps the committed memory image: takes it if this is the last
    /// handle to the shared tier, clones it otherwise.
    pub fn into_memory(self) -> MainMemory {
        match Rc::try_unwrap(self.shared) {
            Ok(cell) => cell.into_inner().mem,
            Err(shared) => shared.borrow().mem.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::CacheHierarchy;

    #[test]
    fn single_core_matches_cache_hierarchy_exactly() {
        let cfg = HierarchyConfig::default();
        let mut h = CacheHierarchy::new(cfg);
        let mut c = CoreMemSys::single(MainMemory::new(), cfg);
        // A mixed instruction/data stream with reuse at every level.
        let addrs = [
            0x0u64, 0x40, 0x80, 0x9000, 0x9040, 0x0, 0x9000, 0x2_0000, 0x9000, 0x40,
        ];
        for (i, &a) in addrs.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(h.access_instr(Addr(a)), c.access_instr(Addr(a)), "i@{a:#x}");
            } else {
                assert_eq!(h.access_data(Addr(a)), c.access_data(Addr(a)), "d@{a:#x}");
            }
        }
        assert_eq!(h.stats(), c.stats());
    }

    #[test]
    fn commit_store_writes_and_fills_tags() {
        let cfg = HierarchyConfig::default();
        let mut c = CoreMemSys::single(MainMemory::new(), cfg);
        let access = MemAccess::new(Addr(0x8000), aim_types::AccessSize::Double).unwrap();
        let (lv, _) = c.commit_store(access, 0xDEAD_BEEF, 0);
        assert_eq!(lv, MemLevel::Memory);
        assert_eq!(c.read(access), 0xDEAD_BEEF);
        // The commit filled the cache line: a re-access hits L1.
        let (lv, lat) = c.access_data_at(access.addr(), 1);
        assert_eq!((lv, lat), (MemLevel::L1, cfg.l1_hit_cycles));
    }

    #[test]
    fn l2_is_shared_and_l1_private() {
        let cfg = HierarchyConfig::default();
        let shared = SharedMemSystem::new(MainMemory::new(), cfg).into_handle();
        let mut c0 = CoreMemSys::attach(0, cfg, shared.clone());
        let mut c1 = CoreMemSys::attach(1, cfg, shared.clone());
        let (lv, _) = c0.access_data(Addr(0x4000));
        assert_eq!(lv, MemLevel::Memory);
        // Sibling misses its private L1D, hits the L2 line core 0 filled.
        let (lv, lat) = c1.access_data(Addr(0x4000));
        assert_eq!((lv, lat), (MemLevel::L2, 11));
        // Each core's L1D saw exactly one access; the shared L2 saw both.
        assert_eq!(c0.stats().1.accesses(), 1);
        assert_eq!(c1.stats().1.accesses(), 1);
        assert_eq!(shared.borrow().l2_stats().accesses(), 2);
    }

    #[test]
    fn writes_are_visible_across_cores() {
        let cfg = HierarchyConfig::default();
        let shared = SharedMemSystem::new(MainMemory::new(), cfg).into_handle();
        let mut c0 = CoreMemSys::attach(0, cfg, shared.clone());
        let c1 = CoreMemSys::attach(1, cfg, shared);
        let acc = MemAccess::new(Addr(0x1000), aim_types::AccessSize::Double).unwrap();
        c0.write(acc, 0xdead_beef);
        assert_eq!(c1.read(acc), 0xdead_beef);
    }

    #[test]
    fn at_variants_match_legacy_without_a_far_tier() {
        let cfg = HierarchyConfig::default();
        let mut legacy = CoreMemSys::single(MainMemory::new(), cfg);
        let mut at = CoreMemSys::single(MainMemory::new(), cfg);
        let addrs = [0x0u64, 0x40, 0x9000, 0x0, 0x9040, 0x2_0000, 0x9000];
        for (i, &a) in addrs.iter().enumerate() {
            let now = i as u64 * 3;
            assert_eq!(legacy.access_instr(Addr(a)), at.access_instr_at(Addr(a), now));
            assert_eq!(legacy.access_data(Addr(a)), at.access_data_at(Addr(a), now));
            let (lv, lat) = legacy.access_data(Addr(a));
            assert_eq!(at.try_access_data_at(Addr(a), now), Some((lv, lat)));
        }
        assert_eq!(legacy.stats(), at.stats());
        assert_eq!(at.far_stats(), None);
    }

    #[test]
    fn far_tier_replaces_the_near_memory_ladder_step() {
        let cfg = HierarchyConfig::default().with_far(crate::FarSpec::new(400, 4, 1));
        let mut c = CoreMemSys::single(MainMemory::new(), cfg);
        // Cold miss at cycle 0: 1 (L1) + 10 (L2) + 400 (far) = 411.
        assert_eq!(c.access_data_at(Addr(0x4000), 0), (MemLevel::Memory, 411));
        // The tags filled, so a later access hits L1 as usual.
        assert_eq!(c.access_data_at(Addr(0x4000), 5), (MemLevel::L1, 1));
        let far = c.far_stats().unwrap();
        assert_eq!((far.accesses, far.coalesced), (1, 0));
    }

    #[test]
    fn far_misses_coalesce_across_sibling_cores() {
        let cfg = HierarchyConfig::default().with_far(crate::FarSpec::new(400, 4, 1));
        let shared = SharedMemSystem::new(MainMemory::new(), cfg).into_handle();
        let mut c0 = CoreMemSys::attach(0, cfg, shared.clone());
        let mut c1 = CoreMemSys::attach(1, cfg, shared.clone());
        assert_eq!(c0.access_data_at(Addr(0x4000), 0), (MemLevel::Memory, 411));
        // Core 1 misses its private L1D, hits the L2 line core 0 already
        // filled — no second far miss.
        assert_eq!(c1.access_data_at(Addr(0x4000), 10), (MemLevel::L2, 11));
        // A different L2 line of the same far region is a fresh far miss
        // that coalesces only if the far line matches; 0x4080 is L2 line
        // 0x81 vs 0x80, so it allocates a second MSHR.
        assert_eq!(c1.access_data_at(Addr(0x4080), 10), (MemLevel::Memory, 411));
        let far = shared.borrow().far_stats().unwrap();
        assert_eq!((far.accesses, far.peak_inflight), (2, 2));
    }

    #[test]
    fn refused_far_access_leaves_no_trace() {
        let cfg = HierarchyConfig::default().with_far(crate::FarSpec::new(100, 1, 1));
        let mut c = CoreMemSys::single(MainMemory::new(), cfg);
        assert_eq!(c.try_access_data_at(Addr(0x1000), 0), Some((MemLevel::Memory, 111)));
        // The only MSHR is busy with a different line: refused.
        assert_eq!(c.try_access_data_at(Addr(0x8000), 10), None);
        let (_, l1d, l2) = c.stats();
        // The refused access filled and counted nothing.
        assert_eq!(l1d.accesses(), 1);
        assert_eq!(l2.accesses(), 1);
        assert_eq!(c.far_stats().unwrap().busy, 1);
        // Replaying after the MSHR drains succeeds with full latency.
        assert_eq!(
            c.try_access_data_at(Addr(0x8000), 100),
            Some((MemLevel::Memory, 111))
        );
    }

    #[test]
    fn into_memory_takes_or_clones() {
        let cfg = HierarchyConfig::default();
        let acc = MemAccess::new(Addr(0x8), aim_types::AccessSize::Double).unwrap();
        let mut solo = CoreMemSys::single(MainMemory::new(), cfg);
        solo.write(acc, 7);
        assert_eq!(solo.into_memory().read(acc), 7);

        let shared = SharedMemSystem::new(MainMemory::new(), cfg).into_handle();
        let mut c0 = CoreMemSys::attach(0, cfg, shared.clone());
        c0.write(acc, 9);
        // Another handle is still alive, so this clones.
        assert_eq!(c0.into_memory().read(acc), 9);
        assert_eq!(shared.borrow().mem().read(acc), 9);
    }
}
