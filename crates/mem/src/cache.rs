//! Generic set-associative, LRU, tag-only cache timing model.

use aim_core::{SetHash, SetTable, TableGeometry};
use aim_types::Addr;

/// Geometry of a set-associative cache.
///
/// # Examples
///
/// ```
/// use aim_mem::CacheConfig;
///
/// // The paper's L1 D-cache: 8 KB, 4-way, 64-byte lines (Figure 4).
/// let cfg = CacheConfig::new(8 * 1024, 4, 64);
/// assert_eq!(cfg.sets(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    capacity_bytes: usize,
    ways: usize,
    line_bytes: usize,
}

impl CacheConfig {
    /// Creates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` and the resulting set count are nonzero
    /// powers of two and `capacity_bytes` is divisible by `ways * line_bytes`.
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> CacheConfig {
        assert!(line_bytes.is_power_of_two() && line_bytes > 0);
        assert!(ways > 0);
        assert!(capacity_bytes.is_multiple_of(ways * line_bytes));
        let sets = capacity_bytes / (ways * line_bytes);
        assert!(sets.is_power_of_two() && sets > 0);
        CacheConfig {
            capacity_bytes,
            ways,
            line_bytes,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(self) -> usize {
        self.capacity_bytes
    }

    /// Associativity.
    pub fn ways(self) -> usize {
        self.ways
    }

    /// Line size in bytes.
    pub fn line_bytes(self) -> usize {
        self.line_bytes
    }

    /// Number of sets.
    pub fn sets(self) -> usize {
        self.capacity_bytes / (self.ways * self.line_bytes)
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (and filled).
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in percent (0 for no accesses).
    pub fn hit_rate(&self) -> f64 {
        aim_types::percent(self.hits, self.accesses())
    }
}

/// A set-associative, true-LRU, tag-only cache.
///
/// Models timing only: an access either hits or misses (and fills). Data is
/// always supplied by [`MainMemory`](crate::MainMemory), so the cache never
/// holds stale values — the simulated machine's speculative values live in
/// the store queue or store forwarding cache instead.
///
/// # Examples
///
/// ```
/// use aim_mem::{Cache, CacheConfig};
/// use aim_types::Addr;
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 64));
/// assert!(!c.access(Addr(0)));   // cold miss
/// assert!(c.access(Addr(63)));   // same line: hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Line-number keys + per-set occupancy bit-words (the set index is the
    /// line number's low bits, so the stored key subsumes the tag).
    table: SetTable,
    /// Per-slot LRU timestamp column, indexed by the table's flat slot.
    last_used: Vec<u64>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Cache {
        let table = SetTable::new(TableGeometry {
            sets: config.sets(),
            ways: config.ways(),
            hash: SetHash::LowBits,
        });
        Cache {
            config,
            table,
            last_used: vec![0; config.sets() * config.ways()],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    #[inline]
    fn line_of(&self, addr: Addr) -> u64 {
        addr.0 / self.config.line_bytes() as u64
    }

    /// Accesses `addr`, returning `true` on a hit. A miss fills the line,
    /// evicting the LRU way if the set is full.
    pub fn access(&mut self, addr: Addr) -> bool {
        self.clock += 1;
        let line = self.line_of(addr);
        let set = self.table.set_of(line);

        if let Some(way) = self.table.first_match(set, line) {
            self.last_used[self.table.slot(set, way)] = self.clock;
            self.stats.hits += 1;
            return true;
        }

        self.stats.misses += 1;
        // Fill: an empty way if available, else the LRU way (first among
        // equal timestamps).
        let way = match self.table.first_free(set) {
            Some(way) => {
                self.table.occupy(set, way, line);
                way
            }
            None => {
                let victim = (0..self.table.ways())
                    .min_by_key(|&w| self.last_used[self.table.slot(set, w)])
                    .expect("cache has at least one way");
                self.table.replace(set, victim, line);
                victim
            }
        };
        self.last_used[self.table.slot(set, way)] = self.clock;
        false
    }

    /// Probes without filling or updating LRU; returns `true` if resident.
    pub fn probe(&self, addr: Addr) -> bool {
        let line = self.line_of(addr);
        let set = self.table.set_of(line);
        self.table.first_match(set, line).is_some()
    }

    /// Invalidates every line and zeroes nothing else (stats are kept).
    pub fn invalidate_all(&mut self) {
        self.table.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets, 2 ways, 16-byte lines.
        Cache::new(CacheConfig::new(64, 2, 16))
    }

    #[test]
    fn config_geometry() {
        let cfg = CacheConfig::new(512 * 1024, 8, 128);
        assert_eq!(cfg.sets(), 512);
        assert_eq!(cfg.ways(), 8);
        assert_eq!(cfg.line_bytes(), 128);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_line_rejected() {
        let _ = CacheConfig::new(96, 2, 24);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(Addr(0)));
        assert!(c.access(Addr(0)));
        assert!(c.access(Addr(15)));
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = small();
        assert!(!c.access(Addr(0))); // set 0
        assert!(!c.access(Addr(16))); // set 1
        assert!(c.access(Addr(0)));
        assert!(c.access(Addr(16)));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Three lines mapping to set 0 (stride 32 with 2 sets of 16B lines).
        c.access(Addr(0));
        c.access(Addr(32));
        c.access(Addr(0)); // touch 0 so 32 becomes LRU
        c.access(Addr(64)); // evicts 32
        assert!(c.probe(Addr(0)));
        assert!(!c.probe(Addr(32)));
        assert!(c.probe(Addr(64)));
    }

    #[test]
    fn probe_does_not_fill() {
        let mut c = small();
        assert!(!c.probe(Addr(0)));
        assert!(!c.access(Addr(0)));
        assert!(c.probe(Addr(0)));
        assert_eq!(c.stats().accesses(), 1);
    }

    #[test]
    fn invalidate_all_empties() {
        let mut c = small();
        c.access(Addr(0));
        c.invalidate_all();
        assert!(!c.probe(Addr(0)));
        assert!(!c.access(Addr(0)));
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = small();
        c.access(Addr(0));
        c.access(Addr(0));
        c.access(Addr(0));
        c.access(Addr(0));
        assert_eq!(c.stats().hit_rate(), 75.0);
    }
}
