//! The non-associative store FIFO (paper Figure 1).

use std::collections::VecDeque;

use aim_types::{MemAccess, SeqNum};

/// One store buffered for in-order retirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreFifoEntry {
    /// The store's sequence number (program order).
    pub seq: SeqNum,
    /// Address and size; `None` until the store executes.
    pub access: Option<MemAccess>,
    /// Store data; meaningful once `access` is set.
    pub value: u64,
}

/// The paper's store FIFO: "a store enters the non-associative store FIFO at
/// dispatch, writes its data and address to the FIFO during execution, and
/// exits the FIFO at retirement" (Figure 1).
///
/// Because it is never searched associatively, the FIFO has no CAM; it exists
/// to buffer stores between execution and in-order commit. Squashed stores
/// are removed from the tail on recovery.
///
/// # Examples
///
/// ```
/// use aim_mem::StoreFifo;
/// use aim_types::{AccessSize, Addr, MemAccess, SeqNum};
///
/// let mut fifo = StoreFifo::new();
/// fifo.push(SeqNum(1));
/// let acc = MemAccess::new(Addr(0x10), AccessSize::Double).unwrap();
/// fifo.fill(SeqNum(1), acc, 99);
/// let entry = fifo.pop_retired(SeqNum(1)).unwrap();
/// assert_eq!(entry.value, 99);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StoreFifo {
    entries: VecDeque<StoreFifoEntry>,
    peak_occupancy: usize,
}

impl StoreFifo {
    /// Creates an empty FIFO.
    pub fn new() -> StoreFifo {
        StoreFifo::default()
    }

    /// Number of stores currently buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Highest occupancy ever observed (for sizing studies).
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Allocates a slot at dispatch. Sequence numbers must arrive in
    /// ascending order (dispatch is in program order).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not newer than the current tail.
    pub fn push(&mut self, seq: SeqNum) {
        if let Some(tail) = self.entries.back() {
            assert!(tail.seq < seq, "store FIFO dispatch out of program order");
        }
        self.entries.push_back(StoreFifoEntry {
            seq,
            access: None,
            value: 0,
        });
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
    }

    /// Records the address and data when the store executes.
    ///
    /// Returns `false` if the store is no longer in the FIFO (it was squashed
    /// between issue and execute).
    pub fn fill(&mut self, seq: SeqNum, access: MemAccess, value: u64) -> bool {
        match self.entries.iter_mut().find(|e| e.seq == seq) {
            Some(e) => {
                e.access = Some(access);
                e.value = value;
                true
            }
            None => false,
        }
    }

    /// Pops the head entry at retirement; it must match `seq` and have been
    /// filled.
    ///
    /// Returns `None` (and leaves the FIFO unchanged) if the head does not
    /// match — callers treat that as a simulator invariant failure.
    pub fn pop_retired(&mut self, seq: SeqNum) -> Option<StoreFifoEntry> {
        match self.entries.front() {
            Some(head) if head.seq == seq && head.access.is_some() => self.entries.pop_front(),
            _ => None,
        }
    }

    /// Removes every store younger than `survivor` (i.e. `seq > survivor`) on
    /// a pipeline flush; returns how many were squashed.
    pub fn squash_after(&mut self, survivor: SeqNum) -> usize {
        let before = self.entries.len();
        while matches!(self.entries.back(), Some(e) if e.seq > survivor) {
            self.entries.pop_back();
        }
        before - self.entries.len()
    }

    /// Removes everything (full pipeline flush); returns how many were
    /// squashed.
    pub fn squash_all(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    /// Iterates over buffered stores in program order.
    pub fn iter(&self) -> impl Iterator<Item = &StoreFifoEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_types::{AccessSize, Addr};

    fn acc(a: u64) -> MemAccess {
        MemAccess::new(Addr(a), AccessSize::Double).unwrap()
    }

    #[test]
    fn fifo_order_push_fill_pop() {
        let mut f = StoreFifo::new();
        f.push(SeqNum(1));
        f.push(SeqNum(5));
        assert!(f.fill(SeqNum(1), acc(0x10), 11));
        assert!(f.fill(SeqNum(5), acc(0x18), 55));
        assert_eq!(f.pop_retired(SeqNum(1)).unwrap().value, 11);
        assert_eq!(f.pop_retired(SeqNum(5)).unwrap().value, 55);
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of program order")]
    fn out_of_order_push_panics() {
        let mut f = StoreFifo::new();
        f.push(SeqNum(5));
        f.push(SeqNum(1));
    }

    #[test]
    fn pop_requires_filled_head() {
        let mut f = StoreFifo::new();
        f.push(SeqNum(1));
        assert!(f.pop_retired(SeqNum(1)).is_none()); // not yet executed
        f.fill(SeqNum(1), acc(0), 7);
        assert!(f.pop_retired(SeqNum(2)).is_none()); // wrong seq
        assert!(f.pop_retired(SeqNum(1)).is_some());
    }

    #[test]
    fn fill_after_squash_reports_false() {
        let mut f = StoreFifo::new();
        f.push(SeqNum(1));
        f.push(SeqNum(2));
        assert_eq!(f.squash_after(SeqNum(1)), 1);
        assert!(!f.fill(SeqNum(2), acc(0), 0));
        assert!(f.fill(SeqNum(1), acc(0), 0));
    }

    #[test]
    fn squash_after_keeps_older() {
        let mut f = StoreFifo::new();
        for s in [1, 3, 7, 9] {
            f.push(SeqNum(s));
        }
        assert_eq!(f.squash_after(SeqNum(3)), 2);
        let seqs: Vec<u64> = f.iter().map(|e| e.seq.0).collect();
        assert_eq!(seqs, vec![1, 3]);
    }

    #[test]
    fn squash_all_and_peak() {
        let mut f = StoreFifo::new();
        f.push(SeqNum(1));
        f.push(SeqNum(2));
        f.push(SeqNum(3));
        assert_eq!(f.squash_all(), 3);
        assert!(f.is_empty());
        assert_eq!(f.peak_occupancy(), 3);
    }
}
