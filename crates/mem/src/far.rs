//! The far-memory tier: a high-latency backing store behind the shared L2
//! with an MSHR-style bound on simultaneously outstanding misses and
//! batched completion.
//!
//! This reproduces the regime of the Asynchronous Memory Access Unit work
//! (arXiv 2404.11044): loads that cost hundreds of cycles, with thousands
//! of them potentially in flight at once — exactly where associative
//! LSQ search throttles and the paper's address-indexed structures are
//! claimed to scale. When a [`FarSpec`] is present on the
//! [`MemSpec`](crate::MemSpec), every L2 miss is a far-memory access and
//! the near-memory `l2_miss_cycles` ladder step is replaced by this
//! model's completion time.
//!
//! The model is deliberately small and deterministic:
//!
//! * An access to a far line already in flight **coalesces**: it completes
//!   when the outstanding miss does, costing no new MSHR.
//! * Otherwise the access allocates an MSHR and completes at
//!   `now + latency`, rounded **up** to the next multiple of `batch`
//!   (far-memory transports return data in bursts).
//! * When all MSHRs are busy, a *refusable* access ([`FarMemory::try_access`],
//!   the load-execute path) is rejected so the pipeline can replay it;
//!   a *never-refuse* access ([`FarMemory::access`] — instruction fetch,
//!   store commit, head-of-ROB bypass) queues behind the earliest
//!   completing miss instead.
//!
//! # Examples
//!
//! ```
//! use aim_mem::{FarMemory, FarSpec};
//!
//! let mut far = FarMemory::new(FarSpec::new(400, 2, 1));
//! assert_eq!(far.access(7, 0), 400);      // cold miss
//! assert_eq!(far.access(7, 100), 300);    // coalesces with the first
//! assert_eq!(far.access(8, 0), 400);      // second MSHR
//! assert_eq!(far.try_access(9, 0), None); // both MSHRs busy: refused
//! assert_eq!(far.try_access(9, 400), Some(400)); // slots drained
//! ```

/// Configuration of the far-memory tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FarSpec {
    /// Cycles from request to data return (before batch rounding).
    pub latency: u64,
    /// Maximum simultaneously outstanding far misses (MSHR count).
    pub mshrs: usize,
    /// Completion times round up to a multiple of this many cycles
    /// (`1` disables batching).
    pub batch: u64,
}

impl FarSpec {
    /// Creates a far-memory spec.
    ///
    /// # Panics
    ///
    /// Panics if `latency`, `mshrs`, or `batch` is zero.
    pub fn new(latency: u64, mshrs: usize, batch: u64) -> FarSpec {
        assert!(latency > 0, "far latency must be nonzero");
        assert!(mshrs > 0, "far tier needs at least one MSHR");
        assert!(batch > 0, "batch granularity must be nonzero (1 = none)");
        FarSpec {
            latency,
            mshrs,
            batch,
        }
    }
}

impl Default for FarSpec {
    /// 400-cycle far loads, 64 MSHRs, 8-cycle completion batches — the
    /// disaggregated-memory operating point the far-memory experiments
    /// sweep around.
    fn default() -> FarSpec {
        FarSpec::new(400, 64, 8)
    }
}

/// Counters for the far-memory tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FarStats {
    /// Far accesses that started or joined a miss (excludes refusals).
    pub accesses: u64,
    /// Accesses that coalesced onto an already-outstanding miss.
    pub coalesced: u64,
    /// Refusable accesses rejected because every MSHR was busy.
    pub busy: u64,
    /// Never-refuse accesses that queued past the MSHR bound.
    pub overflow: u64,
    /// High-water mark of simultaneously outstanding misses.
    pub peak_inflight: usize,
}

/// The far-memory tier's timing state: the bounded set of in-flight misses.
///
/// Purely a timing model, like [`Cache`](crate::Cache) — data is always
/// supplied by [`MainMemory`](crate::MainMemory). Callers pass the current
/// cycle so completed misses can be drained and latencies computed; the
/// "line" key is whatever granularity the caller coalesces at (the memory
/// systems use the L2 line number).
#[derive(Debug, Clone)]
pub struct FarMemory {
    spec: FarSpec,
    /// Outstanding misses as `(ready_cycle, line)`.
    inflight: Vec<(u64, u64)>,
    stats: FarStats,
}

impl FarMemory {
    /// Creates an idle far-memory tier.
    pub fn new(spec: FarSpec) -> FarMemory {
        FarMemory {
            spec,
            inflight: Vec::with_capacity(spec.mshrs),
            stats: FarStats::default(),
        }
    }

    /// The configured parameters.
    pub fn spec(&self) -> FarSpec {
        self.spec
    }

    /// The tier's counters.
    pub fn stats(&self) -> FarStats {
        self.stats
    }

    /// Outstanding misses not yet drained (testing/diagnostics).
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Retires misses whose data has returned by `now`.
    fn drain(&mut self, now: u64) {
        self.inflight.retain(|&(ready, _)| ready > now);
    }

    /// Rounds a completion time up to the batch granularity.
    fn batch_align(&self, t: u64) -> u64 {
        t.div_ceil(self.spec.batch) * self.spec.batch
    }

    fn earliest_ready(&self) -> u64 {
        self.inflight
            .iter()
            .map(|&(ready, _)| ready)
            .min()
            .expect("queried with at least one miss in flight")
    }

    fn push(&mut self, ready: u64, line: u64) {
        self.inflight.push((ready, line));
        self.stats.peak_inflight = self.stats.peak_inflight.max(self.inflight.len());
    }

    fn find(&self, line: u64) -> Option<u64> {
        self.inflight
            .iter()
            .find(|&&(_, l)| l == line)
            .map(|&(ready, _)| ready)
    }

    /// A never-refuse access to `line` at cycle `now`: returns the cycles
    /// until data is available. Coalesces with an in-flight miss when
    /// possible; when every MSHR is busy it queues behind the earliest
    /// completing miss (counted as `overflow`).
    pub fn access(&mut self, line: u64, now: u64) -> u64 {
        self.drain(now);
        self.stats.accesses += 1;
        if let Some(ready) = self.find(line) {
            self.stats.coalesced += 1;
            return ready - now;
        }
        let start = if self.inflight.len() >= self.spec.mshrs {
            self.stats.overflow += 1;
            self.earliest_ready().max(now)
        } else {
            now
        };
        let ready = self.batch_align(start + self.spec.latency);
        self.push(ready, line);
        ready - now
    }

    /// The admission decision of [`FarMemory::try_access`] without the
    /// allocation: drains completed misses and reports whether an access
    /// to `line` at `now` would be accepted (an MSHR is free, or the line
    /// is already in flight to coalesce with). A refusal is counted as
    /// `busy`; an acceptance allocates nothing — follow up with
    /// [`FarMemory::access`].
    pub fn admit(&mut self, line: u64, now: u64) -> bool {
        self.drain(now);
        if self.find(line).is_some() || self.inflight.len() < self.spec.mshrs {
            return true;
        }
        self.stats.busy += 1;
        false
    }

    /// A refusable access to `line` at cycle `now`: `Some(cycles)` until
    /// data is available, or `None` when every MSHR is busy and the line is
    /// not already in flight (counted as `busy` — the caller replays the
    /// access later).
    pub fn try_access(&mut self, line: u64, now: u64) -> Option<u64> {
        self.drain(now);
        if let Some(ready) = self.find(line) {
            self.stats.accesses += 1;
            self.stats.coalesced += 1;
            return Some(ready - now);
        }
        if self.inflight.len() >= self.spec.mshrs {
            self.stats.busy += 1;
            return None;
        }
        self.stats.accesses += 1;
        let ready = self.batch_align(now + self.spec.latency);
        self.push(ready, line);
        Some(ready - now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn far(latency: u64, mshrs: usize, batch: u64) -> FarMemory {
        FarMemory::new(FarSpec::new(latency, mshrs, batch))
    }

    #[test]
    fn cold_access_costs_latency() {
        let mut f = far(400, 4, 1);
        assert_eq!(f.access(1, 10), 400);
        assert_eq!(f.inflight(), 1);
        assert_eq!(f.stats().accesses, 1);
    }

    #[test]
    fn batching_rounds_completion_up() {
        let mut f = far(400, 4, 64);
        // 10 + 400 = 410 rounds up to 448.
        assert_eq!(f.access(1, 10), 438);
        // Already batch-aligned completions stay put: 0 + 400 → 448? No:
        // 400 is not a multiple of 64; 448 is. From cycle 48, 448 - 48 = 400.
        assert_eq!(f.access(2, 48), 400);
    }

    #[test]
    fn coalescing_joins_the_outstanding_miss() {
        let mut f = far(400, 4, 1);
        assert_eq!(f.access(1, 0), 400);
        assert_eq!(f.access(1, 150), 250);
        assert_eq!(f.try_access(1, 399), Some(1));
        let s = f.stats();
        assert_eq!((s.accesses, s.coalesced), (3, 2));
        assert_eq!(f.inflight(), 1); // still one MSHR
    }

    #[test]
    fn try_access_refuses_when_full_and_recovers() {
        let mut f = far(100, 2, 1);
        assert_eq!(f.try_access(1, 0), Some(100));
        assert_eq!(f.try_access(2, 0), Some(100));
        assert_eq!(f.try_access(3, 0), None);
        assert_eq!(f.stats().busy, 1);
        // A coalescing access is never refused, even when full.
        assert_eq!(f.try_access(2, 50), Some(50));
        // At cycle 100 both misses have completed; MSHRs are free again.
        assert_eq!(f.try_access(3, 100), Some(100));
        assert_eq!(f.stats().busy, 1);
    }

    #[test]
    fn admit_mirrors_try_access_without_allocating() {
        let mut f = far(100, 1, 1);
        assert!(f.admit(1, 0));
        assert_eq!(f.inflight(), 0); // admission allocates nothing
        assert_eq!(f.access(1, 0), 100);
        assert!(!f.admit(2, 10)); // MSHR busy with line 1
        assert_eq!(f.stats().busy, 1);
        assert!(f.admit(1, 10)); // coalescible: admitted even when full
        assert!(f.admit(2, 100)); // drained
        assert_eq!(f.stats().busy, 1);
    }

    #[test]
    fn queued_access_waits_for_the_earliest_slot() {
        let mut f = far(100, 2, 1);
        assert_eq!(f.access(1, 0), 100);
        assert_eq!(f.access(2, 20), 100);
        // Full: queues behind line 1 (ready at 100): 100 + 100 - 30 = 170.
        assert_eq!(f.access(3, 30), 170);
        assert_eq!(f.stats().overflow, 1);
        assert_eq!(f.stats().peak_inflight, 3);
    }

    #[test]
    fn drain_retires_completed_misses() {
        let mut f = far(100, 2, 1);
        f.access(1, 0);
        f.access(2, 0);
        assert_eq!(f.inflight(), 2);
        // An unrelated access at cycle 100 drains both.
        f.access(3, 100);
        assert_eq!(f.inflight(), 1);
    }

    #[test]
    #[should_panic(expected = "far latency")]
    fn zero_latency_rejected() {
        let _ = FarSpec::new(0, 1, 1);
    }

    #[test]
    fn default_spec_is_the_documented_operating_point() {
        let d = FarSpec::default();
        assert_eq!((d.latency, d.mshrs, d.batch), (400, 64, 8));
    }
}
