//! Property tests: memory round-trips and cache LRU behaviour against
//! reference models.

use aim_mem::{Cache, CacheConfig, MainMemory};
use aim_types::{AccessSize, Addr, MemAccess};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// MainMemory behaves as a sparse byte map.
    #[test]
    fn memory_matches_byte_map(
        writes in proptest::collection::vec((any::<u32>(), any::<u8>()), 0..100),
        probes in proptest::collection::vec(any::<u32>(), 0..50),
    ) {
        let mut mem = MainMemory::new();
        let mut reference: HashMap<u64, u8> = HashMap::new();
        for (addr, value) in &writes {
            mem.write_byte(Addr(*addr as u64), *value);
            reference.insert(*addr as u64, *value);
        }
        for addr in writes.iter().map(|(a, _)| *a).chain(probes) {
            let expect = reference.get(&(addr as u64)).copied().unwrap_or(0);
            prop_assert_eq!(mem.read_byte(Addr(addr as u64)), expect);
        }
    }

    /// Multi-byte reads assemble little-endian from the byte map.
    #[test]
    fn multibyte_reads_are_little_endian(base in 0u64..0x1000, value in any::<u64>()) {
        let mut mem = MainMemory::new();
        let acc = MemAccess::new(Addr(base * 8), AccessSize::Double).unwrap();
        mem.write(acc, value);
        for k in 0..8u64 {
            prop_assert_eq!(mem.read_byte(Addr(base * 8 + k)), (value >> (8 * k)) as u8);
        }
        let half = MemAccess::new(Addr(base * 8 + 4), AccessSize::Word).unwrap();
        prop_assert_eq!(mem.read(half), value >> 32);
    }

    /// The cache agrees with a reference true-LRU model on every access.
    #[test]
    fn cache_matches_reference_lru(accesses in proptest::collection::vec(0u64..4096, 1..300)) {
        let cfg = CacheConfig::new(512, 2, 32); // 8 sets, 2 ways, 32 B lines
        let mut cache = Cache::new(cfg);
        // Reference: per set, a recency-ordered list of resident tags.
        let mut sets: Vec<Vec<u64>> = vec![Vec::new(); cfg.sets()];
        for addr in accesses {
            let line = addr / cfg.line_bytes() as u64;
            let set = (line as usize) % cfg.sets();
            let tag = line / cfg.sets() as u64;
            let expect_hit = sets[set].contains(&tag);
            let got_hit = cache.access(Addr(addr));
            prop_assert_eq!(got_hit, expect_hit, "addr {:#x}", addr);
            if let Some(pos) = sets[set].iter().position(|&t| t == tag) {
                sets[set].remove(pos);
            } else if sets[set].len() == cfg.ways() {
                sets[set].remove(0); // evict LRU
            }
            sets[set].push(tag); // most recent at the back
        }
    }
}

#[test]
fn hierarchy_commit_path_counts_like_loads() {
    use aim_mem::{CacheHierarchy, HierarchyConfig, MemLevel};
    let mut h = CacheHierarchy::new(HierarchyConfig::default());
    // A store commit and a later load to the same line share residency.
    let (lv, _) = h.access_data(Addr(0x7000));
    assert_eq!(lv, MemLevel::Memory);
    let (lv, lat) = h.access_data(Addr(0x7008));
    assert_eq!((lv, lat), (MemLevel::L1, 1));
}

#[test]
fn hierarchy_latencies_compose_from_config() {
    use aim_mem::{CacheHierarchy, HierarchyConfig, MemLevel};
    let cfg = HierarchyConfig {
        l1_hit_cycles: 2,
        l1_miss_cycles: 7,
        l2_miss_cycles: 50,
        ..HierarchyConfig::default()
    };
    let mut h = CacheHierarchy::new(cfg);
    let (lv, lat) = h.access_data(Addr(0));
    assert_eq!((lv, lat), (MemLevel::Memory, 59));
    let (lv, lat) = h.access_data(Addr(0));
    assert_eq!((lv, lat), (MemLevel::L1, 2));
}
