//! Property test for the shared memory system's composability contract:
//! when two cores' access streams touch disjoint L2 sets, the shared L2's
//! hit/miss counts — and each core's private L1 counts — do not depend on
//! how finely the core scheduler interleaves the two streams.
//!
//! This is the cache-level justification for the multi-core litmus harness
//! sweeping *schedules* rather than cache states: with set-disjoint
//! footprints every interleaving drives each L2 set with the same per-set
//! access sequence, so replacement decisions (and therefore counters) are
//! schedule-invariant. Conversely, the L1 columns are private by
//! construction, so they must match a solo run of the same stream exactly.

use aim_mem::{
    CacheStats, CoreMemSys, FarSpec, FarStats, HierarchyConfig, MainMemory, MemSpec,
    SharedMemSystem,
};
use aim_types::Addr;
use proptest::prelude::*;

/// Half the default L2's index space: 512 sets x 128-byte lines = 64 KiB,
/// so offsets below `REGION_BYTES` map to sets 0..256 and offsets in
/// `[REGION_BYTES, 2 * REGION_BYTES)` map to sets 256..512.
const REGION_BYTES: u64 = 0x8000;

/// One access: an offset inside the core's private region, and whether it
/// goes through the instruction or the data port.
type Access = (u16, bool);

fn addr_of(core: usize, (offset, _): Access) -> Addr {
    Addr(core as u64 * REGION_BYTES + (offset as u64 % REGION_BYTES))
}

fn drive(core: &mut CoreMemSys, id: usize, access: Access) {
    if access.1 {
        core.access_instr(addr_of(id, access));
    } else {
        core.access_data(addr_of(id, access));
    }
}

/// Runs both streams through one shared system, consuming them in chunks
/// dictated by `schedule` (core pick, chunk length); leftovers drain in
/// core order. Returns ((core0 L1I, core0 L1D), (core1 L1I, core1 L1D),
/// shared L2) counters.
fn run_interleaved(
    streams: &[Vec<Access>; 2],
    schedule: &[(bool, u8)],
) -> ([(CacheStats, CacheStats); 2], CacheStats) {
    let cfg = HierarchyConfig::default();
    let shared = SharedMemSystem::new(MainMemory::new(), cfg).into_handle();
    let mut cores = [
        CoreMemSys::attach(0, cfg, shared.clone()),
        CoreMemSys::attach(1, cfg, shared.clone()),
    ];
    let mut cursors = [0usize, 0usize];
    let mut quanta = schedule
        .iter()
        .map(|&(pick, len)| (pick as usize, len as usize + 1))
        // Drain whatever the schedule left over, one core at a time.
        .chain([(0, usize::MAX), (1, usize::MAX)]);
    while cursors[0] < streams[0].len() || cursors[1] < streams[1].len() {
        let (id, len) = quanta.next().expect("drain tail is unbounded");
        for _ in 0..len {
            let Some(&access) = streams[id].get(cursors[id]) else {
                break;
            };
            drive(&mut cores[id], id, access);
            cursors[id] += 1;
        }
    }
    let l1 = [
        (cores[0].stats().0, cores[0].stats().1),
        (cores[1].stats().0, cores[1].stats().1),
    ];
    let l2 = shared.borrow().l2_stats();
    (l1, l2)
}

/// Runs one stream alone through a fresh single-core system.
fn run_solo(core_id: usize, stream: &[Access]) -> (CacheStats, CacheStats) {
    let mut core = CoreMemSys::single(MainMemory::new(), HierarchyConfig::default());
    for &access in stream {
        drive(&mut core, core_id, access);
    }
    (core.stats().0, core.stats().1)
}

/// Like [`run_interleaved`], but over an arbitrary hierarchy through the
/// timed access ports, with a global clock ticking once per access.
/// Additionally returns the far-tier counters (when `cfg` has one).
fn run_interleaved_at(
    cfg: MemSpec,
    streams: &[Vec<Access>; 2],
    schedule: &[(bool, u8)],
) -> ([(CacheStats, CacheStats); 2], CacheStats, Option<FarStats>) {
    let shared = SharedMemSystem::new(MainMemory::new(), cfg).into_handle();
    let mut cores = [
        CoreMemSys::attach(0, cfg, shared.clone()),
        CoreMemSys::attach(1, cfg, shared.clone()),
    ];
    let mut cursors = [0usize, 0usize];
    let mut now = 0u64;
    let mut quanta = schedule
        .iter()
        .map(|&(pick, len)| (pick as usize, len as usize + 1))
        .chain([(0, usize::MAX), (1, usize::MAX)]);
    while cursors[0] < streams[0].len() || cursors[1] < streams[1].len() {
        let (id, len) = quanta.next().expect("drain tail is unbounded");
        for _ in 0..len {
            let Some(&access) = streams[id].get(cursors[id]) else {
                break;
            };
            let addr = addr_of(id, access);
            if access.1 {
                cores[id].access_instr_at(addr, now);
            } else {
                cores[id].access_data_at(addr, now);
            }
            now += 1;
            cursors[id] += 1;
        }
    }
    let l1 = [
        (cores[0].stats().0, cores[0].stats().1),
        (cores[1].stats().0, cores[1].stats().1),
    ];
    let l2 = shared.borrow().l2_stats();
    let far = shared.borrow().far_stats();
    (l1, l2, far)
}

fn stream() -> impl Strategy<Value = Vec<Access>> {
    proptest::collection::vec((any::<u16>(), any::<bool>()), 0..200)
}

fn schedule() -> impl Strategy<Value = Vec<(bool, u8)>> {
    proptest::collection::vec((any::<bool>(), any::<u8>()), 0..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With set-disjoint L2 footprints, every interleaving granularity
    /// yields the same L2 counters, and the private L1 counters match a
    /// solo run of each stream (i.e. sibling traffic is invisible to them).
    #[test]
    fn counters_are_interleaving_invariant(
        (stream0, stream1) in (stream(), stream()),
        schedule_a in schedule(),
        schedule_b in schedule(),
    ) {
        let streams = [stream0, stream1];
        let (l1_a, l2_a) = run_interleaved(&streams, &schedule_a);
        let (l1_b, l2_b) = run_interleaved(&streams, &schedule_b);
        prop_assert_eq!(l2_a, l2_b);
        prop_assert_eq!(l1_a, l1_b);
        for (id, stream) in streams.iter().enumerate() {
            prop_assert_eq!(l1_a[id], run_solo(id, stream));
        }
        // Sanity: the shared L2 really saw both cores' misses.
        let solo_l2 = |s: &[Access], id: usize| {
            let mut core = CoreMemSys::single(MainMemory::new(), HierarchyConfig::default());
            for &a in s {
                drive(&mut core, id, a);
            }
            core.stats().2
        };
        let s0 = solo_l2(&streams[0], 0);
        let s1 = solo_l2(&streams[1], 1);
        prop_assert_eq!(l2_a.accesses(), s0.accesses() + s1.accesses());
        prop_assert_eq!(l2_a.hits, s0.hits + s1.hits);
    }

    /// The far tier only reshapes *latency*: with it enabled (through the
    /// timed ports), the L1/L2 hit/miss counters stay interleaving-
    /// invariant and byte-identical to the near-memory-only hierarchy,
    /// every L2 miss becomes exactly one far access, and the MSHR bound
    /// holds.
    #[test]
    fn far_tier_never_perturbs_the_cache_counters(
        (stream0, stream1) in (stream(), stream()),
        schedule_a in schedule(),
        schedule_b in schedule(),
    ) {
        let spec = FarSpec::new(300, 4, 8);
        let cfg = MemSpec::figure4().with_far(spec);
        let streams = [stream0, stream1];
        let (l1_a, l2_a, far_a) = run_interleaved_at(cfg, &streams, &schedule_a);
        let (l1_b, l2_b, _) = run_interleaved_at(cfg, &streams, &schedule_b);
        prop_assert_eq!(l2_a, l2_b);
        prop_assert_eq!(l1_a, l1_b);

        let (l1_near, l2_near, far_near) =
            run_interleaved_at(MemSpec::figure4(), &streams, &schedule_a);
        prop_assert_eq!(far_near, None);
        prop_assert_eq!(l1_a, l1_near);
        prop_assert_eq!(l2_a, l2_near);

        let far = far_a.expect("far tier configured");
        prop_assert_eq!(far.accesses, l2_a.misses);
        prop_assert!(far.coalesced <= far.accesses);
        // The MSHR bound holds except for never-refuse overflow pushes,
        // each of which is counted.
        prop_assert!(far.peak_inflight <= spec.mshrs + far.overflow as usize);
        // The never-refuse ports queue rather than refuse.
        prop_assert_eq!(far.busy, 0);
    }
}
