//! Property tests: the MDT against a total-order violation oracle.
//!
//! The defining soundness property (§2.2): when loads and stores to the same
//! granule issue out of program order, the MDT must detect a violation — it
//! may be conservative (spurious violations from aliasing or stale entries
//! are allowed; they only cost performance), but it must never miss a true,
//! anti, or output conflict that the paper's rules define, as long as every
//! access actually completed (no structural conflicts).

use std::collections::HashMap;

use aim_core::{Mdt, MdtConfig};
use aim_types::{AccessSize, Addr, MemAccess, SeqNum, ViolationKind};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct Access {
    is_store: bool,
    slot: u8,
}

fn access_strategy() -> impl Strategy<Value = Access> {
    (any::<bool>(), 0u8..8).prop_map(|(is_store, slot)| Access { is_store, slot })
}

fn mem_access(slot: u8) -> MemAccess {
    MemAccess::new(Addr(0x4000 + slot as u64 * 8), AccessSize::Double).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Issue a program-order sequence in a scrambled execution order and
    /// check that every genuine ordering conflict raises a violation.
    #[test]
    fn mdt_never_misses_genuine_violations(
        accesses in proptest::collection::vec(access_strategy(), 2..40),
        shuffle_seed in any::<u64>(),
    ) {
        // Program order: seq = index + 1. Execution order: a deterministic
        // shuffle of the indices.
        let mut order: Vec<usize> = (0..accesses.len()).collect();
        let mut s = shuffle_seed | 1;
        for i in (1..order.len()).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }

        // A huge MDT: no structural conflicts, no aliasing between slots.
        let mut mdt = Mdt::new(MdtConfig {
            sets: 4096,
            ways: 8,
            ..MdtConfig::baseline()
        });
        let floor = SeqNum(1); // everything stays in flight

        // Oracle: per slot, the max executed load/store seq so far.
        let mut max_load: HashMap<u8, u64> = HashMap::new();
        let mut max_store: HashMap<u8, u64> = HashMap::new();

        for &idx in &order {
            let a = accesses[idx];
            let seq = SeqNum(idx as u64 + 1);
            let acc = mem_access(a.slot);
            if a.is_store {
                let expect_output = max_store.get(&a.slot).copied().unwrap_or(0) > seq.0;
                let expect_true = max_load.get(&a.slot).copied().unwrap_or(0) > seq.0;
                let violations = mdt.on_store_execute(seq, idx as u64, acc, floor)
                    .expect("no structural conflicts in a huge MDT");
                let kinds: Vec<ViolationKind> = violations.iter().map(|v| v.kind).collect();
                if expect_output {
                    prop_assert!(
                        kinds.contains(&ViolationKind::Output),
                        "missed output violation at seq {seq}"
                    );
                }
                if expect_true {
                    prop_assert!(
                        kinds.contains(&ViolationKind::True),
                        "missed true violation at seq {seq}"
                    );
                }
                let e = max_store.entry(a.slot).or_insert(0);
                *e = (*e).max(seq.0);
            } else {
                let expect_anti = max_store.get(&a.slot).copied().unwrap_or(0) > seq.0;
                let v = mdt.on_load_execute(seq, idx as u64, acc, floor)
                    .expect("no structural conflicts in a huge MDT");
                if expect_anti {
                    prop_assert!(
                        matches!(v, Some(x) if x.kind == ViolationKind::Anti),
                        "missed anti violation at seq {seq}"
                    );
                } else {
                    // Loads that violate do not record themselves; only track
                    // clean completions.
                    let e = max_load.entry(a.slot).or_insert(0);
                    *e = (*e).max(seq.0);
                }
            }
        }
    }

    /// In-order execution never raises a violation, and retirement drains
    /// the table back to empty.
    #[test]
    fn in_order_execution_is_clean_and_drains(
        accesses in proptest::collection::vec(access_strategy(), 1..60),
    ) {
        let mut mdt = Mdt::new(MdtConfig::baseline());
        let floor = SeqNum(1);
        for (idx, a) in accesses.iter().enumerate() {
            let seq = SeqNum(idx as u64 + 1);
            let acc = mem_access(a.slot);
            if a.is_store {
                let v = mdt.on_store_execute(seq, idx as u64, acc, floor).unwrap();
                prop_assert!(v.is_empty(), "spurious violation in order at {seq}");
            } else {
                let v = mdt.on_load_execute(seq, idx as u64, acc, floor).unwrap();
                prop_assert!(v.is_none(), "spurious violation in order at {seq}");
            }
        }
        for (idx, a) in accesses.iter().enumerate() {
            let seq = SeqNum(idx as u64 + 1);
            let acc = mem_access(a.slot);
            if a.is_store {
                mdt.on_store_retire(seq, acc);
            } else {
                mdt.on_load_retire(seq, acc);
            }
        }
        prop_assert_eq!(mdt.occupancy(), 0, "retirement must drain the MDT");
        prop_assert_eq!(mdt.stats().total_violations(), 0);
    }
}
