//! Property tests: the SFC against a naive byte-overlay oracle.
//!
//! The oracle tracks, per byte, the value of the youngest surviving store and
//! whether the byte could have been corrupted by a canceled store. Any value
//! the SFC forwards must match the oracle exactly, and the SFC must never
//! forward a byte the oracle says is corrupt — under arbitrary interleavings
//! of stores, lookups, partial/full flushes, and retirements.

use std::collections::HashMap;

use aim_core::{Sfc, SfcConfig, SfcLoadResult};
use aim_types::{AccessSize, Addr, MemAccess, SeqNum};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Store {
        slot: u8,
        size_idx: u8,
        sub: u8,
        value: u64,
    },
    Lookup {
        slot: u8,
        size_idx: u8,
        sub: u8,
    },
    PartialFlush,
    RetireOldest,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), 0u8..4, any::<u8>(), any::<u64>())
            .prop_map(|(slot, size_idx, sub, value)| Op::Store { slot, size_idx, sub, value }),
        4 => (any::<u8>(), 0u8..4, any::<u8>())
            .prop_map(|(slot, size_idx, sub)| Op::Lookup { slot, size_idx, sub }),
        1 => Just(Op::PartialFlush),
        2 => Just(Op::RetireOldest),
    ]
}

fn access(slot: u8, size_idx: u8, sub: u8) -> MemAccess {
    let size = AccessSize::ALL[size_idx as usize];
    let sub = (sub as u64 % (8 / size.bytes())) * size.bytes();
    // 16 hot words: plenty of same-line interaction.
    let addr = 0x1000 + (slot as u64 % 16) * 8 + sub;
    MemAccess::new(Addr(addr), size).unwrap()
}

/// Oracle byte state.
#[derive(Debug, Clone, Copy, Default)]
struct OracleByte {
    value: u8,
    valid: bool,
    corrupt: bool,
    writer: u64,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sfc_matches_byte_overlay_oracle(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut sfc = Sfc::new(SfcConfig { sets: 4, ways: 4, corruption: Default::default(), hash: Default::default() });
        let mut oracle: HashMap<u64, OracleByte> = HashMap::new();
        let mut next_seq = 1u64;
        let mut inflight: Vec<(u64, MemAccess, u64)> = Vec::new(); // (seq, access, value)

        for op in ops {
            match op {
                Op::Store { slot, size_idx, sub, value } => {
                    let acc = access(slot, size_idx, sub);
                    let seq = SeqNum(next_seq);
                    next_seq += 1;
                    let floor = inflight.first().map_or(SeqNum(next_seq), |f| SeqNum(f.0));
                    if sfc.store_write(seq, acc, value, floor).is_ok() {
                        inflight.push((seq.0, acc, value));
                        for (k, byte_idx) in acc.mask().iter_bytes().enumerate() {
                            let addr = acc.word_addr().0 + byte_idx as u64;
                            let b = oracle.entry(addr).or_default();
                            b.value = (value >> (8 * k)) as u8;
                            b.valid = true;
                            b.corrupt = false;
                            b.writer = seq.0;
                        }
                    }
                }
                Op::Lookup { slot, size_idx, sub } => {
                    let acc = access(slot, size_idx, sub);
                    let floor = inflight.first().map_or(SeqNum(next_seq), |f| SeqNum(f.0));
                    match sfc.load_lookup(acc, floor) {
                        SfcLoadResult::Forward(v) => {
                            // Every byte must be valid, clean and equal.
                            for (k, byte_idx) in acc.mask().iter_bytes().enumerate() {
                                let addr = acc.word_addr().0 + byte_idx as u64;
                                let b = oracle.get(&addr).copied().unwrap_or_default();
                                prop_assert!(b.valid, "forwarded an invalid byte at {addr:#x}");
                                prop_assert!(!b.corrupt, "forwarded a corrupt byte at {addr:#x}");
                                prop_assert_eq!(
                                    (v >> (8 * k)) as u8,
                                    b.value,
                                    "wrong forwarded byte at {:#x}", addr
                                );
                            }
                        }
                        SfcLoadResult::Partial { data, valid } => {
                            for byte_idx in valid.iter_bytes() {
                                let addr = acc.word_addr().0 + byte_idx as u64;
                                let b = oracle.get(&addr).copied().unwrap_or_default();
                                prop_assert!(b.valid && !b.corrupt);
                                prop_assert_eq!(data[byte_idx as usize], b.value);
                            }
                        }
                        SfcLoadResult::Miss | SfcLoadResult::Corrupt => {
                            // Conservative outcomes are always permitted.
                        }
                    }
                }
                Op::PartialFlush => {
                    let survivor = SeqNum(next_seq.saturating_sub(1));
                    sfc.on_partial_flush(survivor, survivor);
                    for b in oracle.values_mut() {
                        if b.valid {
                            b.corrupt = true;
                        }
                    }
                }
                Op::RetireOldest => {
                    if !inflight.is_empty() {
                        let (seq, acc, _) = inflight.remove(0);
                        if sfc.on_store_retire(SeqNum(seq), acc) {
                            // Line freed: its bytes are gone from the SFC.
                            for byte_idx in 0..8u64 {
                                let addr = acc.word_addr().0 + byte_idx;
                                oracle.remove(&addr);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn full_flush_always_empties(stores in proptest::collection::vec(
        (any::<u8>(), any::<u64>()), 1..40))
    {
        let mut sfc = Sfc::new(SfcConfig { sets: 4, ways: 2, corruption: Default::default(), hash: Default::default() });
        for (i, (slot, value)) in stores.iter().enumerate() {
            let acc = access(*slot, 3, 0);
            let _ = sfc.store_write(SeqNum(i as u64 + 1), acc, *value, SeqNum(1));
        }
        sfc.on_full_flush();
        prop_assert_eq!(sfc.occupancy(), 0);
        for slot in 0u8..16 {
            let acc = access(slot, 3, 0);
            prop_assert_eq!(sfc.load_lookup(acc, SeqNum(1)), SfcLoadResult::Miss);
        }
    }
}
