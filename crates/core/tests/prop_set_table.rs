//! Property tests: [`SetTable`] against a naive nested-`Vec` model.
//!
//! The flat SoA table replaced per-structure `Vec<Vec<Option<Entry>>>`
//! implementations under a bit-identity requirement, so the property is
//! exact equivalence, not approximation: for any sequence of probes,
//! inserts, evictions and clears, every observable — match masks, way
//! choices, free-way choices, occupancy and the live-slot sweep — must
//! equal what the naive model computes. Way order matters: "first" always
//! means lowest way index.
//!
//! Each case derives from a single `u64` seed (geometry choice + op tape
//! from a xorshift generator), so failures pin as one number in
//! `prop_set_table.proptest-regressions` and are replayed by
//! [`regression_seeds_stay_green`] (the vendored proptest does not consume
//! regression files itself).

use aim_core::{SetHash, SetTable, TableGeometry};
use proptest::prelude::*;

/// Geometries under test: multi-way, direct-mapped, few-sets-many-ways,
/// and the 64-way occupancy-word edge case.
const GEOMETRIES: &[(usize, usize)] = &[(4, 3), (8, 1), (2, 8), (1, 64)];

/// Keys are drawn from a small space so probes hit, alias within a set,
/// and collide with vacated (stale) slots often.
const KEY_SPACE: u64 = 32;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// The naive reference: per set, a way-indexed vector of `Option<key>`.
struct Model {
    sets: Vec<Vec<Option<u64>>>,
    occupancy: usize,
    peak: usize,
}

impl Model {
    fn new(sets: usize, ways: usize) -> Model {
        Model {
            sets: vec![vec![None; ways]; sets],
            occupancy: 0,
            peak: 0,
        }
    }

    fn probe(&self, set: usize, key: u64) -> u64 {
        let mut mask = 0u64;
        for (w, slot) in self.sets[set].iter().enumerate() {
            if *slot == Some(key) {
                mask |= 1 << w;
            }
        }
        mask
    }

    fn first_match(&self, set: usize, key: u64) -> Option<usize> {
        self.sets[set].iter().position(|s| *s == Some(key))
    }

    fn first_free(&self, set: usize) -> Option<usize> {
        self.sets[set].iter().position(|s| s.is_none())
    }

    fn occupy(&mut self, set: usize, way: usize, key: u64) {
        assert!(self.sets[set][way].is_none());
        self.sets[set][way] = Some(key);
        self.occupancy += 1;
        self.peak = self.peak.max(self.occupancy);
    }

    fn vacate(&mut self, set: usize, way: usize) {
        assert!(self.sets[set][way].is_some());
        self.sets[set][way] = None;
        self.occupancy -= 1;
    }

    fn clear(&mut self) {
        for set in &mut self.sets {
            set.fill(None);
        }
        self.occupancy = 0;
    }

    fn occupied_slots(&self) -> Vec<usize> {
        let ways = self.sets[0].len();
        let mut slots = Vec::new();
        for (set, s) in self.sets.iter().enumerate() {
            for (w, slot) in s.iter().enumerate() {
                if slot.is_some() {
                    slots.push(set * ways + w);
                }
            }
        }
        slots
    }
}

/// Runs one seeded op tape through the table and the model, comparing
/// every observable after every step.
fn check_case(seed: u64) -> Result<(), TestCaseError> {
    let mut rng = XorShift(seed | 1);
    let (sets, ways) = GEOMETRIES[(rng.next() % GEOMETRIES.len() as u64) as usize];
    let mut table = SetTable::new(TableGeometry {
        sets,
        ways,
        hash: SetHash::LowBits,
    });
    let mut model = Model::new(sets, ways);

    let ops = 20 + (rng.next() % 120);
    for step in 0..ops {
        let key = rng.next() % KEY_SPACE;
        let set = table.set_of(key);
        match rng.next() % 8 {
            // Probe-only: no state change.
            0 => {}
            // Insert into the first free way; if the set is full, re-key
            // the first matching way (in-place overwrite) or, failing
            // that, victim-replace way 0.
            1..=4 => match table.first_free(set) {
                Some(way) => {
                    prop_assert_eq!(model.first_free(set), Some(way), "free way @{}", step);
                    table.occupy(set, way, key);
                    model.occupy(set, way, key);
                }
                None => {
                    prop_assert_eq!(model.first_free(set), None, "full set @{}", step);
                    let way = table.first_match(set, key).unwrap_or(0);
                    table.replace(set, way, key);
                    model.sets[set][way] = Some(key);
                }
            },
            // Evict the first way matching the key, if any.
            5..=6 => {
                if let Some(way) = table.first_match(set, key) {
                    table.vacate(set, way);
                    model.vacate(set, way);
                }
            }
            // Rare full clear.
            _ => {
                table.clear();
                model.clear();
            }
        }

        // Every observable agrees with the model, for hitting and for
        // aliasing keys alike.
        let other = rng.next() % KEY_SPACE;
        for probe_key in [key, other] {
            let s = table.set_of(probe_key);
            prop_assert_eq!(
                table.probe(s, probe_key),
                model.probe(s, probe_key),
                "probe mask, key {} @{}",
                probe_key,
                step
            );
            prop_assert_eq!(
                table.first_match(s, probe_key),
                model.first_match(s, probe_key),
                "first match, key {} @{}",
                probe_key,
                step
            );
        }
        prop_assert_eq!(table.first_free(set), model.first_free(set), "@{}", step);
        prop_assert_eq!(table.occupancy(), model.occupancy, "occupancy @{}", step);
        prop_assert_eq!(table.peak_occupancy(), model.peak, "peak @{}", step);
        prop_assert_eq!(
            table.occupied_slots().collect::<Vec<_>>(),
            model.occupied_slots(),
            "live-slot sweep @{}",
            step
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn set_table_matches_naive_model(seed in any::<u64>()) {
        check_case(seed)?;
    }
}

/// Replays every pinned seed from `prop_set_table.proptest-regressions`.
/// The parsing contract matches the file the vendored proptest would
/// write: `cc <hash> # shrinks to seed = N`, one failure per line.
#[test]
fn regression_seeds_stay_green() {
    let recorded = include_str!("prop_set_table.proptest-regressions");
    let mut replayed = 0;
    for line in recorded.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let seed: u64 = line
            .split("seed = ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("malformed regression line: {line}"));
        check_case(seed).unwrap_or_else(|e| panic!("regression seed {seed}: {e}"));
        replayed += 1;
    }
    assert!(replayed >= 4, "regression file lost its seeds");
}
