//! A data-oriented set-associative table core.
//!
//! Every address-indexed structure in the simulator — SFC, MDT, the
//! filtered-LSQ store-presence filter, the PCAX PC tables, and the cache
//! timing models — is a `sets × ways` array probed by a hashed key. The
//! original implementations each kept a `Vec<Vec<Option<Entry>>>`, so one
//! probe chased two heap pointers and branched on an `Option` per way.
//!
//! [`SetTable`] replaces that with the dense layout the paper's hardware
//! argument assumes (§2.2: an address-indexed probe is a RAM read, not a
//! CAM search):
//!
//! * one flat backing array of keys, indexed `set * ways + way` (a *slot*);
//! * a bit-packed occupancy word per set — bit `w` set means way `w` holds
//!   a live entry;
//! * a branchless probe: every way's key is compared unconditionally and
//!   the comparison results are packed into a way mask, which is then ANDed
//!   with the occupancy word. Unoccupied slots may hold stale keys; the
//!   occupancy AND makes them unmatchable, so no `Option` is needed.
//!
//! Payload fields live in parallel structure-of-arrays columns owned by
//! each embedding structure (the SFC's data/valid/corrupt columns, the
//! MDT's sequence-number columns, …), indexed by the same flat slot. The
//! table itself tracks only keys, occupancy, and the occupancy statistics
//! every structure used to duplicate.
//!
//! Way order is preserved everywhere: "first free way", "first matching
//! way" and "first stale way" mean the lowest way index, exactly as the
//! nested-`Vec` implementations scanned, so migrated structures behave
//! bit-identically.

use crate::TableGeometry;

/// Keys + occupancy for a `sets × ways` table in a single flat allocation.
///
/// # Examples
///
/// ```
/// use aim_core::{SetHash, SetTable, TableGeometry};
///
/// let mut t = SetTable::new(TableGeometry { sets: 4, ways: 2, hash: SetHash::LowBits });
/// let set = t.set_of(0x13);
/// assert_eq!(t.probe(set, 0x13), 0, "empty table matches nothing");
/// let way = t.first_free(set).unwrap();
/// t.occupy(set, way, 0x13);
/// assert_eq!(t.probe(set, 0x13), 1 << way);
/// ```
#[derive(Debug, Clone)]
pub struct SetTable {
    geom: TableGeometry,
    /// Per-set occupancy bit-word: bit `w` set ⇔ way `w` is live.
    occ: Box<[u64]>,
    /// Full keys, flat `set * ways + way`. Vacated slots keep their stale
    /// key; the occupancy word masks them out of every probe.
    keys: Box<[u64]>,
    occupancy: usize,
    peak_occupancy: usize,
}

impl SetTable {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (non-power-of-two or zero `sets`,
    /// zero `ways`) or `ways > 64` (one occupancy bit per way).
    pub fn new(geom: TableGeometry) -> SetTable {
        geom.validate("SetTable");
        assert!(geom.ways <= 64, "SetTable: at most 64 ways per set");
        SetTable {
            geom,
            occ: vec![0; geom.sets].into_boxed_slice(),
            keys: vec![0; geom.entries()].into_boxed_slice(),
            occupancy: 0,
            peak_occupancy: 0,
        }
    }

    /// The table's shape.
    pub fn geometry(&self) -> TableGeometry {
        self.geom
    }

    /// Ways per set.
    #[inline]
    pub fn ways(&self) -> usize {
        self.geom.ways
    }

    /// The set `key` hashes to.
    #[inline]
    pub fn set_of(&self, key: u64) -> usize {
        self.geom.index(key)
    }

    /// The flat slot index of `(set, way)`.
    #[inline]
    pub fn slot(&self, set: usize, way: usize) -> usize {
        debug_assert!(way < self.geom.ways);
        set * self.geom.ways + way
    }

    /// The occupancy bit-word of `set`.
    #[inline]
    pub fn occ_word(&self, set: usize) -> u64 {
        self.occ[set]
    }

    /// Whether `(set, way)` holds a live entry.
    #[inline]
    pub fn is_occupied(&self, set: usize, way: usize) -> bool {
        self.occ[set] & (1 << way) != 0
    }

    /// The key stored at `slot` (stale for unoccupied slots).
    #[inline]
    pub fn key_at(&self, slot: usize) -> u64 {
        self.keys[slot]
    }

    /// Branchless probe: the mask of *occupied* ways of `set` whose key
    /// equals `key`. Every way's key is compared unconditionally; the
    /// occupancy word then masks out dead slots.
    #[inline]
    pub fn probe(&self, set: usize, key: u64) -> u64 {
        let base = set * self.geom.ways;
        let mut mask = 0u64;
        for w in 0..self.geom.ways {
            mask |= u64::from(self.keys[base + w] == key) << w;
        }
        mask & self.occ[set]
    }

    /// The lowest occupied way of `set` matching `key`, if any — the way
    /// order the nested-`Vec` scans used.
    #[inline]
    pub fn first_match(&self, set: usize, key: u64) -> Option<usize> {
        let mask = self.probe(set, key);
        (mask != 0).then(|| mask.trailing_zeros() as usize)
    }

    /// The lowest free way of `set`, if any.
    #[inline]
    pub fn first_free(&self, set: usize) -> Option<usize> {
        let free = !self.occ[set] & Self::way_mask(self.geom.ways);
        (free != 0).then(|| free.trailing_zeros() as usize)
    }

    /// All `ways` low bits set.
    #[inline]
    fn way_mask(ways: usize) -> u64 {
        if ways == 64 {
            u64::MAX
        } else {
            (1u64 << ways) - 1
        }
    }

    /// Marks the free way `(set, way)` occupied by `key`, counting it
    /// toward occupancy (and its peak).
    ///
    /// # Panics
    ///
    /// Debug-panics if the slot is already occupied.
    #[inline]
    pub fn occupy(&mut self, set: usize, way: usize, key: u64) {
        debug_assert!(!self.is_occupied(set, way), "occupy of a live slot");
        self.keys[set * self.geom.ways + way] = key;
        self.occ[set] |= 1 << way;
        self.occupancy += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.occupancy);
    }

    /// Re-keys the *occupied* way `(set, way)` in place (victim
    /// replacement / stale reclaim), leaving occupancy unchanged.
    ///
    /// # Panics
    ///
    /// Debug-panics if the slot is not occupied.
    #[inline]
    pub fn replace(&mut self, set: usize, way: usize, key: u64) {
        debug_assert!(self.is_occupied(set, way), "replace of a dead slot");
        self.keys[set * self.geom.ways + way] = key;
    }

    /// Frees the occupied way `(set, way)`.
    ///
    /// # Panics
    ///
    /// Debug-panics if the slot is not occupied.
    #[inline]
    pub fn vacate(&mut self, set: usize, way: usize) {
        debug_assert!(self.is_occupied(set, way), "vacate of a dead slot");
        self.occ[set] &= !(1 << way);
        self.occupancy -= 1;
    }

    /// Empties the table (occupancy statistics are kept, as the structures'
    /// full flushes keep theirs).
    pub fn clear(&mut self) {
        self.occ.fill(0);
        self.occupancy = 0;
    }

    /// Live entries.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Highest occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Iterates the flat slot indices of every occupied entry, set-major,
    /// ascending way within a set — visiting only live slots, so
    /// whole-table sweeps cost O(occupancy), not O(sets × ways).
    pub fn occupied_slots(&self) -> impl Iterator<Item = usize> + '_ {
        let ways = self.geom.ways;
        self.occ.iter().enumerate().flat_map(move |(set, &word)| {
            let base = set * ways;
            BitIter(word).map(move |w| base + w)
        })
    }
}

/// Iterator over the set bit positions of a word, ascending.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let bit = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SetHash;

    fn table(sets: usize, ways: usize) -> SetTable {
        SetTable::new(TableGeometry {
            sets,
            ways,
            hash: SetHash::LowBits,
        })
    }

    #[test]
    fn probe_masks_out_stale_keys() {
        let mut t = table(4, 2);
        t.occupy(1, 0, 0x11);
        t.occupy(1, 1, 0x21);
        assert_eq!(t.probe(1, 0x11), 0b01);
        assert_eq!(t.probe(1, 0x21), 0b10);
        t.vacate(1, 0);
        // The stale key 0x11 is still in the backing array but dead.
        assert_eq!(t.key_at(t.slot(1, 0)), 0x11);
        assert_eq!(t.probe(1, 0x11), 0);
    }

    #[test]
    fn first_free_and_first_match_use_lowest_way() {
        let mut t = table(2, 4);
        assert_eq!(t.first_free(0), Some(0));
        t.occupy(0, 0, 7);
        assert_eq!(t.first_free(0), Some(1));
        t.occupy(0, 2, 7);
        // Both ways 0 and 2 hold key 7: the scan order picks way 0.
        assert_eq!(t.first_match(0, 7), Some(0));
        t.vacate(0, 0);
        assert_eq!(t.first_match(0, 7), Some(2));
        assert_eq!(t.first_free(0), Some(0));
    }

    #[test]
    fn occupancy_and_peak_track_like_the_nested_vecs() {
        let mut t = table(2, 2);
        t.occupy(0, 0, 1);
        t.occupy(0, 1, 2);
        t.occupy(1, 0, 3);
        assert_eq!(t.occupancy(), 3);
        assert_eq!(t.peak_occupancy(), 3);
        t.vacate(0, 1);
        assert_eq!(t.occupancy(), 2);
        // Replace re-keys without moving occupancy.
        t.replace(0, 0, 9);
        assert_eq!(t.occupancy(), 2);
        assert_eq!(t.first_match(0, 9), Some(0));
        assert_eq!(t.peak_occupancy(), 3);
        t.clear();
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.peak_occupancy(), 3, "clear keeps the peak");
    }

    #[test]
    fn occupied_slots_visits_live_entries_in_slot_order() {
        let mut t = table(4, 2);
        t.occupy(0, 1, 1);
        t.occupy(2, 0, 2);
        t.occupy(2, 1, 3);
        t.occupy(3, 0, 4);
        let slots: Vec<usize> = t.occupied_slots().collect();
        assert_eq!(slots, vec![1, 4, 5, 6]);
    }

    #[test]
    fn sixty_four_ways_supported() {
        let mut t = table(1, 64);
        for w in 0..64 {
            t.occupy(0, w, w as u64);
        }
        assert_eq!(t.first_free(0), None);
        assert_eq!(t.probe(0, 63), 1 << 63);
        assert_eq!(t.occupancy(), 64);
    }

    #[test]
    #[should_panic(expected = "at most 64 ways")]
    fn more_than_64_ways_rejected() {
        table(1, 65);
    }
}
