//! The memory disambiguation table (paper §2.2, Figure 2).

use aim_types::{MemAccess, SeqNum, ViolationKind};

use crate::{SetHash, SetTable, StructuralConflict, TableGeometry};

/// Recovery policy for true dependence violations (paper §2.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrueDepRecovery {
    /// Flush all instructions subsequent to the completing store (default).
    #[default]
    Conservative,
    /// "Each MDT entry could keep a count of the number of loads completed
    /// but not yet retired. When the MDT detects a true dependence violation,
    /// if this counter's value is one, the processor can flush the early load
    /// and subsequent instructions, rather than the instructions subsequent
    /// to the completing store."
    ///
    /// The counter can only over-count (squashed loads never decrement it,
    /// since the MDT ignores pipeline flushes), so the aggressive path is
    /// taken only when it is provably safe.
    SingleLoadAggressive,
}

/// Whether MDT entries carry address tags (paper §2.2).
///
/// "Entries in the MDT may be tagged or untagged. In an untagged MDT, all
/// in-flight loads and stores whose addresses map to the same MDT entry
/// simply share that entry. Thus, aliasing among loads and stores with
/// different addresses causes the MDT to detect spurious memory ordering
/// violations. Tagged entries prevent aliasing and enable construction of a
/// set-associative MDT."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MdtTagging {
    /// Tagged, set-associative entries; allocation can fail (structural
    /// conflicts → re-execution), but distinct addresses never alias.
    #[default]
    Tagged,
    /// Untagged, direct-mapped entries shared by every aliasing address;
    /// allocation never fails, but aliasing produces spurious violations.
    Untagged,
}

/// Geometry and policy of the [`Mdt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdtConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity (forced to 1 by [`MdtTagging::Untagged`]).
    pub ways: usize,
    /// Bytes disambiguated by one entry (power of two, ≥ 8). "Empirically,
    /// we observe that an 8-byte granular MDT is adequate for a 64-bit
    /// processor."
    pub granularity: u64,
    /// Recovery policy for true dependence violations.
    pub true_dep_recovery: TrueDepRecovery,
    /// Tagged (default) or untagged entries.
    pub tagging: MdtTagging,
    /// Set-index hash (§3.2: low bits by default; XOR-folding defeats
    /// set-sized power-of-two strides).
    pub hash: SetHash,
}

impl MdtConfig {
    /// The baseline processor's MDT: "4K sets, 2-way set assoc." (Figure 4).
    pub fn baseline() -> MdtConfig {
        MdtConfig {
            sets: 4096,
            ways: 2,
            granularity: 8,
            true_dep_recovery: TrueDepRecovery::Conservative,
            tagging: MdtTagging::Tagged,
            hash: SetHash::LowBits,
        }
    }

    /// The aggressive processor's MDT: "8K sets, 2-way set assoc." (Figure 4).
    pub fn aggressive() -> MdtConfig {
        MdtConfig {
            sets: 8192,
            ways: 2,
            ..MdtConfig::baseline()
        }
    }

    /// The kilo-entry-window machine's MDT: 32K sets, 4-way. A 4096-entry
    /// window keeps thousands of distinct word addresses in flight at
    /// once; on scattered-address workloads the Figure 4 geometries run
    /// out of ways and every conflicting load replays. The MDT is
    /// RAM-indexed, so the fix is simply more SRAM — the scaling freedom
    /// the paper contrasts against the LSQ's CAM ports.
    pub fn huge() -> MdtConfig {
        MdtConfig {
            sets: 32768,
            ways: 4,
            ..MdtConfig::baseline()
        }
    }

    /// The MDT's shape as a shared [`TableGeometry`] (the flat `sets` /
    /// `ways` / `hash` fields stay public for per-experiment mutation; this
    /// view is what the table indexes through).
    pub fn geometry(&self) -> TableGeometry {
        TableGeometry {
            sets: self.sets,
            ways: self.ways,
            hash: self.hash,
        }
    }
}

/// A detected memory dependence violation, with everything the pipeline needs
/// for recovery and predictor training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Which dependence was violated.
    pub kind: ViolationKind,
    /// PC of the earlier instruction (the predicted *producer*).
    pub producer_pc: u64,
    /// PC of the later instruction (the predicted *consumer*).
    pub consumer_pc: u64,
    /// Recovery point: squash every instruction with `seq > squash_after`.
    ///
    /// * True/output violation: all instructions subsequent to the completing
    ///   store are flushed (`squash_after` = the store's sequence number) —
    ///   or, under [`TrueDepRecovery::SingleLoadAggressive`], everything from
    ///   the single conflicting load onward.
    /// * Anti violation: "the pipeline flushes the load and all subsequent
    ///   instructions" (`squash_after` = the load's predecessor).
    pub squash_after: SeqNum,
}

/// Counters for the MDT.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MdtStats {
    /// Load execute-time checks performed.
    pub load_checks: u64,
    /// Store execute-time checks performed.
    pub store_checks: u64,
    /// True dependence violations detected.
    pub true_violations: u64,
    /// Anti dependence violations detected.
    pub anti_violations: u64,
    /// Output dependence violations detected.
    pub output_violations: u64,
    /// Structural (set) conflicts forcing re-execution.
    pub conflicts: u64,
    /// Stale entries reclaimed at allocation time.
    pub reclaims: u64,
    /// Entries freed at retirement.
    pub frees: u64,
    /// Aggressive (single-load) true-dependence recoveries taken.
    pub aggressive_recoveries: u64,
}

impl MdtStats {
    /// Total violations of all kinds.
    pub fn total_violations(&self) -> u64 {
        self.true_violations + self.anti_violations + self.output_violations
    }
}

/// Sentinel for "no sequence number recorded" in the SoA columns (the
/// dense stand-in for `Option<SeqNum>`). Real sequence numbers start at 1
/// and never reach `u64::MAX`; every comparison checks the sentinel
/// explicitly rather than relying on its ordering.
const NO_SEQ: u64 = u64::MAX;

/// The memory disambiguation table: "an address-indexed, cache-like structure
/// that replaces the conventional load queue and its associative search
/// logic. ... the MDT buffers the sequence numbers of the latest load and
/// store to each in-flight memory address. Therefore, memory disambiguation
/// requires at most two sequence number comparisons for each issued load or
/// store" (§2.2).
///
/// Tagged entries prevent aliasing; when a set conflict prevents allocation,
/// the access reports a [`StructuralConflict`] and is replayed. Entries whose
/// recorded sequence numbers are all older than the oldest in-flight
/// instruction belong to retired or canceled instructions and are reclaimed
/// lazily at allocation (the paper's MDT "ignores partial flushes" and simply
/// becomes conservative about canceled instructions).
///
/// # Examples
///
/// An anti-dependence violation — a younger store beats an older load to the
/// same address:
///
/// ```
/// use aim_core::{Mdt, MdtConfig};
/// use aim_types::{AccessSize, Addr, MemAccess, SeqNum, ViolationKind};
///
/// let mut mdt = Mdt::new(MdtConfig::baseline());
/// let acc = MemAccess::new(Addr(0x80), AccessSize::Double).unwrap();
/// let floor = SeqNum(1);
///
/// // Store #5 (younger) executes first...
/// mdt.on_store_execute(SeqNum(5), 0x20, acc, floor).unwrap();
/// // ...then load #2 (older) executes: WAR violation.
/// let v = mdt.on_load_execute(SeqNum(2), 0x10, acc, floor).unwrap().unwrap();
/// assert_eq!(v.kind, ViolationKind::Anti);
/// assert_eq!(v.squash_after, SeqNum(1)); // the load itself is flushed
/// ```
#[derive(Debug, Clone)]
pub struct Mdt {
    config: MdtConfig,
    /// Granule keys + per-set occupancy bit-words.
    table: SetTable,
    /// SoA payload columns, indexed by the table's flat slot. Sequence
    /// numbers use the [`NO_SEQ`] sentinel for "invalid".
    load_seq: Vec<u64>,
    store_seq: Vec<u64>,
    load_pc: Vec<u64>,
    store_pc: Vec<u64>,
    /// Loads completed but not yet retired per entry (see
    /// [`TrueDepRecovery::SingleLoadAggressive`]).
    loads_completed: Vec<u32>,
    stats: MdtStats,
}

impl Mdt {
    /// Creates an empty MDT.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `granularity` is not a nonzero power of two, if
    /// `granularity < 8`, or if `ways == 0`.
    pub fn new(mut config: MdtConfig) -> Mdt {
        assert!(config.granularity.is_power_of_two() && config.granularity >= 8);
        if config.tagging == MdtTagging::Untagged {
            config.ways = 1; // untagged entries are direct-mapped
        }
        let table = SetTable::new(config.geometry());
        let entries = config.sets * config.ways;
        Mdt {
            config,
            table,
            load_seq: vec![NO_SEQ; entries],
            store_seq: vec![NO_SEQ; entries],
            load_pc: vec![0; entries],
            store_pc: vec![0; entries],
            loads_completed: vec![0; entries],
            stats: MdtStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> MdtConfig {
        self.config
    }

    /// Counters.
    pub fn stats(&self) -> MdtStats {
        self.stats
    }

    /// Entries currently allocated.
    pub fn occupancy(&self) -> usize {
        self.table.occupancy()
    }

    /// Highest occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.table.peak_occupancy()
    }

    #[inline]
    fn granule_of(&self, access: MemAccess) -> u64 {
        access.addr().0 / self.config.granularity
    }

    #[inline]
    fn is_stale(&self, slot: usize, floor: SeqNum) -> bool {
        let ls = self.load_seq[slot];
        let ss = self.store_seq[slot];
        (ls == NO_SEQ || ls < floor.0) && (ss == NO_SEQ || ss < floor.0)
    }

    /// The way holding `granule`, if any. Untagged entries are shared by
    /// every aliasing granule, so any occupied way of the set matches.
    #[inline]
    fn find(&self, set: usize, granule: u64) -> Option<usize> {
        if self.config.tagging == MdtTagging::Untagged {
            let occ = self.table.occ_word(set);
            (occ != 0).then(|| occ.trailing_zeros() as usize)
        } else {
            self.table.first_match(set, granule)
        }
    }

    /// Resets a slot's payload columns to the empty-entry state.
    #[inline]
    fn reset_slot(&mut self, slot: usize) {
        self.load_seq[slot] = NO_SEQ;
        self.store_seq[slot] = NO_SEQ;
        self.load_pc[slot] = 0;
        self.store_pc[slot] = 0;
        self.loads_completed[slot] = 0;
    }

    /// Finds the slot holding `granule`, or allocates one (empty way first,
    /// then any stale way). `Err` is a set conflict.
    fn find_or_alloc(&mut self, granule: u64, floor: SeqNum) -> Result<usize, StructuralConflict> {
        let set = self.table.set_of(granule);
        if let Some(way) = self.find(set, granule) {
            return Ok(self.table.slot(set, way));
        }
        if let Some(way) = self.table.first_free(set) {
            self.table.occupy(set, way, granule);
            let slot = self.table.slot(set, way);
            self.reset_slot(slot);
            return Ok(slot);
        }
        // Every way is occupied by another granule: reclaim the first stale
        // one in place.
        if let Some(way) =
            (0..self.table.ways()).find(|&w| self.is_stale(self.table.slot(set, w), floor))
        {
            self.stats.reclaims += 1;
            self.table.replace(set, way, granule);
            let slot = self.table.slot(set, way);
            self.reset_slot(slot);
            return Ok(slot);
        }
        self.stats.conflicts += 1;
        Err(StructuralConflict)
    }

    /// A load at `pc` with sequence number `seq` executes an access.
    ///
    /// Returns `Ok(Some(violation))` for an anti-dependence violation (a
    /// younger store already executed), `Ok(None)` when the load completes
    /// cleanly.
    ///
    /// # Errors
    ///
    /// [`StructuralConflict`] if no MDT entry could be allocated; the memory
    /// unit must drop and replay the load.
    pub fn on_load_execute(
        &mut self,
        seq: SeqNum,
        pc: u64,
        access: MemAccess,
        floor: SeqNum,
    ) -> Result<Option<Violation>, StructuralConflict> {
        self.stats.load_checks += 1;
        let granule = self.granule_of(access);
        let slot = self.find_or_alloc(granule, floor)?;

        let ss = self.store_seq[slot];
        if ss != NO_SEQ && seq.0 < ss {
            // A later store already completed: the load (and everything
            // after it) must be flushed and re-executed.
            self.stats.anti_violations += 1;
            return Ok(Some(Violation {
                kind: ViolationKind::Anti,
                producer_pc: pc,
                consumer_pc: self.store_pc[slot],
                squash_after: SeqNum(seq.0.saturating_sub(1)),
            }));
        }

        let ls = self.load_seq[slot];
        if ls == NO_SEQ || seq.0 > ls {
            self.load_seq[slot] = seq.0;
            self.load_pc[slot] = pc;
        }
        self.loads_completed[slot] += 1;
        Ok(None)
    }

    /// A store at `pc` with sequence number `seq` executes an access.
    ///
    /// Returns the violations detected (a late store can simultaneously
    /// violate a true dependence against a younger load and an output
    /// dependence against a younger store; both arcs are reported, with the
    /// same flush point).
    ///
    /// # Errors
    ///
    /// [`StructuralConflict`] if no MDT entry could be allocated.
    pub fn on_store_execute(
        &mut self,
        seq: SeqNum,
        pc: u64,
        access: MemAccess,
        floor: SeqNum,
    ) -> Result<Vec<Violation>, StructuralConflict> {
        self.stats.store_checks += 1;
        let granule = self.granule_of(access);
        let recovery = self.config.true_dep_recovery;
        let slot = self.find_or_alloc(granule, floor)?;
        let mut violations = Vec::new();

        let ss = self.store_seq[slot];
        if ss != NO_SEQ && seq.0 < ss {
            // Output violation: this (earlier) store completed after a
            // later store already wrote the SFC.
            violations.push(Violation {
                kind: ViolationKind::Output,
                producer_pc: pc,
                consumer_pc: self.store_pc[slot],
                squash_after: seq,
            });
        } else {
            self.store_seq[slot] = seq.0;
            self.store_pc[slot] = pc;
        }

        let mut aggressive = false;
        let ls = self.load_seq[slot];
        if ls != NO_SEQ && seq.0 < ls {
            // True violation: a later load already executed and read a
            // stale value.
            let squash_after = if recovery == TrueDepRecovery::SingleLoadAggressive
                && self.loads_completed[slot] == 1
            {
                aggressive = true;
                SeqNum(ls.saturating_sub(1))
            } else {
                seq
            };
            violations.push(Violation {
                kind: ViolationKind::True,
                producer_pc: pc,
                consumer_pc: self.load_pc[slot],
                squash_after,
            });
        }

        if aggressive {
            self.stats.aggressive_recoveries += 1;
        }
        for v in &violations {
            match v.kind {
                ViolationKind::True => self.stats.true_violations += 1,
                ViolationKind::Output => self.stats.output_violations += 1,
                ViolationKind::Anti => unreachable!("stores cannot raise anti violations"),
            }
        }
        Ok(violations)
    }

    /// Read-only probe: has an **older, still in-flight** store already
    /// executed to the granule this access touches?
    ///
    /// This is the safety check behind a PC-indexed "no-alias" prediction:
    /// a load that skips the SFC probe would silently read stale memory if
    /// an older store had already executed to its granule — and because the
    /// store executed *first*, the MDT's late-store true-dependence check
    /// would never fire to catch it. Every executed-but-unretired store has
    /// a live record here (execution sets `store_seq`; only its own in-order
    /// retirement clears it; stale reclaim requires the whole entry to be
    /// older than `floor`), so a `false` answer proves the skip is safe.
    /// Squashed stores may leave stale records behind; those only make the
    /// probe conservatively answer `true`.
    ///
    /// The probe bumps no counters and allocates nothing — a miss (no
    /// matching entry) is simply `false`.
    pub fn executed_older_store(&self, seq: SeqNum, access: MemAccess, floor: SeqNum) -> bool {
        let granule = self.granule_of(access);
        let set = self.table.set_of(granule);
        match self.find(set, granule) {
            Some(way) => {
                let ss = self.store_seq[self.table.slot(set, way)];
                ss != NO_SEQ && ss >= floor.0 && ss < seq.0
            }
            None => false,
        }
    }

    /// Frees the slot if both its sequence numbers are invalid.
    fn maybe_free(&mut self, set: usize, way: usize) -> bool {
        let slot = self.table.slot(set, way);
        if self.load_seq[slot] == NO_SEQ && self.store_seq[slot] == NO_SEQ {
            self.table.vacate(set, way);
            self.stats.frees += 1;
            return true;
        }
        false
    }

    /// A load retires. "If the sequence numbers match, then the retiring load
    /// is the latest in-flight load to its address. Thus, the MDT invalidates
    /// the entry's load sequence number ... If the entry's store sequence
    /// number is also invalid, then the MDT frees the entry."
    ///
    /// In [`MdtTagging::Untagged`] mode, entries are shared by aliasing
    /// addresses, so a sequence-number match does **not** prove the retiring
    /// instruction owns the record — an aliased retirement could erase
    /// another in-flight address's sequence number and let a late conflicting
    /// access escape detection. Untagged entries therefore never invalidate
    /// at retirement; stale records are merely conservative (they can only
    /// cause spurious violations against canceled instructions) and are
    /// superseded by the next access.
    ///
    /// Returns `true` if an entry was freed (used to clear scheduler stall
    /// bits, §2.4.3).
    pub fn on_load_retire(&mut self, seq: SeqNum, access: MemAccess) -> bool {
        if self.config.tagging == MdtTagging::Untagged {
            return false;
        }
        let granule = self.granule_of(access);
        let set = self.table.set_of(granule);
        if let Some(way) = self.find(set, granule) {
            let slot = self.table.slot(set, way);
            self.loads_completed[slot] = self.loads_completed[slot].saturating_sub(1);
            if self.load_seq[slot] == seq.0 {
                self.load_seq[slot] = NO_SEQ;
                return self.maybe_free(set, way);
            }
        }
        false
    }

    /// A store retires; symmetric to [`Mdt::on_load_retire`].
    pub fn on_store_retire(&mut self, seq: SeqNum, access: MemAccess) -> bool {
        if self.config.tagging == MdtTagging::Untagged {
            return false;
        }
        let granule = self.granule_of(access);
        let set = self.table.set_of(granule);
        if let Some(way) = self.find(set, granule) {
            let slot = self.table.slot(set, way);
            if self.store_seq[slot] == seq.0 {
                self.store_seq[slot] = NO_SEQ;
                return self.maybe_free(set, way);
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_types::{AccessSize, Addr};

    fn acc(addr: u64) -> MemAccess {
        MemAccess::new(Addr(addr), AccessSize::Double).unwrap()
    }

    fn mdt() -> Mdt {
        Mdt::new(MdtConfig::baseline())
    }

    const FLOOR: SeqNum = SeqNum(0);

    #[test]
    fn in_order_accesses_are_clean() {
        let mut m = mdt();
        assert!(m
            .on_store_execute(SeqNum(1), 0x10, acc(0x100), FLOOR)
            .unwrap()
            .is_empty());
        assert!(m
            .on_load_execute(SeqNum(2), 0x14, acc(0x100), FLOOR)
            .unwrap()
            .is_none());
        assert_eq!(m.stats().total_violations(), 0);
    }

    #[test]
    fn true_violation_detected_on_late_store() {
        let mut m = mdt();
        // Load #5 executes before store #3 (program order: store then load).
        m.on_load_execute(SeqNum(5), 0x20, acc(0x100), FLOOR)
            .unwrap();
        let v = m
            .on_store_execute(SeqNum(3), 0x10, acc(0x100), FLOOR)
            .unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::True);
        assert_eq!(v[0].producer_pc, 0x10);
        assert_eq!(v[0].consumer_pc, 0x20);
        assert_eq!(v[0].squash_after, SeqNum(3)); // conservative: after the store
        assert_eq!(m.stats().true_violations, 1);
    }

    #[test]
    fn anti_violation_detected_on_late_load() {
        let mut m = mdt();
        m.on_store_execute(SeqNum(7), 0x30, acc(0x200), FLOOR)
            .unwrap();
        let v = m
            .on_load_execute(SeqNum(4), 0x24, acc(0x200), FLOOR)
            .unwrap()
            .unwrap();
        assert_eq!(v.kind, ViolationKind::Anti);
        assert_eq!(v.producer_pc, 0x24); // the load is the earlier instruction
        assert_eq!(v.consumer_pc, 0x30);
        assert_eq!(v.squash_after, SeqNum(3)); // load itself is flushed
    }

    #[test]
    fn output_violation_detected_on_late_store() {
        let mut m = mdt();
        m.on_store_execute(SeqNum(9), 0x40, acc(0x300), FLOOR)
            .unwrap();
        let v = m
            .on_store_execute(SeqNum(6), 0x36, acc(0x300), FLOOR)
            .unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Output);
        assert_eq!(v[0].squash_after, SeqNum(6));
        // The later store's sequence number stays in the entry.
        let v2 = m
            .on_store_execute(SeqNum(8), 0x38, acc(0x300), FLOOR)
            .unwrap();
        assert_eq!(v2[0].kind, ViolationKind::Output);
    }

    #[test]
    fn late_store_can_violate_both_true_and_output() {
        let mut m = mdt();
        m.on_store_execute(SeqNum(9), 0x40, acc(0x300), FLOOR)
            .unwrap();
        m.on_load_execute(SeqNum(10), 0x44, acc(0x300), FLOOR)
            .unwrap();
        let v = m
            .on_store_execute(SeqNum(5), 0x30, acc(0x300), FLOOR)
            .unwrap();
        let kinds: Vec<ViolationKind> = v.iter().map(|x| x.kind).collect();
        assert!(kinds.contains(&ViolationKind::Output));
        assert!(kinds.contains(&ViolationKind::True));
        assert!(v.iter().all(|x| x.squash_after == SeqNum(5)));
    }

    #[test]
    fn different_granules_do_not_interact() {
        let mut m = mdt();
        m.on_store_execute(SeqNum(9), 0x40, acc(0x300), FLOOR)
            .unwrap();
        assert!(m
            .on_load_execute(SeqNum(4), 0x24, acc(0x308), FLOOR)
            .unwrap()
            .is_none());
    }

    #[test]
    fn subword_accesses_share_a_granule() {
        let mut m = mdt();
        let lo = MemAccess::new(Addr(0x400), AccessSize::Byte).unwrap();
        let hi = MemAccess::new(Addr(0x407), AccessSize::Byte).unwrap();
        m.on_store_execute(SeqNum(9), 0x40, hi, FLOOR).unwrap();
        // 8-byte granularity: even disjoint bytes of one word conflict.
        let v = m.on_load_execute(SeqNum(4), 0x24, lo, FLOOR).unwrap();
        assert!(v.is_some(), "8-byte granularity aliases within the word");
    }

    #[test]
    fn wider_granularity_aliases_more() {
        let mut cfg = MdtConfig::baseline();
        cfg.granularity = 64;
        let mut m = Mdt::new(cfg);
        m.on_store_execute(SeqNum(9), 0x40, acc(0x100), FLOOR)
            .unwrap();
        // 0x120 is a different 8-byte word but the same 64-byte granule.
        let v = m
            .on_load_execute(SeqNum(4), 0x24, acc(0x120), FLOOR)
            .unwrap();
        assert!(v.is_some());
    }

    #[test]
    fn set_conflict_reported_when_ways_exhausted() {
        let mut cfg = MdtConfig::baseline();
        cfg.sets = 2;
        cfg.ways = 1;
        let mut m = Mdt::new(cfg);
        // Granules 0 and 2 both map to set 0.
        m.on_store_execute(SeqNum(5), 0x10, acc(0x0), SeqNum(5))
            .unwrap();
        let err = m.on_store_execute(SeqNum(6), 0x14, acc(0x10), SeqNum(5));
        assert_eq!(err.unwrap_err(), StructuralConflict);
        assert_eq!(m.stats().conflicts, 1);
    }

    #[test]
    fn stale_entries_are_reclaimed() {
        let mut cfg = MdtConfig::baseline();
        cfg.sets = 2;
        cfg.ways = 1;
        let mut m = Mdt::new(cfg);
        m.on_store_execute(SeqNum(5), 0x10, acc(0x0), SeqNum(5))
            .unwrap();
        // Seq 5 has retired or been squashed: floor is now 20.
        let ok = m.on_store_execute(SeqNum(21), 0x14, acc(0x10), SeqNum(20));
        assert!(ok.is_ok());
        assert_eq!(m.stats().reclaims, 1);
    }

    #[test]
    fn retire_frees_entry_when_both_sides_clear() {
        let mut m = mdt();
        m.on_store_execute(SeqNum(1), 0x10, acc(0x500), FLOOR)
            .unwrap();
        m.on_load_execute(SeqNum(2), 0x14, acc(0x500), FLOOR)
            .unwrap();
        assert_eq!(m.occupancy(), 1);
        assert!(!m.on_store_retire(SeqNum(1), acc(0x500))); // load still live
        assert!(m.on_load_retire(SeqNum(2), acc(0x500)));
        assert_eq!(m.occupancy(), 0);
        assert_eq!(m.stats().frees, 1);
    }

    #[test]
    fn superseded_retire_does_not_invalidate() {
        let mut m = mdt();
        m.on_load_execute(SeqNum(2), 0x14, acc(0x500), FLOOR)
            .unwrap();
        m.on_load_execute(SeqNum(9), 0x18, acc(0x500), FLOOR)
            .unwrap();
        // The older load's retirement must not clear the younger's seq.
        assert!(!m.on_load_retire(SeqNum(2), acc(0x500)));
        // Younger store then sees no anti violation (it is younger than 9? no:
        // check that entry still tracks load seq 9).
        let v = m
            .on_store_execute(SeqNum(5), 0x30, acc(0x500), FLOOR)
            .unwrap();
        assert_eq!(v[0].kind, ViolationKind::True); // proves seq 9 retained
    }

    #[test]
    fn aggressive_recovery_flushes_from_single_load() {
        let mut cfg = MdtConfig::baseline();
        cfg.true_dep_recovery = TrueDepRecovery::SingleLoadAggressive;
        let mut m = Mdt::new(cfg);
        m.on_load_execute(SeqNum(8), 0x20, acc(0x100), FLOOR)
            .unwrap();
        let v = m
            .on_store_execute(SeqNum(3), 0x10, acc(0x100), FLOOR)
            .unwrap();
        assert_eq!(v[0].squash_after, SeqNum(7)); // from the load, not the store
        assert_eq!(m.stats().aggressive_recoveries, 1);
    }

    #[test]
    fn aggressive_recovery_falls_back_with_two_loads() {
        let mut cfg = MdtConfig::baseline();
        cfg.true_dep_recovery = TrueDepRecovery::SingleLoadAggressive;
        let mut m = Mdt::new(cfg);
        m.on_load_execute(SeqNum(8), 0x20, acc(0x100), FLOOR)
            .unwrap();
        m.on_load_execute(SeqNum(9), 0x24, acc(0x100), FLOOR)
            .unwrap();
        let v = m
            .on_store_execute(SeqNum(3), 0x10, acc(0x100), FLOOR)
            .unwrap();
        assert_eq!(v[0].squash_after, SeqNum(3)); // conservative
        assert_eq!(m.stats().aggressive_recoveries, 0);
    }

    #[test]
    fn violating_load_does_not_update_entry() {
        let mut m = mdt();
        m.on_store_execute(SeqNum(7), 0x30, acc(0x200), FLOOR)
            .unwrap();
        let _ = m.on_load_execute(SeqNum(4), 0x24, acc(0x200), FLOOR);
        // A later store (younger than 7) sees no true violation, because the
        // violating load never recorded itself.
        let v = m
            .on_store_execute(SeqNum(8), 0x34, acc(0x200), FLOOR)
            .unwrap();
        assert!(v.is_empty());
    }

    #[test]
    fn untagged_mdt_never_conflicts_but_aliases() {
        let mut cfg = MdtConfig::baseline();
        cfg.sets = 2;
        cfg.ways = 4; // forced to 1 by Untagged
        cfg.tagging = MdtTagging::Untagged;
        let mut m = Mdt::new(cfg);
        // Two different granules mapping to set 0 share the single entry.
        m.on_store_execute(SeqNum(9), 0x40, acc(0x0), FLOOR)
            .unwrap();
        // A load to a *different* address in the same set sees the alias:
        // spurious anti violation, never a structural conflict.
        let v = m.on_load_execute(SeqNum(4), 0x24, acc(0x10), FLOOR);
        assert!(matches!(v, Ok(Some(x)) if x.kind == ViolationKind::Anti));
        assert_eq!(m.stats().conflicts, 0);
    }

    #[test]
    fn untagged_mdt_never_invalidates_at_retire() {
        // An aliased retirement must not erase another address's in-flight
        // record: store #5 to granule 0x10 is still in flight when the
        // aliasing store #1 retires, and its record must survive so a late
        // store #3 to the same granule is still caught.
        let mut cfg = MdtConfig::baseline();
        cfg.sets = 2;
        cfg.tagging = MdtTagging::Untagged;
        let mut m = Mdt::new(cfg);
        m.on_store_execute(SeqNum(1), 0x40, acc(0x0), FLOOR)
            .unwrap();
        m.on_store_execute(SeqNum(5), 0x44, acc(0x10), FLOOR)
            .unwrap();
        assert!(!m.on_store_retire(SeqNum(1), acc(0x0)));
        let v = m
            .on_store_execute(SeqNum(3), 0x48, acc(0x10), FLOOR)
            .unwrap();
        assert_eq!(v[0].kind, ViolationKind::Output);
    }

    #[test]
    fn executed_older_store_probe_sees_in_flight_stores() {
        let mut m = mdt();
        assert!(!m.executed_older_store(SeqNum(5), acc(0x100), FLOOR));
        m.on_store_execute(SeqNum(3), 0x10, acc(0x100), FLOOR)
            .unwrap();
        // Older executed store to the same granule: probe fires.
        assert!(m.executed_older_store(SeqNum(5), acc(0x100), FLOOR));
        // ...but not against younger loads' seq, other granules, or once the
        // store has slipped below the in-flight floor.
        assert!(!m.executed_older_store(SeqNum(2), acc(0x100), FLOOR));
        assert!(!m.executed_older_store(SeqNum(5), acc(0x108), FLOOR));
        assert!(!m.executed_older_store(SeqNum(5), acc(0x100), SeqNum(4)));
        let checks = m.stats().load_checks + m.stats().store_checks;
        assert_eq!(checks, 1, "the probe is stats-transparent");
    }

    #[test]
    fn executed_older_store_probe_clears_at_retire() {
        let mut m = mdt();
        m.on_store_execute(SeqNum(3), 0x10, acc(0x100), FLOOR)
            .unwrap();
        m.on_store_retire(SeqNum(3), acc(0x100));
        assert!(!m.executed_older_store(SeqNum(5), acc(0x100), FLOOR));
    }

    #[test]
    fn executed_older_store_probe_is_conservative_when_untagged() {
        let mut cfg = MdtConfig::baseline();
        cfg.sets = 2;
        cfg.tagging = MdtTagging::Untagged;
        let mut m = Mdt::new(cfg);
        m.on_store_execute(SeqNum(3), 0x10, acc(0x0), FLOOR).unwrap();
        // A different granule in the same set shares the untagged entry.
        assert!(m.executed_older_store(SeqNum(5), acc(0x10), FLOOR));
    }

    #[test]
    fn occupancy_peaks_are_tracked() {
        let mut m = mdt();
        for i in 0..10u64 {
            m.on_store_execute(SeqNum(i + 1), 0x10, acc(0x1000 + 8 * i), FLOOR)
                .unwrap();
        }
        assert_eq!(m.occupancy(), 10);
        assert_eq!(m.peak_occupancy(), 10);
        for i in 0..10u64 {
            m.on_store_retire(SeqNum(i + 1), acc(0x1000 + 8 * i));
        }
        assert_eq!(m.occupancy(), 0);
        assert_eq!(m.peak_occupancy(), 10);
    }
}
