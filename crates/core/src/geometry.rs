//! Shared set-associative table geometry.
//!
//! The SFC, the MDT, the filtered-LSQ membership filter, and the PC-indexed
//! PCAX tables are all set-associative arrays indexed by a hashed key. This
//! module factors their common shape — number of sets, ways per set, and the
//! set-index hash — into one reusable type so each new table does not grow
//! its own private copy of the same three knobs.

use crate::hash::SetHash;

/// The shape of a set-associative table: `sets × ways`, indexed by `hash`.
///
/// `sets` must be a power of two (the hashes mask with `sets - 1`) and both
/// dimensions must be non-zero; [`TableGeometry::validate`] checks this and
/// the structures embedding a geometry call it at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableGeometry {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Ways (entries) per set.
    pub ways: usize,
    /// How a key selects a set.
    pub hash: SetHash,
}

impl TableGeometry {
    /// A direct-mapped table of `entries` sets × 1 way with the paper's
    /// low-bits hash — the shape of the producer-set PT/CT tables.
    pub fn direct(entries: usize) -> TableGeometry {
        TableGeometry {
            sets: entries,
            ways: 1,
            hash: SetHash::LowBits,
        }
    }

    /// Total entry capacity (`sets * ways`).
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }

    /// The geometry's conventional short name, `setsxways` (e.g. `1024x2`),
    /// as used in config names and sweep-report rows.
    pub fn label(&self) -> String {
        format!("{}x{}", self.sets, self.ways)
    }

    /// The cartesian sets × ways grid over `hash`, sets-major (every way
    /// count for the first set count, then the next) — the iteration order
    /// every geometry sweep shares, so report rows line up across
    /// artifacts.
    ///
    /// # Panics
    ///
    /// Panics if any resulting geometry is malformed (non-power-of-two
    /// sets, zero ways): a sweep over an invalid point would die mid-run
    /// with a worse message.
    pub fn grid(sets: &[usize], ways: &[usize], hash: SetHash) -> Vec<TableGeometry> {
        let mut out = Vec::with_capacity(sets.len() * ways.len());
        for &s in sets {
            for &w in ways {
                let g = TableGeometry {
                    sets: s,
                    ways: w,
                    hash,
                };
                g.validate("grid point");
                out.push(g);
            }
        }
        out
    }

    /// Maps a key (granule, word or PC) to its set index.
    #[inline]
    pub fn index(&self, key: u64) -> usize {
        self.hash.index(key, self.sets)
    }

    /// The tag that, together with the set index, uniquely identifies `key`
    /// under the low-bits hash: the key bits above the index.
    #[inline]
    pub fn tag(&self, key: u64) -> u64 {
        key >> self.sets.trailing_zeros()
    }

    /// Panics unless the geometry is well-formed (power-of-two sets,
    /// non-zero dimensions).
    pub fn validate(&self, what: &str) {
        assert!(
            self.sets.is_power_of_two() && self.sets > 0,
            "{what}: sets must be a non-zero power of two, got {}",
            self.sets
        );
        assert!(self.ways > 0, "{what}: ways must be non-zero");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_geometry_is_one_way_low_bits() {
        let g = TableGeometry::direct(1024);
        assert_eq!(g.sets, 1024);
        assert_eq!(g.ways, 1);
        assert_eq!(g.entries(), 1024);
        assert_eq!(g.index(0x1234), 0x234);
    }

    #[test]
    fn index_respects_the_hash() {
        let low = TableGeometry {
            sets: 256,
            ways: 2,
            hash: SetHash::LowBits,
        };
        let fold = TableGeometry {
            sets: 256,
            ways: 2,
            hash: SetHash::XorFold,
        };
        assert_eq!(low.index(0x1234), SetHash::LowBits.index(0x1234, 256));
        assert_eq!(fold.index(0x1234), SetHash::XorFold.index(0x1234, 256));
    }

    #[test]
    fn tag_and_index_reconstruct_the_key_under_low_bits() {
        let g = TableGeometry::direct(256);
        let key = 0xdead_beefu64;
        assert_eq!((g.tag(key) << 8) | g.index(key) as u64, key);
    }

    #[test]
    fn validate_accepts_well_formed_shapes() {
        TableGeometry::direct(1).validate("t");
        TableGeometry {
            sets: 4096,
            ways: 16,
            hash: SetHash::XorFold,
        }
        .validate("t");
    }

    #[test]
    #[should_panic(expected = "sets must be a non-zero power of two")]
    fn validate_rejects_non_power_of_two_sets() {
        TableGeometry {
            sets: 3,
            ways: 1,
            hash: SetHash::LowBits,
        }
        .validate("t");
    }

    #[test]
    fn grid_is_sets_major_and_labelled() {
        let grid = TableGeometry::grid(&[16, 64], &[1, 2], SetHash::LowBits);
        let labels: Vec<String> = grid.iter().map(TableGeometry::label).collect();
        assert_eq!(labels, ["16x1", "16x2", "64x1", "64x2"]);
        assert_eq!(grid[1].entries(), 32);
        assert!(grid.iter().all(|g| g.hash == SetHash::LowBits));
        assert!(TableGeometry::grid(&[], &[1], SetHash::XorFold).is_empty());
    }

    #[test]
    #[should_panic(expected = "sets must be a non-zero power of two")]
    fn grid_rejects_malformed_points() {
        TableGeometry::grid(&[16, 3], &[1], SetHash::LowBits);
    }

    #[test]
    #[should_panic(expected = "ways must be non-zero")]
    fn validate_rejects_zero_ways() {
        TableGeometry {
            sets: 4,
            ways: 0,
            hash: SetHash::LowBits,
        }
        .validate("t");
    }
}
