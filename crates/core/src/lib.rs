//! The paper's primary contribution: the **store forwarding cache (SFC)** and
//! the **memory disambiguation table (MDT)**.
//!
//! Stone, Woley & Frank (MICRO-38, 2005) replace the conventional load/store
//! queue — with its fully associative, age-prioritized CAM searches — by three
//! CAM-free structures:
//!
//! * the [`Sfc`], "a small cache to which a store writes its value as it
//!   completes, and from which a load may obtain its value as it executes",
//!   accessed in parallel with the L1 data cache;
//! * the [`Mdt`], an address-indexed table that "tracks the highest sequence
//!   numbers yet seen of the loads and stores to each in-flight address" and
//!   detects **true, anti and output** dependence violations via a technique
//!   similar to basic timestamp ordering;
//! * a store FIFO for in-order retirement (provided by
//!   `aim_mem::StoreFifo`).
//!
//! Because the SFC does not rename multiple in-flight stores to one address,
//! anti and output violations — which an LSQ never suffers — become possible;
//! the MDT detects them and the producer-set predictor (in `aim-predictor`)
//! learns to enforce them.
//!
//! # Examples
//!
//! A store forwards to a younger load through the SFC, while the MDT confirms
//! the ordering was legal:
//!
//! ```
//! use aim_core::{Mdt, MdtConfig, Sfc, SfcConfig, SfcLoadResult};
//! use aim_types::{AccessSize, Addr, MemAccess, SeqNum};
//!
//! let mut sfc = Sfc::new(SfcConfig::baseline());
//! let mut mdt = Mdt::new(MdtConfig::baseline());
//! let floor = SeqNum(1); // oldest in-flight instruction
//!
//! let acc = MemAccess::new(Addr(0x1000), AccessSize::Double).unwrap();
//! // Store #1 executes: writes the SFC, updates the MDT.
//! mdt.on_store_execute(SeqNum(1), 0x40, acc, floor).unwrap();
//! sfc.store_write(SeqNum(1), acc, 0xabcd, floor).unwrap();
//!
//! // Load #2 executes: MDT sees no violation, SFC forwards the value.
//! let v = mdt.on_load_execute(SeqNum(2), 0x44, acc, floor).unwrap();
//! assert!(v.is_none());
//! assert_eq!(sfc.load_lookup(acc, floor), SfcLoadResult::Forward(0xabcd));
//! ```

mod geometry;
mod hash;
mod mdt;
mod set_table;
mod sfc;

pub use geometry::TableGeometry;
pub use hash::SetHash;
pub use mdt::{Mdt, MdtConfig, MdtStats, MdtTagging, TrueDepRecovery, Violation};
pub use set_table::SetTable;
pub use sfc::{CorruptionPolicy, Sfc, SfcConfig, SfcLoadResult, SfcStats};

use core::fmt;

/// A set conflict in a tagged SFC or MDT: the access could not allocate an
/// entry, so "the memory unit drops the instruction and places it back on the
/// scheduler's ready list" (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructuralConflict;

impl fmt::Display for StructuralConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("set conflict: no entry available")
    }
}

impl std::error::Error for StructuralConflict {}

/// How a load that finds only *some* of its bytes valid in the SFC proceeds.
///
/// The paper offers both: "the memory unit either places the load back in the
/// scheduler or obtains the missing bytes from the cache" (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartialMatchPolicy {
    /// Merge the SFC bytes with the missing bytes from the cache (default).
    #[default]
    Combine,
    /// Drop the load and replay it from the scheduler.
    Replay,
}
