//! The store forwarding cache (paper §2.3, Figure 3).

use aim_types::{ByteMask, MemAccess, SeqNum};

use crate::{SetHash, SetTable, StructuralConflict, TableGeometry};

/// How the SFC guards against forwarding data from canceled stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorruptionPolicy {
    /// The paper's primary design (§2.3, Figure 3): per-byte corruption
    /// masks; a partial pipeline flush marks every valid byte corrupt.
    #[default]
    CorruptBits,
    /// The paper's §3.2 alternative: "the SFC could record the sequence
    /// numbers of the earliest and latest instructions flushed (the flush
    /// endpoints). If the SFC attempted to forward a value from a canceled
    /// store, that store's sequence number would fall between the flush
    /// endpoints, and \[the\] memory unit would place the load back in the
    /// scheduler's ready list. Of course, the performance of this mechanism
    /// would depend on the number of flush endpoints tracked."
    ///
    /// This variant tracks per-byte writer sequence numbers and a bounded
    /// ring of flush ranges (oldest two ranges merge on overflow, which is
    /// conservative). Surviving stores' bytes keep forwarding across partial
    /// flushes — the precision the corruption masks give up — at the
    /// hardware cost of eight sequence numbers per line.
    FlushEndpoints {
        /// Maximum number of flush ranges tracked before merging.
        capacity: usize,
    },
}

/// Geometry of the [`Sfc`]. Lines are fixed at 8 data bytes, with 8-bit
/// valid and corruption masks, exactly as in Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SfcConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Canceled-store guard (corruption masks by default).
    pub corruption: CorruptionPolicy,
    /// Set-index hash (§3.2: low bits by default).
    pub hash: SetHash,
}

impl SfcConfig {
    /// The baseline processor's SFC: "128 sets, 2-way set assoc." (Figure 4).
    pub fn baseline() -> SfcConfig {
        SfcConfig {
            sets: 128,
            ways: 2,
            corruption: CorruptionPolicy::CorruptBits,
            hash: SetHash::LowBits,
        }
    }

    /// The aggressive processor's SFC: "512 sets, 2-way set assoc."
    /// (Figure 4).
    pub fn aggressive() -> SfcConfig {
        SfcConfig {
            sets: 512,
            ways: 2,
            corruption: CorruptionPolicy::CorruptBits,
            hash: SetHash::LowBits,
        }
    }

    /// The kilo-entry-window machine's SFC: 2048 sets, 4-way. A 4096-entry
    /// window can hold thousands of in-flight stores, so the Figure 4
    /// geometries thrash (set-conflict partial flushes dominate). Growing
    /// the table is exactly what the paper's design permits: the SFC is a
    /// RAM-indexed cache, so capacity scales with the window at SRAM cost —
    /// unlike the LSQ CAM, whose search ports are the scaling wall.
    pub fn huge() -> SfcConfig {
        SfcConfig {
            sets: 2048,
            ways: 4,
            corruption: CorruptionPolicy::CorruptBits,
            hash: SetHash::LowBits,
        }
    }
}

/// Result of a load's SFC lookup, performed in parallel with the L1 D-cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SfcLoadResult {
    /// No in-flight data for any requested byte: use the cache value.
    Miss,
    /// Full match: every requested byte is valid and clean; the forwarded
    /// value (zero-extended to 64 bits).
    Forward(u64),
    /// Some requested bytes are valid and clean, others absent. The memory
    /// unit either merges with cache data or replays the load, per
    /// [`PartialMatchPolicy`](crate::PartialMatchPolicy).
    Partial {
        /// The line's 8 data bytes.
        data: [u8; 8],
        /// Which of the *requested* bytes are valid in `data`.
        valid: ByteMask,
    },
    /// One or more requested bytes are marked corrupt (possibly overwritten
    /// by a canceled store); the load must be dropped and replayed.
    Corrupt,
}

/// Counters for the SFC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SfcStats {
    /// Store writes that completed.
    pub store_writes: u64,
    /// Store writes rejected by a set conflict.
    pub store_conflicts: u64,
    /// Load lookups performed.
    pub load_lookups: u64,
    /// Loads fully forwarded from the SFC.
    pub forwards: u64,
    /// Loads finding a partial match.
    pub partial_matches: u64,
    /// Loads rejected because a requested byte was corrupt.
    pub corrupt_rejections: u64,
    /// Entries freed at store retirement.
    pub frees: u64,
    /// Stale entries reclaimed (writer no longer in flight).
    pub reclaims: u64,
    /// Partial-flush corruption sweeps performed.
    pub partial_flushes: u64,
    /// Full SFC flushes performed.
    pub full_flushes: u64,
}

/// Expands a byte mask to a 64-bit lane mask: bit `i` set ⇒ byte lane `i`
/// all-ones. Branchless, so masked data merges stay straight-line code.
#[inline]
fn lane_mask(mask: ByteMask) -> u64 {
    let bits = u64::from(mask.bits());
    let mut m = 0u64;
    for i in 0..8 {
        m |= 0u64.wrapping_sub((bits >> i) & 1) & (0xFF << (8 * i));
    }
    m
}

/// The store forwarding cache: "an address-indexed, cache-like structure that
/// replaces the conventional store queue's associative search logic. ... The
/// SFC reduces the dynamic power consumption and latency of store-to-load
/// forwarding by buffering a single, cumulative value for each in-flight
/// memory address, rather than successive values produced by multiple stores
/// to the same address" (§2.3).
///
/// Key behaviours, all from §2.3:
///
/// * stores write their bytes at execute, setting valid bits and clearing
///   corruption bits;
/// * loads perform an address-indexed lookup in parallel with the L1 D-cache
///   and forward on a full match;
/// * a **partial pipeline flush** marks every valid byte corrupt (canceled
///   stores may have overwritten surviving stores' values); a **full flush**
///   simply clears the SFC;
/// * an entry is freed when the latest store to its address retires.
///
/// Entry lifetime for *canceled* last writers: the paper frees an entry when
/// the latest store retires, but a canceled store never retires. We track a
/// safe upper bound on the newest surviving writer (clamped at each partial
/// flush) and free the line as soon as a retiring store or the retirement
/// floor passes that bound — the lazy-reclamation analogue of the paper's
/// example, where the corrupt entry for a canceled store's address becomes
/// reusable once the surviving store retires.
///
/// # Examples
///
/// ```
/// use aim_core::{Sfc, SfcConfig, SfcLoadResult};
/// use aim_types::{AccessSize, Addr, MemAccess, SeqNum};
///
/// let mut sfc = Sfc::new(SfcConfig::baseline());
/// let floor = SeqNum(1);
/// let word = MemAccess::new(Addr(0xB000), AccessSize::Half).unwrap();
/// sfc.store_write(SeqNum(1), word, 0xA1A1, floor).unwrap();
///
/// // Full match forwards...
/// assert_eq!(sfc.load_lookup(word, floor), SfcLoadResult::Forward(0xA1A1));
/// // ...a wider access is a partial match...
/// let wide = MemAccess::new(Addr(0xB000), AccessSize::Double).unwrap();
/// assert!(matches!(sfc.load_lookup(wide, floor), SfcLoadResult::Partial { .. }));
/// // ...and after a partial pipeline flush (which the store survives),
/// // the bytes are corrupt.
/// sfc.on_partial_flush(SeqNum(1), SeqNum(9));
/// assert_eq!(sfc.load_lookup(word, floor), SfcLoadResult::Corrupt);
/// ```
#[derive(Debug, Clone)]
pub struct Sfc {
    config: SfcConfig,
    /// Line addresses (word indices) + per-set occupancy bit-words.
    table: SetTable,
    /// SoA payload columns, indexed by the table's flat slot.
    data: Vec<u64>,
    valid: Vec<ByteMask>,
    corrupt: Vec<ByteMask>,
    /// Upper bound on the newest *surviving* store that wrote each line.
    /// Partial flushes clamp it to the flush survivor, so it stays a safe
    /// over-approximation when writers are canceled.
    live_writer: Vec<SeqNum>,
    /// Per-byte writer sequence numbers (0 = never written), 8 per slot;
    /// used only by [`CorruptionPolicy::FlushEndpoints`].
    writers: Vec<u64>,
    /// Canceled-sequence ranges, inclusive (FlushEndpoints mode only);
    /// sorted by start, disjoint, and non-adjacent (coalesced on insert),
    /// so membership is one binary search.
    flush_ranges: Vec<(u64, u64)>,
    stats: SfcStats,
}

impl Sfc {
    /// Creates an empty SFC.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a nonzero power of two or `ways == 0`.
    pub fn new(config: SfcConfig) -> Sfc {
        let table = SetTable::new(TableGeometry {
            sets: config.sets,
            ways: config.ways,
            hash: config.hash,
        });
        let entries = config.sets * config.ways;
        Sfc {
            config,
            table,
            data: vec![0; entries],
            valid: vec![ByteMask::EMPTY; entries],
            corrupt: vec![ByteMask::EMPTY; entries],
            live_writer: vec![SeqNum::ZERO; entries],
            writers: vec![0; entries * 8],
            flush_ranges: Vec::new(),
            stats: SfcStats::default(),
        }
    }

    /// Whether `seq` falls inside a recorded canceled range (one binary
    /// search over the sorted, disjoint ranges).
    fn is_canceled(&self, seq: u64) -> bool {
        let i = self.flush_ranges.partition_point(|&(lo, _)| lo <= seq);
        i > 0 && self.flush_ranges[i - 1].1 >= seq
    }

    /// Records the canceled range `[lo, hi]`, keeping `flush_ranges` sorted
    /// and coalescing any overlapping or adjacent ranges, then enforces the
    /// capacity bound by merging the two lowest ranges into their convex
    /// hull (conservative: the union only grows).
    fn record_flush_range(&mut self, lo: u64, hi: u64, capacity: usize) {
        let start = self.flush_ranges.partition_point(|&(l, _)| l < lo);
        // The span [a, b) of existing ranges touching [lo, hi]: at most the
        // one range just before `start` (ranges before it are disjoint and
        // non-adjacent, so only the nearest can reach lo), plus every range
        // from `start` whose own start falls inside or adjacent to `hi`.
        let mut a = start;
        if a > 0 && self.flush_ranges[a - 1].1.saturating_add(1) >= lo {
            a -= 1;
        }
        let mut b = start;
        while b < self.flush_ranges.len() && self.flush_ranges[b].0 <= hi.saturating_add(1) {
            b += 1;
        }
        let mut merged = (lo, hi);
        if a < b {
            merged.0 = merged.0.min(self.flush_ranges[a].0);
            merged.1 = merged.1.max(self.flush_ranges[b - 1].1);
        }
        self.flush_ranges.splice(a..b, std::iter::once(merged));
        while self.flush_ranges.len() > capacity.max(1) {
            let (_, hi2) = self.flush_ranges.remove(1);
            self.flush_ranges[0].1 = self.flush_ranges[0].1.max(hi2);
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> SfcConfig {
        self.config
    }

    /// Counters.
    pub fn stats(&self) -> SfcStats {
        self.stats
    }

    /// Lines currently allocated.
    pub fn occupancy(&self) -> usize {
        self.table.occupancy()
    }

    /// Highest occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.table.peak_occupancy()
    }

    /// Resets a slot's payload columns to the empty-line state.
    #[inline]
    fn reset_slot(&mut self, slot: usize) {
        self.data[slot] = 0;
        self.valid[slot] = ByteMask::EMPTY;
        self.corrupt[slot] = ByteMask::EMPTY;
        self.live_writer[slot] = SeqNum::ZERO;
        self.writers[slot * 8..slot * 8 + 8].fill(0);
    }

    /// Reclaims the line for `word` if its newest possible writer is older
    /// than the retirement floor (writer retired — data committed — or was
    /// canceled — bytes corrupt).
    fn reclaim_if_stale(&mut self, word: u64, floor: SeqNum) {
        let set = self.table.set_of(word);
        if let Some(way) = self.table.first_match(set, word) {
            if self.live_writer[self.table.slot(set, way)] < floor {
                self.table.vacate(set, way);
                self.stats.reclaims += 1;
            }
        }
    }

    /// A store writes its bytes as it completes: "If the store's address is
    /// already in the SFC, or if an entry in the address's set is available,
    /// the store writes its data to that entry, sets the bits of the valid
    /// mask that correspond to the bytes written, and clears the same bits of
    /// the corruption mask."
    ///
    /// # Errors
    ///
    /// [`StructuralConflict`] if no line could be allocated; the memory unit
    /// drops and replays the store.
    pub fn store_write(
        &mut self,
        seq: SeqNum,
        access: MemAccess,
        value: u64,
        floor: SeqNum,
    ) -> Result<(), StructuralConflict> {
        let word = access.addr().word_index();
        self.reclaim_if_stale(word, floor);
        let set = self.table.set_of(word);

        let slot = if let Some(way) = self.table.first_match(set, word) {
            self.table.slot(set, way)
        } else if let Some(way) = self.table.first_free(set) {
            self.table.occupy(set, way, word);
            let slot = self.table.slot(set, way);
            self.reset_slot(slot);
            slot
        } else if let Some(way) = (0..self.table.ways())
            .find(|&w| self.live_writer[self.table.slot(set, w)] < floor)
        {
            // Every way is occupied: reclaim the first stale one in place.
            self.stats.reclaims += 1;
            self.table.replace(set, way, word);
            let slot = self.table.slot(set, way);
            self.reset_slot(slot);
            slot
        } else {
            self.stats.store_conflicts += 1;
            return Err(StructuralConflict);
        };

        let mask = access.mask();
        let base = access.addr().offset_in_word();
        let lanes = lane_mask(mask);
        self.data[slot] = (self.data[slot] & !lanes) | ((value << (8 * base)) & lanes);
        for (k, byte_idx) in mask.iter_bytes().enumerate() {
            debug_assert_eq!(byte_idx, base + k as u32);
            self.writers[slot * 8 + byte_idx as usize] = seq.0;
        }
        self.valid[slot] = self.valid[slot] | mask;
        self.corrupt[slot] = self.corrupt[slot] & !mask;
        self.live_writer[slot] = self.live_writer[slot].max(seq);
        self.stats.store_writes += 1;
        Ok(())
    }

    /// A load's address-indexed lookup, accessed in parallel with the L1
    /// D-cache.
    pub fn load_lookup(&mut self, access: MemAccess, floor: SeqNum) -> SfcLoadResult {
        self.stats.load_lookups += 1;
        let word = access.addr().word_index();
        self.reclaim_if_stale(word, floor);
        let set = self.table.set_of(word);
        let Some(way) = self.table.first_match(set, word) else {
            return SfcLoadResult::Miss;
        };
        let slot = self.table.slot(set, way);

        let needed = access.mask();
        if needed.intersects(self.corrupt[slot]) {
            self.stats.corrupt_rejections += 1;
            return SfcLoadResult::Corrupt;
        }
        if matches!(
            self.config.corruption,
            CorruptionPolicy::FlushEndpoints { .. }
        ) {
            // A needed byte written by a canceled store cannot forward.
            let canceled = needed.iter_bytes().any(|i| {
                self.valid[slot].contains_byte(i)
                    && self.is_canceled(self.writers[slot * 8 + i as usize])
            });
            if canceled {
                self.stats.corrupt_rejections += 1;
                return SfcLoadResult::Corrupt;
            }
        }
        let valid_needed = needed & self.valid[slot];
        if valid_needed == needed {
            let base = access.addr().offset_in_word();
            let len = access.size().bytes() as u32;
            let mut v = self.data[slot] >> (8 * base);
            if len < 8 {
                v &= (1u64 << (8 * len)) - 1;
            }
            self.stats.forwards += 1;
            SfcLoadResult::Forward(v)
        } else if valid_needed.is_empty() {
            SfcLoadResult::Miss
        } else {
            self.stats.partial_matches += 1;
            SfcLoadResult::Partial {
                data: self.data[slot].to_le_bytes(),
                valid: valid_needed,
            }
        }
    }

    /// A store retires: "the SFC frees an entry whenever the latest store to
    /// the entry's address retires."
    ///
    /// Returns `true` if a line was freed (used to clear scheduler stall
    /// bits, §2.4.3).
    pub fn on_store_retire(&mut self, seq: SeqNum, access: MemAccess) -> bool {
        let word = access.addr().word_index();
        let set = self.table.set_of(word);
        if let Some(way) = self.table.first_match(set, word) {
            if self.live_writer[self.table.slot(set, way)] <= seq {
                self.table.vacate(set, way);
                self.stats.frees += 1;
                return true;
            }
        }
        false
    }

    /// A partial pipeline flush canceling every sequence number in
    /// `(survivor, youngest]`.
    ///
    /// Under [`CorruptionPolicy::CorruptBits`]: "the SFC overwrites each
    /// entry's corruption mask with the bitwise OR of its valid mask and its
    /// existing corruption mask. That is, the SFC marks every byte that is
    /// valid as corrupt." Under [`CorruptionPolicy::FlushEndpoints`], the
    /// flush endpoints are recorded instead and surviving bytes keep
    /// forwarding.
    ///
    /// In both modes each line's `live_writer` bound is clamped to
    /// `survivor`, since any newer writer was just canceled.
    pub fn on_partial_flush(&mut self, survivor: SeqNum, youngest: SeqNum) {
        self.stats.partial_flushes += 1;
        match self.config.corruption {
            CorruptionPolicy::CorruptBits => {
                // Occupancy-word-guided sweep: only live slots are visited,
                // so the flush costs O(occupancy), not O(sets × ways).
                for slot in self.table.occupied_slots() {
                    self.corrupt[slot] = self.corrupt[slot] | self.valid[slot];
                    self.live_writer[slot] = self.live_writer[slot].min(survivor);
                }
            }
            CorruptionPolicy::FlushEndpoints { capacity } => {
                if youngest > survivor {
                    self.record_flush_range(survivor.0 + 1, youngest.0, capacity);
                }
                for slot in self.table.occupied_slots() {
                    self.live_writer[slot] = self.live_writer[slot].min(survivor);
                }
            }
        }
    }

    /// A full pipeline flush: "the memory unit simply flushes the SFC,
    /// thereby discarding the effects of canceled stores."
    pub fn on_full_flush(&mut self) {
        self.stats.full_flushes += 1;
        self.table.clear();
        self.flush_ranges.clear();
    }

    /// Marks the line holding `access` corrupt without flushing — the §2.4.2
    /// alternative recovery for output dependence violations.
    pub fn corrupt_line(&mut self, access: MemAccess) {
        let word = access.addr().word_index();
        let set = self.table.set_of(word);
        if let Some(way) = self.table.first_match(set, word) {
            let slot = self.table.slot(set, way);
            self.corrupt[slot] = self.corrupt[slot] | self.valid[slot];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_types::{AccessSize, Addr};

    fn acc(addr: u64, size: AccessSize) -> MemAccess {
        MemAccess::new(Addr(addr), size).unwrap()
    }

    fn d(addr: u64) -> MemAccess {
        acc(addr, AccessSize::Double)
    }

    fn sfc() -> Sfc {
        Sfc::new(SfcConfig::baseline())
    }

    const FLOOR: SeqNum = SeqNum(0);

    #[test]
    fn forward_full_match() {
        let mut s = sfc();
        s.store_write(SeqNum(1), d(0x100), 0xdead_beef_1234_5678, FLOOR)
            .unwrap();
        assert_eq!(
            s.load_lookup(d(0x100), FLOOR),
            SfcLoadResult::Forward(0xdead_beef_1234_5678)
        );
        assert_eq!(s.stats().forwards, 1);
    }

    #[test]
    fn miss_when_absent() {
        let mut s = sfc();
        assert_eq!(s.load_lookup(d(0x100), FLOOR), SfcLoadResult::Miss);
    }

    #[test]
    fn subword_store_forwards_to_subword_load() {
        let mut s = sfc();
        s.store_write(SeqNum(1), acc(0x104, AccessSize::Word), 0xaabbccdd, FLOOR)
            .unwrap();
        assert_eq!(
            s.load_lookup(acc(0x106, AccessSize::Half), FLOOR),
            SfcLoadResult::Forward(0xaabb)
        );
    }

    #[test]
    fn wider_load_sees_partial_match() {
        let mut s = sfc();
        s.store_write(SeqNum(1), acc(0x100, AccessSize::Word), 0x11223344, FLOOR)
            .unwrap();
        match s.load_lookup(d(0x100), FLOOR) {
            SfcLoadResult::Partial { data, valid } => {
                assert_eq!(valid, ByteMask::for_access(0, 4));
                assert_eq!(&data[0..4], &[0x44, 0x33, 0x22, 0x11]);
            }
            other => panic!("expected partial, got {other:?}"),
        }
        assert_eq!(s.stats().partial_matches, 1);
    }

    #[test]
    fn disjoint_bytes_in_same_word_miss() {
        let mut s = sfc();
        s.store_write(SeqNum(1), acc(0x100, AccessSize::Word), 0x11223344, FLOOR)
            .unwrap();
        // Load of the *upper* word: line present, no overlap with valid bytes.
        assert_eq!(
            s.load_lookup(acc(0x104, AccessSize::Word), FLOOR),
            SfcLoadResult::Miss
        );
    }

    #[test]
    fn cumulative_merging_of_two_stores() {
        let mut s = sfc();
        s.store_write(SeqNum(1), acc(0x100, AccessSize::Word), 0x44332211, FLOOR)
            .unwrap();
        s.store_write(SeqNum(2), acc(0x104, AccessSize::Word), 0x88776655, FLOOR)
            .unwrap();
        assert_eq!(
            s.load_lookup(d(0x100), FLOOR),
            SfcLoadResult::Forward(0x8877_6655_4433_2211)
        );
    }

    #[test]
    fn later_store_overwrites_without_renaming() {
        let mut s = sfc();
        s.store_write(SeqNum(1), d(0x100), 0xAAAA, FLOOR).unwrap();
        s.store_write(SeqNum(2), d(0x100), 0xBBBB, FLOOR).unwrap();
        // Single cumulative value: the old value is gone.
        assert_eq!(
            s.load_lookup(d(0x100), FLOOR),
            SfcLoadResult::Forward(0xBBBB)
        );
    }

    #[test]
    fn partial_flush_marks_valid_corrupt() {
        let mut s = sfc();
        s.store_write(SeqNum(3), d(0x100), 7, FLOOR).unwrap();
        s.on_partial_flush(SeqNum(2), SeqNum(6));
        assert_eq!(s.load_lookup(d(0x100), FLOOR), SfcLoadResult::Corrupt);
        assert_eq!(s.stats().corrupt_rejections, 1);
    }

    #[test]
    fn new_store_cleans_corrupt_bytes_it_writes() {
        let mut s = sfc();
        s.store_write(SeqNum(3), d(0x100), 7, FLOOR).unwrap();
        s.on_partial_flush(SeqNum(2), SeqNum(6));
        s.store_write(SeqNum(9), acc(0x100, AccessSize::Word), 0x55, FLOOR)
            .unwrap();
        // The rewritten word forwards again; the unwritten upper half is
        // still corrupt.
        assert_eq!(
            s.load_lookup(acc(0x100, AccessSize::Word), FLOOR),
            SfcLoadResult::Forward(0x55)
        );
        assert_eq!(
            s.load_lookup(acc(0x104, AccessSize::Word), FLOOR),
            SfcLoadResult::Corrupt
        );
    }

    #[test]
    fn full_flush_empties_everything() {
        let mut s = sfc();
        s.store_write(SeqNum(1), d(0x100), 1, FLOOR).unwrap();
        s.store_write(SeqNum(2), d(0x208), 2, FLOOR).unwrap();
        s.on_full_flush();
        assert_eq!(s.occupancy(), 0);
        assert_eq!(s.load_lookup(d(0x100), FLOOR), SfcLoadResult::Miss);
    }

    #[test]
    fn retire_of_latest_store_frees_line() {
        let mut s = sfc();
        s.store_write(SeqNum(5), d(0x100), 1, FLOOR).unwrap();
        assert!(s.on_store_retire(SeqNum(5), d(0x100)));
        assert_eq!(s.occupancy(), 0);
        assert_eq!(s.stats().frees, 1);
    }

    #[test]
    fn retire_of_older_store_keeps_line() {
        let mut s = sfc();
        s.store_write(SeqNum(5), d(0x100), 1, FLOOR).unwrap();
        s.store_write(SeqNum(9), d(0x100), 2, FLOOR).unwrap();
        assert!(!s.on_store_retire(SeqNum(5), d(0x100)));
        assert_eq!(s.load_lookup(d(0x100), FLOOR), SfcLoadResult::Forward(2));
    }

    #[test]
    fn canceled_writer_line_reclaimed_after_floor_passes() {
        let mut s = sfc();
        // Surviving store #1, canceled store #4 (same word, paper's §2.3
        // example).
        s.store_write(SeqNum(1), d(0xB000), 0xA1A1, FLOOR).unwrap();
        s.store_write(SeqNum(4), d(0xB000), 0xB2B2, FLOOR).unwrap();
        // Partial flush cancels #4; survivor is the branch at #3.
        s.on_partial_flush(SeqNum(3), SeqNum(4));
        // Store #1 retires: live_writer bound is 3 > 1, line stays corrupt.
        assert!(!s.on_store_retire(SeqNum(1), d(0xB000)));
        assert_eq!(s.load_lookup(d(0xB000), SeqNum(2)), SfcLoadResult::Corrupt);
        // Once the floor passes the bound, the lookup reclaims the line and
        // the load falls through to the cache (which store #1's retirement
        // has updated).
        assert_eq!(s.load_lookup(d(0xB000), SeqNum(5)), SfcLoadResult::Miss);
        assert_eq!(s.stats().reclaims, 1);
    }

    #[test]
    fn set_conflict_when_ways_exhausted() {
        let mut s = Sfc::new(SfcConfig {
            sets: 2,
            ways: 1,
            corruption: Default::default(),
            hash: Default::default(),
        });
        s.store_write(SeqNum(5), d(0x0), 1, SeqNum(5)).unwrap();
        // Word 2 maps to set 0 as well (2 sets).
        let err = s.store_write(SeqNum(6), d(0x10), 2, SeqNum(5));
        assert_eq!(err.unwrap_err(), StructuralConflict);
        assert_eq!(s.stats().store_conflicts, 1);
        // After the first writer leaves flight, the way is reclaimed.
        assert!(s.store_write(SeqNum(21), d(0x10), 2, SeqNum(20)).is_ok());
        assert_eq!(s.stats().reclaims, 1);
    }

    #[test]
    fn corrupt_line_helper_marks_only_that_line() {
        let mut s = sfc();
        s.store_write(SeqNum(1), d(0x100), 1, FLOOR).unwrap();
        s.store_write(SeqNum(2), d(0x208), 2, FLOOR).unwrap();
        s.corrupt_line(d(0x100));
        assert_eq!(s.load_lookup(d(0x100), FLOOR), SfcLoadResult::Corrupt);
        assert_eq!(s.load_lookup(d(0x208), FLOOR), SfcLoadResult::Forward(2));
    }

    fn endpoints_sfc(capacity: usize) -> Sfc {
        Sfc::new(SfcConfig {
            sets: 8,
            ways: 2,
            corruption: CorruptionPolicy::FlushEndpoints { capacity },
            hash: SetHash::LowBits,
        })
    }

    #[test]
    fn flush_endpoints_preserve_surviving_bytes() {
        let mut s = endpoints_sfc(4);
        s.store_write(SeqNum(1), d(0x100), 0xAAAA, FLOOR).unwrap();
        s.store_write(SeqNum(5), d(0x208), 0xBBBB, FLOOR).unwrap();
        // Cancel 3..=9: survivor 2, youngest 9. Store #1 survives.
        s.on_partial_flush(SeqNum(2), SeqNum(9));
        // The surviving store still forwards - the precision corruption
        // masks give up.
        assert_eq!(
            s.load_lookup(d(0x100), FLOOR),
            SfcLoadResult::Forward(0xAAAA)
        );
        // The canceled store's line is rejected.
        assert_eq!(s.load_lookup(d(0x208), FLOOR), SfcLoadResult::Corrupt);
    }

    #[test]
    fn flush_endpoints_reject_per_byte() {
        let mut s = endpoints_sfc(4);
        // Survivor writes the low word, canceled store the high word.
        s.store_write(SeqNum(1), acc(0x100, AccessSize::Word), 0x1111, FLOOR)
            .unwrap();
        s.store_write(SeqNum(7), acc(0x104, AccessSize::Word), 0x2222, FLOOR)
            .unwrap();
        s.on_partial_flush(SeqNum(3), SeqNum(8));
        assert_eq!(
            s.load_lookup(acc(0x100, AccessSize::Word), FLOOR),
            SfcLoadResult::Forward(0x1111)
        );
        assert_eq!(
            s.load_lookup(acc(0x104, AccessSize::Word), FLOOR),
            SfcLoadResult::Corrupt
        );
        // The full word needs a canceled byte: also rejected.
        assert_eq!(s.load_lookup(d(0x100), FLOOR), SfcLoadResult::Corrupt);
    }

    #[test]
    fn flush_endpoint_overflow_merges_conservatively() {
        let mut s = endpoints_sfc(1);
        s.store_write(SeqNum(2), d(0x100), 1, FLOOR).unwrap();
        s.on_partial_flush(SeqNum(4), SeqNum(6)); // cancels 5..=6
        s.on_partial_flush(SeqNum(9), SeqNum(12)); // cancels 10..=12; merges
                                                   // The merged hull 5..=12 covers the surviving seq 8 too:
                                                   // conservative, so a store with seq 8 is rejected.
        s.store_write(SeqNum(8), d(0x208), 2, FLOOR).unwrap();
        assert_eq!(s.load_lookup(d(0x208), FLOOR), SfcLoadResult::Corrupt);
        // Sequences outside the hull still forward.
        assert_eq!(s.load_lookup(d(0x100), FLOOR), SfcLoadResult::Forward(1));
    }

    #[test]
    fn flush_ranges_stay_sorted_and_coalesced() {
        let mut s = endpoints_sfc(8);
        // Out-of-order, overlapping, and adjacent inserts.
        s.on_partial_flush(SeqNum(9), SeqNum(12)); // 10..=12
        s.on_partial_flush(SeqNum(2), SeqNum(4)); // 3..=4, sorts before
        assert_eq!(s.flush_ranges, vec![(3, 4), (10, 12)]);
        // Overlapping 11..=15 extends the second range in place.
        s.on_partial_flush(SeqNum(10), SeqNum(15));
        assert_eq!(s.flush_ranges, vec![(3, 4), (10, 15)]);
        // Adjacent 5..=6 fuses with 3..=4 (no gap between 4 and 5).
        s.on_partial_flush(SeqNum(4), SeqNum(6));
        assert_eq!(s.flush_ranges, vec![(3, 6), (10, 15)]);
        // 7..=9 bridges both neighbors into one range.
        s.on_partial_flush(SeqNum(6), SeqNum(9));
        assert_eq!(s.flush_ranges, vec![(3, 15)]);
        // Membership is exact at the boundaries.
        assert!(!s.is_canceled(2));
        assert!(s.is_canceled(3));
        assert!(s.is_canceled(15));
        assert!(!s.is_canceled(16));
    }

    #[test]
    fn flush_range_capacity_merges_lowest_pair() {
        let mut s = endpoints_sfc(2);
        s.on_partial_flush(SeqNum(2), SeqNum(4)); // 3..=4
        s.on_partial_flush(SeqNum(9), SeqNum(12)); // 10..=12
        s.on_partial_flush(SeqNum(19), SeqNum(22)); // 20..=22: overflow
        // The two lowest ranges merge into their convex hull; membership
        // only grows (seq 7 was never flushed but is now conservatively
        // treated as canceled).
        assert_eq!(s.flush_ranges, vec![(3, 12), (20, 22)]);
        assert!(s.is_canceled(7));
        assert!(!s.is_canceled(15));
    }

    #[test]
    fn flush_endpoints_cleared_by_full_flush() {
        let mut s = endpoints_sfc(4);
        s.store_write(SeqNum(5), d(0x100), 1, FLOOR).unwrap();
        s.on_partial_flush(SeqNum(2), SeqNum(9));
        s.on_full_flush();
        // New epoch: a store whose seq falls in the old range is fine now.
        s.store_write(SeqNum(6), d(0x100), 7, FLOOR).unwrap();
        assert_eq!(s.load_lookup(d(0x100), FLOOR), SfcLoadResult::Forward(7));
    }

    #[test]
    fn corrupt_line_still_works_under_endpoints() {
        let mut s = endpoints_sfc(4);
        s.store_write(SeqNum(1), d(0x100), 1, FLOOR).unwrap();
        s.corrupt_line(d(0x100));
        assert_eq!(s.load_lookup(d(0x100), FLOOR), SfcLoadResult::Corrupt);
    }

    #[test]
    fn peak_occupancy_tracked() {
        let mut s = sfc();
        for i in 0..4u64 {
            s.store_write(SeqNum(i + 1), d(0x100 + 8 * i), i, FLOOR)
                .unwrap();
        }
        assert_eq!(s.peak_occupancy(), 4);
        for i in 0..4u64 {
            s.on_store_retire(SeqNum(i + 1), d(0x100 + 8 * i));
        }
        assert_eq!(s.occupancy(), 0);
        assert_eq!(s.peak_occupancy(), 4);
    }
}
