//! Set-index hash functions for the SFC and MDT.

/// How an address granule selects a set in the SFC or MDT.
///
/// "At present, the hash functions use the least significant bits of the
/// load/store address to select a set in the SFC or MDT. This simple hash
/// makes the caches susceptible to high conflict rates when a process
/// accesses multiple data structures whose size is a multiple of the SFC or
/// MDT size. ... We conclude that a better hash function or a larger, more
/// associative SFC and MDT would increase the performance of bzip2 and mcf
/// to an acceptable level" (§3.2).
///
/// [`SetHash::LowBits`] is the paper's evaluated design; [`SetHash::XorFold`]
/// is the "better hash function" it hypothesizes: folding the upper granule
/// bits into the index so power-of-two strides no longer collapse onto one
/// set.
///
/// # Multi-core: why the hash takes no core id
///
/// Both hashes index by *physical address alone*, and that stays correct in
/// the multi-core machine because SFC and MDT instances are **per-core**
/// structures: each `Core` owns its backend, and a backend only ever sees
/// its own core's loads, stores, and sequence numbers (the "No cross-core
/// state" contract on `aim_backend::MemBackend`). Two cores touching the
/// same physical address therefore index the same set number in *different*
/// tables — there is nothing to disambiguate between them here, so salting
/// the index with a core id would only spread one core's working set across
/// otherwise-identical sets and change the paper's conflict behaviour.
/// Cross-core ordering is instead resolved at store retirement through the
/// shared memory system, where committed values — not table entries —
/// become visible to siblings. In particular an MDT timestamp can never
/// alias a sibling's access: timestamps are per-core sequence numbers
/// checked only against entries the same core inserted. The executable
/// proof is the conformance interference suite
/// (`sibling_interference_is_invisible_to_backends`), which replays every
/// backend bit-identically while a sibling rewrites memory between rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SetHash {
    /// `set = granule & (sets - 1)` — the paper's simple hash.
    #[default]
    LowBits,
    /// `set = (granule ^ (granule >> log2(sets))) & (sets - 1)` — one XOR
    /// fold of the next-higher bits, a single gate level in hardware.
    XorFold,
}

impl SetHash {
    /// Maps a granule (or word) number to a set index. `sets` must be a
    /// power of two.
    #[inline]
    pub fn index(self, granule: u64, sets: usize) -> usize {
        debug_assert!(sets.is_power_of_two());
        let mask = sets as u64 - 1;
        let idx = match self {
            SetHash::LowBits => granule & mask,
            SetHash::XorFold => (granule ^ (granule >> sets.trailing_zeros())) & mask,
        };
        idx as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_bits_is_modulo() {
        assert_eq!(SetHash::LowBits.index(0x1234, 256), 0x34);
        assert_eq!(SetHash::LowBits.index(511, 256), 255);
    }

    #[test]
    fn xor_fold_separates_set_sized_strides() {
        // Granules exactly `sets` apart collide under LowBits...
        let sets = 512;
        let a = SetHash::LowBits.index(100, sets);
        let b = SetHash::LowBits.index(100 + sets as u64, sets);
        assert_eq!(a, b);
        // ...but not under XorFold.
        let a = SetHash::XorFold.index(100, sets);
        let b = SetHash::XorFold.index(100 + sets as u64, sets);
        assert_ne!(a, b);
    }

    #[test]
    fn xor_fold_stays_in_range() {
        for g in (0..100_000u64).step_by(37) {
            assert!(SetHash::XorFold.index(g, 128) < 128);
        }
    }

    #[test]
    fn both_hashes_are_deterministic() {
        for &h in &[SetHash::LowBits, SetHash::XorFold] {
            assert_eq!(h.index(999, 64), h.index(999, 64));
        }
    }
}
