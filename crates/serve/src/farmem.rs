//! The `table_far_mem` request matrix and the far-tier stats decoder.
//!
//! The far-memory sweep is the first experiment binary routed through the
//! job server rather than `aim_bench::run_matrix`: its cells are
//! [`ConfigSpec`]s submitted over framed connections
//! ([`run_cells`](crate::run_cells)), so the matrix is content-addressed —
//! a warm rerun, or any other client naming the same cell through the
//! extended wire `JobSpec` (the CLI's `submit --machine huge --far …`),
//! is answered from the shared cache without simulating.
//!
//! The server replies with the canonical statistics text, not a
//! [`SimStats`](aim_pipeline::SimStats) struct, so the far-tier counters
//! the report needs are decoded from that text by [`parse_far_stats`] —
//! the format is the byte-stable `Debug` rendering the cache's
//! fingerprints already pin.

use crate::proto::ConfigSpec;
use aim_pipeline::{BackendChoice, FarSpec, FarStats, MachineClass};
use crate::proto::LsqChoice;

/// The 24 `table_far_mem` configurations as job specs, name for name
/// (`tests::farmem_configs_mirror_the_bench_spec` pins the correspondence
/// against [`aim_bench::specs::table_far_mem`]): both kilo-entry-window
/// machine classes × far latencies {200, 800} × the six bracket columns
/// (no-spec, the buildable 120×80 CAM, the 256×256 upper-bound CAM,
/// SFC/MDT, PCAX, oracle), every cell behind a 64-MSHR batch-8 far tier.
pub fn farmem_configs() -> Vec<(String, ConfigSpec)> {
    let mut configs = Vec::new();
    for (class, tag) in [(MachineClass::Aggressive, "aggr"), (MachineClass::Huge, "huge")] {
        for lat in [200u64, 800] {
            let far = Some(FarSpec::new(lat, 64, 8));
            let cell = |backend| ConfigSpec { far, ..ConfigSpec::new(class, backend) };
            let lsq_cell = |lsq| ConfigSpec {
                far,
                lsq: Some(lsq),
                ..ConfigSpec::new(class, BackendChoice::Lsq)
            };
            configs.push((format!("{tag}-far{lat}-nospec"), cell(BackendChoice::NoSpec)));
            configs.push((
                format!("{tag}-far{lat}-lsq-120x80"),
                lsq_cell(LsqChoice::Aggressive120x80),
            ));
            configs.push((
                format!("{tag}-far{lat}-lsq-256x256"),
                lsq_cell(LsqChoice::Aggressive256x256),
            ));
            configs.push((format!("{tag}-far{lat}-sfc-mdt"), cell(BackendChoice::SfcMdt)));
            configs.push((format!("{tag}-far{lat}-pcax"), cell(BackendChoice::Pcax)));
            configs.push((format!("{tag}-far{lat}-oracle"), cell(BackendChoice::Oracle)));
        }
    }
    configs
}

/// Decodes the far-tier counters from a canonical statistics text (the
/// byte-stable `Debug` rendering cached entries store). Returns `None`
/// when the run had no far tier or the text does not carry a well-formed
/// `far: Some(FarStats { … })` field.
pub fn parse_far_stats(stats_text: &str) -> Option<FarStats> {
    const OPEN: &str = "far: Some(FarStats { ";
    let start = stats_text.find(OPEN)?;
    let body = &stats_text[start + OPEN.len()..];
    let body = &body[..body.find(" })")?];
    let mut stats = FarStats::default();
    for field in body.split(", ") {
        let (key, value) = field.split_once(": ")?;
        match key {
            "accesses" => stats.accesses = value.parse().ok()?,
            "coalesced" => stats.coalesced = value.parse().ok()?,
            "busy" => stats.busy = value.parse().ok()?,
            "overflow" => stats.overflow = value.parse().ok()?,
            "peak_inflight" => stats.peak_inflight = value.parse().ok()?,
            _ => return None,
        }
    }
    Some(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_workloads::Scale;

    #[test]
    fn farmem_configs_mirror_the_bench_spec_name_for_name() {
        let bench = aim_bench::specs::table_far_mem();
        let ours = farmem_configs();
        assert_eq!(ours.len(), bench.configs.len());
        for ((name, spec), (bench_name, bench_cfg)) in ours.iter().zip(&bench.configs) {
            assert_eq!(name, bench_name);
            assert_eq!(
                format!("{:?}", spec.to_config()),
                format!("{bench_cfg:?}"),
                "config `{name}` diverges from the bench spec"
            );
        }
    }

    #[test]
    fn far_stats_round_trip_through_the_canonical_text() {
        // Pin the decoder against the real rendering, not a hand-written
        // imitation: simulate one far-tier cell and parse its canonical
        // statistics text back.
        let (_, spec) = &farmem_configs()[3]; // aggr-far200-sfc-mdt
        let workload = aim_workloads::by_name("gzip", Scale::Tiny).unwrap();
        let prepared = aim_bench::prepare(workload, Scale::Tiny);
        let stats = aim_bench::run(&prepared, &spec.to_config());
        let text = format!("{:?}", stats.with_zeroed_host());
        assert_eq!(parse_far_stats(&text), stats.far, "decoder diverges from Debug");
        assert!(stats.far.expect("far tier configured").accesses > 0);
    }

    #[test]
    fn far_stats_decoder_rejects_farless_and_malformed_texts() {
        assert_eq!(parse_far_stats("SimStats { cycles: 12 }"), None);
        assert_eq!(parse_far_stats("far: Some(FarStats { accesses: x })"), None);
        let text = "far: Some(FarStats { accesses: 3, coalesced: 1, busy: 0, \
                    overflow: 2, peak_inflight: 4 })";
        assert_eq!(
            parse_far_stats(text),
            Some(FarStats { accesses: 3, coalesced: 1, busy: 0, overflow: 2, peak_inflight: 4 })
        );
    }
}
