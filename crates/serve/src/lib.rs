//! `aim-serve`: a long-running simulation job server with a
//! content-addressed result cache.
//!
//! The experiment binaries in `aim-bench` re-simulate their full
//! (workload × config) matrices on every invocation, even when nothing
//! relevant changed. This crate moves that work behind a server: clients
//! submit `(kernel, configuration, scale)` requests over length-prefixed
//! JSON frames ([`aim_types::wire`]), the server shards misses across a
//! worker pool, and every finished simulation is memoized in an on-disk
//! cache addressed by a stable hash of the kernel bytes, the
//! canonicalized [`SimConfig`](aim_pipeline::SimConfig), and the
//! simulator's code-version string ([`aim_bench::cache_key`]). A warm
//! request is answered from disk without running a single pipeline cycle.
//!
//! The paper's theme — replace associative search with address-indexed
//! lookup — applies one level up: re-simulation is the associative search
//! of experiment harnesses, and the content address replaces it with an
//! exact-match lookup whose correctness is checked the same way the
//! repo's other fast paths are, by **byte-identity against the slow
//! path**. `--verify` recomputes a cached entry and compares the stored
//! statistics text byte-for-byte; the replay driver ([`run_replay`])
//! replays a whole matrix cold and warm and requires identical
//! fingerprints with zero warm simulations.
//!
//! Module map:
//!
//! * `proto` — the job protocol: [`JobSpec`]/[`JobResponse`] and their
//!   wire encodings;
//! * `cache` — the checksummed on-disk entry store ([`DiskCache`]);
//! * `farmem` — the `table_far_mem` request matrix and far-tier stats
//!   decoder behind the cache-routed far-memory sweep binary
//!   ([`farmem_configs`], [`parse_far_stats`]);
//! * `sampled` — the per-kernel tiled sampling policy and sampled-stats
//!   decoder behind the cache-routed sampled-convergence binary
//!   ([`sampled_policy`], [`parse_sampled_stats`]);
//! * `server` — the worker pool, single-flight deduplication, and
//!   request handling over any `Read + Write` stream ([`Server`]);
//! * `sock` — Unix-socket and stdin/stdout transports;
//! * `replay` — the cold/warm replay driver behind the
//!   `aim-sim serve --replay` tier-1 gate ([`run_replay`]).

mod cache;
mod farmem;
mod proto;
mod replay;
mod sampled;
mod server;
mod sock;

pub use cache::{CacheEntry, DiskCache, Lookup};
pub use farmem::{farmem_configs, parse_far_stats};
pub use sampled::{
    parse_sampled_stats, sampled_policy, SAMPLE_DETAIL_DIVISOR, SAMPLE_PERIODS,
};
pub use proto::{ConfigSpec, JobResponse, JobSpec, LsqChoice, Source, VerifyOutcome};
pub use replay::{hostperf_configs, run_cells, run_replay, ReplayOptions, ReplayOutcome};
pub use server::{serve_connection, CounterSnapshot, Server};
pub use sock::{request_over, serve_stdio, StdioStream};
#[cfg(unix)]
pub use sock::{serve_unix, submit_unix};
