//! Transports: Unix-domain sockets and the stdin/stdout pipe mode.
//!
//! Both carry the same framed protocol as the in-memory
//! [`duplex`](aim_types::wire::duplex) pair the tests use — the server
//! code is transport-agnostic ([`serve_connection`] takes any
//! `Read + Write`), so everything the replay gate proves about the wire
//! path holds over a real socket too.

use crate::server::{serve_connection, Server};
use aim_types::wire::{read_frame, write_frame, WireMsg};
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Sends one request frame and reads one reply frame.
///
/// # Errors
///
/// Propagates stream I/O errors; an early hang-up is
/// [`io::ErrorKind::UnexpectedEof`].
pub fn request_over<S: Read + Write>(stream: &mut S, msg: &WireMsg) -> io::Result<WireMsg> {
    write_frame(stream, msg.to_json().as_bytes())?;
    let frame = read_frame(stream)?.ok_or_else(|| {
        io::Error::new(io::ErrorKind::UnexpectedEof, "server hung up before replying")
    })?;
    let text = std::str::from_utf8(&frame)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "reply is not UTF-8"))?;
    WireMsg::parse(text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// `stdin`/`stdout` as one byte stream — the pipe-mode transport
/// (`aim-sim serve --stdio`), for driving the server as a subprocess.
#[derive(Debug, Default)]
pub struct StdioStream;

impl Read for StdioStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::stdin().lock().read(buf)
    }
}

impl Write for StdioStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::stdout().lock().write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        io::stdout().lock().flush()
    }
}

/// Serves a single connection over stdin/stdout until EOF or shutdown.
///
/// # Errors
///
/// Propagates stream I/O errors.
pub fn serve_stdio(server: &Server) -> io::Result<()> {
    serve_connection(server, StdioStream)
}

/// Binds `path` and serves connections until a shutdown request arrives,
/// one handler thread per connection. An existing socket file at `path`
/// is replaced.
///
/// # Errors
///
/// Propagates bind/accept errors.
#[cfg(unix)]
pub fn serve_unix(server: &Arc<Server>, path: &std::path::Path) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    // Poll the listener so the accept loop can observe a shutdown issued
    // by a connection handler.
    listener.set_nonblocking(true)?;
    let mut handlers = Vec::new();
    while !server.is_shutdown() {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                let server = Arc::clone(server);
                handlers.push(std::thread::spawn(move || {
                    let _ = serve_connection(&server, stream);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            Err(e) => return Err(e),
        }
    }
    for handler in handlers {
        let _ = handler.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Connects to a serving socket and performs one request/reply exchange
/// per message, in order.
///
/// # Errors
///
/// Propagates connect and stream I/O errors.
#[cfg(unix)]
pub fn submit_unix(path: &std::path::Path, msgs: &[WireMsg]) -> io::Result<Vec<WireMsg>> {
    let mut stream = std::os::unix::net::UnixStream::connect(path)?;
    msgs.iter().map(|msg| request_over(&mut stream, msg)).collect()
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use crate::proto::{ConfigSpec, JobResponse, Source};
    use aim_pipeline::{BackendChoice, MachineClass};
    use aim_workloads::Scale;

    #[test]
    fn unix_socket_round_trips_a_job_and_shuts_down() {
        let tag = format!("aim_serve_sock_{}", std::process::id());
        let dir = std::env::temp_dir().join(&tag);
        let _ = std::fs::remove_dir_all(&dir);
        let server = Arc::new(Server::new(&dir.join("cache"), 2).unwrap());
        let sock = dir.join("serve.sock");
        std::fs::create_dir_all(&dir).unwrap();

        let accept = {
            let server = Arc::clone(&server);
            let sock = sock.clone();
            std::thread::spawn(move || serve_unix(&server, &sock))
        };
        // Wait for the socket to appear.
        for _ in 0..200 {
            if sock.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        let spec = ConfigSpec::new(MachineClass::Baseline, BackendChoice::NoSpec)
            .job("gzip", Scale::Tiny);
        let mut shutdown = WireMsg::new();
        shutdown.put_str("op", "shutdown");
        let replies =
            submit_unix(&sock, &[spec.to_wire(false, false), shutdown]).unwrap();
        let resp = JobResponse::from_wire(&replies[0]).unwrap();
        assert_eq!(resp.source, Source::Sim);
        assert!(resp.cycles > 0);
        assert_eq!(replies[1].bool_field("ok"), Some(true));

        accept.join().unwrap().unwrap();
        assert!(!sock.exists(), "socket file is removed on shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
