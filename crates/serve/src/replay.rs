//! The cold/warm replay driver behind the `aim-sim serve --replay` gate.
//!
//! Replays the committed `table_hostperf` request matrix — every kernel
//! in the registry × every backend on both machine classes — through a
//! fresh in-process server several times over real framed connections
//! (the in-memory [`duplex`] transport, byte-compatible with the socket
//! path). Round 0 runs against an empty cache and must simulate every
//! cell; each warm round must be answered **entirely** from the cache,
//! running zero simulations, and must return byte-identical statistics
//! texts cell for cell. An optional trailing verify round recomputes
//! every cell and requires every byte-comparison to report `match`.
//!
//! The driver returns a [`ServeReport`] (`aim-serve-report/v1`) plus the
//! consistency verdict; the CLI prints the `serve: cache-consistent`
//! acceptance line `scripts/tier1.sh` greps.
//!
//! [`duplex`]: aim_types::wire::duplex

use crate::proto::{ConfigSpec, JobResponse, JobSpec, LsqChoice, VerifyOutcome};
use crate::server::{serve_connection, Server};
use crate::sock::request_over;
use aim_bench::{fingerprint_texts, ServeReport, ServeRound};
use aim_pipeline::{BackendChoice, MachineClass};
use aim_predictor::EnforceMode;
use aim_types::wire::duplex;
use aim_workloads::Scale;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// The 12 `table_hostperf` configurations as job specs, name for name
/// (`crates/serve/tests/cache.rs` pins the correspondence against
/// [`aim_bench::specs::table_hostperf`]).
pub fn hostperf_configs() -> Vec<(String, ConfigSpec)> {
    let spec = |machine, backend, mode, lsq| ConfigSpec {
        mode,
        lsq,
        ..ConfigSpec::new(machine, backend)
    };
    let b = MachineClass::Baseline;
    let a = MachineClass::Aggressive;
    vec![
        ("base-nospec".into(), spec(b, BackendChoice::NoSpec, None, None)),
        ("base-lsq-48x32".into(), spec(b, BackendChoice::Lsq, None, None)),
        ("base-sfc-mdt-enf".into(), spec(b, BackendChoice::SfcMdt, Some(EnforceMode::All), None)),
        ("base-filtered-lsq".into(), spec(b, BackendChoice::Filtered, None, None)),
        ("base-pcax".into(), spec(b, BackendChoice::Pcax, None, None)),
        ("base-oracle".into(), spec(b, BackendChoice::Oracle, None, None)),
        ("aggr-nospec".into(), spec(a, BackendChoice::NoSpec, None, None)),
        (
            "aggr-lsq-120x80".into(),
            spec(a, BackendChoice::Lsq, None, Some(LsqChoice::Aggressive120x80)),
        ),
        (
            "aggr-sfc-mdt-enf".into(),
            spec(a, BackendChoice::SfcMdt, Some(EnforceMode::TotalOrder), None),
        ),
        ("aggr-filtered-lsq".into(), spec(a, BackendChoice::Filtered, None, None)),
        ("aggr-pcax".into(), spec(a, BackendChoice::Pcax, None, None)),
        ("aggr-oracle".into(), spec(a, BackendChoice::Oracle, None, None)),
    ]
}

/// Parameters of one replay run.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Workload scale.
    pub scale: Scale,
    /// Simulation worker threads.
    pub workers: usize,
    /// Concurrent client connections per round.
    pub clients: usize,
    /// Total rounds (round 0 cold, the rest warm). Must be at least 2 for
    /// the warm checks to mean anything.
    pub rounds: usize,
    /// Append a verify round recomputing every cell.
    pub verify: bool,
    /// Cache directory (reused across rounds; start it empty for a true
    /// cold round).
    pub cache_dir: PathBuf,
}

/// What a replay run concluded.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The accounting report (`aim-serve-report/v1`).
    pub report: ServeReport,
    /// Whether every consistency check passed: warm rounds byte-identical
    /// to cold with zero simulations, and (if requested) every verify
    /// comparison a `match`.
    pub consistent: bool,
    /// The matrix statistics fingerprint (identical across rounds when
    /// consistent).
    pub fingerprint: u64,
    /// Human-readable findings, one line per failed check (empty when
    /// consistent).
    pub findings: Vec<String>,
}

/// Runs one round of `cells` through `clients` framed in-memory
/// connections against a shared local server; returns the responses in
/// cell order. This is the transport every cache-routed driver shares:
/// the replay gate's rounds and the `table_far_mem` sweep both submit
/// their matrices through it, so a cell one binary simulated is a warm
/// hit for the next.
///
/// # Errors
///
/// Returns a one-line message for protocol or transport failures.
pub fn run_cells(
    server: &Arc<Server>,
    cells: &[JobSpec],
    clients: usize,
    verify: bool,
) -> Result<Vec<JobResponse>, String> {
    let clients = clients.clamp(1, cells.len().max(1));
    let mut client_threads = Vec::new();
    let mut server_threads = Vec::new();
    for c in 0..clients {
        let (mut client_end, server_end) = duplex();
        let shard: Vec<(usize, JobSpec)> = cells
            .iter()
            .enumerate()
            .filter(|(i, _)| i % clients == c)
            .map(|(i, s)| (i, s.clone()))
            .collect();
        {
            let server = Arc::clone(server);
            server_threads.push(std::thread::spawn(move || {
                let _ = serve_connection(&server, server_end);
            }));
        }
        client_threads.push(std::thread::spawn(move || {
            let mut out = Vec::with_capacity(shard.len());
            for (i, spec) in shard {
                let reply = request_over(&mut client_end, &spec.to_wire(verify, false))
                    .map_err(|e| format!("cell {i}: {e}"))?;
                out.push((i, JobResponse::from_wire(&reply).map_err(|e| format!("cell {i}: {e}"))?));
            }
            Ok::<_, String>(out)
        }));
    }
    let mut indexed = Vec::with_capacity(cells.len());
    for thread in client_threads {
        indexed.extend(thread.join().expect("client thread")?);
    }
    for thread in server_threads {
        thread.join().expect("server thread");
    }
    indexed.sort_by_key(|(i, _)| *i);
    Ok(indexed.into_iter().map(|(_, r)| r).collect())
}

/// Replays the hostperf matrix per [`ReplayOptions`].
///
/// # Errors
///
/// Returns a one-line message for server construction or protocol
/// failures (an inconsistent-but-functioning cache is reported through
/// [`ReplayOutcome::consistent`], not as an error).
pub fn run_replay(opts: &ReplayOptions) -> Result<ReplayOutcome, String> {
    let server = Arc::new(
        Server::new(&opts.cache_dir, opts.workers).map_err(|e| format!("cache dir: {e}"))?,
    );
    let cells: Vec<JobSpec> = aim_workloads::names()
        .iter()
        .flat_map(|kernel| {
            hostperf_configs().into_iter().map(|(_, cfg)| cfg.job(kernel, opts.scale))
        })
        .collect();

    let mut findings = Vec::new();
    let mut rounds = Vec::new();
    let mut cold_texts: Vec<String> = Vec::new();
    let mut cold_wall = 0.0f64;
    let mut slowest_warm = 0.0f64;

    for round in 0..opts.rounds.max(1) {
        let before = server.counters();
        let t0 = Instant::now();
        let responses = run_cells(&server, &cells, opts.clients, false)?;
        let wall = t0.elapsed().as_secs_f64();
        let after = server.counters();
        let label = if round == 0 { "cold".to_string() } else { format!("warm{round}") };
        let sims = after.sims_run - before.sims_run;
        let hits = after.cache_hits - before.cache_hits;
        let texts: Vec<String> = responses.into_iter().map(|r| r.stats_text).collect();
        if round == 0 {
            cold_texts = texts;
            cold_wall = wall;
            if sims as usize != cells.len() {
                findings.push(format!(
                    "cold round ran {sims} simulations for {} unique cells",
                    cells.len()
                ));
            }
        } else {
            slowest_warm = slowest_warm.max(wall);
            if sims != 0 {
                findings.push(format!("{label}: {sims} simulations ran on a warm cache"));
            }
            if hits as usize != cells.len() {
                findings.push(format!(
                    "{label}: {hits} cache hits for {} requests",
                    cells.len()
                ));
            }
            let diverging = texts.iter().zip(&cold_texts).filter(|(w, c)| w != c).count();
            if diverging != 0 {
                findings.push(format!(
                    "{label}: {diverging} cells differ byte-wise from the cold round"
                ));
            }
        }
        rounds.push(ServeRound {
            label,
            cells: cells.len() as u64,
            wall_seconds: wall,
            sims_run: sims,
            cache_hits: hits,
        });
    }

    if opts.verify {
        let before = server.counters();
        let t0 = Instant::now();
        let responses = run_cells(&server, &cells, opts.clients, true)?;
        let wall = t0.elapsed().as_secs_f64();
        let after = server.counters();
        let mismatched = responses
            .iter()
            .filter(|r| r.verify != Some(VerifyOutcome::Match))
            .count();
        if mismatched != 0 {
            findings.push(format!("verify: {mismatched} cells did not re-simulate to a byte-identical entry"));
        }
        rounds.push(ServeRound {
            label: "verify".to_string(),
            cells: cells.len() as u64,
            wall_seconds: wall,
            sims_run: after.sims_run - before.sims_run,
            cache_hits: after.cache_hits - before.cache_hits,
        });
    }

    let fingerprint = fingerprint_texts(cold_texts.iter().map(String::as_str));
    let c = server.counters();
    let report = ServeReport {
        scale: opts.scale,
        workers: server.workers(),
        clients: opts.clients,
        requests: c.requests,
        cache_hits: c.cache_hits,
        cache_misses: c.cache_misses,
        dedup_waits: c.dedup_waits,
        sims_run: c.sims_run,
        corrupt_evictions: c.corrupt_evictions,
        verified: c.verified,
        verify_mismatches: c.verify_mismatches,
        worker_utilization: server.worker_utilization(),
        warm_speedup: if slowest_warm > 0.0 { cold_wall / slowest_warm } else { 0.0 },
        rounds,
    };
    Ok(ReplayOutcome { consistent: findings.is_empty(), report, fingerprint, findings })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostperf_configs_mirror_the_bench_spec_name_for_name() {
        let bench = aim_bench::specs::table_hostperf();
        let ours = hostperf_configs();
        assert_eq!(ours.len(), bench.configs.len());
        for ((name, spec), (bench_name, bench_cfg)) in ours.iter().zip(&bench.configs) {
            assert_eq!(name, bench_name);
            assert_eq!(
                format!("{:?}", spec.to_config()),
                format!("{bench_cfg:?}"),
                "config `{name}` diverges from the bench spec"
            );
        }
    }
}
