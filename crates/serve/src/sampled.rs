//! The `table_sampled` sampling policy and the sampled-stats decoder.
//!
//! Unlike the other experiment matrices, the sampled sweep cannot be a
//! static configuration list: the tuned policy *tiles* each kernel's
//! dynamic instruction count, so the [`SampleSpec`] differs per kernel and
//! is computed from the architectural trace length by [`sampled_policy`].
//! The `table_sampled` binary binds the per-kernel spec into the wire
//! `JobSpec`, which keeps the cells content-addressed — a sampled cell and
//! its full-detail twin hash to different cache keys, and any client
//! naming the same policy (the CLI's `submit --sample …`) shares the
//! entry.
//!
//! As with the far tier, the server replies with the canonical statistics
//! text rather than a struct, so the sampled-coverage counters are decoded
//! from the byte-stable `Debug` rendering by [`parse_sampled_stats`].

use aim_pipeline::SampledStats;
use aim_types::SampleSpec;

/// Detailed windows the tuned policy spreads across the trace. Prime, so
/// the stratified schedule cannot phase-lock onto power-of-two loop
/// structure.
pub const SAMPLE_PERIODS: u32 = 11;

/// Detail share of each period: one instruction simulated cycle-accurately
/// per `SAMPLE_DETAIL_DIVISOR` fast-forwarded.
pub const SAMPLE_DETAIL_DIVISOR: u64 = 32;

/// The tuned sampled-simulation policy for a kernel whose architectural
/// trace retires `trace_len` instructions: [`SAMPLE_PERIODS`] periods
/// tiling the whole trace, each spending 1/[`SAMPLE_DETAIL_DIVISOR`] of
/// its span in the detailed machine. Tiling the *measured* length (rather
/// than the scale's nominal target) keeps long-tailed kernels from
/// extrapolating their final millions of instructions from a schedule
/// that ended early. On the huge/far-memory configuration this policy
/// holds every committed kernel within ±7% of full-detail IPC at an
/// 11×+ wall-clock speedup (see `EXPERIMENTS.md` T-SAMPLE).
pub fn sampled_policy(trace_len: u64) -> SampleSpec {
    let period = (trace_len / u64::from(SAMPLE_PERIODS)).max(8);
    let detail = (period / SAMPLE_DETAIL_DIVISOR).max(4);
    SampleSpec::new(period - detail, detail, SAMPLE_PERIODS)
        .expect("tiled policy has nonzero phases")
}

/// Decodes the sampled-coverage counters from a canonical statistics text
/// (the byte-stable `Debug` rendering cached entries store). Returns
/// `None` when the run was not sampled or the text does not carry a
/// well-formed `sampled: Some(SampledStats { … })` field.
pub fn parse_sampled_stats(stats_text: &str) -> Option<SampledStats> {
    const OPEN: &str = "sampled: Some(SampledStats { ";
    let start = stats_text.find(OPEN)?;
    let body = &stats_text[start + OPEN.len()..];
    let body = &body[..body.find(" })")?];
    let mut stats = SampledStats::default();
    for field in body.split(", ") {
        let (key, value) = field.split_once(": ")?;
        match key {
            "periods_run" => stats.periods_run = value.parse().ok()?,
            "warm_retired" => stats.warm_retired = value.parse().ok()?,
            "detail_retired" => stats.detail_retired = value.parse().ok()?,
            "detail_cycles" => stats.detail_cycles = value.parse().ok()?,
            _ => return None,
        }
    }
    Some(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ConfigSpec;
    use aim_pipeline::{BackendChoice, MachineClass};
    use aim_workloads::Scale;

    #[test]
    fn policy_tiles_the_trace_with_sparse_detail() {
        for len in [9u64, 1_000, 123_457, 2_000_000, 5_455_377] {
            let spec = sampled_policy(len);
            assert_eq!(spec.periods, SAMPLE_PERIODS);
            // The schedule spans the whole trace (within one period of
            // rounding), so no long tail is left to one-sided
            // extrapolation.
            let span = spec.period_insts() * u64::from(spec.periods);
            assert!(span <= len.max(8 * u64::from(SAMPLE_PERIODS)));
            assert!(span + spec.period_insts() * u64::from(SAMPLE_PERIODS) >= len);
            // Detail stays a sparse slice of each period.
            assert!(spec.detail_insts >= 4);
            assert!(
                spec.detail_insts <= (spec.period_insts() / SAMPLE_DETAIL_DIVISOR).max(4),
                "detail {} of period {} at len {len}",
                spec.detail_insts,
                spec.period_insts()
            );
        }
    }

    #[test]
    fn sampled_stats_round_trip_through_the_canonical_text() {
        // Pin the decoder against the real rendering: run one sampled cell
        // and parse its canonical statistics text back.
        let workload = aim_workloads::by_name("gzip", Scale::Tiny).unwrap();
        let prepared = aim_bench::prepare(workload, Scale::Tiny);
        let spec = ConfigSpec {
            sample: Some(sampled_policy(prepared.trace.len() as u64)),
            ..ConfigSpec::new(MachineClass::Baseline, BackendChoice::SfcMdt)
        };
        let stats = aim_bench::run(&prepared, &spec.to_config());
        let text = format!("{:?}", stats.with_zeroed_host());
        assert_eq!(
            parse_sampled_stats(&text),
            stats.sampled,
            "decoder diverges from Debug"
        );
        let sampled = stats.sampled.expect("sampled run records coverage");
        assert!(sampled.periods_run > 0);
        assert!(sampled.warm_retired > 0);
    }

    #[test]
    fn sampled_decoder_rejects_unsampled_and_malformed_texts() {
        assert_eq!(parse_sampled_stats("SimStats { cycles: 12 }"), None);
        assert_eq!(parse_sampled_stats("sampled: None"), None);
        assert_eq!(
            parse_sampled_stats("sampled: Some(SampledStats { periods_run: x })"),
            None
        );
        let text = "sampled: Some(SampledStats { periods_run: 11, warm_retired: 900, \
                    detail_retired: 100, detail_cycles: 40 })";
        assert_eq!(
            parse_sampled_stats(text),
            Some(SampledStats {
                periods_run: 11,
                warm_retired: 900,
                detail_retired: 100,
                detail_cycles: 40,
            })
        );
    }
}
