//! Sampled fast-forward execution vs full detail, routed through the job
//! server: the differential convergence gate that unlocks `Scale::Huge`.
//!
//! Full-detail simulation of the huge machine class behind the 800-cycle
//! far tier costs roughly a microsecond of host time per instruction —
//! multi-million-instruction (`Scale::Huge`) runs take minutes per
//! matrix. Sampled mode alternates functional warm-up with detailed
//! cycle-accurate windows and extrapolates whole-run timing from the
//! windows, so it is only trustworthy *differentially*: this artifact
//! runs every committed kernel twice on the hardest configuration (huge
//! 4096-entry window, far latency 800, SFC/MDT) — once in full detail,
//! once under the tuned per-kernel tiled policy
//! ([`aim_serve::sampled_policy`]) — and asserts, at
//! `Scale::Huge`, that every extrapolated IPC lands within the
//! convergence tolerance of the full-detail truth and that the sampled
//! sweep is at least 10× faster wall-clock in aggregate. Architectural
//! state needs no tolerance: sampled retirement is validated
//! instruction-by-instruction against the same golden trace, so any
//! architectural divergence fails the run outright.
//!
//! Every cell is a wire `JobSpec` submitted to a shared local [`Server`]
//! over framed connections: a sampled cell and its full-detail twin are
//! distinct content-addressed cache entries (the `sample` field flips the
//! canonical-config key), and the whole matrix replayed warm must be
//! answered from the cache with zero simulations, byte-identically.
//! Wall-clock is measured on local in-process reruns of both
//! configurations, not on the (parallel, possibly cached) server rounds;
//! the local full-detail rerun must also reproduce the server's cycle
//! count exactly, pinning cross-path determinism.
//!
//! Alongside the human-readable table, the run emits the stable
//! `aim-sampled-report/v1` JSON (`BENCH_sampled.json`).

use aim_bench::{
    csv_path_from_args, jobs_from_args, rule, scale_from_args, CsvTable, SampledReport, SampledRow,
};
use aim_pipeline::{BackendChoice, FarSpec, MachineClass};
use aim_serve::{
    parse_sampled_stats, run_cells, sampled_policy, ConfigSpec, JobResponse, JobSpec, Server,
    SAMPLE_PERIODS,
};
use aim_workloads::{Scale, Suite};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// The studied configuration: the far-tier latency every cell runs
/// behind. 800 cycles is the sweep's extreme point, where full detail is
/// slowest and the warm/detail host-cost ratio is widest — the
/// configuration the ≥10× speedup claim is made on.
const FAR_LATENCY: u64 = 800;

/// Convergence tolerance at `Scale::Huge`: every kernel's extrapolated
/// IPC must land within this many percent of full detail. The measured
/// worst case of the tuned policy is −6.6% (see `EXPERIMENTS.md`
/// T-SAMPLE); 10% holds margin without hiding a regressed estimator.
const TOLERANCE_PCT: f64 = 10.0;

fn ipc(resp: &JobResponse) -> f64 {
    if resp.cycles == 0 {
        0.0
    } else {
        resp.retired as f64 / resp.cycles as f64
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let scale = scale_from_args();
    let jobs = jobs_from_args();
    let far = Some(FarSpec::new(FAR_LATENCY, 64, 8));
    let full_spec = ConfigSpec { far, ..ConfigSpec::new(MachineClass::Huge, BackendChoice::SfcMdt) };
    let window = full_spec.to_config().rob_entries as u64;

    // Prepare every kernel up front: the tiled policy is a function of
    // the kernel's dynamic length, and the wall-clock measurement reruns
    // both configurations locally on the shared golden trace.
    let prepared: Vec<aim_bench::Prepared> = aim_workloads::all(scale)
        .into_iter()
        .map(|w| aim_bench::prepare(w, scale))
        .collect();
    let cells: Vec<JobSpec> = prepared
        .iter()
        .flat_map(|p| {
            let sampled_spec = ConfigSpec {
                sample: Some(sampled_policy(p.trace.len() as u64)),
                ..full_spec
            };
            [full_spec.job(p.name, scale), sampled_spec.job(p.name, scale)]
        })
        .collect();

    let cache_dir = std::env::var("AIM_SERVE_CACHE").map(PathBuf::from).unwrap_or_else(|_| {
        std::env::temp_dir().join(format!("aim_sampled_cache_{}", std::process::id()))
    });
    let server = Arc::new(Server::new(&cache_dir, jobs).expect("serve cache dir"));

    // Round 1: the matrix through the shared local server. Full and
    // sampled cells must be distinct cache entries — default-off sampling
    // means the full cells' keys are byte-identical to every other
    // client's unsampled submissions.
    let before = server.counters();
    let cold = run_cells(&server, &cells, jobs, false).expect("matrix round");
    let mid = server.counters();
    // Round 2: replay the whole matrix; every cell must come back from
    // the cache, byte-identical, with zero simulations.
    let warm = run_cells(&server, &cells, jobs, false).expect("replay round");
    let after = server.counters();
    let cold_sims = mid.sims_run - before.sims_run;
    let warm_sims = after.sims_run - mid.sims_run;
    let warm_hits = after.cache_hits - mid.cache_hits;
    let diverging =
        warm.iter().zip(&cold).filter(|(w, c)| w.stats_text != c.stats_text).count();
    assert_eq!(warm_sims, 0, "warm replay ran simulations on a warm cache");
    assert_eq!(warm_hits as usize, cells.len(), "warm replay missed the cache");
    assert_eq!(diverging, 0, "warm replay diverged byte-wise from the first round");

    println!(
        "sampled convergence — huge machine ({window}-entry window), far latency {FAR_LATENCY}, \
         sfc/mdt; tiled {SAMPLE_PERIODS}-period policy vs full detail"
    );
    rule(118);
    println!(
        "{:<11} {:>5} {:>9} | {:>8} {:>8} {:>7} | {:>7} {:>7} | {:>9} {:>9} {:>7}",
        "benchmark", "suite", "insts", "full ipc", "samp ipc", "err%", "periods", "detail%",
        "full ms", "samp ms", "speedup"
    );
    rule(118);

    let mut rows = Vec::new();
    let mut misses: Vec<String> = Vec::new();
    let mut worst = 0.0f64;
    let (mut full_wall, mut samp_wall) = (0u64, 0u64);
    let mut csv = CsvTable::new(&[
        "workload",
        "suite",
        "trace_len",
        "full_ipc",
        "sampled_ipc",
        "err_pct",
        "periods_run",
        "detail_pct",
        "full_wall_ns",
        "sampled_wall_ns",
        "speedup",
    ]);

    for (w, p) in prepared.iter().enumerate() {
        let (full_resp, samp_resp) = (&cold[2 * w], &cold[2 * w + 1]);
        let policy = sampled_policy(p.trace.len() as u64);
        let (full_ipc, samp_ipc) = (ipc(full_resp), ipc(samp_resp));
        let err = 100.0 * (samp_ipc - full_ipc) / full_ipc;
        if err.abs() > worst.abs() {
            worst = err;
        }
        let sampled = parse_sampled_stats(&samp_resp.stats_text)
            .expect("sampled cell carries coverage stats");
        assert!(
            parse_sampled_stats(&full_resp.stats_text).is_none(),
            "{}: full-detail cell carries sampled stats — the cache keys collided",
            p.name
        );
        assert_eq!(
            sampled.periods_run, SAMPLE_PERIODS,
            "{}: the tiled schedule must complete every period",
            p.name
        );
        if err.abs() > TOLERANCE_PCT {
            misses.push(format!("{} {err:+.2}%", p.name));
        }

        // Wall-clock on local reruns: single-threaded, same process, same
        // golden trace — the only difference is the sampling policy. The
        // full rerun must reproduce the served cycle count exactly.
        let t0 = Instant::now();
        let local_full = aim_bench::run(p, &full_spec.to_config());
        let fw = t0.elapsed().as_nanos() as u64;
        let sampled_cfg =
            ConfigSpec { sample: Some(policy), ..full_spec }.to_config();
        let t0 = Instant::now();
        let local_samp = aim_bench::run(p, &sampled_cfg);
        let sw = t0.elapsed().as_nanos() as u64;
        assert_eq!(
            (local_full.cycles, local_full.retired),
            (full_resp.cycles, full_resp.retired),
            "{}: local full-detail rerun diverged from the served result",
            p.name
        );
        assert_eq!(
            (local_samp.cycles, local_samp.retired),
            (samp_resp.cycles, samp_resp.retired),
            "{}: local sampled rerun diverged from the served result",
            p.name
        );
        full_wall += fw;
        samp_wall += sw;

        let detail_pct = sampled.detail_fraction();
        let speedup = fw as f64 / sw as f64;
        let suite_tok = if p.suite == Suite::Int { "int" } else { "fp" };
        println!(
            "{:<11} {:>5} {:>9} | {:>8.4} {:>8.4} {:>+7.2} | {:>7} {:>7.2} | {:>9.1} {:>9.1} \
             {:>6.1}x",
            p.name,
            suite_tok,
            p.trace.len(),
            full_ipc,
            samp_ipc,
            err,
            sampled.periods_run,
            detail_pct,
            fw as f64 / 1e6,
            sw as f64 / 1e6,
            speedup
        );
        csv.row(&[
            p.name.to_string(),
            suite_tok.to_string(),
            p.trace.len().to_string(),
            format!("{full_ipc:.4}"),
            format!("{samp_ipc:.4}"),
            format!("{err:.2}"),
            sampled.periods_run.to_string(),
            format!("{detail_pct:.2}"),
            fw.to_string(),
            sw.to_string(),
            format!("{speedup:.2}"),
        ]);
        rows.push(SampledRow {
            workload: p.name.to_string(),
            suite: suite_tok.to_string(),
            trace_len: p.trace.len() as u64,
            warm_insts: policy.warm_insts,
            detail_insts: policy.detail_insts,
            periods: policy.periods,
            full_ipc,
            sampled_ipc: samp_ipc,
            err_pct: err,
            periods_run: sampled.periods_run,
            detail_pct,
            full_wall_ns: fw,
            sampled_wall_ns: sw,
            speedup,
        });
    }
    rule(118);
    let speedup = full_wall as f64 / samp_wall as f64;
    println!(
        "worst error {worst:+.2}%   aggregate wall {:.2}s full / {:.2}s sampled — {speedup:.1}x",
        full_wall as f64 / 1e9,
        samp_wall as f64 / 1e9
    );
    rule(118);

    if let Some(path) = csv_path_from_args() {
        csv.write(&path).expect("write csv");
        println!("wrote {path}");
    }
    let report = SampledReport {
        artifact: "table_sampled".to_string(),
        scale,
        workers: server.workers(),
        cold_sims,
        warm_hits,
        warm_sims,
        machine: "huge".to_string(),
        window,
        far_latency: FAR_LATENCY,
        worst_err_pct: worst,
        speedup,
        rows,
    };
    match report.write_default() {
        Ok(path) => println!("sampled report — {path}"),
        Err(e) => eprintln!("sampled report not written: {e}"),
    }
    println!(
        "serve: matrix cached under {} — first round {} simulations, replay {}/{} cells warm \
         ({} simulations)",
        cache_dir.display(),
        cold_sims,
        warm_hits,
        cells.len(),
        warm_sims
    );

    // The differential acceptance claims hold where the policy is sized
    // to operate: `Scale::Huge` traces, where each period spans hundreds
    // of thousands of instructions. At the tier-1 tiny scale the same
    // binary still pins the plumbing — distinct cache keys, complete
    // schedules, warm byte-identity, local/served determinism — but a
    // dozen-instruction detail window extrapolating a 5k-instruction
    // kernel is legitimately noisy, and wall-clock is dominated by fixed
    // costs, so the convergence and speedup gates stay huge-only.
    if scale == Scale::Huge {
        assert!(
            misses.is_empty(),
            "sampled IPC escaped the ±{TOLERANCE_PCT}% convergence tolerance on: {misses:?}"
        );
        assert!(
            speedup >= 10.0,
            "sampled mode must be >=10x faster wall-clock than full detail at huge scale, \
             measured {speedup:.2}x"
        );
    }
    println!(
        "acceptance: worst sampled-vs-detail error {worst:+.2}% (tolerance ±{TOLERANCE_PCT}% at \
         huge scale); wall-clock speedup {speedup:.1}x (floor 10x at huge scale)"
    );
}
