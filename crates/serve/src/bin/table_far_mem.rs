//! Far-memory tier × kilo-entry-window sweep, routed through the job
//! server.
//!
//! The paper's claim is that address-indexed disambiguation scales where
//! LSQ CAMs throttle. This artifact stresses the claim where it is
//! hardest: both kilo-entry-window machine classes (aggressive 1024,
//! huge 4096) run behind a hundreds-of-cycles far-memory tier, so
//! thousands of instructions — and many MSHR-bounded far misses — are in
//! flight at once. Each (machine × latency) cell brackets two CAMs — the
//! buildable 120×80 Figure 4 queue and the 256×256 upper bound — plus
//! the SFC/MDT and PCAX between no-spec and oracle, normalized to the
//! cell's 256×256 LSQ IPC. The acceptance metric is *retention*: the
//! geomean share of the upper-bound CAM's throughput each backend keeps.
//! On the huge cells the buildable CAM drowns (its 120 load entries cap
//! the far-miss MLP a 4096-entry window exposes) while the
//! address-indexed backends stay at or above the upper bound.
//!
//! Unlike the other sweep binaries, the matrix does not run through
//! `aim_bench::run_matrix`: every cell is a wire `JobSpec` submitted to a
//! shared local [`Server`] over framed connections, then the whole matrix
//! is replayed and must be answered entirely from the content-addressed
//! cache with zero simulations. Point `$AIM_SERVE_CACHE` at a persistent
//! directory and the cells stay warm across invocations — and for any
//! other client (the CLI's `submit --machine huge --far …`) naming the
//! same cell through the extended `JobSpec` surface.
//!
//! Alongside the human-readable tables, the run emits the stable
//! `aim-farmem-report/v1` JSON (`BENCH_farmem.json`).

use aim_bench::{
    csv_path_from_args, jobs_from_args, rule, scale_from_args, specs, CsvTable, FarMemReport,
    FarMemRow,
};
use aim_serve::{farmem_configs, parse_far_stats, run_cells, JobResponse, JobSpec, Server};
use aim_types::geomean;
use aim_workloads::{Scale, Suite};
use std::path::PathBuf;
use std::sync::Arc;

/// The four (machine class, far latency) cells, in config-list order.
const CELLS: &[(&str, u64)] = &[("aggr", 200), ("aggr", 800), ("huge", 200), ("huge", 800)];

/// Backend columns per cell: no-spec, the buildable 120×80 CAM, the
/// 256×256 upper-bound CAM (normalization base), SFC/MDT, PCAX, oracle.
const COLS: usize = 6;

fn ipc(resp: &JobResponse) -> f64 {
    if resp.cycles == 0 {
        0.0
    } else {
        resp.retired as f64 / resp.cycles as f64
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let scale = scale_from_args();
    let jobs = jobs_from_args();
    let spec = specs::table_far_mem();
    let configs = farmem_configs();
    assert_eq!(configs.len(), CELLS.len() * COLS, "cell layout drifted");

    let workloads: Vec<(&'static str, Suite)> = aim_workloads::all(scale)
        .iter()
        .filter(|w| !spec.skip.contains(&w.name))
        .map(|w| (w.name, w.suite))
        .collect();
    let cache_dir = std::env::var("AIM_SERVE_CACHE").map(PathBuf::from).unwrap_or_else(|_| {
        std::env::temp_dir().join(format!("aim_farmem_cache_{}", std::process::id()))
    });
    let server = Arc::new(Server::new(&cache_dir, jobs).expect("serve cache dir"));
    let cells: Vec<JobSpec> = workloads
        .iter()
        .flat_map(|(name, _)| configs.iter().map(|(_, c)| c.job(name, scale)))
        .collect();

    // Round 1: the matrix through the shared local server (cells already
    // cached by an earlier run against the same directory stay warm).
    let before = server.counters();
    let cold = run_cells(&server, &cells, jobs, false).expect("matrix round");
    let mid = server.counters();
    // Round 2: replay the whole matrix; every cell must come back from
    // the cache, byte-identical, with zero simulations.
    let warm = run_cells(&server, &cells, jobs, false).expect("replay round");
    let after = server.counters();
    let cold_sims = mid.sims_run - before.sims_run;
    let warm_sims = after.sims_run - mid.sims_run;
    let warm_hits = after.cache_hits - mid.cache_hits;
    let diverging =
        warm.iter().zip(&cold).filter(|(w, c)| w.stats_text != c.stats_text).count();
    assert_eq!(warm_sims, 0, "warm replay ran simulations on a warm cache");
    assert_eq!(warm_hits as usize, cells.len(), "warm replay missed the cache");
    assert_eq!(diverging, 0, "warm replay diverged byte-wise from the first round");

    let resp = |w: usize, k: usize| &cold[w * configs.len() + k];
    let mut rows = Vec::new();
    let mut bracket_misses: Vec<String> = Vec::new();
    // Per huge cell: (cam, sfc, pcax) retention vs the 256×256 upper
    // bound, for the scaling acceptance claim.
    let mut huge_rets: Vec<(f64, f64, f64)> = Vec::new();
    let mut csv = CsvTable::new(&[
        "workload",
        "suite",
        "machine",
        "window",
        "far_latency",
        "lsq_ipc",
        "nospec_norm",
        "cam_norm",
        "sfc_mdt_norm",
        "pcax_norm",
        "oracle_norm",
        "cam_gap_closed",
        "sfc_gap_closed",
        "pcax_gap_closed",
    ]);

    for (c, &(tag, lat)) in CELLS.iter().enumerate() {
        let base = c * COLS;
        let window = spec.configs[base].1.rob_entries as u64;
        println!(
            "far-memory bracket — {tag} machine ({window}-entry window), far latency {lat} \
             (normalized to the cell's 256x256 upper-bound LSQ IPC)"
        );
        rule(113);
        println!(
            "{:<11} {:>5} | {:>8} | {:>8} {:>8} {:>8} {:>8} {:>8} | {:>6} {:>6} {:>6} | {:>8} {:>5}",
            "benchmark", "suite", "LSQ IPC", "no-spec", "cam-120", "sfc/mdt", "pcax", "oracle",
            "cam%", "sfc%", "pcax%", "far-acc", "peak"
        );
        rule(113);
        let mut gap_rows: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut norm_rows: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (w, &(name, suite)) in workloads.iter().enumerate() {
            let lsq_ipc = ipc(resp(w, base + 2));
            let norm = |k: usize| ipc(resp(w, base + k)) / lsq_ipc;
            let (nospec, cam, sfc, pcax, oracle) =
                (norm(0), norm(1), norm(3), norm(4), norm(5));
            let gap = oracle - nospec;
            let closed = |x: f64| if gap > f64::EPSILON { 100.0 * (x - nospec) / gap } else { 100.0 };
            let (cam_closed, sfc_closed, pcax_closed) = (closed(cam), closed(sfc), closed(pcax));
            // Acceptance: every real backend inside the bracket. The
            // ceiling is max(oracle, LSQ, SFC/MDT) as in `table_pcax`:
            // the oracle stalls loads behind aliasing stores instead of
            // forwarding, so speculative forwarding legitimately beats it
            // on forwarding-heavy kernels. The tolerances are relative —
            // 5% under the floor, 2% over the ceiling — because the
            // bracket ends are themselves speculation policies, not hard
            // bounds: on forwarding-light, store-ordered kernels
            // (perlbmk) the speculative store buffer pays a few percent
            // in output-dependence flushes with no stalls to save, and on
            // forwarding-heavy ones speculative forwarding edges past the
            // stalling oracle.
            let ceiling = oracle.max(1.0).max(sfc);
            for (label, x) in
                [("lsq-120x80", cam), ("lsq-256x256", 1.0), ("sfc-mdt", sfc), ("pcax", pcax)]
            {
                if x < nospec * 0.95 - 0.005 || x > ceiling * 1.02 + 0.01 {
                    bracket_misses.push(format!("{tag}-far{lat}/{name}/{label}"));
                }
            }
            let far = parse_far_stats(&resp(w, base + 3).stats_text)
                .expect("far-tier cell carries far stats");
            gap_rows[0].push(cam_closed);
            gap_rows[1].push(sfc_closed);
            gap_rows[2].push(pcax_closed);
            norm_rows[0].push(cam);
            norm_rows[1].push(sfc);
            norm_rows[2].push(pcax);
            let suite_tok = if suite == Suite::Int { "int" } else { "fp" };
            csv.row(&[
                name.to_string(),
                suite_tok.to_string(),
                tag.to_string(),
                window.to_string(),
                lat.to_string(),
                format!("{lsq_ipc:.4}"),
                format!("{nospec:.4}"),
                format!("{cam:.4}"),
                format!("{sfc:.4}"),
                format!("{pcax:.4}"),
                format!("{oracle:.4}"),
                format!("{cam_closed:.1}"),
                format!("{sfc_closed:.1}"),
                format!("{pcax_closed:.1}"),
            ]);
            rows.push(FarMemRow {
                workload: name.to_string(),
                suite: suite_tok.to_string(),
                machine: tag.to_string(),
                window,
                far_latency: lat,
                lsq_ipc,
                nospec_norm: nospec,
                cam_norm: cam,
                sfc_mdt_norm: sfc,
                pcax_norm: pcax,
                oracle_norm: oracle,
                cam_gap_closed: cam_closed,
                sfc_gap_closed: sfc_closed,
                pcax_gap_closed: pcax_closed,
                far_accesses: far.accesses,
                far_coalesced: far.coalesced,
                far_overflow: far.overflow,
                far_peak_inflight: far.peak_inflight as u64,
            });
            println!(
                "{:<11} {:>5} | {:>8.3} | {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} | {:>6.1} \
                 {:>6.1} {:>6.1} | {:>8} {:>5}",
                name, suite_tok, lsq_ipc, nospec, cam, sfc, pcax, oracle, cam_closed, sfc_closed,
                pcax_closed, far.accesses, far.peak_inflight
            );
        }
        rule(113);
        // Arithmetic mean: gap-closed percentages are legitimately
        // negative on kernels where speculation loses, which a geometric
        // mean cannot average.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "{:<11} {:>5} | {:>8} | {:>8} {:>8} {:>8} {:>8} {:>8} | {:>6.1} {:>6.1} {:>6.1} |",
            "mean gap%", "", "", "", "", "", "", "", mean(&gap_rows[0]), mean(&gap_rows[1]),
            mean(&gap_rows[2])
        );
        let rets = (
            100.0 * geomean(&norm_rows[0]),
            100.0 * geomean(&norm_rows[1]),
            100.0 * geomean(&norm_rows[2]),
        );
        println!(
            "retention vs the 256x256 upper bound (geomean) — cam-120 {:.1}%  sfc/mdt {:.1}%  \
             pcax {:.1}%",
            rets.0, rets.1, rets.2
        );
        rule(113);
        println!();
        if tag == "huge" {
            huge_rets.push(rets);
        }
    }

    if let Some(path) = csv_path_from_args() {
        csv.write(&path).expect("write csv");
        println!("wrote {path}");
    }
    let report = FarMemReport {
        artifact: spec.artifact.to_string(),
        scale,
        workers: server.workers(),
        cold_sims,
        warm_hits,
        warm_sims,
        rows,
    };
    match report.write_default() {
        Ok(path) => println!("farmem report — {path}"),
        Err(e) => eprintln!("farmem report not written: {e}"),
    }
    println!(
        "serve: matrix cached under {} — first round {} simulations, replay {}/{} cells warm \
         ({} simulations)",
        cache_dir.display(),
        cold_sims,
        warm_hits,
        cells.len(),
        warm_sims
    );

    assert!(
        bracket_misses.is_empty(),
        "backends escaped the no-spec..oracle bracket on: {bracket_misses:?}"
    );
    // The scaling claim: on the kilo-entry-window huge class behind the
    // far tier, the address-indexed backends keep >=95% of the 256x256
    // upper bound's throughput at every latency, and at the deepest
    // latency the buildable 120x80 CAM drowns measurably below them (at
    // 200 cycles a 4096-entry window does not yet expose more far-miss
    // MLP than 120 load entries can hold — the collapse is a
    // latency-scaling effect, which is the point of the sweep). Only
    // meaningful at real run lengths — at tiny scale the whole program
    // fits inside the window and the ratios are warm-up noise, so tiny
    // runs (the tier-1 gate) check the bracket and the warm cache but
    // not the retentions.
    if scale != Scale::Tiny {
        for (&(tag, lat), &(cam, sfc, pcax)) in
            CELLS.iter().filter(|(t, _)| *t == "huge").zip(&huge_rets)
        {
            assert!(
                sfc >= 95.0 && pcax >= 95.0,
                "{tag}-far{lat}: address-indexed retention fell below 95% \
                 (sfc {sfc:.1}%, pcax {pcax:.1}%)"
            );
            if lat == CELLS.iter().map(|&(_, l)| l).max().unwrap_or(0) {
                assert!(
                    cam <= sfc - 5.0 && cam <= pcax - 5.0,
                    "{tag}-far{lat}: the 120x80 CAM's retention ({cam:.1}%) is not \
                     measurably below sfc ({sfc:.1}%) / pcax ({pcax:.1}%)"
                );
            }
        }
    }
    let (cam, sfc, pcax) = huge_rets.last().copied().expect("huge cells present");
    println!(
        "acceptance: every backend inside the no-spec..oracle bracket; huge-window retention \
         vs the 256x256 upper bound — cam-120 {cam:.1}% << sfc {sfc:.1}% / pcax {pcax:.1}%"
    );
}
