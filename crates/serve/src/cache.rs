//! The checksummed on-disk entry store.
//!
//! One file per content address, named `<32-hex-key>.entry`, holding a
//! small text header and the canonical statistics payload:
//!
//! ```text
//! aim-serve-cache/v1
//! key <32 hex digits>
//! cycles <u64>
//! retired <u64>
//! sum <16 hex digits>
//! <canonical SimStats text — the rest of the file>
//! ```
//!
//! The `sum` line is an FNV-1a checksum over the headline counters and
//! the payload, so a truncated write, a flipped bit, or a hand-edited
//! header all read back as [`Lookup::Corrupt`]: the entry is **evicted**
//! (unlinked) and the caller recomputes. Entries are written to a
//! temporary file in the cache directory and renamed into place, so a
//! reader never observes a half-written entry under its final name and
//! concurrent writers of the same key last-writer-win with either writer's
//! bytes intact — which is safe precisely because the content address
//! makes both writers' bytes identical.

use aim_bench::{fingerprint_text, CacheKey};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The entry format's schema line.
const SCHEMA: &str = "aim-serve-cache/v1";

/// One memoized simulation result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// Simulated cycles (headline; duplicated from the statistics text so
    /// clients need not parse it).
    pub cycles: u64,
    /// Retired instructions (headline).
    pub retired: u64,
    /// The canonical statistics text: the `Debug` rendering of the
    /// [`SimStats`](aim_pipeline::SimStats) with its host-dependent
    /// fields zeroed. Single line by construction.
    pub stats_text: String,
}

impl CacheEntry {
    /// Builds an entry from a finished simulation.
    pub fn from_stats(stats: &aim_pipeline::SimStats) -> CacheEntry {
        CacheEntry {
            cycles: stats.cycles,
            retired: stats.retired,
            stats_text: format!("{:?}", stats.with_zeroed_host()),
        }
    }

    /// The entry's statistics fingerprint
    /// ([`aim_bench::fingerprint_text`] of the payload).
    pub fn fingerprint(&self) -> u64 {
        fingerprint_text(&self.stats_text)
    }

    fn checksum(&self) -> u64 {
        fingerprint_text(&format!("{}\n{}\n{}", self.cycles, self.retired, self.stats_text))
    }
}

/// The outcome of a cache probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// A valid entry.
    Hit(CacheEntry),
    /// No entry on disk.
    Miss,
    /// An entry existed but failed validation; it has been evicted and the
    /// caller must recompute.
    Corrupt,
}

/// A content-addressed directory of [`CacheEntry`] files.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
}

/// Distinguishes concurrent writers' temporary files within one process.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl DiskCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// Propagates the directory-creation error.
    pub fn open(dir: &Path) -> io::Result<DiskCache> {
        std::fs::create_dir_all(dir)?;
        Ok(DiskCache { dir: dir.to_path_buf() })
    }

    /// The on-disk path of `key`'s entry.
    pub fn entry_path(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{}.entry", key.hex()))
    }

    /// Probes for `key`. A present-but-invalid entry is unlinked and
    /// reported as [`Lookup::Corrupt`].
    pub fn load(&self, key: CacheKey) -> Lookup {
        let path = self.entry_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Lookup::Miss,
            // Unreadable (permissions, non-UTF-8, transient I/O): treat as
            // corrupt so the caller recomputes rather than failing.
            Err(_) => {
                let _ = std::fs::remove_file(&path);
                return Lookup::Corrupt;
            }
        };
        match parse_entry(&text, key) {
            Some(entry) => Lookup::Hit(entry),
            None => {
                let _ = std::fs::remove_file(&path);
                Lookup::Corrupt
            }
        }
    }

    /// Writes `entry` under `key` atomically (temporary file + rename).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn store(&self, key: CacheKey, entry: &CacheEntry) -> io::Result<()> {
        let text = format!(
            "{SCHEMA}\nkey {}\ncycles {}\nretired {}\nsum {:016x}\n{}",
            key.hex(),
            entry.cycles,
            entry.retired,
            entry.checksum(),
            entry.stats_text,
        );
        let temp = self.dir.join(format!(
            ".{}.tmp{}-{}",
            key.hex(),
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::write(&temp, text)?;
        std::fs::rename(&temp, self.entry_path(key))
    }
}

fn parse_entry(text: &str, key: CacheKey) -> Option<CacheEntry> {
    let rest = text.strip_prefix(SCHEMA)?.strip_prefix('\n')?;
    let (key_line, rest) = rest.split_once('\n')?;
    if key_line.strip_prefix("key ")? != key.hex() {
        return None;
    }
    let (cycles_line, rest) = rest.split_once('\n')?;
    let cycles: u64 = cycles_line.strip_prefix("cycles ")?.parse().ok()?;
    let (retired_line, rest) = rest.split_once('\n')?;
    let retired: u64 = retired_line.strip_prefix("retired ")?.parse().ok()?;
    let (sum_line, payload) = rest.split_once('\n')?;
    let sum = u64::from_str_radix(sum_line.strip_prefix("sum ")?, 16).ok()?;
    let entry = CacheEntry { cycles, retired, stats_text: payload.to_string() };
    (entry.checksum() == sum).then_some(entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_bench::cache_key_of_texts;

    fn temp_cache(tag: &str) -> DiskCache {
        let dir = std::env::temp_dir().join(format!("aim_serve_cache_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DiskCache::open(&dir).unwrap()
    }

    fn entry() -> CacheEntry {
        CacheEntry {
            cycles: 1000,
            retired: 800,
            stats_text: "SimStats { cycles: 1000, retired: 800 }".to_string(),
        }
    }

    #[test]
    fn entries_round_trip_and_missing_keys_miss() {
        let cache = temp_cache("roundtrip");
        let key = cache_key_of_texts("prog", "cfg", "v");
        assert_eq!(cache.load(key), Lookup::Miss);
        cache.store(key, &entry()).unwrap();
        assert_eq!(cache.load(key), Lookup::Hit(entry()));
        // A different key does not alias onto the stored entry.
        assert_eq!(cache.load(cache_key_of_texts("prog2", "cfg", "v")), Lookup::Miss);
    }

    #[test]
    fn corruption_is_detected_and_evicted() {
        let cache = temp_cache("corrupt");
        let key = cache_key_of_texts("prog", "cfg", "v");

        // Flipped payload byte.
        cache.store(key, &entry()).unwrap();
        let path = cache.entry_path(key);
        let tampered = std::fs::read_to_string(&path).unwrap().replace("800", "801");
        std::fs::write(&path, tampered).unwrap();
        assert_eq!(cache.load(key), Lookup::Corrupt);
        assert!(!path.exists(), "corrupt entry must be evicted");
        assert_eq!(cache.load(key), Lookup::Miss);

        // Truncation.
        cache.store(key, &entry()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 5]).unwrap();
        assert_eq!(cache.load(key), Lookup::Corrupt);

        // Header tampering (headline counters are covered by the checksum).
        cache.store(key, &entry()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap().replace("cycles 1000", "cycles 9999");
        std::fs::write(&path, text).unwrap();
        assert_eq!(cache.load(key), Lookup::Corrupt);

        // Entry filed under the wrong key.
        let other = cache_key_of_texts("other", "cfg", "v");
        cache.store(other, &entry()).unwrap();
        std::fs::rename(cache.entry_path(other), &path).unwrap();
        assert_eq!(cache.load(key), Lookup::Corrupt);
    }

    #[test]
    fn fingerprint_matches_the_bench_helper() {
        let e = entry();
        assert_eq!(e.fingerprint(), aim_bench::fingerprint_text(&e.stats_text));
    }
}
