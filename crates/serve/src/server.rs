//! The job server: a worker pool, single-flight deduplication, and the
//! request dispatcher.
//!
//! A connection handler thread decodes one request at a time and calls
//! [`Server::submit`]. The fast path never touches the pipeline: build
//! the kernel's [`Program`](aim_isa::Program) (cheap and deterministic),
//! derive the content address, and answer a cache hit straight from disk.
//! Only a miss costs simulation, and misses are **sharded across a
//! work-stealing pool**: every worker pulls from one shared queue, so a
//! burst of misses from one connection spreads over all workers while
//! other connections' jobs interleave rather than queue behind it.
//!
//! Identical in-flight requests are folded by **single-flight**: the
//! first requester of a key becomes the leader and enqueues the
//! simulation; later requesters of the same key park on the job's slot
//! and wake with the leader's result. Each unique job therefore simulates
//! exactly once no matter how many clients race it — the property
//! `crates/serve/tests/server.rs` pins with a barrier.
//!
//! The expensive trace preparation (architecturally executing a kernel to
//! produce its golden trace) is memoized per `(kernel, scale)` behind a
//! [`OnceLock`], so even a cold matrix interprets each kernel once, not
//! once per configuration.

use crate::cache::{CacheEntry, DiskCache, Lookup};
use crate::proto::{error_reply, JobResponse, JobSpec, Source, VerifyOutcome};
use aim_bench::{cache_key_of_texts, canonical_config_text, program_text, CacheKey, Prepared};
use aim_types::wire::{read_frame, write_frame, WireMsg};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;
use aim_workloads::Scale;

/// Lifetime counters, all monotone.
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    dedup_waits: AtomicU64,
    sims_run: AtomicU64,
    corrupt_evictions: AtomicU64,
    verified: AtomicU64,
    verify_mismatches: AtomicU64,
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Requests handled.
    pub requests: u64,
    /// Requests answered from the cache.
    pub cache_hits: u64,
    /// Requests that missed the cache.
    pub cache_misses: u64,
    /// Requests folded onto an in-flight duplicate.
    pub dedup_waits: u64,
    /// Pipeline simulations executed.
    pub sims_run: u64,
    /// Cache entries evicted by validation.
    pub corrupt_evictions: u64,
    /// Verify recomputations performed.
    pub verified: u64,
    /// Verify recomputations that diverged from the cached bytes.
    pub verify_mismatches: u64,
}

/// One in-flight unique job; waiters park here.
#[derive(Default)]
struct JobSlot {
    result: Mutex<Option<Result<CacheEntry, String>>>,
    done: Condvar,
}

impl JobSlot {
    fn fulfill(&self, result: Result<CacheEntry, String>) {
        *self.result.lock().expect("slot lock") = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<CacheEntry, String> {
        let mut guard = self.result.lock().expect("slot lock");
        while guard.is_none() {
            guard = self.done.wait(guard).expect("slot lock");
        }
        guard.clone().expect("checked above")
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<PoolQueue>,
    available: Condvar,
    busy_nanos: AtomicU64,
}

#[derive(Default)]
struct PoolQueue {
    jobs: VecDeque<Job>,
    stop: bool,
}

/// The shared-queue worker pool: any idle worker steals the next job.
struct WorkPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
    started: Instant,
}

impl WorkPool {
    fn new(workers: usize) -> WorkPool {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue::default()),
            available: Condvar::new(),
            busy_nanos: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut q = shared.queue.lock().expect("pool lock");
                        loop {
                            if let Some(job) = q.jobs.pop_front() {
                                break job;
                            }
                            if q.stop {
                                return;
                            }
                            q = shared.available.wait(q).expect("pool lock");
                        }
                    };
                    let t0 = Instant::now();
                    job();
                    let spent = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    shared.busy_nanos.fetch_add(spent, Ordering::Relaxed);
                })
            })
            .collect();
        WorkPool { shared, handles, workers, started: Instant::now() }
    }

    fn execute(&self, job: Job) {
        let mut q = self.shared.queue.lock().expect("pool lock");
        q.jobs.push_back(job);
        drop(q);
        self.shared.available.notify_one();
    }

    /// Fraction of the pool's aggregate lifetime spent running jobs.
    fn utilization(&self) -> f64 {
        let lifetime = self.started.elapsed().as_secs_f64() * self.workers as f64;
        if lifetime <= 0.0 {
            return 0.0;
        }
        let busy = self.shared.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        (busy / lifetime).min(1.0)
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        self.shared.queue.lock().expect("pool lock").stop = true;
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

type PreparedCell = Arc<OnceLock<Arc<Prepared>>>;

/// The job server.
pub struct Server {
    cache: DiskCache,
    pool: WorkPool,
    code_version: String,
    counters: Arc<Counters>,
    /// Program texts per `(kernel, scale)` — the warm path's only
    /// per-request work beyond hashing.
    program_texts: Mutex<HashMap<(String, Scale), Arc<String>>>,
    /// Golden traces per `(kernel, scale)`, interpreted once on first
    /// miss.
    prepared: Mutex<HashMap<(String, Scale), PreparedCell>>,
    inflight: Mutex<HashMap<CacheKey, Arc<JobSlot>>>,
    shutdown: AtomicBool,
}

impl Server {
    /// Opens a server over `cache_dir` with `workers` simulation threads,
    /// keyed under [`aim_bench::CODE_VERSION`].
    ///
    /// # Errors
    ///
    /// Propagates the cache-directory creation error.
    pub fn new(cache_dir: &Path, workers: usize) -> std::io::Result<Server> {
        Server::with_code_version(cache_dir, workers, aim_bench::CODE_VERSION)
    }

    /// [`Server::new`] with an explicit code-version string (tests use
    /// this to model a simulator upgrade invalidating the cache).
    ///
    /// # Errors
    ///
    /// Propagates the cache-directory creation error.
    pub fn with_code_version(
        cache_dir: &Path,
        workers: usize,
        code_version: &str,
    ) -> std::io::Result<Server> {
        Ok(Server {
            cache: DiskCache::open(cache_dir)?,
            pool: WorkPool::new(workers),
            code_version: code_version.to_string(),
            counters: Arc::new(Counters::default()),
            program_texts: Mutex::new(HashMap::new()),
            prepared: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.pool.workers
    }

    /// Whether a shutdown request has been received.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown (listeners stop accepting; open connections
    /// finish their current request).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Copies the lifetime counters.
    pub fn counters(&self) -> CounterSnapshot {
        let c = &self.counters;
        CounterSnapshot {
            requests: c.requests.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            dedup_waits: c.dedup_waits.load(Ordering::Relaxed),
            sims_run: c.sims_run.load(Ordering::Relaxed),
            corrupt_evictions: c.corrupt_evictions.load(Ordering::Relaxed),
            verified: c.verified.load(Ordering::Relaxed),
            verify_mismatches: c.verify_mismatches.load(Ordering::Relaxed),
        }
    }

    /// Fraction of the worker pool's lifetime spent simulating.
    pub fn worker_utilization(&self) -> f64 {
        self.pool.utilization()
    }

    /// The content address `spec` resolves to under this server's code
    /// version.
    ///
    /// # Errors
    ///
    /// Returns a one-line message for an unknown kernel.
    pub fn key_of(&self, spec: &JobSpec) -> Result<CacheKey, String> {
        let ptext = self.program_text_of(&spec.kernel, spec.scale)?;
        let ctext = canonical_config_text(&spec.config.to_config());
        Ok(cache_key_of_texts(&ptext, &ctext, &self.code_version))
    }

    fn program_text_of(&self, kernel: &str, scale: Scale) -> Result<Arc<String>, String> {
        let mut texts = self.program_texts.lock().expect("program lock");
        if let Some(text) = texts.get(&(kernel.to_string(), scale)) {
            return Ok(Arc::clone(text));
        }
        let workload = aim_workloads::by_name(kernel, scale)
            .ok_or_else(|| format!("no such kernel `{kernel}` (see aim-workloads)"))?;
        let text = Arc::new(program_text(&workload.program));
        texts.insert((kernel.to_string(), scale), Arc::clone(&text));
        Ok(text)
    }

    fn prepared_of(&self, kernel: &str, scale: Scale) -> Result<Arc<Prepared>, String> {
        let cell = {
            let mut map = self.prepared.lock().expect("prepared lock");
            Arc::clone(
                map.entry((kernel.to_string(), scale))
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        // `get_or_init` blocks concurrent initializers, so each kernel is
        // interpreted once even under a racing cold matrix.
        let workload = aim_workloads::by_name(kernel, scale)
            .ok_or_else(|| format!("no such kernel `{kernel}` (see aim-workloads)"))?;
        Ok(Arc::clone(cell.get_or_init(|| Arc::new(aim_bench::prepare(workload, scale)))))
    }

    /// Runs `spec`'s simulation on the worker pool and returns (and, when
    /// `store` is set, persists) the resulting entry.
    fn compute(&self, spec: &JobSpec, key: CacheKey, store: bool) -> Result<CacheEntry, String> {
        let slot = Arc::new(JobSlot::default());
        let done = Arc::clone(&slot);
        let counters = Arc::clone(&self.counters);
        let cache = self.cache.clone();
        let cfg = spec.config.to_config();
        let kernel = spec.kernel.clone();
        let scale = spec.scale;
        // The pool job needs the trace; resolve it here so `self` need not
        // be `Arc`-captured (preparation memoizes per kernel anyway).
        let prepared = self.prepared_of(&kernel, scale)?;
        self.pool.execute(Box::new(move || {
            counters.sims_run.fetch_add(1, Ordering::Relaxed);
            let stats = aim_bench::run(&prepared, &cfg);
            let entry = CacheEntry::from_stats(&stats);
            let result = if store {
                cache
                    .store(key, &entry)
                    .map(|()| entry)
                    .map_err(|e| format!("cache store for {key}: {e}"))
            } else {
                Ok(entry)
            };
            done.fulfill(result);
        }));
        slot.wait()
    }

    /// Handles one simulation request end to end.
    ///
    /// # Errors
    ///
    /// Returns a one-line message for unknown kernels or cache I/O
    /// failures; the connection layer ships it as an `ok: false` reply.
    pub fn submit(
        &self,
        spec: &JobSpec,
        verify: bool,
        no_cache: bool,
    ) -> Result<JobResponse, String> {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let key = self.key_of(spec)?;
        let respond = |entry: &CacheEntry, source: Source, outcome: Option<VerifyOutcome>| {
            JobResponse {
                key: key.hex(),
                source,
                cycles: entry.cycles,
                retired: entry.retired,
                fingerprint: entry.fingerprint(),
                stats_text: entry.stats_text.clone(),
                verify: outcome,
            }
        };

        if verify {
            // Recompute unconditionally and byte-compare against whatever
            // the cache holds; the fresh result becomes the entry either
            // way, so verify also repairs.
            let cached = match self.cache.load(key) {
                Lookup::Hit(entry) => Some(entry),
                Lookup::Miss => None,
                Lookup::Corrupt => {
                    self.counters.corrupt_evictions.fetch_add(1, Ordering::Relaxed);
                    None
                }
            };
            let fresh = self.compute(spec, key, true)?;
            let outcome = match cached {
                None => VerifyOutcome::Cold,
                Some(old) => {
                    self.counters.verified.fetch_add(1, Ordering::Relaxed);
                    if old == fresh {
                        VerifyOutcome::Match
                    } else {
                        self.counters.verify_mismatches.fetch_add(1, Ordering::Relaxed);
                        VerifyOutcome::Mismatch
                    }
                }
            };
            return Ok(respond(&fresh, Source::Sim, Some(outcome)));
        }

        if no_cache {
            let fresh = self.compute(spec, key, true)?;
            return Ok(respond(&fresh, Source::Sim, None));
        }

        match self.cache.load(key) {
            Lookup::Hit(entry) => {
                self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(respond(&entry, Source::Cache, None));
            }
            Lookup::Corrupt => {
                self.counters.corrupt_evictions.fetch_add(1, Ordering::Relaxed);
            }
            Lookup::Miss => {}
        }
        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);

        // Single-flight: first requester of the key leads, the rest park.
        let (slot, leader) = {
            let mut inflight = self.inflight.lock().expect("inflight lock");
            match inflight.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(JobSlot::default());
                    inflight.insert(key, Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if leader {
            let result = self.compute(spec, key, true);
            slot.fulfill(result.clone());
            self.inflight.lock().expect("inflight lock").remove(&key);
            Ok(respond(&result?, Source::Sim, None))
        } else {
            self.counters.dedup_waits.fetch_add(1, Ordering::Relaxed);
            Ok(respond(&slot.wait()?, Source::Dedup, None))
        }
    }

    /// Dispatches one decoded request; the boolean says whether the
    /// connection should close after replying (shutdown).
    pub fn handle(&self, msg: &WireMsg) -> (WireMsg, bool) {
        match msg.str_field("op") {
            Some("sim") => {
                let reply = JobSpec::from_wire(msg).and_then(|spec| {
                    self.submit(
                        &spec,
                        msg.bool_field("verify").unwrap_or(false),
                        msg.bool_field("no_cache").unwrap_or(false),
                    )
                });
                match reply {
                    Ok(resp) => (resp.to_wire(), false),
                    Err(e) => (error_reply(&e), false),
                }
            }
            Some("stats") => {
                let c = self.counters();
                let mut reply = WireMsg::new();
                reply
                    .put_bool("ok", true)
                    .put_u64("workers", self.workers() as u64)
                    .put_u64("requests", c.requests)
                    .put_u64("cache_hits", c.cache_hits)
                    .put_u64("cache_misses", c.cache_misses)
                    .put_u64("dedup_waits", c.dedup_waits)
                    .put_u64("sims_run", c.sims_run)
                    .put_u64("corrupt_evictions", c.corrupt_evictions)
                    .put_u64("verified", c.verified)
                    .put_u64("verify_mismatches", c.verify_mismatches)
                    .put_f64("worker_utilization", self.worker_utilization());
                (reply, false)
            }
            Some("shutdown") => {
                self.request_shutdown();
                let mut reply = WireMsg::new();
                reply.put_bool("ok", true);
                (reply, true)
            }
            Some(other) => (error_reply(&format!("unknown op `{other}` (sim|stats|shutdown)")), false),
            None => (error_reply("request is missing the `op` field"), false),
        }
    }
}

/// Serves one framed connection until the peer hangs up, a protocol error
/// occurs, or a shutdown request is handled.
///
/// # Errors
///
/// Propagates stream I/O errors (including truncated frames).
pub fn serve_connection<S: Read + Write>(server: &Server, mut stream: S) -> std::io::Result<()> {
    while let Some(frame) = read_frame(&mut stream)? {
        let (reply, close) = match std::str::from_utf8(&frame) {
            Ok(text) => match WireMsg::parse(text) {
                Ok(msg) => server.handle(&msg),
                Err(e) => (error_reply(&format!("bad request: {e}")), false),
            },
            Err(_) => (error_reply("bad request: frame is not UTF-8"), false),
        };
        write_frame(&mut stream, reply.to_json().as_bytes())?;
        if close {
            break;
        }
    }
    Ok(())
}
